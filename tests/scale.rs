//! Scale smoke test: a provider-sized deployment — 6-router core ring,
//! 8 PEs, 4 VPNs with 8 sites each (all VPNs reusing the same address
//! plan) — carrying a 64-flow traffic matrix. Verifies complete delivery,
//! zero inter-VPN leakage, and that control-plane state matches the
//! analytic expectations at this size.

use mplsvpn::net::{Ip, Prefix};
use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::vpn::{BackboneBuilder, ProviderNetwork};

const CORE: usize = 6;
const PES: usize = 8;
const VPNS: usize = 4;
const SITES_PER_VPN: usize = 8;

fn build() -> (ProviderNetwork, Vec<Vec<mplsvpn::vpn::SiteId>>) {
    let mut t = Topology::new(CORE);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 2_500_000_000 };
    for i in 0..CORE {
        t.add_link(i, (i + 1) % CORE, attrs);
    }
    // Two chords make the core 2-connected with diverse paths.
    t.add_link(0, 3, attrs);
    t.add_link(1, 4, attrs);
    let pes: Vec<usize> = (0..PES)
        .map(|k| {
            let pe = t.add_node();
            t.add_link(pe, k % CORE, attrs);
            pe
        })
        .collect();
    let mut pn = BackboneBuilder::new(t, pes).build();

    let mut sites = Vec::new();
    for v in 0..VPNS {
        let vpn = pn.new_vpn(format!("vpn{v}"));
        let mut vsites = Vec::new();
        for s in 0..SITES_PER_VPN {
            // Identical plan in every VPN: 10.<s>.0.0/16.
            let prefix = Prefix::new(Ip(0x0A00_0000 | ((s as u32) << 16)), 16);
            vsites.push(pn.add_site(vpn, s % PES, prefix, None));
        }
        sites.push(vsites);
    }
    (pn, sites)
}

#[test]
fn provider_scale_delivery_and_isolation() {
    let (mut pn, sites) = build();

    // Control-plane expectations at this size.
    let cs = pn.control_summary();
    assert_eq!(cs.bgp_sessions, PES as u64);
    assert_eq!(cs.ldp_sessions, (CORE + 2 + PES) as u64);
    // 32 advertisements with RR fan-out 1+(P-1) each, plus the RR replays
    // when each later site's fresh VRF catches up: Σ s = 28 per VPN.
    let fanout = (VPNS * SITES_PER_VPN * PES) as u64;
    let replays = (VPNS * SITES_PER_VPN * (SITES_PER_VPN - 1) / 2) as u64;
    assert_eq!(cs.bgp_messages, fanout + replays);

    // One sink per site; a ring of flows per VPN (site s → site s+1).
    let mut sinks = Vec::new();
    for vsites in &sites {
        let per_vpn: Vec<_> = (0..SITES_PER_VPN)
            .map(|s| {
                let prefix = Prefix::new(Ip(0x0A00_0000 | ((s as u32) << 16)), 16);
                pn.attach_sink(vsites[s], prefix)
            })
            .collect();
        sinks.push(per_vpn);
    }
    let mut flow = 0u64;
    let mut expected = Vec::new();
    for (v, vsites) in sites.iter().enumerate() {
        for (s, &site) in vsites.iter().enumerate() {
            let dst_site = (s + 1) % SITES_PER_VPN;
            flow += 1;
            let dst = Prefix::new(Ip(0x0A00_0000 | ((dst_site as u32) << 16)), 16).nth(77);
            let cfg = SourceConfig::udp(flow, pn.site_addr(site, 7), dst, 5000, 256);
            pn.attach_cbr_source(site, cfg, 2 * MSEC, Some(100));
            expected.push((v, dst_site, flow));
        }
    }
    pn.run_for(3 * SEC);

    // Complete delivery, strictly in-VPN.
    for (v, dst_site, flow) in expected {
        let s = pn.net.node_ref::<Sink>(sinks[v][dst_site]);
        assert_eq!(
            s.flow(flow).map(|f| f.rx_packets),
            Some(100),
            "vpn{v} flow {flow} to site {dst_site}"
        );
    }
    let mut total = 0;
    for per_vpn in &sinks {
        for &sink in per_vpn {
            let s = pn.net.node_ref::<Sink>(sink);
            total += s.total_packets;
            // A sink may legitimately receive only its own VPN's ring flow.
            assert!(s.flows().count() <= 1, "leak: sink saw multiple flows");
        }
    }
    assert_eq!(total, (VPNS * SITES_PER_VPN * 100) as u64);
}

#[test]
fn per_pe_state_is_linear_in_its_own_load() {
    let (pn, _) = build();
    // Each PE homes exactly VPNS vrfs (one per VPN) and each VRF holds
    // SITES_PER_VPN routes (its own + 7 imported).
    for pe in 0..PES {
        let (vrfs, routes, labels) = pn.fabric.pe_state(pe);
        assert_eq!(vrfs, VPNS);
        assert_eq!(routes, VPNS * SITES_PER_VPN);
        assert_eq!(labels as usize, VPNS, "one label per locally homed site");
    }
}
