//! Oracle ↔ in-band control-plane parity.
//!
//! The in-band control plane (`ControlMode::InBand`) replaces the
//! oracle's instantaneous full resync with LSA flooding, LDP label
//! messages and MP-BGP route deltas carried as CS6 packets through the
//! same links the data plane uses. Convergence therefore takes simulated
//! *time* — but once quiescent, both modes must agree on every piece of
//! forwarding state: SPF trees, LSP forwarding paths through the live
//! LFIBs, VRF contents, and VPN-label dispatch tables.
//!
//! Label *values* are deliberately outside the contract: the oracle
//! reallocates labels on every reconvergence while in-band liberal
//! retention keeps them stable. The digests below compare forwarding
//! *paths*, not label numbers.

use mplsvpn::routing::{LinkAttrs, RouteTarget, Topology};
use mplsvpn::sim::MSEC;
use mplsvpn::vpn::{BackboneBuilder, ControlMode, ProviderNetwork, VpnId, VrfDigestRow};

/// One node's SPF view: (dist, next_hop, ecmp) of the tree it forwards on.
type SpfRow = (Vec<u64>, Vec<Option<usize>>, Vec<Vec<usize>>);

/// Fish: short path PE0-P1-PE4 (links 0,1), long PE0-P2-P3-PE4 (2,3,4).
fn fish() -> (Topology, Vec<usize>) {
    let mut topo = Topology::new(5);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
        topo.add_link(u, v, attrs);
    }
    (topo, vec![0, 4])
}

/// Ladder: two rails 0-2-4 and 1-3-5 with rungs at every level.
fn ladder() -> (Topology, Vec<usize>) {
    let mut topo = Topology::new(6);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    for (u, v) in [(0, 2), (2, 4), (1, 3), (3, 5), (0, 1), (2, 3), (4, 5)] {
        topo.add_link(u, v, attrs);
    }
    (topo, vec![0, 5])
}

/// Everything forwarding-relevant, in deterministic order.
#[derive(Debug, PartialEq)]
struct Digest {
    /// Per backbone node: the SPF tree it forwards on.
    spf: Vec<SpfRow>,
    /// LSP node walk for every ordered PE pair.
    lsps: Vec<Option<Vec<usize>>>,
    /// Per (PE, VPN): sorted VRF rows (prefix, remote → egress/label/path).
    vrfs: Vec<Vec<VrfDigestRow>>,
    /// Per PE: sorted VPN-label dispatch table.
    ilm: Vec<Vec<(u32, usize)>>,
}

fn digest(pn: &mut ProviderNetwork, vpns: &[VpnId]) -> Digest {
    let nodes = pn.topo.node_count();
    let spf = (0..nodes)
        .map(|u| {
            let t = pn.effective_spf(u);
            (t.dist.clone(), t.next_hop.clone(), t.ecmp.clone())
        })
        .collect();
    let n_pe = pn.pe_count();
    let mut lsps = Vec::new();
    for i in 0..n_pe {
        for j in 0..n_pe {
            if i != j {
                lsps.push(pn.lsp_path(i, j));
            }
        }
    }
    let mut vrfs = Vec::new();
    for pe in 0..n_pe {
        for &vpn in vpns {
            if pn.vrf_handle(pe, vpn).is_some() {
                vrfs.push(pn.vrf_digest(pe, vpn));
            }
        }
    }
    let ilm = (0..n_pe)
        .map(|k| {
            let id = pn.pe_node(k);
            let mut rows: Vec<(u32, usize)> = pn
                .net
                .node_ref::<mplsvpn::vpn::PeRouter>(id)
                .vpn_ilm
                .iter()
                .map(|(&l, &v)| (l, v))
                .collect();
            rows.sort_unstable();
            rows
        })
        .collect();
    Digest { spf, lsps, vrfs, ilm }
}

/// Runs the canonical churn scenario — cut, join-under-failure, repair,
/// detach, RT-policy add/remove — returning the digest at each
/// checkpoint. Oracle arms reconverge explicitly after cut and repair;
/// in-band arms are given settle time and converge by themselves.
fn run_scenario(
    topo: Topology,
    pes: Vec<usize>,
    cut: usize,
    mode: ControlMode,
    seed: u64,
) -> Vec<Digest> {
    let oracle = mode == ControlMode::Oracle;
    let mut pn =
        BackboneBuilder::new(topo, pes).detection(20 * MSEC).seed(seed).control_mode(mode).build();
    let vpn_a = pn.new_vpn("acme");
    let vpn_b = pn.new_vpn("buynlarge");
    let vpns = [vpn_a, vpn_b];
    pn.add_site(vpn_a, 0, "10.1.0.0/16".parse().unwrap(), None);
    pn.add_site(vpn_a, 1, "10.2.0.0/16".parse().unwrap(), None);
    pn.add_site(vpn_b, 0, "10.1.0.0/16".parse().unwrap(), None); // overlap is the point
    let b1 = pn.add_site(vpn_b, 1, "10.9.0.0/16".parse().unwrap(), None);
    pn.run_for(100 * MSEC);
    let mut out = vec![digest(&mut pn, &vpns)];

    // Cut a short-path link; detection fires, then LSAs (or the oracle).
    pn.fail_link(cut);
    pn.run_for(300 * MSEC);
    if oracle {
        pn.reconverge();
    }
    pn.run_for(100 * MSEC);
    out.push(digest(&mut pn, &vpns));

    // Membership join while the failure is still active: the new route
    // must reach the other PE over the surviving path.
    pn.add_site(vpn_a, 1, "10.3.0.0/16".parse().unwrap(), None);
    pn.run_for(100 * MSEC);
    out.push(digest(&mut pn, &vpns));

    pn.repair_link(cut);
    pn.run_for(300 * MSEC);
    if oracle {
        pn.reconverge();
    }
    pn.run_for(100 * MSEC);
    out.push(digest(&mut pn, &vpns));

    // Membership leave: the withdraw must evict the route remotely.
    pn.detach_site(b1);
    pn.run_for(100 * MSEC);
    out.push(digest(&mut pn, &vpns));

    // RT-policy extranet: import acme's routes into buynlarge at PE0,
    // then take the import back. Local re-filtering, zero messages.
    pn.add_import_target(0, vpn_b, RouteTarget(100 + vpn_a.0 as u64));
    pn.run_for(50 * MSEC);
    out.push(digest(&mut pn, &vpns));
    pn.remove_import_target(0, vpn_b, RouteTarget(100 + vpn_a.0 as u64));
    pn.run_for(50 * MSEC);
    out.push(digest(&mut pn, &vpns));
    out
}

fn assert_parity(name: &str, topo: fn() -> (Topology, Vec<usize>), cut: usize) {
    for seed in [1, 2, 3] {
        let (t, p) = topo();
        let oracle = run_scenario(t, p, cut, ControlMode::Oracle, seed);
        let (t, p) = topo();
        let inband = run_scenario(t, p, cut, ControlMode::InBand, seed);
        assert_eq!(oracle.len(), inband.len());
        for (k, (o, i)) in oracle.iter().zip(inband.iter()).enumerate() {
            assert_eq!(o, i, "{name} seed {seed}: modes diverge at checkpoint {k}");
        }
    }
}

#[test]
fn fish_modes_quiesce_to_identical_state() {
    assert_parity("fish", fish, 1);
}

#[test]
fn ladder_modes_quiesce_to_identical_state() {
    assert_parity("ladder", ladder, 1);
}

/// The RT-policy checkpoints actually do something: the extranet import
/// adds acme's remote routes to buynlarge's VRF and the removal takes
/// them back — in both modes, with zero control messages either way.
#[test]
fn rt_policy_is_a_local_delta_in_both_modes() {
    for mode in [ControlMode::Oracle, ControlMode::InBand] {
        let (t, p) = fish();
        let mut pn = BackboneBuilder::new(t, p).detection(20 * MSEC).control_mode(mode).build();
        let vpn_a = pn.new_vpn("acme");
        let vpn_b = pn.new_vpn("buynlarge");
        pn.add_site(vpn_a, 1, "10.2.0.0/16".parse().unwrap(), None);
        pn.add_site(vpn_b, 0, "10.8.0.0/16".parse().unwrap(), None);
        pn.run_for(100 * MSEC);
        let bgp_before = pn.control_stats().map_or(0, |s| s.pkts_by_proto[2]);
        let before = pn.vrf_digest(0, vpn_b);
        assert!(
            before.iter().all(|(p, _)| *p != "10.2.0.0/16".parse().unwrap()),
            "no extranet import yet"
        );

        pn.add_import_target(0, vpn_b, RouteTarget(100 + vpn_a.0 as u64));
        let mid = pn.vrf_digest(0, vpn_b);
        let imported = mid
            .iter()
            .find(|(p, _)| *p == "10.2.0.0/16".parse().unwrap())
            .expect("extranet import landed");
        let (egress, _label, path) = imported.1.as_ref().expect("imported route is remote");
        assert_eq!(*egress, 1);
        assert!(path.is_some(), "imported route rides a live tunnel");

        pn.remove_import_target(0, vpn_b, RouteTarget(100 + vpn_a.0 as u64));
        assert_eq!(pn.vrf_digest(0, vpn_b), before, "removal restores the old VRF");
        let bgp_after = pn.control_stats().map_or(0, |s| s.pkts_by_proto[2]);
        assert_eq!(bgp_after, bgp_before, "RT re-filtering costs zero messages");
    }
}

/// A partition no longer panics the oracle resync: a PE with no LSP to
/// the egress skips the install and the event is counted, surfaced
/// through the metrics snapshot.
#[test]
fn partition_counts_no_lsp_to_egress_instead_of_panicking() {
    for mode in [ControlMode::Oracle, ControlMode::InBand] {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        let mut pn =
            BackboneBuilder::new(topo, vec![0, 2]).detection(20 * MSEC).control_mode(mode).build();
        let vpn = pn.new_vpn("acme");
        pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
        pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
        pn.run_for(100 * MSEC);
        // Cut the only link out of PE0: the backbone is partitioned.
        pn.fail_link(0);
        pn.run_for(100 * MSEC);
        if mode == ControlMode::Oracle {
            pn.reconverge(); // used to assert; must now count and continue
            assert!(
                pn.no_lsp_to_egress() >= 1,
                "partition must surface as a counted skip, not a panic"
            );
            let snap = pn.metrics_snapshot();
            let row = snap
                .counters
                .iter()
                .find(|(n, _)| n == "control.no_lsp_to_egress")
                .expect("counter exported");
            assert!(row.1 >= 1);
        } else {
            // Join on the far side: the MP-BGP update cannot cross the
            // partition — counted as undeliverable, never a panic.
            pn.add_site(vpn, 1, "10.3.0.0/16".parse().unwrap(), None);
            pn.run_for(100 * MSEC);
            let stats = pn.control_stats().expect("in-band stats");
            assert!(
                stats.undeliverable >= 1,
                "partitioned update must be counted undeliverable: {stats:?}"
            );
            let snap = pn.metrics_snapshot();
            let row = snap
                .counters
                .iter()
                .find(|(n, _)| n == "control.undeliverable")
                .expect("counter exported");
            assert!(row.1 >= 1);
        }
    }
}

/// Detaching the only remote site leaves the importing VRF without the
/// route in both modes (satellite: withdraw coverage).
#[test]
fn detach_withdraws_remotely_in_both_modes() {
    for mode in [ControlMode::Oracle, ControlMode::InBand] {
        let (t, p) = fish();
        let mut pn = BackboneBuilder::new(t, p).detection(20 * MSEC).control_mode(mode).build();
        let vpn = pn.new_vpn("acme");
        pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
        let far = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
        pn.run_for(100 * MSEC);
        assert!(
            pn.vrf_digest(0, vpn).iter().any(|(p, _)| *p == "10.2.0.0/16".parse().unwrap()),
            "route present before detach"
        );
        pn.detach_site(far);
        pn.run_for(100 * MSEC);
        assert!(
            pn.vrf_digest(0, vpn).iter().all(|(p, _)| *p != "10.2.0.0/16".parse().unwrap()),
            "withdraw evicted the route ({mode:?})"
        );
    }
}
