//! Cross-crate integration tests: whole-architecture behaviours that no
//! single crate can verify alone.

use mplsvpn::net::Prefix;
use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::vpn::network::DsSched;
use mplsvpn::vpn::{BackboneBuilder, CoreQos, ProviderNetwork, TraceLog};

fn pfx(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn national() -> (Topology, Vec<usize>) {
    // 4-node core ring + 4 PEs.
    let mut t = Topology::new(4);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 622_000_000 };
    for i in 0..4 {
        t.add_link(i, (i + 1) % 4, attrs);
    }
    let pes: Vec<usize> = (0..4)
        .map(|k| {
            let pe = t.add_node();
            t.add_link(pe, k, attrs);
            pe
        })
        .collect();
    (t, pes)
}

/// Any-to-any connectivity: a 4-site VPN over a ring backbone delivers
/// every ordered site pair's traffic.
#[test]
fn full_mesh_connectivity_four_sites() {
    let (t, pes) = national();
    let mut pn = BackboneBuilder::new(t, pes).build();
    let vpn = pn.new_vpn("acme");
    let blocks = ["10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.4.0.0/16"];
    let sites: Vec<_> = (0..4).map(|k| pn.add_site(vpn, k, pfx(blocks[k]), None)).collect();
    let sinks: Vec<_> = (0..4).map(|k| pn.attach_sink(sites[k], pfx(blocks[k]))).collect();

    let mut flow = 0u64;
    let mut expected = Vec::new();
    for i in 0..4 {
        for j in 0..4 {
            if i == j {
                continue;
            }
            flow += 1;
            let cfg = SourceConfig::udp(
                flow,
                pn.site_addr(sites[i], 10),
                pn.site_addr(sites[j], 20),
                5000,
                200,
            );
            pn.attach_cbr_source(sites[i], cfg, MSEC, Some(25));
            expected.push((j, flow));
        }
    }
    pn.run_for(2 * SEC);
    for (dst_site, flow) in expected {
        let s = pn.net.node_ref::<Sink>(sinks[dst_site]);
        assert_eq!(
            s.flow(flow).map(|f| f.rx_packets),
            Some(25),
            "flow {flow} to site {dst_site} incomplete"
        );
    }
}

fn congested_run(seed: u64) -> Vec<(u64, u64, u64)> {
    // A deliberately lossy DiffServ run; returns (flow, rx, max_seq) tuples.
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, LinkAttrs { cost: 1, capacity_bps: 100_000_000 });
    topo.add_link(1, 2, LinkAttrs { cost: 1, capacity_bps: 10_000_000 });
    topo.add_link(2, 3, LinkAttrs { cost: 1, capacity_bps: 100_000_000 });
    let mut pn = BackboneBuilder::new(topo, vec![0, 3])
        .core_qos(CoreQos::DiffServ { cap_bytes: 64 * 1024, sched: DsSched::Priority })
        .seed(seed)
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    for f in 0..4u64 {
        let cfg =
            SourceConfig::udp(f, pn.site_addr(a, f as u32), pn.site_addr(b, f as u32), 20, 1000);
        pn.attach_poisson_source(a, cfg, 300_000, seed * 100 + f, Some(2 * SEC));
    }
    pn.run_for(3 * SEC);
    let s = pn.net.node_ref::<Sink>(sink);
    let mut out: Vec<(u64, u64, u64)> =
        s.flows().map(|(f, st)| (f, st.rx_packets, st.max_seq)).collect();
    out.sort();
    out
}

/// Determinism: identical seeds give byte-identical outcomes, different
/// seeds differ.
#[test]
fn simulation_is_deterministic_per_seed() {
    let a = congested_run(5);
    let b = congested_run(5);
    assert_eq!(a, b, "same seed must reproduce exactly");
    let c = congested_run(6);
    assert_ne!(a, c, "different seed must change the trajectory");
}

fn delivery_with_php(php: bool) -> u64 {
    let (t, pes) = national();
    let mut pn = BackboneBuilder::new(t, pes).php(php).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 2, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 300);
    pn.attach_cbr_source(a, cfg, MSEC, Some(100));
    pn.run_for(SEC);
    pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets).unwrap_or(0)
}

/// PHP is a forwarding optimization: it must not change what is delivered.
#[test]
fn php_and_non_php_deliver_identically() {
    assert_eq!(delivery_with_php(true), 100);
    assert_eq!(delivery_with_php(false), 100);
}

/// The EXP bits assigned at the ingress PE are visible at every labeled
/// hop — the end-to-end QoS invariant of the paper's §5.
#[test]
fn exp_marking_survives_the_whole_backbone() {
    let (t, pes) = national();
    let log = TraceLog::new();
    let mut pn: ProviderNetwork = BackboneBuilder::new(t, pes).trace(log.clone()).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(
        vpn,
        0,
        pfx("10.1.0.0/16"),
        Some(mplsvpn::qos::MarkingPolicy::enterprise_default()),
    );
    let b = pn.add_site(vpn, 2, pfx("10.2.0.0/16"), None);
    pn.attach_sink(b, pfx("10.2.0.0/16"));
    // Voice port → EF → EXP 5.
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 16400, 160);
    pn.attach_cbr_source(a, cfg, MSEC, Some(5));
    pn.run_for(SEC);
    let labeled: Vec<_> = log.flow(1).into_iter().filter(|r| r.exp.is_some()).collect();
    assert!(!labeled.is_empty());
    assert!(labeled.iter().all(|r| r.exp == Some(5)), "{labeled:?}");
    // And the customer's DSCP is intact at delivery (MPLS never touches it).
    let last = log.flow(1).into_iter().last().unwrap();
    assert_eq!(last.dscp, Some(mplsvpn::net::Dscp::EF));
}

/// TTL safety net: a routing loop cannot cycle packets forever.
#[test]
fn forwarding_loops_die_by_ttl() {
    use mplsvpn::mpls::lfib::{LabelOp, Nhlfe};
    use mplsvpn::vpn::CoreRouter;
    // Two P routers pointing label 100 at each other.
    let mut net = mplsvpn::sim::Network::new();
    let mut lfib_a = mplsvpn::mpls::Lfib::new();
    lfib_a.install(100, Nhlfe { op: LabelOp::Swap(100), out_iface: 0 });
    let mut lfib_b = mplsvpn::mpls::Lfib::new();
    lfib_b.install(100, Nhlfe { op: LabelOp::Swap(100), out_iface: 0 });
    let a = net.add_node(Box::new(CoreRouter::new("A", lfib_a)));
    let b = net.add_node(Box::new(CoreRouter::new("B", lfib_b)));
    net.connect(a, b, mplsvpn::sim::LinkConfig::new(1_000_000_000, 1000));
    let mut p = mplsvpn::net::Packet::udp(
        "1.1.1.1".parse().unwrap(),
        "2.2.2.2".parse().unwrap(),
        1,
        2,
        mplsvpn::net::Dscp::BE,
        100,
    );
    p.push_outer(mplsvpn::net::Layer::Mpls(mplsvpn::net::MplsLabel::new(100, 0, 64)));
    net.inject(a, mplsvpn::sim::IfaceId(0), p);
    let events = net.run_to_quiescence();
    assert!(events < 1000, "loop must terminate quickly, processed {events}");
    let ra = net.node_ref::<CoreRouter>(a);
    let rb = net.node_ref::<CoreRouter>(b);
    assert_eq!(ra.counters.dropped_ttl + rb.counters.dropped_ttl, 1);
}
