//! Convergence regression: pins the exact packets-lost-in-blind-window
//! counts of the `backbone_failover` story, pre-FRR and with FRR.
//!
//! The simulator is deterministic, so these are equalities, not ranges:
//! any change to queueing, detection, reconvergence ordering or the FRR
//! switchover path that moves a single packet shows up here.

use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::te::SrlgMap;
use mplsvpn::vpn::{BackboneBuilder, ProviderNetwork};

/// Fish: short path PE0-P1-PE4 (links 0,1), long PE0-P2-P3-PE4 (2,3,4).
fn fish() -> Topology {
    let mut topo = Topology::new(5);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
        topo.add_link(u, v, attrs);
    }
    topo
}

/// One VPN, a site on each PE, and a 200 pps voice flow for 8 s.
fn voice_fish(detect_ns: u64) -> (ProviderNetwork, mplsvpn::sim::NodeId, u64) {
    let mut pn = BackboneBuilder::new(fish(), vec![0, 4]).detection(detect_ns).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
    let b = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
    let sink = pn.attach_sink(b, "10.2.0.0/16".parse().unwrap());
    let interval = 5 * MSEC;
    let total = 8 * SEC / interval;
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 16400, 160);
    pn.attach_cbr_source(a, cfg, interval, Some(total));
    (pn, sink, total)
}

fn lost(pn: &ProviderNetwork, sink: mplsvpn::sim::NodeId, total: u64) -> u64 {
    total - pn.net.node_ref::<Sink>(sink).flow(1).expect("flow reached the sink").rx_packets
}

/// Pre-FRR: cut at 2 s, 150 ms blind window, reconverge, repair at
/// 4.15 s, reconverge. Exactly 30 packets die — 29 in the blind window
/// plus the one in flight on the cut link.
#[test]
fn global_reconvergence_loses_exactly_thirty_packets() {
    let (mut pn, sink, total) = voice_fish(150 * MSEC);
    pn.run_for(2 * SEC);
    pn.fail_link(1);
    pn.run_for(150 * MSEC);
    pn.reconverge();
    pn.run_for(2 * SEC);
    pn.repair_link(1);
    pn.reconverge();
    pn.run_for(4 * SEC);
    assert_eq!(lost(&pn, sink, total), 30);
}

/// With FRR: same cut, 20 ms BFD detection, no reconvergence ever.
/// Exactly 5 packets die — 4 in the detection gap plus the one in
/// flight — and the bypass carries the remaining 4 s of the call.
#[test]
fn fast_reroute_loses_exactly_five_packets() {
    let (mut pn, sink, total) = voice_fish(20 * MSEC);
    let srlg = SrlgMap::new(pn.topo.link_count());
    assert_eq!(pn.protect_all_links(&srlg), 10, "both directions of all five links");
    pn.run_for(2 * SEC);
    pn.fail_link(1);
    pn.run_for(6 * SEC);
    assert_eq!(lost(&pn, sink, total), 5);
    assert_eq!(pn.active_switchovers(), 2);
}
