//! Integration tests for the two baseline VPN models against the MPLS VPN:
//! same topology, same traffic, three technologies.

use mplsvpn::net::Prefix;
use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::vpn::ipsec_vpn::{IpsecGateway, IpsecVpnNetwork};
use mplsvpn::vpn::overlay::OverlayNetwork;
use mplsvpn::vpn::{BackboneBuilder, CoreQos};

fn pfx(s: &str) -> Prefix {
    s.parse().unwrap()
}

fn line3() -> Topology {
    let mut t = Topology::new(3);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
    t.add_link(0, 1, attrs);
    t.add_link(1, 2, attrs);
    t
}

/// All three technologies deliver the same 200 packets over the same
/// three-node backbone.
#[test]
fn three_technologies_same_connectivity() {
    let n_packets = 200u64;

    // MPLS VPN.
    let mpls = {
        let mut pn = BackboneBuilder::new(line3(), vec![0, 2]).build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 300);
        pn.attach_cbr_source(a, cfg, MSEC, Some(n_packets));
        pn.run_for(2 * SEC);
        pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets).unwrap_or(0)
    };

    // Overlay PVC.
    let overlay = {
        let mut ov = OverlayNetwork::build(line3(), 1_000_000);
        let a = ov.add_site(0, pfx("10.1.0.0/16"));
        let b = ov.add_site(2, pfx("10.2.0.0/16"));
        ov.connect_sites(a, b);
        let sink = ov.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, ov.site_addr(a, 1), ov.site_addr(b, 1), 5000, 300);
        ov.attach_cbr_source(a, cfg, MSEC, Some(n_packets));
        ov.net.run_until(2 * SEC);
        ov.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets).unwrap_or(0)
    };

    // IPsec over IP.
    let ipsec = {
        let mut n = IpsecVpnNetwork::build(
            line3(),
            1_000_000,
            CoreQos::BestEffort { cap_bytes: 256 * 1024 },
        );
        let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
        let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
        n.connect_gateways(a, b);
        let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, n.site_addr(a, 1), n.site_addr(b, 1), 5000, 300);
        n.attach_cbr_source(a, cfg, MSEC, Some(n_packets));
        n.net.run_until(2 * SEC);
        n.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets).unwrap_or(0)
    };

    assert_eq!(mpls, n_packets);
    assert_eq!(overlay, n_packets);
    assert_eq!(ipsec, n_packets);
}

/// The IPsec path costs crypto latency; the MPLS path does not. Both run
/// on identical links, so the latency gap is pure gateway processing.
#[test]
fn ipsec_pays_crypto_latency_mpls_does_not() {
    let run_mpls = || {
        let mut pn = BackboneBuilder::new(line3(), vec![0, 2]).build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 1000);
        pn.attach_cbr_source(a, cfg, 10 * MSEC, Some(50));
        pn.run_for(2 * SEC);
        pn.net.node_ref::<Sink>(sink).flow(1).unwrap().latency.mean()
    };
    let run_ipsec = || {
        let mut n = IpsecVpnNetwork::build(
            line3(),
            1_000_000,
            CoreQos::BestEffort { cap_bytes: 256 * 1024 },
        );
        let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
        let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
        n.connect_gateways(a, b);
        let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, n.site_addr(a, 1), n.site_addr(b, 1), 5000, 1000);
        n.attach_cbr_source(a, cfg, 10 * MSEC, Some(50));
        n.net.run_until(2 * SEC);
        let mean = n.net.node_ref::<Sink>(sink).flow(1).unwrap().latency.mean();
        let gw = n.net.node_ref::<IpsecGateway>(n.gateway_node(a));
        (mean, gw.crypto_ns)
    };
    let mpls_mean = run_mpls();
    let (ipsec_mean, crypto_total) = run_ipsec();
    assert!(crypto_total > 0);
    // The IPsec mean must exceed MPLS by at least one end's crypto cost for
    // a ~1 kB packet (~70 µs under the default cost model).
    assert!(ipsec_mean > mpls_mean + 70_000.0, "ipsec {ipsec_mean} vs mpls {mpls_mean}");
}

/// Replay attack on the IPsec baseline: a duplicated ESP packet is dropped
/// by the anti-replay window, not delivered twice.
#[test]
fn ipsec_baseline_rejects_replayed_packets() {
    use mplsvpn::ipsec::encapsulate;
    use mplsvpn::net::{Dscp, Packet};
    let mut n =
        IpsecVpnNetwork::build(line3(), 1_000_000, CoreQos::BestEffort { cap_bytes: 256 * 1024 });
    let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
    let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
    n.connect_gateways(a, b);
    let sink = n.attach_sink(b, pfx("10.2.0.0/16"));

    // Forge a replay: encapsulate one packet with a *copy* of A's outbound
    // SA, then inject the same ciphertext twice at A's uplink.
    let ga = n.gateway_node(a);
    let (my_ip, peer_ip, mut sa_copy) = {
        let gw = n.net.node_ref::<IpsecGateway>(ga);
        let (peer_ip, out_sa, _) = &gw.peers[0];
        (gw.public_ip, *peer_ip, out_sa.clone())
    };
    let mut inner =
        Packet::udp(pfx("10.1.0.0/16").nth(1), pfx("10.2.0.0/16").nth(1), 1, 2, Dscp::BE, 64);
    inner.meta.flow = 9;
    let outer = encapsulate(&inner, &mut sa_copy, my_ip, peer_ip);
    n.net.inject(ga, mplsvpn::sim::IfaceId(0), outer.clone());
    n.net.inject(ga, mplsvpn::sim::IfaceId(0), outer);
    n.net.run_until(SEC);
    let s = n.net.node_ref::<Sink>(sink);
    assert_eq!(s.flow(9).map(|f| f.rx_packets), Some(1), "replay must be dropped");
    let gb = n.net.node_ref::<IpsecGateway>(n.gateway_node(b));
    assert_eq!(gb.esp_errors, 1);
}

/// Overlay edges only reach provisioned partners (no any-to-any): with a
/// hub-and-spoke provisioning, spoke→spoke traffic dies at the edge.
#[test]
fn overlay_respects_provisioned_topology() {
    let t = Topology::new(1); // a single switch is enough
    let mut ov = OverlayNetwork::build(t, 1_000_000);
    let hub = ov.add_site(0, pfx("10.0.0.0/16"));
    let s1 = ov.add_site(0, pfx("10.1.0.0/16"));
    let s2 = ov.add_site(0, pfx("10.2.0.0/16"));
    ov.connect_sites(hub, s1);
    ov.connect_sites(hub, s2);
    let sink_hub = ov.attach_sink(hub, pfx("10.0.0.0/16"));
    let sink_s2 = ov.attach_sink(s2, pfx("10.2.0.0/16"));
    // s1 → hub works; s1 → s2 has no PVC and must be dropped at the edge.
    let c1 = SourceConfig::udp(1, ov.site_addr(s1, 1), ov.site_addr(hub, 1), 80, 100);
    let c2 = SourceConfig::udp(2, ov.site_addr(s1, 1), ov.site_addr(s2, 1), 80, 100);
    ov.attach_cbr_source(s1, c1, MSEC, Some(10));
    ov.attach_cbr_source(s1, c2, MSEC, Some(10));
    ov.net.run_until(SEC);
    assert_eq!(ov.net.node_ref::<Sink>(sink_hub).flow(1).map(|f| f.rx_packets), Some(10));
    assert_eq!(ov.net.node_ref::<Sink>(sink_s2).total_packets, 0);
}
