//! Chaos harness: seeded random fault schedules against random backbone
//! shapes, checked for the invariants no failure order may break:
//!
//! 1. **Packet conservation** — every packet a source emitted is either
//!    delivered to a sink, dropped on a link (tail drop, cut-link flush,
//!    or down-interface refusal), dropped by a router (no route / TTL /
//!    policer), absorbed by a control plane, or still queued when the
//!    clock stops.
//! 2. **Isolation** — two VPNs with *identical* (overlapping) address
//!    plans never leak a packet into each other's sinks, no matter which
//!    links flap in which order.
//! 3. **Determinism** — the same seed replays to bit-identical flow and
//!    link statistics.
//!
//! Both failover modes are exercised: even seeds run fast reroute (no
//! reconvergence, bypass LSPs), odd seeds run global reconvergence after
//! every fault event.
//!
//! Both *control* modes run too: the default is the oracle; setting
//! `CHAOS_CONTROL_MODE=inband` rebuilds every scenario with the in-band
//! message-driven control plane, whose CS6 packets share links and
//! queues with the data — the conservation ledger then carries explicit
//! control-plane send/terminate terms.

use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{
    CbrSource, FaultPlan, LinkId, NodeId, PoissonSource, Sink, SourceConfig, MSEC, SEC,
};
use mplsvpn::te::SrlgMap;
use mplsvpn::vpn::{
    BackboneBuilder, CeRouter, ControlMode, CoreRouter, FailoverMode, PeRouter, ProviderNetwork,
};

/// The control mode under test: `CHAOS_CONTROL_MODE=inband` opts in to
/// the message-driven control plane; anything else runs the oracle.
fn control_mode() -> ControlMode {
    match std::env::var("CHAOS_CONTROL_MODE") {
        Ok(v) if v.eq_ignore_ascii_case("inband") => ControlMode::InBand,
        _ => ControlMode::Oracle,
    }
}

/// Sources stop emitting here…
const TRAFFIC_END: u64 = 4 * SEC;
/// …and the simulator runs on to here so everything in flight lands.
const RUN_END: u64 = 6 * SEC;

/// The fish: 5 nodes, short path 0-1-4 over links {0,1}, long path over
/// {2,3,4}. Cutting any subset of the short path keeps the PEs connected.
fn fish() -> (Topology, Vec<usize>, Vec<usize>) {
    let mut t = Topology::new(5);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
        t.add_link(u, v, attrs);
    }
    (t, vec![0, 4], vec![0, 1])
}

/// A 2×3 ladder: top rail 0-1-2, bottom rail 3-4-5, three rungs. PEs sit
/// at opposite corners (0 and 5). Links {0,1,5} (the top rail and middle
/// rung) can all fail without disconnecting 0 from 5 via 0-3-4-5.
fn ladder() -> (Topology, Vec<usize>, Vec<usize>) {
    let mut t = Topology::new(6);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
        t.add_link(u, v, attrs);
    }
    (t, vec![0, 5], vec![0, 1, 5])
}

/// Everything a scenario needs for its post-mortem.
struct Scenario {
    pn: ProviderNetwork,
    pes_topo: Vec<usize>,
    /// (source node, flow id) per attached source.
    sources: Vec<(NodeId, bool)>, // bool: true = CBR, false = Poisson
    /// Sink node and the flow ids that legitimately belong to it.
    sinks: Vec<(NodeId, Vec<u64>)>,
}

/// Builds the seeded scenario and replays its fault plan to `RUN_END`.
fn run_scenario(seed: u64) -> Scenario {
    let (topo, pes, cuttable) = if seed % 4 < 2 { fish() } else { ladder() };
    let mode = if seed.is_multiple_of(2) {
        FailoverMode::FastReroute
    } else {
        FailoverMode::GlobalReconverge
    };
    let link_count = topo.link_count();
    let mut pn = BackboneBuilder::new(topo, pes.clone())
        .detection(25 * MSEC)
        .control_mode(control_mode())
        .build();

    // Two VPNs with the *same* address plan: the harshest isolation test.
    let mut sinks = Vec::new();
    let mut sources = Vec::new();
    for (v, name) in ["red", "blue"].iter().enumerate() {
        let vpn = pn.new_vpn(*name);
        let a = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
        let b = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
        let sink = pn.attach_sink(b, "10.2.0.0/16".parse().unwrap());
        let base = 1000 * (v as u64 + 1);
        // A steady CBR flow and a seeded Poisson flow per VPN.
        let cbr = SourceConfig::udp(base, pn.site_addr(a, 1), pn.site_addr(b, 1), 16400, 160);
        let n = pn.attach_cbr_source(a, cbr, 10 * MSEC, Some(TRAFFIC_END / (10 * MSEC)));
        sources.push((n, true));
        let poi = SourceConfig::udp(base + 1, pn.site_addr(a, 2), pn.site_addr(b, 2), 443, 600);
        let n = pn.attach_poisson_source(a, poi, 5 * MSEC, seed ^ base, Some(TRAFFIC_END));
        sources.push((n, false));
        sinks.push((sink, vec![base, base + 1]));
    }

    if mode == FailoverMode::FastReroute {
        let srlg = SrlgMap::new(link_count);
        pn.protect_all_links(&srlg);
    }

    // 4 flaps over the cuttable links, outages ≥ 200 ms, all inside the
    // traffic window so the faults actually bite.
    let plan = FaultPlan::random(seed, &cuttable, 3 * SEC, 4, 200 * MSEC);
    pn.execute_fault_plan(&plan, mode, RUN_END);
    Scenario { pn, pes_topo: pes, sources, sinks }
}

/// Sum of every router-level counter that terminates a packet.
fn router_terminations(s: &mut Scenario) -> (u64, u64) {
    let mut dropped = 0;
    let mut local = 0;
    let mut tally = |c: &mplsvpn::vpn::router::RouterCounters| {
        dropped += c.dropped_no_route + c.dropped_ttl + c.dropped_policer + c.dropped_vrf_miss;
        local += c.delivered_local;
    };
    for u in 0..s.pn.topo.node_count() {
        let id = s.pn.backbone_node(u);
        if s.pes_topo.contains(&u) {
            tally(&s.pn.net.node_ref::<PeRouter>(id).counters);
        } else {
            tally(&s.pn.net.node_ref::<CoreRouter>(id).counters);
        }
    }
    for i in 0..s.pn.sites.len() {
        let ce = s.pn.sites[i].ce;
        tally(&s.pn.net.node_ref::<CeRouter>(ce).counters);
    }
    (dropped, local)
}

#[test]
fn chaos_packet_conservation_holds_under_any_failure_order() {
    for seed in 0..8 {
        let mut s = run_scenario(seed);
        let sent: u64 = s
            .sources
            .iter()
            .map(|&(n, cbr)| {
                if cbr {
                    s.pn.net.node_ref::<CbrSource>(n).tx.tx_packets
                } else {
                    s.pn.net.node_ref::<PoissonSource>(n).tx.tx_packets
                }
            })
            .sum();
        let delivered: u64 =
            s.sinks.iter().map(|&(n, _)| s.pn.net.node_ref::<Sink>(n).total_packets).sum();
        let link_dropped: u64 = (0..s.pn.net.link_count())
            .flat_map(|l| (0..2).map(move |d| (l, d)))
            .map(|(l, d)| s.pn.net.link_stats(LinkId(l), d).dropped)
            .sum();
        let queued = s.pn.net.queued_packets();
        let (router_dropped, delivered_local) = router_terminations(&mut s);
        // In-band control packets enter the same ledger: each one sent is
        // terminated at a router, purged on a cut link (already inside
        // `link_dropped`), or still queued. Both terms are 0 under the
        // oracle, collapsing to the original data-only equation.
        let (ctrl_sent, ctrl_terminated) =
            s.pn.control_stats().map_or((0, 0), |c| (c.pkts_sent, c.pkts_terminated));
        assert_eq!(
            sent + ctrl_sent,
            delivered + link_dropped + router_dropped + delivered_local + ctrl_terminated + queued,
            "conservation broke at seed {seed}: sent={sent} ctrl_sent={ctrl_sent} \
             delivered={delivered} link_dropped={link_dropped} \
             router_dropped={router_dropped} local={delivered_local} \
             ctrl_terminated={ctrl_terminated} queued={queued}"
        );
        assert!(sent > 0, "seed {seed} generated no traffic");
        assert!(delivered > 0, "seed {seed} delivered nothing — network dead");
    }
}

#[test]
fn chaos_every_loss_has_a_recorded_cause() {
    // 4. **Attribution** — the flight recorder's per-cause totals agree
    //    with the raw drop counters, and per VPN every packet a source
    //    emitted is delivered, attributed to a cause, absorbed locally,
    //    or still queued. No loss may go unexplained.
    for seed in 0..8 {
        let mut s = run_scenario(seed);
        let link_dropped: u64 = (0..s.pn.net.link_count())
            .flat_map(|l| (0..2).map(move |d| (l, d)))
            .map(|(l, d)| s.pn.net.link_stats(LinkId(l), d).dropped)
            .sum();
        let (router_dropped, _local) = router_terminations(&mut s);
        let rec = s.pn.recorder().clone();
        assert_eq!(
            rec.total_drops(),
            link_dropped + router_dropped,
            "recorder disagrees with raw drop counters at seed {seed}: {:?}",
            rec.cause_rows()
        );

        let mut explained_deficit = 0u64;
        for (v, (sink_node, ids)) in s.sinks.iter().enumerate() {
            let sink = s.pn.net.node_ref::<Sink>(*sink_node);
            for (j, &flow) in ids.iter().enumerate() {
                let (src_node, cbr) = s.sources[2 * v + j];
                let sent = if cbr {
                    s.pn.net.node_ref::<CbrSource>(src_node).tx.tx_packets
                } else {
                    s.pn.net.node_ref::<PoissonSource>(src_node).tx.tx_packets
                };
                let rx = sink.flow(flow).map_or(0, |f| f.rx_packets);
                let attributed = rec.flow_drops(flow) + rec.absorbed_of(flow);
                let deficit = (sent - rx).checked_sub(attributed).unwrap_or_else(|| {
                    panic!(
                        "flow {flow} over-attributed at seed {seed}: sent={sent} rx={rx} \
                         causes={:?} absorbed={}",
                        rec.flow_causes(flow),
                        rec.absorbed_of(flow)
                    )
                });
                explained_deficit += deficit;
            }
        }
        // Whatever is not delivered, dropped-with-cause, or absorbed must
        // still be sitting in a queue when the clock stops.
        assert_eq!(
            explained_deficit,
            s.pn.net.queued_packets(),
            "unexplained losses at seed {seed}: {:?}",
            rec.cause_rows()
        );
    }
}

#[test]
fn chaos_no_cross_vrf_delivery_ever() {
    for seed in 0..8 {
        let s = run_scenario(seed);
        let all_ids: Vec<u64> = s.sinks.iter().flat_map(|(_, ids)| ids.iter().copied()).collect();
        for (sink, own_ids) in &s.sinks {
            let sink = s.pn.net.node_ref::<Sink>(*sink);
            // Every packet this sink absorbed belongs to one of its own
            // flows: per-flow counts must add up to the absolute total.
            let own_rx: u64 =
                own_ids.iter().filter_map(|&id| sink.flow(id)).map(|f| f.rx_packets).sum();
            assert_eq!(own_rx, sink.total_packets, "foreign packets at a VRF sink, seed {seed}");
            // And no foreign flow id ever materialized.
            for id in all_ids.iter().filter(|id| !own_ids.contains(id)) {
                assert!(sink.flow(*id).is_none(), "flow {id} leaked across VRFs, seed {seed}");
            }
        }
    }
}

#[test]
fn chaos_replays_are_bit_identical() {
    for seed in 0..8 {
        let sig_a = signature(run_scenario(seed));
        let sig_b = signature(run_scenario(seed));
        assert_eq!(sig_a, sig_b, "seed {seed} did not replay identically");
    }
}

/// Full observable state of a finished scenario, suitable for equality.
fn signature(s: Scenario) -> Vec<(u64, u64, u64, u64)> {
    let mut sig = Vec::new();
    for (sink, ids) in &s.sinks {
        let sink = s.pn.net.node_ref::<Sink>(*sink);
        for &id in ids {
            let (rx, bytes, seq) =
                sink.flow(id).map_or((0, 0, 0), |f| (f.rx_packets, f.rx_bytes, f.max_seq));
            sig.push((id, rx, bytes, seq));
        }
    }
    for l in 0..s.pn.net.link_count() {
        for d in 0..2 {
            let st = s.pn.net.link_stats(LinkId(l), d);
            sig.push((l as u64, u64::from(d), st.tx_packets, st.dropped));
        }
    }
    sig
}
