//! Traffic engineering on the "fish" backbone (paper §5): CSPF places a
//! second trunk on the longer path that plain IGP routing would leave
//! idle, and the congestion disappears.
//!
//! ```sh
//! cargo run --release --example engineered_backbone
//! ```

use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{LinkId, Sink, SourceConfig, SEC};
use mplsvpn::te::{TeDomain, TrunkRequest};
use mplsvpn::vpn::BackboneBuilder;

fn fish() -> Topology {
    let mut t = Topology::new(5);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    t.add_link(0, 1, attrs); // short path
    t.add_link(1, 4, attrs);
    t.add_link(0, 2, attrs); // long path
    t.add_link(2, 3, attrs);
    t.add_link(3, 4, attrs);
    t
}

fn main() {
    let mut pn = BackboneBuilder::new(fish(), vec![0, 4]).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
    let b = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
    let sink = pn.attach_sink(b, "10.2.0.0/16".parse().unwrap());

    // Admission-control two 6.5 Mb/s trunks over the same 10 Mb/s fish.
    let mut te = TeDomain::new(pn.topo.clone());
    let (t1, _) = te.signal(TrunkRequest::new(0, 4, 6_500_000)).expect("trunk 1 fits");
    let (t2, _) = te.signal(TrunkRequest::new(0, 4, 6_500_000)).expect("trunk 2 diverted");
    println!("trunk 1 path: {:?}", te.path(t1).unwrap());
    println!("trunk 2 path: {:?}", te.path(t2).unwrap());

    // Pin trunk 2's share of the destination block onto an explicit LSP.
    let p2 = te.path(t2).unwrap().to_vec();
    let ftn = pn.install_explicit_lsp(&p2);
    pn.pin_prefix_to_tunnel(vpn, 0, "10.2.128.0/17".parse().unwrap(), ftn);

    // The pinned LSP and the trunk ledgers must both verify: the explicit
    // label path unwinds at PE4 and no fish link is over-reserved.
    let mut report = pn.verify();
    mplsvpn::verify::verify_te(&te, &mut report);
    report.assert_clean("engineered backbone");

    // Two 6.5 Mb/s flows, one per trunk.
    let interval = 1_000u64 * 8 * 1_000_000_000 / 6_500_000; // 1000 B wire
    let horizon = 5 * SEC;
    let d1 = "10.2.0.0/17".parse::<mplsvpn::net::Prefix>().unwrap().nth(5);
    let d2 = "10.2.128.0/17".parse::<mplsvpn::net::Prefix>().unwrap().nth(5);
    let c1 = SourceConfig::udp(1, pn.site_addr(a, 1), d1, 5000, 972);
    let c2 = SourceConfig::udp(2, pn.site_addr(a, 2), d2, 5000, 972);
    pn.attach_cbr_source(a, c1, interval, Some(horizon / interval));
    pn.attach_cbr_source(a, c2, interval, Some(horizon / interval));
    pn.run_for(horizon + SEC);

    let s = pn.net.node_ref::<Sink>(sink);
    for flow in [1u64, 2] {
        let f = s.flow(flow).expect("delivered");
        println!(
            "flow {flow}: {} packets delivered, loss {:.2}%, mean latency {:.2} ms",
            f.rx_packets,
            f.loss(horizon / interval) * 100.0,
            f.latency.mean() / 1e6
        );
    }
    println!(
        "short-path utilization {:.0}%, long-path utilization {:.0}%",
        pn.net.link_stats(LinkId(0), 0).utilization(horizon) * 100.0,
        pn.net.link_stats(LinkId(2), 0).utilization(horizon) * 100.0,
    );
    let total: u64 = [1u64, 2].iter().map(|&f| s.flow(f).unwrap().rx_packets).sum();
    assert_eq!(total, 2 * (horizon / interval), "TE removes all loss");
}
