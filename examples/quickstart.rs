//! Quickstart: bring up a two-site MPLS VPN over a three-node backbone and
//! push a flow across it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::vpn::BackboneBuilder;

fn main() {
    // 1. Describe the provider backbone: PE0 — P1 — PE2 at 100 Mb/s.
    let mut topo = Topology::new(3);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
    topo.add_link(0, 1, attrs);
    topo.add_link(1, 2, attrs);

    // 2. Build it: IGP converges, LDP distributes tunnel labels, routers
    //    materialize in the simulator.
    let mut pn = BackboneBuilder::new(topo, vec![0, 2]).build();
    println!("control plane: {:?}", pn.control_summary());

    // 3. Provision a VPN with one site on each PE. Adding a site touches
    //    exactly one PE — the BGP/MPLS fabric tells everyone else.
    let vpn = pn.new_vpn("acme");
    let seoul = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
    let busan = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);

    // 3b. Statically verify the provisioned control plane before pushing
    //     traffic: label integrity, VRF isolation, QoS sanity.
    pn.verify().assert_clean("quickstart backbone");

    // 4. Attach a measuring sink in Busan and a 1000-packet CBR source in
    //    Seoul.
    let sink = pn.attach_sink(busan, "10.2.0.0/16".parse().unwrap());
    let cfg = SourceConfig::udp(1, pn.site_addr(seoul, 10), pn.site_addr(busan, 20), 5000, 256);
    pn.attach_cbr_source(seoul, cfg, MSEC, Some(1000));

    // 5. Run and report.
    pn.run_for(3 * SEC);
    let stats = pn.net.node_ref::<Sink>(sink);
    let f = stats.flow(1).expect("flow delivered");
    println!(
        "delivered {}/1000 packets, mean one-way latency {:.2} ms, jitter {:.3} ms",
        f.rx_packets,
        f.latency.mean() / 1e6,
        f.jitter_ns / 1e6
    );
    assert_eq!(f.rx_packets, 1000);
}
