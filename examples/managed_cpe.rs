//! A managed CPE with hierarchical CBQ on its uplink — the device role the
//! paper assigns to the customer premises (§5: "the customer premises
//! device could use technologies such as CBQ to classify traffic").
//!
//! The site's 10 Mb/s uplink is divided: voice is guaranteed 2 Mb/s inside
//! a 6 Mb/s "office" share, bulk backup is bounded to 4 Mb/s, and idle
//! office capacity is lent to office data but never to backup.
//!
//! ```sh
//! cargo run --release --example managed_cpe
//! ```

use mplsvpn::net::{Dscp, Packet};
use mplsvpn::qos::{CbqNodeConfig, ClassOf, HierCbq};
use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{LinkId, Sink, SourceConfig, SEC};
use mplsvpn::vpn::BackboneBuilder;

fn main() {
    let mut topo = Topology::new(3);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
    topo.add_link(0, 1, attrs);
    topo.add_link(1, 2, attrs);
    let mut pn = BackboneBuilder::new(topo, vec![0, 2])
        .access(10_000_000, 100_000) // the contended 10 Mb/s access link
        .build();
    let vpn = pn.new_vpn("acme");
    let hq = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
    let branch = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
    let sink = pn.attach_sink(branch, "10.2.0.0/16".parse().unwrap());

    // CPE link-sharing tree on the uplink:
    //   link(10M, bounded) ─ office(6M, bounded) ─ { voice(2M), data(4M) }
    //                      └ backup(4M, bounded)
    let m = 1_000_000;
    let classify: ClassOf = Box::new(|p: &Packet| match p.dscp() {
        Some(Dscp::EF) => 0,   // voice leaf
        Some(Dscp::AF21) => 1, // office data leaf
        _ => 2,                // backup leaf
    });
    let tree = HierCbq::new(
        vec![
            CbqNodeConfig { parent: None, rate_bps: 10 * m, bounded: true, cap_bytes: 0 },
            CbqNodeConfig { parent: Some(0), rate_bps: 6 * m, bounded: true, cap_bytes: 0 },
            CbqNodeConfig { parent: Some(1), rate_bps: 2 * m, bounded: false, cap_bytes: 1 << 20 },
            CbqNodeConfig { parent: Some(1), rate_bps: 4 * m, bounded: false, cap_bytes: 1 << 20 },
            CbqNodeConfig { parent: Some(0), rate_bps: 4 * m, bounded: true, cap_bytes: 1 << 20 },
        ],
        classify,
    );
    // Lint the link-sharing tree (no class set over-subscribes its
    // parent) and the provisioned network before offering load.
    let mut report = pn.verify();
    mplsvpn::verify::lint_cbq_tree(&tree.configs(), "hq uplink CBQ", &mut report);
    report.assert_clean("managed CPE");

    let uplink = pn.sites[hq.0].access_link;
    pn.net.set_qdisc(uplink, 0, Box::new(tree));

    // Offer far more than each class's share.
    let horizon = 5 * SEC;
    let hq_block = pn.sites[hq.0].prefix;
    let branch_block = pn.sites[branch.0].prefix;
    let mk = move |flow: u64, dscp, payload| {
        SourceConfig::udp(
            flow,
            hq_block.nth(flow as u32),
            branch_block.nth(flow as u32),
            5000,
            payload,
        )
        .with_dscp(dscp)
    };
    pn.attach_cbr_source(hq, mk(1, Dscp::EF, 972), 500_000, Some(horizon / 500_000)); // 16 Mb/s offered voice
    pn.attach_cbr_source(hq, mk(2, Dscp::AF21, 972), 500_000, Some(horizon / 500_000)); // 16 Mb/s office data
    pn.attach_cbr_source(hq, mk(3, Dscp::BE, 972), 500_000, Some(horizon / 500_000)); // 16 Mb/s backup

    pn.run_for(horizon + SEC);
    let s = pn.net.node_ref::<Sink>(sink);
    println!("{:<8} {:>14} {:>12}", "class", "goodput Mb/s", "share");
    let mut rates = Vec::new();
    for (name, flow) in [("voice", 1u64), ("data", 2), ("backup", 3)] {
        // Rate over the flow's own arrival window (the run includes a
        // drain second beyond the offered horizon).
        let bps = s.flow(flow).map_or(0.0, mplsvpn::sim::FlowStats::throughput_bps);
        println!("{name:<8} {:>14.2} {:>11.0}%", bps / 1e6, bps / 10e6 * 100.0);
        rates.push(bps);
    }
    // The uplink stayed saturated for the whole run (offered 48 Mb/s
    // against a 10 Mb/s contract; measured over run time incl. drain).
    let _ = LinkId(0);
    println!(
        "uplink utilization: {:.0}%",
        pn.net.link_stats(uplink, 0).utilization(horizon + SEC) * 100.0
    );
    // Office classes together get ~6 Mb/s; backup is pinned at ~4 Mb/s.
    assert!((rates[0] + rates[1]) > 5.2e6 && (rates[0] + rates[1]) < 7.2e6);
    assert!(rates[2] > 3.2e6 && rates[2] < 5.0e6);
}
