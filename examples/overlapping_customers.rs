//! Two customers with byte-identical address plans share one backbone —
//! the membership/isolation story of the paper's §4.
//!
//! Both "acme" and "globex" number their sites out of 10.0.0.0/8. Route
//! distinguishers keep their routes distinct, route targets control who
//! imports what, and the data plane keeps every packet inside its own VPN.
//! A third acme site joins at runtime — one PE touch — and immediately
//! reaches the others.
//!
//! ```sh
//! cargo run --example overlapping_customers
//! ```

use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::vpn::BackboneBuilder;

fn main() {
    // Four PEs around a square of P routers.
    let mut topo = Topology::new(4);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 622_000_000 };
    for i in 0..4 {
        topo.add_link(i, (i + 1) % 4, attrs);
    }
    let pe0 = topo.add_node();
    let pe1 = topo.add_node();
    let pe2 = topo.add_node();
    topo.add_link(pe0, 0, attrs);
    topo.add_link(pe1, 1, attrs);
    topo.add_link(pe2, 2, attrs);

    let mut pn = BackboneBuilder::new(topo, vec![pe0, pe1, pe2]).build();

    let acme = pn.new_vpn("acme");
    let globex = pn.new_vpn("globex");

    // Identical address plans on purpose.
    let acme_a = pn.add_site(acme, 0, "10.1.0.0/16".parse().unwrap(), None);
    let acme_b = pn.add_site(acme, 1, "10.2.0.0/16".parse().unwrap(), None);
    let globex_a = pn.add_site(globex, 0, "10.1.0.0/16".parse().unwrap(), None);
    let globex_b = pn.add_site(globex, 1, "10.2.0.0/16".parse().unwrap(), None);

    // Static proof of isolation before the dynamic one below: the
    // route-target graph must show zero acme↔globex coupling.
    pn.verify().assert_clean("overlapping customers");

    let sink_acme = pn.attach_sink(acme_b, "10.2.0.0/16".parse().unwrap());
    let sink_globex = pn.attach_sink(globex_b, "10.2.0.0/16".parse().unwrap());

    // Same destination address, different VPNs.
    let cfg_a = SourceConfig::udp(1, pn.site_addr(acme_a, 7), pn.site_addr(acme_b, 9), 80, 400);
    let cfg_g = SourceConfig::udp(2, pn.site_addr(globex_a, 7), pn.site_addr(globex_b, 9), 80, 400);
    pn.attach_cbr_source(acme_a, cfg_a, MSEC, Some(200));
    pn.attach_cbr_source(globex_a, cfg_g, MSEC, Some(200));
    pn.run_for(SEC);

    let sa = pn.net.node_ref::<Sink>(sink_acme);
    let sg = pn.net.node_ref::<Sink>(sink_globex);
    println!(
        "acme   site B: {} packets (flow 1), foreign flows: {}",
        sa.flow(1).map_or(0, |f| f.rx_packets),
        sa.flows().count() - 1
    );
    println!(
        "globex site B: {} packets (flow 2), foreign flows: {}",
        sg.flow(2).map_or(0, |f| f.rx_packets),
        sg.flows().count() - 1
    );
    assert!(sa.flow(2).is_none() && sg.flow(1).is_none(), "cross-VPN leak!");

    // A third acme site joins at runtime: one call, one PE touched.
    let before = pn.control_summary().bgp_messages;
    let acme_c = pn.add_site(acme, 2, "10.3.0.0/16".parse().unwrap(), None);
    let joined_cost = pn.control_summary().bgp_messages - before;
    let sink_c = pn.attach_sink(acme_c, "10.3.0.0/16".parse().unwrap());
    let cfg_c = SourceConfig::udp(3, pn.site_addr(acme_a, 8), pn.site_addr(acme_c, 1), 80, 400);
    pn.attach_cbr_source(acme_a, cfg_c, MSEC, Some(100));
    pn.run_for(SEC);
    let sc = pn.net.node_ref::<Sink>(sink_c);
    println!(
        "acme site C joined at a cost of {joined_cost} BGP updates; received {} packets from site A",
        sc.flow(3).map_or(0, |f| f.rx_packets)
    );
    assert_eq!(sc.flow(3).map(|f| f.rx_packets), Some(100));
}
