//! Enterprise voice over a congested backbone — the paper's headline
//! scenario (§5).
//!
//! A company runs voice, video, transactional data and bulk transfers
//! between two sites. The CPE classifies and marks with DSCP; the ingress
//! PE maps DSCP into the MPLS EXP bits; the core schedules on EXP with
//! strict priority + RED. Despite a bulk overload of the 10 Mb/s backbone
//! bottleneck, voice keeps its SLA.
//!
//! ```sh
//! cargo run --release --example enterprise_voice
//! ```

use mplsvpn::net::Dscp;
use mplsvpn::qos::{MarkingPolicy, MatchRule};
use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
use mplsvpn::vpn::network::DsSched;
use mplsvpn::vpn::{BackboneBuilder, CoreQos, Sla};

fn main() {
    // Dumbbell: PE0 — P1 ══ P2 — PE3 with a 10 Mb/s bottleneck.
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, LinkAttrs { cost: 1, capacity_bps: 100_000_000 });
    topo.add_link(1, 2, LinkAttrs { cost: 1, capacity_bps: 10_000_000 });
    topo.add_link(2, 3, LinkAttrs { cost: 1, capacity_bps: 100_000_000 });

    let mut pn = BackboneBuilder::new(topo, vec![0, 3])
        .core_qos(CoreQos::DiffServ { cap_bytes: 128 * 1024, sched: DsSched::Priority })
        .build();

    // The CPE marking policy: voice → EF, video → AF41, web → AF21.
    let mut policy = MarkingPolicy::new(Dscp::BE);
    policy.push(MatchRule::any().protocol(17).dst_port_range(16384, 16484), Dscp::EF);
    policy.push(MatchRule::any().protocol(17).dst_port(5004), Dscp::AF41);
    policy.push(MatchRule::any().protocol(17).dst_port(443), Dscp::AF21);

    let vpn = pn.new_vpn("enterprise");
    let hq = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), Some(policy));
    let branch = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);

    // Commit the voice contract (4 calls ≈ 100 kb/s each) and statically
    // verify the whole configuration: DSCP↔EXP map, RED profile, EF
    // admission against the 10 Mb/s bottleneck, labels, VRFs.
    pn.commit_ef_contract("enterprise voice", 4 * 100_000);
    pn.verify().assert_clean("enterprise voice backbone");
    let sink = pn.attach_sink(branch, "10.2.0.0/16".parse().unwrap());

    // SLA probes: one synthetic low-rate flow per sold class. Probes keep
    // their own marking through the CPE, so each one measures exactly the
    // service tier it is stamped with.
    for dscp in [Dscp::EF, Dscp::AF41, Dscp::AF21, Dscp::BE] {
        pn.attach_sla_probe(hq, branch, dscp, 25 * MSEC, Some(5 * SEC / (25 * MSEC)));
    }

    // The application mix, all sent unmarked — the CPE does the marking.
    let hq_block = pn.sites[hq.0].prefix;
    let branch_block = pn.sites[branch.0].prefix;
    let mk = move |flow: u64, dst_port, payload| {
        SourceConfig::udp(
            flow,
            hq_block.nth(flow as u32),
            branch_block.nth(flow as u32),
            dst_port,
            payload,
        )
    };
    let horizon = 5 * SEC;
    // 4 voice calls, 50 pps each.
    for f in 0..4u64 {
        pn.attach_cbr_source(hq, mk(10 + f, 16400, 160), 20 * MSEC, Some(horizon / (20 * MSEC)));
    }
    // A video stream ~1.2 Mb/s.
    pn.attach_cbr_source(hq, mk(20, 5004, 1200), 8 * MSEC, Some(horizon / (8 * MSEC)));
    // Transactional data, bursty.
    pn.attach_onoff_source(hq, mk(30, 443, 600), 2 * MSEC, 50 * MSEC, 50 * MSEC, 1, Some(horizon));
    // Bulk backup flood ~9 Mb/s: the congestion driver.
    pn.attach_poisson_source(hq, mk(40, 20, 1100), 940_000, 2, Some(horizon));

    pn.run_for(horizon + SEC);

    let stats = pn.net.node_ref::<Sink>(sink);
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10}",
        "flow", "rx pkts", "mean ms", "p99 ms", "jitter ms"
    );
    for (name, flow) in [
        ("voice0", 10u64),
        ("voice1", 11),
        ("voice2", 12),
        ("voice3", 13),
        ("video", 20),
        ("data", 30),
        ("bulk", 40),
    ] {
        if let Some(f) = stats.flow(flow) {
            println!(
                "{name:<12} {:>9} {:>10.2} {:>10.2} {:>10.3}",
                f.rx_packets,
                f.latency.mean() / 1e6,
                f.latency.quantile(0.99) as f64 / 1e6,
                f.jitter_ns / 1e6
            );
        }
    }

    // Grade the first voice call against the voice SLA.
    let voice = stats.flow(10).expect("voice delivered");
    let report = Sla::voice().evaluate(voice, horizon / (20 * MSEC));
    println!("\nvoice SLA: {report}");
    assert!(report.met, "voice must survive the bulk overload");

    // The provider-side view: the per-⟨VPN, class⟩ SLA probe table from
    // the metrics snapshot, then where every lost packet went.
    let snap = pn.metrics_snapshot();
    println!(
        "\n{:<12} {:<6} {:>6} {:>6} {:>9} {:>9} {:>10} {:>8}",
        "vpn", "class", "tx", "rx", "mean ms", "p99 ms", "jitter ms", "loss %"
    );
    for p in &snap.probes {
        println!(
            "{:<12} {:<6} {:>6} {:>6} {:>9.2} {:>9.2} {:>10.3} {:>8.2}",
            p.vpn,
            p.class,
            p.tx,
            p.rx,
            p.mean_delay_ns / 1e6,
            p.p99_delay_ns as f64 / 1e6,
            p.jitter_ns / 1e6,
            p.loss_pct
        );
    }
    println!("\ndrop causes:");
    for (cause, n) in &snap.drop_causes {
        println!("  {cause:<16} {n}");
    }
    let ef = snap.probes.iter().find(|p| p.class == "EF").expect("EF probe row");
    assert!(ef.rx > 0 && ef.loss_pct < 1.0, "the EF probe must ride out the overload");
}
