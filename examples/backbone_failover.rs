//! Backbone failover: a fiber cut, detection, reconvergence, and repair —
//! watched through a live voice flow. Act 2 replays the same cut with
//! fast-reroute link protection installed and almost nothing is lost.
//!
//! ```sh
//! cargo run --release --example backbone_failover
//! ```

use mplsvpn::routing::{LinkAttrs, Topology};
use mplsvpn::sim::{LinkId, Sink, SourceConfig, MSEC, SEC};
use mplsvpn::te::SrlgMap;
use mplsvpn::vpn::BackboneBuilder;

/// Fish: short path PE0-P1-PE4, long path PE0-P2-P3-PE4.
fn fish() -> Topology {
    let mut topo = Topology::new(5);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
    topo.add_link(0, 1, attrs); // 0 short
    topo.add_link(1, 4, attrs); // 1 short
    topo.add_link(0, 2, attrs); // 2 long
    topo.add_link(2, 3, attrs); // 3 long
    topo.add_link(3, 4, attrs); // 4 long
    topo
}

fn main() {
    let mut pn = BackboneBuilder::new(fish(), vec![0, 4]).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
    let b = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
    pn.verify().assert_clean("failover backbone, pre-cut");
    let sink = pn.attach_sink(b, "10.2.0.0/16".parse().unwrap());

    // 200 pps voice-like flow for the whole 8-second story.
    let interval = 5 * MSEC;
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 16400, 160);
    pn.attach_cbr_source(a, cfg, interval, Some(8 * SEC / interval));

    let delivered =
        |pn: &mplsvpn::vpn::ProviderNetwork| pn.net.node_ref::<Sink>(sink).total_packets;

    pn.run_for(2 * SEC);
    println!("t=2s   healthy: {} packets delivered, short path in use", delivered(&pn));

    println!("t=2s   ✂ cutting link P1—PE4");
    pn.fail_link(1);
    pn.run_for(150 * MSEC); // failure-detection window
    let before = delivered(&pn);
    let summary = pn.reconverge();
    println!(
        "t=2.15s reconverged ({} LSAs + {} LDP messages); {} packets were lost in the blind window",
        summary.igp_lsa_messages,
        summary.ldp_messages,
        2 * SEC / interval + 30 - before
    );

    pn.run_for(2 * SEC);
    println!(
        "t=4.15s rerouted over P2—P3: {} delivered, long-path link carrying {} packets",
        delivered(&pn),
        pn.net.link_stats(LinkId(2), 0).tx_packets
    );

    println!("t=4.15s 🔧 repairing the link");
    pn.repair_link(1);
    pn.reconverge();
    pn.verify().assert_clean("failover backbone, post-repair");
    pn.run_for(4 * SEC);
    let f = pn.net.node_ref::<Sink>(sink).flow(1).unwrap();
    let total = 8 * SEC / interval;
    println!(
        "t=8s    done: {}/{} delivered ({:.2}% lost, all during the 150 ms blind window)",
        f.rx_packets,
        total,
        (total - f.rx_packets) as f64 * 100.0 / total as f64
    );
    assert!(total - f.rx_packets < 50, "loss confined to the detection window");

    // --- Act 2: the same cut, with fast-reroute link protection. ---
    println!("\n— act 2: same story with fast reroute —");
    let mut pn = BackboneBuilder::new(fish(), vec![0, 4])
        .detection(20 * MSEC) // BFD-style detection, not IGP hold timers
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
    let b = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
    let srlg = SrlgMap::new(pn.topo.link_count());
    let bypasses = pn.protect_all_links(&srlg);
    println!("t=0s    {bypasses} bypass LSPs installed (every link, both directions)");
    let sink = pn.attach_sink(b, "10.2.0.0/16".parse().unwrap());
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 16400, 160);
    pn.attach_cbr_source(a, cfg, interval, Some(total));

    pn.run_for(2 * SEC);
    println!("t=2s    ✂ cutting link P1—PE4 again — no reconvergence will run");
    pn.fail_link(1);
    pn.run_for(6 * SEC);
    let switchovers = pn.active_switchovers();
    let f = pn.net.node_ref::<Sink>(sink).flow(1).unwrap();
    println!(
        "t=8s    done: {}/{} delivered — {} lost in the 20 ms detection gap, \
         {} switchover(s) carried the rest over the bypass",
        f.rx_packets,
        total,
        total - f.rx_packets,
        switchovers
    );
    assert!(total - f.rx_packets <= 8, "FRR confines loss to the detection gap");
}
