//! The log₂-bucketed histogram.

/// A log₂-bucketed histogram of nanosecond durations.
///
/// Bucket 0 holds exactly the value 0; bucket `b ≥ 1` holds the values in
/// `[2^(b-1), 2^b − 1]`. With 65 buckets every `u64` has an exact home —
/// including the powers of two at the top of the range, which the previous
/// 64-bucket layout clamped together. Quantiles are therefore accurate to
/// within a factor of two everywhere, and exact `min`/`max`/`mean` are
/// tracked on the side.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else `64 − leading_zeros`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q ∈ [0,1]`: upper bound of the bucket holding
    /// the q-th sample, clamped into the observed `[min, max]` range (so
    /// the bound never exceeds a value that was actually recorded). Exact
    /// at the recorded max for `q = 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > target {
                // Upper edge of bucket i.
                let hi = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the bucket boundaries: each power of two opens a new bucket,
    /// and `2^k − 1` stays in the previous one.
    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for k in 1..64 {
            let p = 1u64 << k;
            assert_eq!(bucket_of(p), k + 1, "2^{k} opens bucket {}", k + 1);
            assert_eq!(bucket_of(p - 1), k, "2^{k}-1 closes bucket {k}");
        }
        assert_eq!(bucket_of(u64::MAX), 64, "top bucket holds the largest values");
    }

    /// The old 64-bucket layout merged everything ≥ 2^62 into one bucket;
    /// the 65-bucket layout keeps 2^62 and 2^63 distinguishable.
    #[test]
    fn top_of_range_values_stay_distinguishable() {
        let mut h = Histogram::new();
        h.record(1u64 << 62);
        h.record(1u64 << 63);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        // One third of the mass is below 2^63: p0 must bound it by the
        // 2^63−1 bucket edge, not collapse to the max.
        assert_eq!(h.quantile(0.0), (1u64 << 63) - 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    /// The quantile estimate is a true upper bound within a factor of two:
    /// for any recorded distribution, `value ≤ quantile(q) < 2 × value`
    /// where `value` is the exact q-th sample.
    #[test]
    fn quantile_error_is_bounded_by_a_factor_of_two() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=1000u64).collect();
        for &v in &samples {
            h.record(v);
        }
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let exact = samples[((q * samples.len() as f64) as usize).min(samples.len() - 1)];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            assert!(est < exact * 2, "q={q}: estimate {est} ≥ 2×exact {exact}");
        }
    }

    #[test]
    fn quantile_of_single_value_is_that_value() {
        let mut h = Histogram::new();
        h.record(5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 5);
        }
    }

    #[test]
    fn merge_combines_buckets_exactly() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.quantile(1.0), 1000);
    }
}
