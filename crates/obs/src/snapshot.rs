//! Point-in-time metric exports.

use crate::flight::FlightRecorder;
use crate::hist::Histogram;
use crate::registry::MetricsRegistry;

/// Summary of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample, ns.
    pub mean_ns: f64,
    /// Median (log₂-bucket upper bound), ns.
    pub p50_ns: u64,
    /// 99th percentile (log₂-bucket upper bound), ns.
    pub p99_ns: u64,
    /// Largest sample, ns.
    pub max_ns: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.5),
            p99_ns: h.quantile(0.99),
            max_ns: h.max(),
        }
    }
}

/// One SLA probe series: measured one-way service of a ⟨VPN, class⟩ pair.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeRow {
    /// VPN the probe runs inside.
    pub vpn: String,
    /// Traffic class the probe is marked with (e.g. `EF`, `AF1`, `BE`).
    pub class: String,
    /// Probe packets transmitted.
    pub tx: u64,
    /// Probe packets delivered.
    pub rx: u64,
    /// Mean one-way delay, ns.
    pub mean_delay_ns: f64,
    /// 99th-percentile one-way delay, ns.
    pub p99_delay_ns: u64,
    /// RFC 3550 interarrival jitter, ns.
    pub jitter_ns: f64,
    /// Loss fraction in percent, `100 × (tx − rx) / tx`.
    pub loss_pct: f64,
}

/// A point-in-time export of every metric the emulator tracks: registry
/// counters/gauges/histograms, drop-cause totals, and SLA probe rows.
///
/// Serializes to JSON ([`MetricsSnapshot::to_json`]) and CSV
/// ([`MetricsSnapshot::to_csv`], [`MetricsSnapshot::probes_to_csv`])
/// without any external dependency, so any example or experiment can dump
/// its numbers for offline analysis (the R-table workflow in
/// EXPERIMENTS.md).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Simulation time the snapshot was taken, ns.
    pub captured_ns: u64,
    /// `(name, value)` counter rows.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge rows.
    pub gauges: Vec<(String, i64)>,
    /// `(cause name, total)` drop rows (nonzero causes only).
    pub drop_causes: Vec<(String, u64)>,
    /// `(name, summary)` histogram rows.
    pub histograms: Vec<(String, HistSummary)>,
    /// SLA probe measurements.
    pub probes: Vec<ProbeRow>,
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-safe number literal.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_owned()
    }
}

impl MetricsSnapshot {
    /// Creates an empty snapshot stamped at `captured_ns`.
    pub fn new(captured_ns: u64) -> Self {
        MetricsSnapshot { captured_ns, ..MetricsSnapshot::default() }
    }

    /// Adds one counter row.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Copies every metric out of a registry.
    pub fn merge_registry(&mut self, reg: &MetricsRegistry) {
        self.counters.extend(reg.counter_values());
        self.gauges.extend(reg.gauge_values());
        reg.for_each_histogram(|name, h| {
            self.histograms.push((name.to_owned(), HistSummary::of(h)));
        });
    }

    /// Copies the per-cause drop totals out of a flight recorder.
    pub fn merge_causes(&mut self, rec: &FlightRecorder) {
        for (name, total) in rec.cause_rows() {
            self.drop_causes.push((name.to_owned(), total));
        }
    }

    /// Serializes the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\n  \"captured_ns\": {},\n", self.captured_ns));
        out.push_str("  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", json_escape(n)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", json_escape(n)));
        }
        out.push_str("\n  },\n  \"drop_causes\": {");
        for (i, (n, v)) in self.drop_causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", json_escape(n)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"max_ns\": {}}}",
                json_escape(n),
                h.count,
                json_f64(h.mean_ns),
                h.p50_ns,
                h.p99_ns,
                h.max_ns
            ));
        }
        out.push_str("\n  },\n  \"probes\": [");
        for (i, p) in self.probes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"vpn\": \"{}\", \"class\": \"{}\", \"tx\": {}, \"rx\": {}, \
                 \"mean_delay_ns\": {}, \"p99_delay_ns\": {}, \"jitter_ns\": {}, \
                 \"loss_pct\": {}}}",
                json_escape(&p.vpn),
                json_escape(&p.class),
                p.tx,
                p.rx,
                json_f64(p.mean_delay_ns),
                p.p99_delay_ns,
                json_f64(p.jitter_ns),
                json_f64(p.loss_pct)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serializes the scalar metrics (counters, gauges, drop causes) as
    /// `metric,value` CSV rows. Cause rows are prefixed `drop_cause.`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        out.push_str(&format!("captured_ns,{}\n", self.captured_ns));
        for (n, v) in &self.counters {
            out.push_str(&format!("{n},{v}\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!("{n},{v}\n"));
        }
        for (n, v) in &self.drop_causes {
            out.push_str(&format!("drop_cause.{n},{v}\n"));
        }
        out
    }

    /// Serializes the probe rows as a CSV table.
    pub fn probes_to_csv(&self) -> String {
        let mut out =
            String::from("vpn,class,tx,rx,mean_delay_ns,p99_delay_ns,jitter_ns,loss_pct\n");
        for p in &self.probes {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                p.vpn,
                p.class,
                p.tx,
                p.rx,
                json_f64(p.mean_delay_ns),
                p.p99_delay_ns,
                json_f64(p.jitter_ns),
                json_f64(p.loss_pct)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DropCause;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new(42);
        s.push_counter("link0.tx", 10);
        s.gauges.push(("queue.depth".to_owned(), -1));
        let rec = FlightRecorder::new(4);
        rec.record(1, 7, 0, DropCause::RedEarly);
        s.merge_causes(&rec);
        s.probes.push(ProbeRow {
            vpn: "red".to_owned(),
            class: "EF".to_owned(),
            tx: 100,
            rx: 99,
            mean_delay_ns: 1500.5,
            p99_delay_ns: 2047,
            jitter_ns: 12.25,
            loss_pct: 1.0,
        });
        s
    }

    #[test]
    fn json_contains_every_section() {
        let j = sample().to_json();
        assert!(j.contains("\"captured_ns\": 42"));
        assert!(j.contains("\"link0.tx\": 10"));
        assert!(j.contains("\"queue.depth\": -1"));
        assert!(j.contains("\"red_early\": 1"));
        assert!(j.contains("\"vpn\": \"red\""));
        assert!(j.contains("\"loss_pct\": 1.000"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn csv_rows_are_flat() {
        let c = sample().to_csv();
        assert!(c.starts_with("metric,value\n"));
        assert!(c.contains("link0.tx,10\n"));
        assert!(c.contains("drop_cause.red_early,1\n"));
        let p = sample().probes_to_csv();
        assert!(p.contains("red,EF,100,99,"));
    }

    #[test]
    fn registry_merge_copies_all_metric_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        reg.gauge("g").set(3);
        reg.histogram("h").record(8);
        let mut s = MetricsSnapshot::new(0);
        s.merge_registry(&reg);
        assert_eq!(s.counters, vec![("c".to_owned(), 5)]);
        assert_eq!(s.gauges, vec![("g".to_owned(), 3)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.count, 1);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut s = MetricsSnapshot::new(0);
        s.push_counter("a\"b\\c", 1);
        let j = s.to_json();
        assert!(j.contains("a\\\"b\\\\c"));
    }
}
