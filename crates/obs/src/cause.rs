//! The taxonomy of packet-drop causes.

/// Why a packet was dropped, as recorded by the [`crate::FlightRecorder`].
///
/// Every place in the emulator that terminates a packet without delivering
/// it maps onto exactly one of these causes, so the sum over causes equals
/// the total loss — a conservation property the chaos suite checks per VPN.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum DropCause {
    /// Tail drop: a queue (or scheduler band/class buffer) was full.
    QueueOverflow,
    /// RED/WRED probabilistic early drop (average below the max threshold).
    RedEarly,
    /// RED/WRED forced drop (average at or above the max threshold).
    RedForced,
    /// The packet was purged from (or refused by) a disabled link
    /// direction: cut-link flush, down-interface refusal, or a queue
    /// discipline swap stranding its backlog.
    LinkDownPurge,
    /// IP or MPLS TTL expired at a router.
    Ttl,
    /// A router had no route (FIB/LFIB/local-table miss) for the packet.
    NoRoute,
    /// A VPN label resolved to no VRF route at the egress PE — the
    /// misdelivery guard of the paper's isolation property.
    VrfMiss,
    /// An edge policer (srTCM red action) discarded the packet.
    Policer,
}

impl DropCause {
    /// Number of distinct causes (array dimension for per-cause tallies).
    pub const COUNT: usize = 8;

    /// All causes, in declaration (index) order.
    pub const ALL: [DropCause; DropCause::COUNT] = [
        DropCause::QueueOverflow,
        DropCause::RedEarly,
        DropCause::RedForced,
        DropCause::LinkDownPurge,
        DropCause::Ttl,
        DropCause::NoRoute,
        DropCause::VrfMiss,
        DropCause::Policer,
    ];

    /// Dense index of this cause, `0..COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in snapshots and exports.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::QueueOverflow => "queue_overflow",
            DropCause::RedEarly => "red_early",
            DropCause::RedForced => "red_forced",
            DropCause::LinkDownPurge => "link_down_purge",
            DropCause::Ttl => "ttl",
            DropCause::NoRoute => "no_route",
            DropCause::VrfMiss => "vrf_miss",
            DropCause::Policer => "policer",
        }
    }
}

impl std::fmt::Display for DropCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in DropCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = DropCause::ALL.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DropCause::COUNT);
    }
}
