//! The drop-cause flight recorder.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::cause::DropCause;

/// One recorded drop: when, which flow, which sequence number, and why.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DropRecord {
    /// Simulation time of the drop, ns.
    pub at: u64,
    /// Flow id of the dropped packet (0 for unattributed packets).
    pub flow: u64,
    /// Per-flow sequence number of the dropped packet.
    pub seq: u64,
    /// Why the packet was dropped.
    pub cause: DropCause,
}

struct Inner {
    cap: usize,
    ring: VecDeque<DropRecord>,
    totals: [u64; DropCause::COUNT],
    /// Per-flow per-cause tallies. A `BTreeMap` keeps snapshot iteration
    /// deterministic across runs.
    by_flow: BTreeMap<u64, [u64; DropCause::COUNT]>,
    /// Packets terminated *successfully* at a router's local plane
    /// (control traffic, PHP egress absorption) — not drops, but tracked
    /// per flow so conservation closes: sent = delivered + drops + absorbed.
    absorbed: BTreeMap<u64, u64>,
}

/// A cloneable, shareable drop recorder.
///
/// Cloning shares the underlying state (the [`crate::Counter`] idiom):
/// the simulation engine and every router hold handles to the same
/// recorder, and any of them — or the test harness — can read the tallies.
/// The ring keeps only the most recent `cap` records; the per-cause and
/// per-flow totals are exact forever.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FlightRecorder")
            .field("cap", &inner.cap)
            .field("recent", &inner.ring.len())
            .field("totals", &inner.totals)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(256)
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `cap` drop records.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            inner: Rc::new(RefCell::new(Inner {
                cap: cap.max(1),
                ring: VecDeque::with_capacity(cap.max(1)),
                totals: [0; DropCause::COUNT],
                by_flow: BTreeMap::new(),
                absorbed: BTreeMap::new(),
            })),
        }
    }

    /// Records one drop.
    pub fn record(&self, at: u64, flow: u64, seq: u64, cause: DropCause) {
        let mut inner = self.inner.borrow_mut();
        if inner.ring.len() == inner.cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(DropRecord { at, flow, seq, cause });
        inner.totals[cause.index()] += 1;
        inner.by_flow.entry(flow).or_insert([0; DropCause::COUNT])[cause.index()] += 1;
    }

    /// Records a packet absorbed (delivered locally) at a router — a
    /// legitimate termination, tallied separately from drops.
    pub fn record_absorbed(&self, flow: u64) {
        *self.inner.borrow_mut().absorbed.entry(flow).or_insert(0) += 1;
    }

    /// Total drops recorded for `cause`.
    pub fn total(&self, cause: DropCause) -> u64 {
        self.inner.borrow().totals[cause.index()]
    }

    /// Per-cause totals, indexed by [`DropCause::index`].
    pub fn totals(&self) -> [u64; DropCause::COUNT] {
        self.inner.borrow().totals
    }

    /// Sum of drops over every cause.
    pub fn total_drops(&self) -> u64 {
        self.inner.borrow().totals.iter().sum()
    }

    /// Per-cause drop counts for one flow.
    pub fn flow_causes(&self, flow: u64) -> [u64; DropCause::COUNT] {
        self.inner.borrow().by_flow.get(&flow).copied().unwrap_or([0; DropCause::COUNT])
    }

    /// Total drops for one flow.
    pub fn flow_drops(&self, flow: u64) -> u64 {
        self.flow_causes(flow).iter().sum()
    }

    /// Packets of `flow` absorbed at a local plane.
    pub fn absorbed_of(&self, flow: u64) -> u64 {
        self.inner.borrow().absorbed.get(&flow).copied().unwrap_or(0)
    }

    /// Total absorbed packets over all flows.
    pub fn absorbed_total(&self) -> u64 {
        self.inner.borrow().absorbed.values().sum()
    }

    /// The most recent drop records, oldest first (bounded by the ring
    /// capacity).
    pub fn recent(&self) -> Vec<DropRecord> {
        self.inner.borrow().ring.iter().copied().collect()
    }

    /// Number of records currently held in the ring.
    pub fn len(&self) -> usize {
        self.inner.borrow().ring.len()
    }

    /// Whether nothing has been recorded (ring empty *and* totals zero).
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.borrow();
        inner.ring.is_empty() && inner.totals.iter().all(|&t| t == 0)
    }

    /// `(cause name, total)` rows for every cause with a nonzero total.
    pub fn cause_rows(&self) -> Vec<(&'static str, u64)> {
        let totals = self.totals();
        DropCause::ALL
            .iter()
            .filter_map(|c| {
                let t = totals[c.index()];
                (t > 0).then_some((c.as_str(), t))
            })
            .collect()
    }

    /// Resets the ring and every tally.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.ring.clear();
        inner.totals = [0; DropCause::COUNT];
        inner.by_flow.clear();
        inner.absorbed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = FlightRecorder::new(8);
        let b = a.clone();
        a.record(1, 42, 0, DropCause::Ttl);
        b.record(2, 42, 1, DropCause::NoRoute);
        assert_eq!(a.total_drops(), 2);
        assert_eq!(b.flow_drops(42), 2);
        assert_eq!(a.flow_causes(42)[DropCause::Ttl.index()], 1);
    }

    #[test]
    fn ring_is_bounded_but_totals_are_exact() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(i, 7, i, DropCause::QueueOverflow);
        }
        assert_eq!(r.len(), 4, "ring keeps only the most recent");
        assert_eq!(r.recent()[0].at, 6, "oldest surviving record");
        assert_eq!(r.total(DropCause::QueueOverflow), 10, "totals are exact");
        assert_eq!(r.flow_drops(7), 10);
    }

    #[test]
    fn absorbed_is_not_a_drop() {
        let r = FlightRecorder::new(4);
        r.record_absorbed(5);
        r.record_absorbed(5);
        assert_eq!(r.absorbed_of(5), 2);
        assert_eq!(r.absorbed_total(), 2);
        assert_eq!(r.total_drops(), 0);
    }

    #[test]
    fn cause_rows_skip_zeroes() {
        let r = FlightRecorder::new(4);
        r.record(0, 1, 0, DropCause::RedForced);
        assert_eq!(r.cause_rows(), vec![("red_forced", 1)]);
    }

    #[test]
    fn clear_resets_everything() {
        let r = FlightRecorder::new(4);
        r.record(0, 1, 0, DropCause::Policer);
        r.record_absorbed(1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.absorbed_total(), 0);
    }
}
