//! `netsim-obs`: the always-on observability layer.
//!
//! The paper's argument (§5) is that an operator must be able to *see*
//! per-VPN, per-class service levels end to end. This crate is the
//! machinery that makes seeing cheap enough to leave on:
//!
//! * [`MetricsRegistry`] — named counters/gauges/histograms handed out as
//!   typed handles ([`Counter`], [`Gauge`], [`HistogramHandle`]). Handles
//!   are pre-resolved shared cells, so the hot path pays one reference-
//!   counted pointer dereference and an add — never a string lookup, never
//!   an allocation.
//! * [`FlightRecorder`] — a fixed-size ring of the most recent drops plus
//!   exact per-cause and per-flow totals, replacing bare "dropped" counts
//!   with *why* ([`DropCause`]) and *who* (flow id).
//! * [`Histogram`] — the log₂-bucketed duration histogram shared by flow
//!   statistics and registry handles.
//! * [`MetricsSnapshot`] — a point-in-time export of all of the above,
//!   serializable as JSON or CSV from any example or experiment.
//!
//! The crate is std-only and dependency-free; every layer of the emulator
//! (qos, mpls, sim, core, te) can use it without cycles.

mod cause;
mod flight;
mod hist;
mod registry;
mod snapshot;

pub use cause::DropCause;
pub use flight::{DropRecord, FlightRecorder};
pub use hist::Histogram;
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry};
pub use snapshot::{HistSummary, MetricsSnapshot, ProbeRow};
