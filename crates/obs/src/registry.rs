//! The metrics registry: named metrics handed out as typed handles.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::hist::Histogram;

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying cell; incrementing is a `Cell` add — no
/// lock, no allocation, no name lookup. Resolve the name once at wiring
/// time with [`MetricsRegistry::counter`], keep the handle on the hot path.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.set(self.0.get() + d);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// A shared histogram handle.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Runs `f` with read access to the underlying histogram.
    pub fn with<T>(&self, f: impl FnOnce(&Histogram) -> T) -> T {
        f(&self.0.borrow())
    }
}

/// A registry of named metrics.
///
/// Registration is the cold path (linear name scan, string allocation);
/// the returned handles are the hot path. Registering the same name twice
/// returns the *same* underlying metric, so independent wiring sites can
/// share a series without coordination.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    hists: Vec<(String, HistogramHandle)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        self.counters.push((name.to_owned(), c.clone()));
        c
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some((_, g)) = self.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        self.gauges.push((name.to_owned(), g.clone()));
        g
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn histogram(&mut self, name: &str) -> HistogramHandle {
        if let Some((_, h)) = self.hists.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = HistogramHandle::default();
        self.hists.push((name.to_owned(), h.clone()));
        h
    }

    /// `(name, value)` for every counter, in registration order.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect()
    }

    /// `(name, value)` for every gauge, in registration order.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect()
    }

    /// Runs `f` over every `(name, histogram)`, in registration order.
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (n, h) in &self.hists {
            h.with(|hist| f(n, hist));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_metric() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("pkts");
        let b = reg.counter("pkts");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_values(), vec![("pkts".to_owned(), 3)]);
    }

    #[test]
    fn gauges_move_both_ways() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(reg.gauge_values(), vec![("depth".to_owned(), 7)]);
    }

    #[test]
    fn histograms_record_through_handles() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("delay");
        h.record(100);
        h.record(300);
        let mut seen = Vec::new();
        reg.for_each_histogram(|n, hist| seen.push((n.to_owned(), hist.count())));
        assert_eq!(seen, vec![("delay".to_owned(), 2)]);
        assert_eq!(h.with(Histogram::max), 300);
    }

    #[test]
    fn registration_order_is_stable() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b");
        reg.counter("a");
        let names: Vec<String> = reg.counter_values().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
