//! Property tests: starting from a provably clean model, any single
//! random mutation of one field must produce a non-empty report whose
//! diagnostics belong to the matching code class.

use netsim_mpls::lfib::{LabelOp, Nhlfe, LOCAL_IFACE};
use netsim_qos::RedParams;
use netsim_verify::{
    lint_red_profile, verify_isolation, verify_label_plane, LabelNode, LabelPlane, StackWalk,
    VerifyReport, VrfPolicy,
};
use proptest::prelude::*;

const VPN_LABEL: u32 = 1 << 17;

/// A clean line backbone `0 — 1 — … — n-1`: one LSP from node 0 to node
/// n-1 (no PHP: the egress pops), terminated by a VPN label dispatch.
fn clean_line(n: usize) -> LabelPlane {
    assert!(n >= 3);
    let tunnel = |i: usize| 100 + i as u32; // label node i expects
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let mut neighbors = Vec::new();
        if i > 0 {
            neighbors.push(Some(i - 1));
        }
        if i + 1 < n {
            neighbors.push(Some(i + 1));
        }
        let toward_next = usize::from(i > 0); // iface index of node i+1
        let mut ilm = Vec::new();
        if i > 0 && i + 1 < n {
            ilm.push((
                tunnel(i),
                Nhlfe { op: LabelOp::Swap(tunnel(i + 1)), out_iface: toward_next },
            ));
        } else if i + 1 == n {
            ilm.push((tunnel(i), Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE }));
        }
        let local_labels = if i + 1 == n { vec![VPN_LABEL] } else { Vec::new() };
        nodes.push(LabelNode { name: format!("N{i}"), neighbors, ilm, local_labels });
    }
    let walks = vec![StackWalk {
        origin: 0,
        fec: "site".to_string(),
        push: vec![VPN_LABEL, tunnel(1)],
        out_iface: 0,
        expect_delivery: Some(n - 1),
    }];
    LabelPlane { nodes, walks }
}

/// Clean policy set: `vpns` VPNs × 2 VRFs each, one RT per VPN.
fn clean_vrfs(vpns: usize) -> Vec<VrfPolicy> {
    (0..vpns)
        .flat_map(|v| {
            (0..2).map(move |pe| VrfPolicy {
                name: format!("PE{pe}:vpn{v}"),
                vpn: v,
                imports: vec![100 + v as u64],
                exports: vec![100 + v as u64],
            })
        })
        .collect()
}

fn label_codes(report: &VerifyReport) -> bool {
    !report.diagnostics().is_empty()
        && report.diagnostics().iter().all(|d| d.code.starts_with("V-LBL-"))
}

proptest! {
    #[test]
    fn clean_line_stays_clean(n in 3usize..8) {
        let mut report = VerifyReport::new();
        verify_label_plane(&clean_line(n), &mut report);
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.diagnostics().len(), 0);
    }

    #[test]
    fn removing_any_ilm_entry_is_detected(n in 3usize..8, pick in 0usize..32) {
        let mut plane = clean_line(n);
        // Every node from 1..n carries exactly the one entry on the path.
        let victim = 1 + pick % (n - 1);
        plane.nodes[victim].ilm.clear();
        let mut report = VerifyReport::new();
        verify_label_plane(&plane, &mut report);
        prop_assert!(label_codes(&report), "{}", report);
    }

    #[test]
    fn rewriting_any_swap_label_is_detected(
        n in 4usize..8,
        pick in 0usize..32,
        junk in (1u32 << 18)..(1u32 << 19),
    ) {
        let mut plane = clean_line(n);
        let victim = 1 + pick % (n - 2); // a swapping midpoint
        let (_, nhlfe) = &mut plane.nodes[victim].ilm[0];
        nhlfe.op = LabelOp::Swap(junk); // nobody allocated `junk`
        let mut report = VerifyReport::new();
        verify_label_plane(&plane, &mut report);
        prop_assert!(label_codes(&report), "{}", report);
    }

    #[test]
    fn corrupting_any_out_iface_is_detected(
        n in 4usize..8,
        pick in 0usize..32,
        junk in 7usize..64,
    ) {
        let mut plane = clean_line(n);
        let victim = 1 + pick % (n - 2);
        plane.nodes[victim].ilm[0].1.out_iface = junk; // degree ≤ 2
        let mut report = VerifyReport::new();
        verify_label_plane(&plane, &mut report);
        prop_assert!(label_codes(&report), "{}", report);
    }

    #[test]
    fn looping_any_midpoint_back_is_detected(n in 4usize..8, pick in 0usize..32) {
        let mut plane = clean_line(n);
        let victim = 1 + pick % (n - 2);
        // Send the path label back toward the previous node instead of on.
        let prev_label = 100 + victim as u32 - 1;
        plane.nodes[victim].ilm[0].1 = Nhlfe { op: LabelOp::Swap(prev_label), out_iface: 0 };
        let mut report = VerifyReport::new();
        verify_label_plane(&plane, &mut report);
        prop_assert!(label_codes(&report), "{}", report);
    }

    #[test]
    fn clean_vrf_policies_stay_clean(vpns in 1usize..6) {
        let mut report = VerifyReport::new();
        verify_isolation(&clean_vrfs(vpns), &[], &mut report);
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.diagnostics().len(), 0);
    }

    #[test]
    fn any_single_rt_mutation_is_detected(
        vpns in 2usize..6,
        pick in 0usize..32,
        mode in 0u8..3,
    ) {
        let mut vrfs = clean_vrfs(vpns);
        let victim = pick % vrfs.len();
        match mode {
            // Lost import: the victim can no longer hear its own VPN.
            0 => vrfs[victim].imports.clear(),
            // Cross-VPN import: leaks a neighbouring VPN in.
            1 => {
                let other = (vrfs[victim].vpn + 1) % vpns;
                vrfs[victim].imports.push(100 + other as u64);
            }
            // Import of a target nobody exports.
            _ => vrfs[victim].imports.push(9_999),
        }
        let mut report = VerifyReport::new();
        verify_isolation(&vrfs, &[], &mut report);
        prop_assert!(!report.diagnostics().is_empty(), "{}", report);
        prop_assert!(
            report.diagnostics().iter().all(|d| d.code.starts_with("V-VRF-")),
            "{}", report
        );
    }

    #[test]
    fn disordered_red_thresholds_are_detected(
        min in 1_000usize..100_000,
        max in 1_000usize..100_000,
        cap in 1_000usize..100_000,
    ) {
        prop_assume!(min >= max || max > cap); // keep only broken configs
        // `RedParams::new` refuses inverted thresholds, so mutate the
        // fields the way a buggy config loader would.
        let mut params = RedParams::new(1, 2);
        params.min_th_bytes = min as f64;
        params.max_th_bytes = max as f64;
        let mut report = VerifyReport::new();
        lint_red_profile(&params, cap, "prop", &mut report);
        prop_assert!(!report.diagnostics().is_empty(), "{}", report);
        prop_assert!(
            report.diagnostics().iter().all(|d| d.code == netsim_verify::codes::QOS_WRED_ORDER),
            "{}", report
        );
    }
}
