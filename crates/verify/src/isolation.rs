//! Pass 2: VRF isolation — the paper's §4.3 zero-leakage claim.
//!
//! Builds the directed reachability relation induced by route-target
//! import/export policies (`a → b` iff some RT exported by `a` is
//! imported by `b`) and checks it against intent:
//!
//! * an edge between different VPNs is a **leak** (`V-VRF-001`) unless
//!   that VPN pair is a declared extranet, in which case it is reported
//!   as an informational refutation of strict separation (`V-VRF-002`);
//! * missing edges inside one VPN mean a **partitioned VPN**
//!   (`V-VRF-003`);
//! * imports nobody exports are dead configuration (`V-VRF-004`).

use crate::diag::{codes, Severity, VerifyReport};

/// The route-target policy of one VRF, plus which VPN it belongs to.
#[derive(Clone, Debug)]
pub struct VrfPolicy {
    /// Display name, e.g. `PE0:acme`.
    pub name: String,
    /// VPN (customer) index the VRF was provisioned for.
    pub vpn: usize,
    /// Imported route-target values.
    pub imports: Vec<u64>,
    /// Exported route-target values.
    pub exports: Vec<u64>,
}

fn edge(from: &VrfPolicy, to: &VrfPolicy) -> bool {
    from.exports.iter().any(|rt| to.imports.contains(rt))
}

/// Runs the isolation pass. `extranets` lists VPN pairs whose
/// cross-importing is intended (order-insensitive).
pub fn verify_isolation(
    vrfs: &[VrfPolicy],
    extranets: &[(usize, usize)],
    report: &mut VerifyReport,
) {
    let allowed =
        |a: usize, b: usize| extranets.iter().any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a));
    for (i, a) in vrfs.iter().enumerate() {
        for (j, b) in vrfs.iter().enumerate() {
            if i == j {
                continue;
            }
            let reach = edge(a, b);
            if a.vpn == b.vpn {
                if !reach {
                    report.push(
                        codes::VRF_PARTITION,
                        Severity::Error,
                        format!("{} ↛ {}", a.name, b.name),
                        format!(
                            "VRFs of the same VPN {} cannot exchange routes \
                             (no exported RT of the former is imported by the latter)",
                            a.vpn
                        ),
                    );
                }
            } else if reach {
                if allowed(a.vpn, b.vpn) {
                    report.push(
                        codes::VRF_EXTRANET,
                        Severity::Info,
                        format!("{} → {}", a.name, b.name),
                        "declared extranet: cross-VPN reachability is intended".to_string(),
                    );
                } else {
                    report.push(
                        codes::VRF_LEAK,
                        Severity::Error,
                        format!("{} → {}", a.name, b.name),
                        format!(
                            "routes of VPN {} leak into VPN {} via a shared route target",
                            a.vpn, b.vpn
                        ),
                    );
                }
            }
        }
        for rt in &a.imports {
            if !vrfs.iter().any(|v| v.exports.contains(rt)) {
                report.push(
                    codes::VRF_USELESS_IMPORT,
                    Severity::Warning,
                    format!("{} import {rt}", a.name),
                    "imported route target is exported by no VRF (typo or stale policy?)"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrf(name: &str, vpn: usize, imports: &[u64], exports: &[u64]) -> VrfPolicy {
        VrfPolicy { name: name.into(), vpn, imports: imports.to_vec(), exports: exports.to_vec() }
    }

    #[test]
    fn two_disjoint_vpns_are_clean() {
        let vrfs = [
            vrf("PE0:acme", 0, &[100], &[100]),
            vrf("PE1:acme", 0, &[100], &[100]),
            vrf("PE0:globex", 1, &[101], &[101]),
            vrf("PE1:globex", 1, &[101], &[101]),
        ];
        let mut r = VerifyReport::new();
        verify_isolation(&vrfs, &[], &mut r);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diagnostics().len(), 0);
    }

    #[test]
    fn shared_rt_without_declaration_is_a_leak() {
        let vrfs = [vrf("PE0:acme", 0, &[100], &[100]), vrf("PE1:globex", 1, &[101, 100], &[101])];
        let mut r = VerifyReport::new();
        verify_isolation(&vrfs, &[], &mut r);
        assert!(r.has_code(codes::VRF_LEAK), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn declared_extranet_downgrades_to_info() {
        let vrfs = [vrf("PE0:acme", 0, &[100], &[100]), vrf("PE1:globex", 1, &[101, 100], &[101])];
        let mut r = VerifyReport::new();
        verify_isolation(&vrfs, &[(0, 1)], &mut r);
        assert!(r.has_code(codes::VRF_EXTRANET), "{r}");
        assert!(!r.has_code(codes::VRF_LEAK), "{r}");
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn missing_import_partitions_the_vpn() {
        let vrfs = [vrf("PE0:acme", 0, &[100], &[100]), vrf("PE1:acme", 0, &[], &[100])];
        let mut r = VerifyReport::new();
        verify_isolation(&vrfs, &[], &mut r);
        assert!(r.has_code(codes::VRF_PARTITION), "{r}");
    }

    #[test]
    fn orphan_import_warns() {
        let vrfs = [vrf("PE0:acme", 0, &[100, 999], &[100])];
        let mut r = VerifyReport::new();
        verify_isolation(&vrfs, &[], &mut r);
        assert!(r.has_code(codes::VRF_USELESS_IMPORT), "{r}");
        assert!(r.is_clean(), "warnings must not fail pre-flight: {r}");
    }
}
