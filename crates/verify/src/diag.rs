//! Structured diagnostics: code, severity, location, message.

use std::fmt;

/// All stable diagnostic codes, grouped by pass.
pub mod codes {
    /// Dangling label reference: an FTN/NHLFE names a non-existent
    /// interface or an out-of-range label.
    pub const LBL_DANGLING: &str = "V-LBL-001";
    /// Label-space collision: one incoming label is claimed by both the
    /// LFIB and the VPN dispatch table of the same router.
    pub const LBL_COLLISION: &str = "V-LBL-002";
    /// Black hole: a pushed/swapped label has no ILM entry at the next
    /// hop, or an LSP delivers at the wrong node.
    pub const LBL_BLACKHOLE: &str = "V-LBL-003";
    /// Label loop: the cross-router swap graph contains a cycle.
    pub const LBL_LOOP: &str = "V-LBL-004";
    /// PHP inconsistency: a reserved label would appear on the wire.
    pub const LBL_PHP: &str = "V-LBL-005";

    /// Cross-VPN route leak: a VRF imports a route target exported by a
    /// different VPN without a declared extranet.
    pub const VRF_LEAK: &str = "V-VRF-001";
    /// Declared extranet reachability (informational refutation of strict
    /// separation).
    pub const VRF_EXTRANET: &str = "V-VRF-002";
    /// Partitioned VPN: two VRFs of the same VPN cannot reach each other.
    pub const VRF_PARTITION: &str = "V-VRF-003";
    /// Useless import: an imported route target no VRF exports.
    pub const VRF_USELESS_IMPORT: &str = "V-VRF-004";

    /// CBQ link-share over-subscription: children outweigh their parent.
    pub const QOS_CBQ_OVERSUB: &str = "V-QOS-001";
    /// DSCP↔EXP map incomplete or non-injective across PHBs.
    pub const QOS_EXP_MAP: &str = "V-QOS-002";
    /// RED/WRED thresholds out of order (`min < max ≤ cap` violated).
    pub const QOS_WRED_ORDER: &str = "V-QOS-003";
    /// EF aggregate admission exceeds the engineered share of a link.
    pub const QOS_EF_ADMISSION: &str = "V-QOS-004";

    /// Reservations on a link exceed its reservable bandwidth.
    pub const TE_OVERSUB: &str = "V-TE-001";
    /// A trunk's constraints are unsatisfiable even on an empty network.
    pub const TE_UNSATISFIABLE: &str = "V-TE-002";
    /// Per-priority reservation counters disagree with admitted trunks.
    pub const TE_ACCOUNTING: &str = "V-TE-003";
    /// A trunk's backup route shares a link or risk group with the link
    /// it protects (or is not a connected path at all).
    pub const TE_BACKUP_SHARED: &str = "V-TE-004";
}

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Background fact worth surfacing (e.g. a declared extranet).
    Info,
    /// Suspicious but not provably broken.
    Warning,
    /// A provable misconfiguration.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the static analyzer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `V-LBL-001` (see [`codes`]).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where the problem is, e.g. `PE0/vrf acme` or `P3 label 17`.
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}: {}", self.severity, self.code, self.location, self.message)
    }
}

/// The outcome of a verification run: every diagnostic from every pass.
#[derive(Default, Debug)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a diagnostic (exact duplicates are collapsed, so the same
    /// broken entry found along several LSP walks reports once).
    pub fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        let d = Diagnostic { code, severity, location: location.into(), message: message.into() };
        if !self.diagnostics.iter().any(|e| e.code == d.code && e.location == d.location) {
            self.diagnostics.push(d);
        }
    }

    /// All diagnostics, in discovery order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Diagnostics carrying exactly this code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// True when a diagnostic with this code was recorded.
    #[must_use]
    pub fn has_code(&self, code: &str) -> bool {
        self.with_code(code).next().is_some()
    }

    /// True when no *errors* were found (warnings and infos allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        for d in other.diagnostics {
            if !self.diagnostics.iter().any(|e| e.code == d.code && e.location == d.location) {
                self.diagnostics.push(d);
            }
        }
    }

    /// Panics with a readable listing if the report contains errors.
    /// The pre-flight check every experiment runs after provisioning.
    pub fn assert_clean(&self, context: &str) {
        assert!(self.is_clean(), "verification failed for {context}:\n{self}");
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "verify: clean (0 diagnostics)");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_severity_filtering() {
        let mut r = VerifyReport::new();
        r.push(codes::LBL_DANGLING, Severity::Error, "PE0", "x");
        r.push(codes::LBL_DANGLING, Severity::Error, "PE0", "x again");
        r.push(codes::VRF_EXTRANET, Severity::Info, "acme~beta", "declared");
        assert_eq!(r.diagnostics().len(), 2);
        assert_eq!(r.errors().count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_code(codes::LBL_DANGLING));
        assert!(!r.has_code(codes::TE_OVERSUB));
        let shown = r.to_string();
        assert!(shown.contains("V-LBL-001"));
    }

    #[test]
    fn clean_report_asserts() {
        let mut r = VerifyReport::new();
        r.push(codes::VRF_EXTRANET, Severity::Info, "a", "b");
        assert!(r.is_clean());
        r.assert_clean("test");
    }
}
