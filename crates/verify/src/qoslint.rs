//! Pass 3: QoS configuration lints — the §5 DiffServ pipeline.
//!
//! Pure functions over configuration values, so they apply equally to a
//! provisioned `ProviderNetwork`, a hand-built CPE tree, or a fuzzer's
//! mutation:
//!
//! * [`lint_cbq_tree`] — link-share over-subscription (`V-QOS-001`);
//! * [`lint_exp_map`] — DSCP↔EXP maps that drop or merge PHBs
//!   (`V-QOS-002`);
//! * [`lint_red_profile`] — WRED threshold ordering (`V-QOS-003`);
//! * [`lint_ef_admission`] — EF aggregate vs. engineered link share
//!   (`V-QOS-004`).

use crate::diag::{codes, Severity, VerifyReport};
use netsim_net::Dscp;
use netsim_qos::{CbqNodeConfig, ExpMap, RedParams};

/// Checks a CBQ link-share tree: the allocated rates of each node's
/// children must not exceed the node's own rate.
pub fn lint_cbq_tree(configs: &[CbqNodeConfig], location: &str, report: &mut VerifyReport) {
    for (i, cfg) in configs.iter().enumerate() {
        let child_sum: u64 =
            configs.iter().filter(|c| c.parent == Some(i)).map(|c| c.rate_bps).sum();
        if child_sum > cfg.rate_bps {
            report.push(
                codes::QOS_CBQ_OVERSUB,
                Severity::Error,
                format!("{location} class {i}"),
                format!(
                    "children allocate {child_sum} b/s but the class is limited to {} b/s",
                    cfg.rate_bps
                ),
            );
        }
    }
}

/// The standard per-hop behaviours whose distinction must survive the
/// DSCP→EXP fold (EF, the four AF classes, network control, best effort).
const PHB_REPRESENTATIVES: [(Dscp, &str); 7] = [
    (Dscp::EF, "EF"),
    (Dscp::AF11, "AF1"),
    (Dscp::AF21, "AF2"),
    (Dscp::AF31, "AF3"),
    (Dscp::AF41, "AF4"),
    (Dscp::CS6, "CS6"),
    (Dscp::BE, "BE"),
];

/// Checks a DSCP↔EXP map for completeness and injectivity across PHBs.
pub fn lint_exp_map(map: &ExpMap, location: &str, report: &mut VerifyReport) {
    // Non-injective across PHBs: two distinct PHBs folded onto one EXP
    // lose their distinction inside the MPLS core.
    for (i, &(da, na)) in PHB_REPRESENTATIVES.iter().enumerate() {
        for &(db, nb) in &PHB_REPRESENTATIVES[i + 1..] {
            if map.exp_of(da) == map.exp_of(db) {
                report.push(
                    codes::QOS_EXP_MAP,
                    Severity::Error,
                    format!("{location} exp {}", map.exp_of(da)),
                    format!("PHBs {na} and {nb} map to the same EXP — not injective"),
                );
            }
        }
    }
    // Incomplete inverse: a *reachable* EXP whose designated DSCP does
    // not map back to it breaks DSCP reconstruction at the egress PE.
    // (EXP values no DSCP produces are allowed any inverse.)
    let reachable: Vec<u8> = (0u8..64).map(|v| map.exp_of(Dscp::new(v))).collect();
    for exp in 0u8..8 {
        if !reachable.contains(&exp) {
            continue;
        }
        let back = map.exp_of(map.dscp_of(exp));
        if back != exp {
            report.push(
                codes::QOS_EXP_MAP,
                Severity::Error,
                format!("{location} exp {exp}"),
                format!(
                    "EXP {exp} decodes to DSCP {} which re-encodes as EXP {back} — \
                     the map is not a bijection on the EXP side",
                    map.dscp_of(exp).value()
                ),
            );
        }
    }
}

/// Checks one RED/WRED drop profile against its queue capacity:
/// `0 ≤ min < max ≤ cap` and a sane drop probability.
pub fn lint_red_profile(
    params: &RedParams,
    cap_bytes: usize,
    location: &str,
    report: &mut VerifyReport,
) {
    #[allow(clippy::cast_precision_loss)]
    let cap = cap_bytes as f64;
    if !(params.min_th_bytes >= 0.0
        && params.min_th_bytes < params.max_th_bytes
        && params.max_th_bytes <= cap)
    {
        report.push(
            codes::QOS_WRED_ORDER,
            Severity::Error,
            location.to_string(),
            format!(
                "thresholds out of order: need min < max ≤ cap, got min={} max={} cap={}",
                params.min_th_bytes, params.max_th_bytes, cap_bytes
            ),
        );
    }
    if !(params.max_p > 0.0 && params.max_p <= 1.0) {
        report.push(
            codes::QOS_WRED_ORDER,
            Severity::Error,
            location.to_string(),
            format!("max_p={} is not a probability in (0, 1]", params.max_p),
        );
    }
}

/// One committed EF (premium) contract feeding the backbone.
#[derive(Clone, Debug)]
pub struct EfContract {
    /// Who the contract belongs to (diagnostic location).
    pub name: String,
    /// Committed EF rate in bits/s.
    pub rate_bps: u64,
}

/// Checks EF aggregate admission: the sum of committed EF rates must fit
/// within `ef_share` of every link it could concentrate on (the paper
/// engineers EF for low delay, which only holds under-subscribed).
pub fn lint_ef_admission(
    contracts: &[EfContract],
    links: &[(String, u64)],
    ef_share: f64,
    report: &mut VerifyReport,
) {
    let total: u64 = contracts.iter().map(|c| c.rate_bps).sum();
    if total == 0 {
        return;
    }
    for (name, capacity_bps) in links {
        #[allow(clippy::cast_precision_loss)]
        let budget = (*capacity_bps as f64) * ef_share;
        #[allow(clippy::cast_precision_loss)]
        if total as f64 > budget {
            report.push(
                codes::QOS_EF_ADMISSION,
                Severity::Error,
                name.clone(),
                format!(
                    "EF aggregate {total} b/s exceeds the engineered EF share \
                     ({budget:.0} b/s = {ef_share} × {capacity_bps} b/s)"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cbq_tree_is_clean() {
        let configs = vec![
            CbqNodeConfig { parent: None, rate_bps: 2_000_000, bounded: true, cap_bytes: 64_000 },
            CbqNodeConfig {
                parent: Some(0),
                rate_bps: 1_200_000,
                bounded: false,
                cap_bytes: 32_000,
            },
            CbqNodeConfig { parent: Some(0), rate_bps: 800_000, bounded: true, cap_bytes: 32_000 },
        ];
        let mut r = VerifyReport::new();
        lint_cbq_tree(&configs, "cpe", &mut r);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn oversubscribed_cbq_children_flagged() {
        let configs = vec![
            CbqNodeConfig { parent: None, rate_bps: 1_000_000, bounded: true, cap_bytes: 64_000 },
            CbqNodeConfig { parent: Some(0), rate_bps: 900_000, bounded: false, cap_bytes: 32_000 },
            CbqNodeConfig { parent: Some(0), rate_bps: 400_000, bounded: true, cap_bytes: 32_000 },
        ];
        let mut r = VerifyReport::new();
        lint_cbq_tree(&configs, "cpe", &mut r);
        assert!(r.has_code(codes::QOS_CBQ_OVERSUB), "{r}");
    }

    #[test]
    fn default_exp_map_is_clean() {
        let mut r = VerifyReport::new();
        lint_exp_map(&ExpMap::default(), "PE0", &mut r);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diagnostics().len(), 0, "{r}");
    }

    #[test]
    fn ef_folded_onto_be_is_flagged() {
        let mut map = ExpMap::default();
        map.set_exp(Dscp::EF, 0); // EF now shares EXP 0 with best effort.
        let mut r = VerifyReport::new();
        lint_exp_map(&map, "PE0", &mut r);
        assert!(r.has_code(codes::QOS_EXP_MAP), "{r}");
    }

    #[test]
    fn red_thresholds_must_be_ordered() {
        let ok = RedParams::new(10_000, 30_000);
        let mut r = VerifyReport::new();
        lint_red_profile(&ok, 40_000, "core", &mut r);
        assert!(r.is_clean(), "{r}");

        let mut inverted = RedParams::new(10_000, 30_000);
        std::mem::swap(&mut inverted.min_th_bytes, &mut inverted.max_th_bytes);
        lint_red_profile(&inverted, 40_000, "core-bad", &mut r);
        assert!(r.has_code(codes::QOS_WRED_ORDER), "{r}");

        let mut above_cap = VerifyReport::new();
        lint_red_profile(&RedParams::new(10_000, 50_000), 40_000, "core", &mut above_cap);
        assert!(above_cap.has_code(codes::QOS_WRED_ORDER), "{above_cap}");
    }

    #[test]
    fn ef_admission_respects_link_share() {
        let contracts = vec![
            EfContract { name: "seoul".into(), rate_bps: 30_000_000 },
            EfContract { name: "busan".into(), rate_bps: 30_000_000 },
        ];
        let links = vec![("PE0-P1".into(), 100_000_000u64)];
        let mut ok = VerifyReport::new();
        lint_ef_admission(&contracts, &links, 0.7, &mut ok);
        assert!(ok.is_clean(), "{ok}");
        let mut over = VerifyReport::new();
        lint_ef_admission(&contracts, &links, 0.5, &mut over);
        assert!(over.has_code(codes::QOS_EF_ADMISSION), "{over}");
    }
}
