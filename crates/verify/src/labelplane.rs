//! Pass 1: label-plane integrity.
//!
//! The model is the installed forwarding state itself: per-router ILM
//! tables (label → NHLFE), the interface adjacency, locally terminated
//! labels (the PE's VPN dispatch space), and the set of ingress FTN
//! stacks. The pass cross-references them the way a packet would:
//!
//! * every swap/push target must resolve to an ILM entry (or local
//!   dispatch) at the interface's far end — otherwise `V-LBL-003`;
//! * reserved labels must never be written to the wire — `V-LBL-005`;
//! * one label claimed by both the LFIB and the VPN dispatch table of a
//!   router is ambiguous — `V-LBL-002`;
//! * the cross-router swap graph must be acyclic — `V-LBL-004`;
//! * every FTN walk must unwind its stack exactly at the node the
//!   control plane advertised — otherwise `V-LBL-001`/`V-LBL-003`.

use crate::diag::{codes, Severity, VerifyReport};
use netsim_mpls::lfib::{LabelOp, Nhlfe, LOCAL_IFACE};
use netsim_net::mpls::{MAX_LABEL, MIN_UNRESERVED_LABEL};

/// One router's label-plane state.
#[derive(Clone, Debug, Default)]
pub struct LabelNode {
    /// Display name, e.g. `PE0` or `P3`.
    pub name: String,
    /// `neighbors[iface]` is the node index at the far end of `iface`
    /// (`None` for interfaces that do not lead to another LSR, e.g.
    /// customer-facing ports).
    pub neighbors: Vec<Option<usize>>,
    /// Installed ILM entries: (incoming label, NHLFE).
    pub ilm: Vec<(u32, Nhlfe)>,
    /// Labels this node terminates locally (e.g. the PE's VPN labels).
    pub local_labels: Vec<u32>,
}

/// An ingress label stack to walk: an LDP FTN or a VPN route's
/// (VPN label + tunnel) stack.
#[derive(Clone, Debug)]
pub struct StackWalk {
    /// Node the stack is imposed at.
    pub origin: usize,
    /// What the stack is for (goes into diagnostic locations).
    pub fec: String,
    /// Labels to push, bottom first (last entry ends up outermost).
    pub push: Vec<u32>,
    /// First-hop interface at the origin.
    pub out_iface: usize,
    /// Node where the stack must fully unwind (the advertised egress).
    pub expect_delivery: Option<usize>,
}

/// The whole backbone's label plane.
#[derive(Clone, Debug, Default)]
pub struct LabelPlane {
    /// Per-router state, indexed by node id.
    pub nodes: Vec<LabelNode>,
    /// All ingress stacks to validate.
    pub walks: Vec<StackWalk>,
}

fn lookup(node: &LabelNode, label: u32) -> Option<&Nhlfe> {
    node.ilm.iter().find(|(l, _)| *l == label).map(|(_, n)| n)
}

fn reachable_label(node: &LabelNode, label: u32) -> bool {
    lookup(node, label).is_some() || node.local_labels.contains(&label)
}

/// Checks a label value that is about to be written to the wire.
fn check_wire_label(plane_node: &str, what: &str, label: u32, report: &mut VerifyReport) -> bool {
    if label > MAX_LABEL {
        report.push(
            codes::LBL_DANGLING,
            Severity::Error,
            format!("{plane_node} {what}"),
            format!("label {label} exceeds the 20-bit label space"),
        );
        return false;
    }
    if label < MIN_UNRESERVED_LABEL {
        report.push(
            codes::LBL_PHP,
            Severity::Error,
            format!("{plane_node} {what}"),
            format!(
                "reserved label {label} would appear on the wire \
                 (implicit/explicit null must be signalled, not forwarded)"
            ),
        );
        return false;
    }
    true
}

/// Static per-entry checks: interface validity, wire-label validity,
/// next-hop ILM presence, local collisions.
fn check_entries(plane: &LabelPlane, report: &mut VerifyReport) {
    for (u, node) in plane.nodes.iter().enumerate() {
        for &l in &node.local_labels {
            if lookup(node, l).is_some() {
                report.push(
                    codes::LBL_COLLISION,
                    Severity::Error,
                    format!("{} label {l}", node.name),
                    "label claimed by both the LFIB and the VPN dispatch table".to_string(),
                );
            }
        }
        for &(in_label, nhlfe) in &node.ilm {
            let loc = format!("{} ILM {in_label}", node.name);
            let out_label = match nhlfe.op {
                LabelOp::Swap(out) => Some(out),
                LabelOp::SwapPush { swap, push } => {
                    check_wire_label(&node.name, &format!("ILM {in_label} swap"), swap, report);
                    Some(push)
                }
                LabelOp::Pop => None,
            };
            if nhlfe.out_iface == LOCAL_IFACE {
                if out_label.is_some() {
                    report.push(
                        codes::LBL_DANGLING,
                        Severity::Error,
                        loc,
                        "swap entry targets the local-delivery interface".to_string(),
                    );
                }
                continue;
            }
            let Some(Some(v)) = node.neighbors.get(nhlfe.out_iface).copied() else {
                report.push(
                    codes::LBL_DANGLING,
                    Severity::Error,
                    loc,
                    format!("out_iface {} has no LSR attached", nhlfe.out_iface),
                );
                continue;
            };
            if let Some(out) = out_label {
                if !check_wire_label(&node.name, &format!("ILM {in_label}"), out, report) {
                    continue;
                }
                let next = &plane.nodes[v];
                if !reachable_label(next, out) {
                    report.push(
                        codes::LBL_BLACKHOLE,
                        Severity::Error,
                        loc,
                        format!(
                            "outgoing label {out} has no ILM entry at next hop {} (hop {u}→{v})",
                            next.name
                        ),
                    );
                }
            }
        }
    }
}

/// Cycle detection over the cross-router `(node, label)` swap graph.
fn check_loops(plane: &LabelPlane, report: &mut VerifyReport) {
    // States and edges: (u, l) --Swap(out)/SwapPush{push}--> (v, out|push).
    let mut states: Vec<(usize, u32)> = Vec::new();
    let mut index = std::collections::HashMap::new();
    for (u, node) in plane.nodes.iter().enumerate() {
        for &(l, _) in &node.ilm {
            index.insert((u, l), states.len());
            states.push((u, l));
        }
    }
    let next_state = |&(u, l): &(usize, u32)| -> Option<usize> {
        let node = &plane.nodes[u];
        let nhlfe = lookup(node, l)?;
        let out = match nhlfe.op {
            LabelOp::Swap(out) => out,
            LabelOp::SwapPush { push, .. } => push,
            LabelOp::Pop => return None,
        };
        let v = (*node.neighbors.get(nhlfe.out_iface)?)?;
        index.get(&(v, out)).copied()
    };
    // Iterative three-color DFS.
    let mut color = vec![0u8; states.len()]; // 0 white, 1 gray, 2 black
    for start in 0..states.len() {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((s, processed)) = stack.pop() {
            if processed {
                color[s] = 2;
                continue;
            }
            if color[s] == 2 {
                continue;
            }
            color[s] = 1;
            stack.push((s, true));
            if let Some(t) = next_state(&states[s]) {
                if color[t] == 1 {
                    let (u, l) = states[t];
                    report.push(
                        codes::LBL_LOOP,
                        Severity::Error,
                        format!("{} label {l}", plane.nodes[u].name),
                        "label-switched path loops back on itself".to_string(),
                    );
                } else if color[t] == 0 {
                    stack.push((t, false));
                }
            }
        }
    }
}

/// Simulates one ingress stack hop by hop.
fn check_walk(plane: &LabelPlane, walk: &StackWalk, report: &mut VerifyReport) {
    let origin = &plane.nodes[walk.origin];
    let loc = format!("{} FTN {}", origin.name, walk.fec);
    let mut stack = walk.push.clone();
    for &l in &stack {
        if !check_wire_label(&origin.name, &format!("FTN {} push", walk.fec), l, report) {
            return;
        }
    }
    let mut cur = walk.origin;
    let mut iface = walk.out_iface;
    let hop_limit = plane.nodes.len() * 8 + 16;
    let mut hops = 0usize;
    loop {
        hops += 1;
        if hops > hop_limit {
            report.push(
                codes::LBL_LOOP,
                Severity::Error,
                loc,
                format!("walk exceeded {hop_limit} hops without delivery (label loop)"),
            );
            return;
        }
        // Move across the wire, unless the op said "deliver here".
        if iface != LOCAL_IFACE {
            let Some(Some(v)) = plane.nodes[cur].neighbors.get(iface).copied() else {
                report.push(
                    codes::LBL_DANGLING,
                    Severity::Error,
                    loc,
                    format!("interface {iface} at {} leads nowhere", plane.nodes[cur].name),
                );
                return;
            };
            cur = v;
        }
        let node = &plane.nodes[cur];
        let Some(&top) = stack.last() else {
            // Unlabeled arrival: the far end IP-forwards; delivery is here.
            deliver(walk, cur, node, &loc, report);
            return;
        };
        if let Some(nhlfe) = lookup(node, top) {
            match nhlfe.op {
                LabelOp::Swap(out) => {
                    *stack.last_mut().expect("non-empty") = out;
                    iface = nhlfe.out_iface;
                }
                LabelOp::SwapPush { swap, push } => {
                    *stack.last_mut().expect("non-empty") = swap;
                    stack.push(push);
                    iface = nhlfe.out_iface;
                }
                LabelOp::Pop => {
                    stack.pop();
                    if stack.is_empty() && nhlfe.out_iface == LOCAL_IFACE {
                        deliver(walk, cur, node, &loc, report);
                        return;
                    }
                    iface = nhlfe.out_iface;
                }
            }
        } else if node.local_labels.contains(&top) {
            stack.pop();
            if stack.is_empty() {
                deliver(walk, cur, node, &loc, report);
            } else {
                report.push(
                    codes::LBL_BLACKHOLE,
                    Severity::Error,
                    loc,
                    format!(
                        "VPN label {top} dispatched at {} with {} labels still stacked",
                        node.name,
                        stack.len()
                    ),
                );
            }
            return;
        } else {
            report.push(
                codes::LBL_BLACKHOLE,
                Severity::Error,
                loc,
                format!("no ILM entry for label {top} at {} — traffic black-holes", node.name),
            );
            return;
        }
    }
}

fn deliver(walk: &StackWalk, at: usize, node: &LabelNode, loc: &str, report: &mut VerifyReport) {
    if let Some(expect) = walk.expect_delivery {
        if expect != at {
            report.push(
                codes::LBL_BLACKHOLE,
                Severity::Error,
                loc.to_string(),
                format!(
                    "stack unwound at {} but the advertised egress is node {expect}",
                    node.name
                ),
            );
        }
    }
}

/// Runs the full label-plane pass over a model.
pub fn verify_label_plane(plane: &LabelPlane, report: &mut VerifyReport) {
    check_entries(plane, report);
    check_loops(plane, report);
    for walk in &plane.walks {
        check_walk(plane, walk, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-node line PE0—P1—PE2 with one LSP PE0→PE2 (no PHP) and a VPN
    /// label terminating at PE2.
    fn clean_plane() -> LabelPlane {
        LabelPlane {
            nodes: vec![
                LabelNode {
                    name: "PE0".into(),
                    neighbors: vec![Some(1)],
                    ilm: vec![],
                    local_labels: vec![],
                },
                LabelNode {
                    name: "P1".into(),
                    neighbors: vec![Some(0), Some(2)],
                    ilm: vec![(17, Nhlfe { op: LabelOp::Swap(18), out_iface: 1 })],
                    local_labels: vec![],
                },
                LabelNode {
                    name: "PE2".into(),
                    neighbors: vec![Some(1)],
                    ilm: vec![(18, Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE })],
                    local_labels: vec![1 << 17],
                },
            ],
            walks: vec![StackWalk {
                origin: 0,
                fec: "vpn/10.2.0.0/16".into(),
                push: vec![1 << 17, 17],
                out_iface: 0,
                expect_delivery: Some(2),
            }],
        }
    }

    #[test]
    fn clean_plane_is_clean() {
        let mut r = VerifyReport::new();
        verify_label_plane(&clean_plane(), &mut r);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diagnostics().len(), 0, "{r}");
    }

    #[test]
    fn missing_ilm_is_a_black_hole() {
        let mut plane = clean_plane();
        plane.nodes[2].ilm.clear();
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_BLACKHOLE), "{r}");
    }

    #[test]
    fn swap_to_unbound_label_dangles_downstream() {
        let mut plane = clean_plane();
        plane.nodes[1].ilm[0].1 = Nhlfe { op: LabelOp::Swap(999), out_iface: 1 };
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_BLACKHOLE), "{r}");
    }

    #[test]
    fn bad_interface_is_dangling() {
        let mut plane = clean_plane();
        plane.nodes[1].ilm[0].1.out_iface = 7;
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_DANGLING), "{r}");
    }

    #[test]
    fn vpn_label_in_lfib_collides() {
        let mut plane = clean_plane();
        plane.nodes[2].ilm.push((1 << 17, Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE }));
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_COLLISION), "{r}");
    }

    #[test]
    fn two_node_swap_cycle_is_a_loop() {
        let plane = LabelPlane {
            nodes: vec![
                LabelNode {
                    name: "A".into(),
                    neighbors: vec![Some(1)],
                    ilm: vec![(20, Nhlfe { op: LabelOp::Swap(21), out_iface: 0 })],
                    local_labels: vec![],
                },
                LabelNode {
                    name: "B".into(),
                    neighbors: vec![Some(0)],
                    ilm: vec![(21, Nhlfe { op: LabelOp::Swap(20), out_iface: 0 })],
                    local_labels: vec![],
                },
            ],
            walks: vec![],
        };
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_LOOP), "{r}");
    }

    #[test]
    fn reserved_label_on_wire_is_php_inconsistency() {
        let mut plane = clean_plane();
        plane.nodes[1].ilm[0].1 = Nhlfe { op: LabelOp::Swap(3), out_iface: 1 };
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_PHP), "{r}");
    }

    #[test]
    fn misdelivery_is_flagged() {
        let mut plane = clean_plane();
        plane.walks[0].expect_delivery = Some(1);
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.has_code(codes::LBL_BLACKHOLE), "{r}");
    }

    #[test]
    fn php_delivery_with_empty_stack_is_clean() {
        // PE0 adjacent to PE1, PHP: empty push, delivery at the neighbor.
        let plane = LabelPlane {
            nodes: vec![
                LabelNode {
                    name: "PE0".into(),
                    neighbors: vec![Some(1)],
                    ilm: vec![],
                    local_labels: vec![],
                },
                LabelNode {
                    name: "PE1".into(),
                    neighbors: vec![Some(0)],
                    ilm: vec![],
                    local_labels: vec![],
                },
            ],
            walks: vec![StackWalk {
                origin: 0,
                fec: "FEC(1)".into(),
                push: vec![],
                out_iface: 0,
                expect_delivery: Some(1),
            }],
        };
        let mut r = VerifyReport::new();
        verify_label_plane(&plane, &mut r);
        assert!(r.is_clean(), "{r}");
    }
}
