//! Pass 4: TE accounting — trunk reservations vs. reservable bandwidth.
//!
//! Reads the admitted-trunk state of a [`TeDomain`] and checks:
//!
//! * no link carries more total reservation than its capacity
//!   (`V-TE-001`);
//! * every admitted trunk's constraints are satisfiable at all — i.e.
//!   CSPF finds a path on an *empty* network; a trunk whose demand
//!   exceeds every cut between its endpoints can only exist through
//!   corrupted accounting (`V-TE-002`);
//! * the per-priority reservation counters equal the sum of demands of
//!   the trunks holding them (`V-TE-003`);
//! * every backup route protecting a trunk link is a connected path that
//!   avoids the protected link and its SRLG peers — a bypass that dies
//!   with its primary is worse than none, because the operator believes
//!   the trunk is protected (`V-TE-004`).

use crate::diag::{codes, Severity, VerifyReport};
use netsim_te::{cspf_path, trunk::PRIORITIES, TeDomain, TrunkId};

/// Checks that each backup route of `id` is a connected path whose links
/// are all risk-disjoint from the link it claims to protect.
fn verify_backups(te: &TeDomain, id: TrunkId, report: &mut VerifyReport) {
    let topo = te.topology();
    for b in te.backups(id) {
        let (pu, pv, _) = topo.link(b.protected_link);
        let subject = format!("trunk {} backup for link {pu}-{pv}", id.0);
        for w in b.path.windows(2) {
            let Some(link) = topo.neighbors(w[0]).find(|&(n, _, _)| n == w[1]).map(|(_, _, l)| l)
            else {
                report.push(
                    codes::TE_BACKUP_SHARED,
                    Severity::Error,
                    subject.clone(),
                    format!("backup path hop {}-{} is not a backbone adjacency", w[0], w[1]),
                );
                continue;
            };
            if te.srlg().share_risk(link, b.protected_link) {
                let detail = if link == b.protected_link {
                    format!("backup path rides the protected link {pu}-{pv} itself")
                } else {
                    let (bu, bv, _) = topo.link(link);
                    format!("backup link {bu}-{bv} shares a risk group with protected {pu}-{pv}")
                };
                report.push(codes::TE_BACKUP_SHARED, Severity::Error, subject.clone(), detail);
            }
        }
    }
}

/// Runs the TE accounting pass over an admitted-trunk database.
pub fn verify_te(te: &TeDomain, report: &mut VerifyReport) {
    let topo = te.topology();
    // Recompute what the per-priority ledgers should say.
    let mut expect = vec![[0u64; PRIORITIES]; topo.link_count()];
    for (id, req, links) in te.trunk_entries() {
        for &l in links {
            expect[l][req.hold_priority as usize] += req.demand_bps;
        }
        let demand = req.demand_bps;
        if cspf_path(topo, req.src, req.dst, &|l| topo.link(l).2.capacity_bps >= demand).is_none() {
            report.push(
                codes::TE_UNSATISFIABLE,
                Severity::Error,
                format!("trunk {}", id.0),
                format!(
                    "no path from {} to {} can carry {demand} b/s even on an empty network",
                    req.src, req.dst
                ),
            );
        }
        verify_backups(te, id, report);
    }
    for (link, expect_prios) in expect.iter().enumerate() {
        let (u, v, attrs) = topo.link(link);
        let total = te.reserved_bps(link);
        if total > attrs.capacity_bps {
            report.push(
                codes::TE_OVERSUB,
                Severity::Error,
                format!("link {u}-{v}"),
                format!("reservations total {total} b/s on a {} b/s link", attrs.capacity_bps),
            );
        }
        for (prio, &want) in expect_prios.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let held = te.reserved_at(link, prio as u8);
            if held != want {
                report.push(
                    codes::TE_ACCOUNTING,
                    Severity::Error,
                    format!("link {u}-{v} prio {prio}"),
                    format!("ledger holds {held} b/s but admitted trunks account for {want} b/s"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::{LinkAttrs, Topology};
    use netsim_te::TrunkRequest;

    fn line(capacity_bps: u64) -> Topology {
        let mut t = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps };
        t.add_link(0, 1, attrs);
        t.add_link(1, 2, attrs);
        t
    }

    #[test]
    fn admitted_trunks_verify_clean() {
        let mut te = TeDomain::new(line(100_000_000));
        te.signal(TrunkRequest::new(0, 2, 40_000_000).priority(2)).unwrap();
        te.signal(TrunkRequest::new(0, 2, 30_000_000).priority(5)).unwrap();
        let mut r = VerifyReport::new();
        verify_te(&te, &mut r);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diagnostics().len(), 0, "{r}");
    }

    #[test]
    fn ledger_corruption_is_caught() {
        let mut te = TeDomain::new(line(100_000_000));
        let (id, _) = te.signal(TrunkRequest::new(0, 2, 40_000_000)).unwrap();
        // Simulate a double-release / lost-teardown accounting bug.
        te.corrupt_reservation_for_test(0, 7, 10_000_000);
        let mut r = VerifyReport::new();
        verify_te(&te, &mut r);
        assert!(r.has_code(codes::TE_ACCOUNTING), "{r}");
        let _ = id;
    }

    /// Fish: short 0-1-4 (links 0,1), long 0-2-3-4 (links 2,3,4).
    fn fish() -> Topology {
        let mut t = Topology::new(5);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
            t.add_link(u, v, attrs);
        }
        t
    }

    #[test]
    fn healthy_backups_verify_clean() {
        let mut te = TeDomain::new(fish());
        let (id, _) = te.signal(TrunkRequest::new(0, 4, 10_000_000)).unwrap();
        assert_eq!(te.protect_trunk(id), 2);
        let mut r = VerifyReport::new();
        verify_te(&te, &mut r);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn backup_sharing_fate_with_its_primary_is_caught() {
        let mut te = TeDomain::new(fish());
        let (id, _) = te.signal(TrunkRequest::new(0, 4, 10_000_000)).unwrap();
        te.protect_trunk(id);
        // Operator error discovered late: the bypass for link 1 (1→4) and
        // the protected link ride the same conduit into node 4.
        te.assign_srlg(1, 9);
        te.assign_srlg(4, 9);
        let mut r = VerifyReport::new();
        verify_te(&te, &mut r);
        assert!(r.has_code(codes::TE_BACKUP_SHARED), "{r}");
    }

    #[test]
    fn corrupted_backup_path_is_caught() {
        let mut te = TeDomain::new(fish());
        let (id, _) = te.signal(TrunkRequest::new(0, 4, 10_000_000)).unwrap();
        te.protect_trunk(id);
        // Backup 1 protects link 1 (1→4): replace it with a "path" that
        // rides the protected link itself plus a non-adjacency.
        te.corrupt_backup_for_test(id, 1, vec![1, 4, 0]);
        let mut r = VerifyReport::new();
        verify_te(&te, &mut r);
        assert!(r.has_code(codes::TE_BACKUP_SHARED), "{r}");
        // The report dedups by (code, location): one diagnostic per
        // backup, and the first defect found (the protected-link ride)
        // is the one surfaced.
        let shared: Vec<_> =
            r.diagnostics().iter().filter(|d| d.code == codes::TE_BACKUP_SHARED).collect();
        assert_eq!(shared.len(), 1, "{r}");
        assert!(shared[0].message.contains("protected link"), "{r}");
    }

    #[test]
    fn oversubscribed_link_is_caught() {
        let mut te = TeDomain::new(line(100_000_000));
        te.signal(TrunkRequest::new(0, 2, 90_000_000)).unwrap();
        te.corrupt_reservation_for_test(1, 3, 50_000_000);
        let mut r = VerifyReport::new();
        verify_te(&te, &mut r);
        assert!(r.has_code(codes::TE_OVERSUB), "{r}");
    }
}
