//! # netsim-verify — static analysis of provisioned control-plane state
//!
//! The paper's §4 functions (membership, reachability, separation) and §5
//! QoS pipeline are configuration-correctness claims. This crate checks
//! them *statically* — over installed FTN/ILM/NHLFE tables, route-target
//! policies, queue parameters and TE reservations — before a single packet
//! is simulated, and reports violations as structured [`Diagnostic`]s with
//! stable codes (see [`codes`]).
//!
//! Four passes:
//!
//! | pass | module | codes |
//! |------|--------|-------|
//! | label-plane integrity | [`labelplane`] | `V-LBL-001` … `V-LBL-005` |
//! | VRF isolation         | [`isolation`]  | `V-VRF-001` … `V-VRF-004` |
//! | QoS configuration     | [`qoslint`]    | `V-QOS-001` … `V-QOS-004` |
//! | TE accounting         | [`te`]         | `V-TE-001` … `V-TE-004`  |
//!
//! `mplsvpn-core` glues these to `ProviderNetwork::verify()`; the passes
//! themselves operate on neutral models so they can be unit-tested (and
//! fuzzed) without building a simulator.

#![warn(missing_docs)]

pub mod diag;
pub mod isolation;
pub mod labelplane;
pub mod qoslint;
pub mod te;

pub use diag::{codes, Diagnostic, Severity, VerifyReport};
pub use isolation::{verify_isolation, VrfPolicy};
pub use labelplane::{verify_label_plane, LabelNode, LabelPlane, StackWalk};
pub use qoslint::{lint_cbq_tree, lint_ef_admission, lint_exp_map, lint_red_profile, EfContract};
pub use te::verify_te;
