//! # netsim-routing — link-state IGP and BGP/MPLS VPN control plane
//!
//! Two control planes the paper's architecture assumes:
//!
//! * [`igp`] — a link-state interior gateway protocol (OSPF-like): LSA
//!   flooding cost model and Dijkstra SPF with deterministic tie-breaking.
//!   Its next hops drive LDP label distribution and backbone forwarding.
//! * [`bgpvpn`] — the RFC 2547 machinery: route distinguishers make
//!   overlapping customer prefixes globally unique, route targets control
//!   VRF import/export, VPN labels are piggybacked on route updates, and a
//!   route reflector (or full iBGP mesh) distributes everything. Message
//!   and session counts are first-class outputs — they are the quantities
//!   behind the paper's §2.1 scalability argument.
//!
//! [`topology`] holds the weighted graph both planes (and `netsim-te`) run
//! over.
//!
//! # Example
//!
//! ```
//! use netsim_routing::{
//!     BgpVpnFabric, DistributionMode, Igp, LinkAttrs, RouteDistinguisher, RouteTarget, Topology,
//! };
//!
//! // A 3-node backbone and its IGP.
//! let mut topo = Topology::new(3);
//! let attrs = LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 };
//! topo.add_link(0, 1, attrs);
//! topo.add_link(1, 2, attrs);
//! let igp = Igp::converge(&topo);
//! assert_eq!(igp.path(0, 2), Some(vec![0, 1, 2]));
//!
//! // Two VRFs in one VPN exchange a route with a piggybacked label.
//! let rt = RouteTarget(1);
//! let rd = RouteDistinguisher::new(65000, 1);
//! let mut fabric = BgpVpnFabric::new(2, DistributionMode::RouteReflector);
//! let a = fabric.add_vrf(0, rd, vec![rt], vec![rt]);
//! let b = fabric.add_vrf(1, rd, vec![rt], vec![rt]);
//! let label = fabric.advertise(b, "10.2.0.0/16".parse().unwrap());
//! let route = fabric.routes(a).lookup("10.2.0.9".parse().unwrap()).unwrap();
//! assert_eq!((route.egress_pe, route.vpn_label), (1, label));
//! ```

#![warn(missing_docs)]

pub mod bgpvpn;
pub mod igp;
pub mod topology;

pub use bgpvpn::{
    BgpVpnFabric, DistributionMode, RemoteRoute, RouteDistinguisher, RouteTarget, VrfHandle,
};
pub use igp::{Igp, SpfTree};
pub use topology::{LinkAttrs, Topology};
