//! BGP/MPLS VPN control plane (RFC 2547 model, emulated).
//!
//! The paper's §4 requires three functions; this module provides the first
//! two and the state the third consumes:
//!
//! * **Membership discovery** — VRFs declare route-target import/export
//!   communities; any two VRFs sharing a target discover each other through
//!   route distribution alone ("a single routing system \[supporting\]
//!   multiple VPNs whose internal address spaces overlap").
//! * **Reachability exchange** — each PE advertises its customer prefixes
//!   as VPN-IPv4 routes (route distinguisher + prefix) with a *piggybacked
//!   VPN label*, via a route reflector or a full iBGP mesh. Messages and
//!   sessions are counted: they are the per-VPN control cost that the §2.1
//!   overlay model pays N(N−1)/2 circuits for.
//! * **Data separation** — the importer ends up with a per-VRF LPM table
//!   mapping prefixes to `(egress PE, VPN label)`, which `mplsvpn-core`
//!   installs into PE data planes.

use std::collections::HashMap;

use netsim_mpls::LabelSpace;
use netsim_net::{LpmTrie, Prefix};

/// A route distinguisher: makes VPN-IPv4 routes globally unique even when
/// customer prefixes overlap. (Encoded here as provider ASN + assigned
/// number.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RouteDistinguisher {
    /// Provider AS number.
    pub asn: u32,
    /// Assigned number (unique per VPN or per VRF, per provider policy).
    pub assigned: u32,
}

impl RouteDistinguisher {
    /// Creates `asn:assigned`.
    pub fn new(asn: u32, assigned: u32) -> Self {
        RouteDistinguisher { asn, assigned }
    }
}

impl std::fmt::Display for RouteDistinguisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.asn, self.assigned)
    }
}

/// A route-target extended community controlling VRF import/export.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RouteTarget(pub u64);

/// Identifies one VRF instance on one PE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VrfHandle {
    /// The PE hosting the VRF.
    pub pe: usize,
    /// Index of the VRF on that PE.
    pub index: usize,
}

/// A route as imported into a VRF: where to tunnel and which VPN label to
/// push beneath the tunnel label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemoteRoute {
    /// Egress PE (tunnel endpoint).
    pub egress_pe: usize,
    /// VPN label advertised by the egress PE.
    pub vpn_label: u32,
    /// The distinguishing RD of the originating VRF.
    pub rd: RouteDistinguisher,
}

/// A VPN-IPv4 advertisement as carried by the fabric.
#[derive(Clone, Debug)]
struct VpnRouteAd {
    rd: RouteDistinguisher,
    prefix: Prefix,
    egress_pe: usize,
    vpn_label: u32,
    export_targets: Vec<RouteTarget>,
    origin: VrfHandle,
}

/// One VRF's control-plane state.
#[derive(Debug)]
struct VrfControl {
    rd: RouteDistinguisher,
    import: Vec<RouteTarget>,
    export: Vec<RouteTarget>,
    /// Prefixes this VRF originates, with their VPN labels.
    local: Vec<(Prefix, u32)>,
    /// Imported remote routes.
    table: LpmTrie<RemoteRoute>,
}

/// One PE's control-plane state.
#[derive(Debug)]
struct PeControl {
    vrfs: Vec<VrfControl>,
    /// VPN label space (per-prefix allocation, the RFC 2547 default).
    label_space: LabelSpace,
    /// Incoming VPN label → (local VRF index, prefix) — what the PE data
    /// plane needs to dispatch a popped VPN label into the right VRF.
    vpn_ilm: HashMap<u32, (usize, Prefix)>,
}

/// How VPN-IPv4 routes are distributed among PEs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DistributionMode {
    /// Full iBGP mesh: P·(P−1)/2 sessions; an update goes to every peer.
    FullMesh,
    /// One route reflector: P sessions; an update goes PE → RR → others.
    RouteReflector,
}

/// First label value the fabric hands out as a VPN label. Kept disjoint
/// from the LDP range (which grows upward from 16) so that a PE's VPN
/// labels can never alias its transit labels.
pub const VPN_LABEL_BASE: u32 = 1 << 17;

/// The provider's VPN route distribution fabric.
pub struct BgpVpnFabric {
    pes: Vec<PeControl>,
    mode: DistributionMode,
    /// All advertisements currently in the fabric (the RR's Adj-RIB).
    rib: Vec<VpnRouteAd>,
    messages: u64,
}

impl BgpVpnFabric {
    /// Creates a fabric over `pe_count` PEs.
    pub fn new(pe_count: usize, mode: DistributionMode) -> Self {
        BgpVpnFabric {
            pes: (0..pe_count)
                .map(|_| PeControl {
                    vrfs: Vec::new(),
                    label_space: LabelSpace::with_base(VPN_LABEL_BASE),
                    vpn_ilm: HashMap::new(),
                })
                .collect(),
            mode,
            rib: Vec::new(),
            messages: 0,
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// iBGP sessions implied by the distribution mode.
    pub fn session_count(&self) -> u64 {
        let p = self.pes.len() as u64;
        match self.mode {
            DistributionMode::FullMesh => p * (p.saturating_sub(1)) / 2,
            DistributionMode::RouteReflector => p,
        }
    }

    /// Update messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Creates a VRF on `pe` with the given RD and import/export targets.
    pub fn add_vrf(
        &mut self,
        pe: usize,
        rd: RouteDistinguisher,
        import: Vec<RouteTarget>,
        export: Vec<RouteTarget>,
    ) -> VrfHandle {
        let vrfs = &mut self.pes[pe].vrfs;
        vrfs.push(VrfControl { rd, import, export, local: Vec::new(), table: LpmTrie::new() });
        VrfHandle { pe, index: vrfs.len() - 1 }
    }

    /// Adds an import target to a VRF (extranet provisioning). Takes
    /// effect for subsequently distributed routes; call
    /// [`BgpVpnFabric::refresh_vrf`] to pull existing ones.
    pub fn add_import_target(&mut self, vrf: VrfHandle, rt: RouteTarget) {
        let v = &mut self.pes[vrf.pe].vrfs[vrf.index];
        if !v.import.contains(&rt) {
            v.import.push(rt);
        }
    }

    /// Adds an export target to a VRF (extranet provisioning). Takes
    /// effect for routes advertised afterwards; re-advertise existing
    /// prefixes to distribute them under the new policy.
    pub fn add_export_target(&mut self, vrf: VrfHandle, rt: RouteTarget) {
        let v = &mut self.pes[vrf.pe].vrfs[vrf.index];
        if !v.export.contains(&rt) {
            v.export.push(rt);
        }
    }

    /// Removes an import target from a VRF. Already-imported routes stay
    /// until the next [`BgpVpnFabric::refresh_vrf`] — exactly the stale
    /// state the static verifier exists to catch.
    pub fn remove_import_target(&mut self, vrf: VrfHandle, rt: RouteTarget) {
        self.pes[vrf.pe].vrfs[vrf.index].import.retain(|t| *t != rt);
    }

    /// The import route targets of a VRF (read by the isolation verifier).
    pub fn import_targets(&self, vrf: VrfHandle) -> &[RouteTarget] {
        &self.pes[vrf.pe].vrfs[vrf.index].import
    }

    /// The export route targets of a VRF (read by the isolation verifier).
    pub fn export_targets(&self, vrf: VrfHandle) -> &[RouteTarget] {
        &self.pes[vrf.pe].vrfs[vrf.index].export
    }

    /// The route distinguisher of a VRF.
    pub fn vrf_rd(&self, vrf: VrfHandle) -> RouteDistinguisher {
        self.pes[vrf.pe].vrfs[vrf.index].rd
    }

    /// Advertises `prefix` from `vrf` (a connected customer route learned
    /// from the attached CE): allocates a VPN label, installs the egress
    /// dispatch entry, and distributes the route to every importing VRF.
    /// Returns the VPN label.
    pub fn advertise(&mut self, vrf: VrfHandle, prefix: Prefix) -> u32 {
        let pe = &mut self.pes[vrf.pe];
        let label = pe.label_space.allocate();
        pe.vpn_ilm.insert(label, (vrf.index, prefix));
        let v = &mut pe.vrfs[vrf.index];
        v.local.push((prefix, label));
        let ad = VpnRouteAd {
            rd: v.rd,
            prefix,
            egress_pe: vrf.pe,
            vpn_label: label,
            export_targets: v.export.clone(),
            origin: vrf,
        };
        self.distribute(&ad);
        self.rib.push(ad);
        label
    }

    /// Withdraws a previously advertised prefix: removes it from every
    /// importer, frees the label, removes the dispatch entry — and, where
    /// another PE still advertises the same prefix (a multihomed site),
    /// fails importers over to the next-best path.
    pub fn withdraw(&mut self, vrf: VrfHandle, prefix: Prefix) {
        let Some(pos) = self.rib.iter().position(|ad| ad.origin == vrf && ad.prefix == prefix)
        else {
            return;
        };
        let ad = self.rib.swap_remove(pos);
        // Withdrawal costs the same messages as the announcement.
        self.messages += self.update_fanout(ad.egress_pe);
        // Remaining candidate advertisements for the same prefix.
        let alternatives: Vec<VpnRouteAd> =
            self.rib.iter().filter(|x| x.prefix == prefix).cloned().collect();
        for (pi, pe) in self.pes.iter_mut().enumerate() {
            for v in &mut pe.vrfs {
                let Some(existing) = v.table.get(ad.prefix) else {
                    continue;
                };
                let held_withdrawn = existing.rd == ad.rd
                    && existing.egress_pe == ad.egress_pe
                    && existing.vpn_label == ad.vpn_label
                    && pi != ad.egress_pe;
                if !held_withdrawn {
                    continue;
                }
                v.table.remove(ad.prefix);
                // Failover: best remaining importable advertisement.
                let best = alternatives
                    .iter()
                    .filter(|x| {
                        x.egress_pe != pi && v.import.iter().any(|t| x.export_targets.contains(t))
                    })
                    .min_by_key(|x| (x.egress_pe, x.vpn_label));
                if let Some(alt) = best {
                    v.table.insert(
                        prefix,
                        RemoteRoute {
                            egress_pe: alt.egress_pe,
                            vpn_label: alt.vpn_label,
                            rd: alt.rd,
                        },
                    );
                }
            }
        }
        let pe = &mut self.pes[vrf.pe];
        pe.vpn_ilm.remove(&ad.vpn_label);
        pe.label_space.release(ad.vpn_label);
        pe.vrfs[vrf.index].local.retain(|(p, _)| *p != prefix);
    }

    fn update_fanout(&self, from_pe: usize) -> u64 {
        let _ = from_pe;
        let p = self.pes.len() as u64;
        match self.mode {
            DistributionMode::FullMesh => p.saturating_sub(1),
            // PE → RR, then RR reflects to the other P−1 PEs.
            DistributionMode::RouteReflector => 1 + p.saturating_sub(1),
        }
    }

    /// BGP best-path tie-break for two advertisements of the same prefix
    /// importable by the same VRF (a multihomed site): deterministic —
    /// lowest egress PE, then lowest label.
    fn better(a: &RemoteRoute, b: &RemoteRoute) -> bool {
        (a.egress_pe, a.vpn_label) < (b.egress_pe, b.vpn_label)
    }

    fn distribute(&mut self, ad: &VpnRouteAd) {
        self.messages += self.update_fanout(ad.egress_pe);
        for (pi, pe) in self.pes.iter_mut().enumerate() {
            if pi == ad.egress_pe {
                continue; // local routes are reached directly, not tunneled
            }
            for v in &mut pe.vrfs {
                if v.import.iter().any(|t| ad.export_targets.contains(t)) {
                    let cand =
                        RemoteRoute { egress_pe: ad.egress_pe, vpn_label: ad.vpn_label, rd: ad.rd };
                    match v.table.get(ad.prefix) {
                        Some(existing) if !Self::better(&cand, existing) => {}
                        _ => {
                            v.table.insert(ad.prefix, cand);
                        }
                    }
                }
            }
        }
    }

    /// Re-sends every RIB route to a VRF (used after adding a VRF to an
    /// already-running VPN — the "new site joins" path of experiment M1).
    /// Returns the number of routes imported.
    pub fn refresh_vrf(&mut self, vrf: VrfHandle) -> usize {
        let mut imported = 0;
        let rib: Vec<VpnRouteAd> = self.rib.clone();
        for ad in &rib {
            if ad.egress_pe == vrf.pe {
                continue;
            }
            let v = &mut self.pes[vrf.pe].vrfs[vrf.index];
            if v.import.iter().any(|t| ad.export_targets.contains(t)) {
                let cand =
                    RemoteRoute { egress_pe: ad.egress_pe, vpn_label: ad.vpn_label, rd: ad.rd };
                match v.table.get(ad.prefix) {
                    Some(existing) if !Self::better(&cand, existing) => {}
                    _ => {
                        v.table.insert(ad.prefix, cand);
                    }
                }
                imported += 1;
                self.messages += 1; // RR replays one update
            }
        }
        imported
    }

    /// Re-applies `vrf`'s *current* import policy to its table: routes no
    /// longer covered by any import target are removed, newly importable
    /// RIB routes are added (best-path among candidates). This is the
    /// RT-policy delta path — a local Adj-RIB-In re-evaluation that costs
    /// zero update messages in either distribution mode, unlike
    /// [`BgpVpnFabric::refresh_vrf`] which only ever adds. Returns the
    /// `(added, removed)` prefix deltas with their routes, so a caller
    /// maintaining a data-plane mirror can apply exactly the change.
    #[allow(clippy::type_complexity)]
    pub fn refilter_vrf(
        &mut self,
        vrf: VrfHandle,
    ) -> (Vec<(Prefix, RemoteRoute)>, Vec<(Prefix, RemoteRoute)>) {
        // Desired state: best importable advertisement per prefix.
        let mut desired: Vec<(Prefix, RemoteRoute)> = Vec::new();
        {
            let v = &self.pes[vrf.pe].vrfs[vrf.index];
            for ad in &self.rib {
                if ad.egress_pe == vrf.pe {
                    continue;
                }
                if !v.import.iter().any(|t| ad.export_targets.contains(t)) {
                    continue;
                }
                let cand =
                    RemoteRoute { egress_pe: ad.egress_pe, vpn_label: ad.vpn_label, rd: ad.rd };
                match desired.iter_mut().find(|(p, _)| *p == ad.prefix) {
                    Some((_, existing)) if !Self::better(&cand, existing) => {}
                    Some((_, existing)) => *existing = cand,
                    None => desired.push((ad.prefix, cand)),
                }
            }
        }
        let v = &mut self.pes[vrf.pe].vrfs[vrf.index];
        let current: Vec<(Prefix, RemoteRoute)> = v.table.iter().map(|(p, r)| (p, *r)).collect();
        let mut removed = Vec::new();
        for (p, r) in &current {
            if !desired.iter().any(|(dp, _)| dp == p) {
                v.table.remove(*p);
                removed.push((*p, *r));
            }
        }
        let mut added = Vec::new();
        for (p, r) in desired {
            match v.table.get(p) {
                Some(existing) if !Self::better(&r, existing) => {}
                _ => {
                    v.table.insert(p, r);
                    added.push((p, r));
                }
            }
        }
        (added, removed)
    }

    /// The imported remote-route table of a VRF.
    pub fn routes(&self, vrf: VrfHandle) -> &LpmTrie<RemoteRoute> {
        &self.pes[vrf.pe].vrfs[vrf.index].table
    }

    /// The locally originated `(prefix, vpn_label)` pairs of a VRF.
    pub fn local_routes(&self, vrf: VrfHandle) -> &[(Prefix, u32)] {
        &self.pes[vrf.pe].vrfs[vrf.index].local
    }

    /// Egress dispatch: which `(vrf index, prefix)` an incoming VPN label
    /// on `pe` belongs to.
    pub fn vpn_label_owner(&self, pe: usize, label: u32) -> Option<(usize, Prefix)> {
        self.pes[pe].vpn_ilm.get(&label).copied()
    }

    /// All `(label, vrf index, prefix)` dispatch entries of a PE.
    pub fn vpn_ilm(&self, pe: usize) -> impl Iterator<Item = (u32, usize, Prefix)> + '_ {
        self.pes[pe].vpn_ilm.iter().map(|(&l, &(v, p))| (l, v, p))
    }

    /// Per-PE control state size: (VRFs, imported routes, live VPN labels).
    /// The T1 state metric.
    pub fn pe_state(&self, pe: usize) -> (usize, usize, u64) {
        let p = &self.pes[pe];
        let routes = p.vrfs.iter().map(|v| v.table.len() + v.local.len()).sum();
        (p.vrfs.len(), routes, p.label_space.live())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::pfx;

    const RT_A: RouteTarget = RouteTarget(100);
    const RT_B: RouteTarget = RouteTarget(200);

    fn rd(n: u32) -> RouteDistinguisher {
        RouteDistinguisher::new(65000, n)
    }

    /// Two VPNs with byte-identical address spaces over 3 PEs: imports must
    /// stay strictly separate.
    #[test]
    fn overlapping_address_spaces_stay_separate() {
        let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
        let a0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        let a1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
        let b0 = f.add_vrf(0, rd(2), vec![RT_B], vec![RT_B]);
        let b2 = f.add_vrf(2, rd(2), vec![RT_B], vec![RT_B]);

        let la = f.advertise(a1, pfx("10.1.0.0/16"));
        let lb = f.advertise(b2, pfx("10.1.0.0/16")); // same prefix, other VPN

        let ra = f.routes(a0).lookup(pfx("10.1.0.0/16").addr()).copied().unwrap();
        assert_eq!(ra.egress_pe, 1);
        assert_eq!(ra.vpn_label, la);
        let rb = f.routes(b0).lookup(pfx("10.1.0.0/16").addr()).copied().unwrap();
        assert_eq!(rb.egress_pe, 2);
        assert_eq!(rb.vpn_label, lb);
        assert_eq!(ra.rd, rd(1));
        assert_eq!(rb.rd, rd(2));

        // No cross-pollination: VPN A's VRF on PE1 must not have B's route.
        assert!(f.routes(a1).is_empty());
        assert!(f.routes(b2).is_empty());
    }

    #[test]
    fn labels_dispatch_to_the_right_vrf_at_egress() {
        let mut f = BgpVpnFabric::new(2, DistributionMode::RouteReflector);
        let a = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        let b = f.add_vrf(0, rd(2), vec![RT_B], vec![RT_B]);
        let la = f.advertise(a, pfx("10.0.0.0/8"));
        let lb = f.advertise(b, pfx("10.0.0.0/8"));
        assert_ne!(la, lb);
        assert_eq!(f.vpn_label_owner(0, la), Some((a.index, pfx("10.0.0.0/8"))));
        assert_eq!(f.vpn_label_owner(0, lb), Some((b.index, pfx("10.0.0.0/8"))));
        assert_eq!(f.vpn_label_owner(1, la), None);
    }

    #[test]
    fn session_counts_by_mode() {
        let mesh = BgpVpnFabric::new(10, DistributionMode::FullMesh);
        assert_eq!(mesh.session_count(), 45);
        let rr = BgpVpnFabric::new(10, DistributionMode::RouteReflector);
        assert_eq!(rr.session_count(), 10);
    }

    #[test]
    fn message_counting_per_update() {
        let mut f = BgpVpnFabric::new(5, DistributionMode::RouteReflector);
        let v = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        f.advertise(v, pfx("192.168.0.0/24"));
        // PE → RR (1) + RR → 4 other PEs.
        assert_eq!(f.messages(), 5);

        let mut m = BgpVpnFabric::new(5, DistributionMode::FullMesh);
        let v = m.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        m.advertise(v, pfx("192.168.0.0/24"));
        assert_eq!(m.messages(), 4);
    }

    #[test]
    fn withdraw_removes_route_and_frees_label() {
        let mut f = BgpVpnFabric::new(2, DistributionMode::RouteReflector);
        let a0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        let a1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
        let l = f.advertise(a1, pfx("172.16.0.0/12"));
        assert!(f.routes(a0).lookup(pfx("172.16.0.0/12").addr()).is_some());
        f.withdraw(a1, pfx("172.16.0.0/12"));
        assert!(f.routes(a0).lookup(pfx("172.16.0.0/12").addr()).is_none());
        assert_eq!(f.vpn_label_owner(1, l), None);
        assert_eq!(f.pe_state(1).2, 0, "label freed");
        // Idempotent on a second withdraw.
        f.withdraw(a1, pfx("172.16.0.0/12"));
    }

    #[test]
    fn hub_and_spoke_via_asymmetric_targets() {
        // Spokes export RT_A, import RT_B; hub exports RT_B, imports RT_A:
        // spokes see only the hub, the hub sees all spokes.
        let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
        let hub = f.add_vrf(0, rd(10), vec![RT_A], vec![RT_B]);
        let s1 = f.add_vrf(1, rd(11), vec![RT_B], vec![RT_A]);
        let s2 = f.add_vrf(2, rd(12), vec![RT_B], vec![RT_A]);
        f.advertise(hub, pfx("10.0.0.0/24"));
        f.advertise(s1, pfx("10.1.0.0/24"));
        f.advertise(s2, pfx("10.2.0.0/24"));
        assert_eq!(f.routes(hub).len(), 2, "hub imports both spokes");
        assert_eq!(f.routes(s1).len(), 1, "spoke sees only the hub");
        assert!(
            f.routes(s1).lookup(pfx("10.2.0.0/24").addr()).is_none(),
            "no spoke-to-spoke route"
        );
    }

    #[test]
    fn late_joining_vrf_catches_up_with_refresh() {
        let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
        let a0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        f.advertise(a0, pfx("10.0.0.0/24"));
        let a1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
        f.advertise(a1, pfx("10.1.0.0/24"));
        // The late VRF missed the first update until refreshed.
        let late = f.add_vrf(2, rd(1), vec![RT_A], vec![RT_A]);
        assert!(f.routes(late).is_empty());
        assert_eq!(f.refresh_vrf(late), 2);
        assert_eq!(f.routes(late).len(), 2);
    }

    /// A site advertised from two PEs (multihoming): importers pick the
    /// deterministic best path, and a withdraw fails them over to the
    /// survivor.
    #[test]
    fn multihomed_prefix_best_path_and_failover() {
        let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
        let v0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]); // importer
        let v1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]); // primary home
        let v2 = f.add_vrf(2, rd(1), vec![RT_A], vec![RT_A]); // backup home
        let p = pfx("10.5.0.0/16");
        let l1 = f.advertise(v1, p);
        let l2 = f.advertise(v2, p);
        // Best path: lowest egress PE (1) regardless of arrival order.
        let r = f.routes(v0).lookup(p.addr()).copied().unwrap();
        assert_eq!((r.egress_pe, r.vpn_label), (1, l1));
        // Primary withdraws: importer fails over to PE2.
        f.withdraw(v1, p);
        let r = f.routes(v0).lookup(p.addr()).copied().unwrap();
        assert_eq!((r.egress_pe, r.vpn_label), (2, l2));
        // Backup withdraws too: the prefix is gone.
        f.withdraw(v2, p);
        assert!(f.routes(v0).lookup(p.addr()).is_none());
    }

    /// Best-path choice is independent of advertisement order.
    #[test]
    fn multihoming_is_order_independent() {
        let order_a = {
            let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
            let v0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
            let v1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
            let v2 = f.add_vrf(2, rd(1), vec![RT_A], vec![RT_A]);
            f.advertise(v1, pfx("10.5.0.0/16"));
            f.advertise(v2, pfx("10.5.0.0/16"));
            f.routes(v0).lookup(pfx("10.5.0.0/16").addr()).copied().unwrap().egress_pe
        };
        let order_b = {
            let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
            let v0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
            let v1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
            let v2 = f.add_vrf(2, rd(1), vec![RT_A], vec![RT_A]);
            f.advertise(v2, pfx("10.5.0.0/16"));
            f.advertise(v1, pfx("10.5.0.0/16"));
            f.routes(v0).lookup(pfx("10.5.0.0/16").addr()).copied().unwrap().egress_pe
        };
        assert_eq!(order_a, order_b);
        assert_eq!(order_a, 1);
    }

    /// Re-filtering after an RT change removes now-unimportable routes and
    /// pulls newly importable ones — and reports exactly the delta.
    #[test]
    fn refilter_applies_import_policy_deltas() {
        let mut f = BgpVpnFabric::new(3, DistributionMode::RouteReflector);
        let a0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        let a1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
        let b2 = f.add_vrf(2, rd(2), vec![RT_B], vec![RT_B]);
        f.advertise(a1, pfx("10.1.0.0/16"));
        f.advertise(b2, pfx("10.9.0.0/16"));
        assert_eq!(f.routes(a0).len(), 1);

        // Import RT_B too: the refilter pulls b2's route without messages.
        let before = f.messages();
        f.add_import_target(a0, RT_B);
        let (added, removed) = f.refilter_vrf(a0);
        assert_eq!(f.messages(), before, "RT policy is local, not an update");
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].0, pfx("10.9.0.0/16"));
        assert!(removed.is_empty());
        assert_eq!(f.routes(a0).len(), 2);

        // Drop RT_A: its route leaves and the delta says so.
        f.remove_import_target(a0, RT_A);
        let (added, removed) = f.refilter_vrf(a0);
        assert!(added.is_empty());
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].0, pfx("10.1.0.0/16"));
        assert_eq!(f.routes(a0).len(), 1);

        // Idempotent once settled.
        let (added, removed) = f.refilter_vrf(a0);
        assert!(added.is_empty() && removed.is_empty());
    }

    #[test]
    fn pe_state_counts() {
        let mut f = BgpVpnFabric::new(2, DistributionMode::RouteReflector);
        let a0 = f.add_vrf(0, rd(1), vec![RT_A], vec![RT_A]);
        let a1 = f.add_vrf(1, rd(1), vec![RT_A], vec![RT_A]);
        f.advertise(a0, pfx("10.0.0.0/24"));
        f.advertise(a1, pfx("10.1.0.0/24"));
        let (vrfs, routes, labels) = f.pe_state(0);
        assert_eq!(vrfs, 1);
        assert_eq!(routes, 2, "one local + one imported");
        assert_eq!(labels, 1);
    }
}
