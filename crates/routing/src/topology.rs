//! The weighted backbone graph shared by IGP, LDP, and TE.

/// Attributes of one (undirected) backbone link.
#[derive(Clone, Copy, Debug)]
pub struct LinkAttrs {
    /// IGP metric (cost).
    pub cost: u64,
    /// Physical capacity in bits/s (used by TE and by the simulator
    /// builder when materializing the link).
    pub capacity_bps: u64,
}

impl Default for LinkAttrs {
    fn default() -> Self {
        LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 }
    }
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    peer: usize,
    attrs: LinkAttrs,
    /// Global link index (both directions share it).
    link: usize,
}

/// An undirected weighted multigraph over dense node ids.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    adj: Vec<Vec<Edge>>,
    links: Vec<(usize, usize, LinkAttrs)>,
}

impl Topology {
    /// Creates a topology with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Topology { adj: vec![Vec::new(); n], links: Vec::new() }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds an undirected link, returning its id.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or a self-loop.
    pub fn add_link(&mut self, u: usize, v: usize, attrs: LinkAttrs) -> usize {
        assert!(u < self.adj.len() && v < self.adj.len(), "unknown node");
        assert_ne!(u, v, "self-loops are not allowed");
        let id = self.links.len();
        self.links.push((u, v, attrs));
        self.adj[u].push(Edge { peer: v, attrs, link: id });
        self.adj[v].push(Edge { peer: u, attrs, link: id });
        id
    }

    /// The endpoints and attributes of link `id`.
    pub fn link(&self, id: usize) -> (usize, usize, LinkAttrs) {
        self.links[id]
    }

    /// Iterates `(peer, attrs, link_id)` over `u`'s incident links, in
    /// insertion order (the order defines `u`'s interface numbering).
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, LinkAttrs, usize)> + '_ {
        self.adj[u].iter().map(|e| (e.peer, e.attrs, e.link))
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The adjacency as plain neighbor lists (what `netsim-mpls`'s LDP
    /// expects; position in the list = interface index).
    pub fn adjacency_lists(&self) -> Vec<Vec<usize>> {
        self.adj.iter().map(|edges| edges.iter().map(|e| e.peer).collect()).collect()
    }

    /// The interface index (position in `u`'s neighbor list) of the first
    /// link from `u` to `v`.
    ///
    /// # Panics
    /// Panics if `v` is not adjacent to `u`.
    pub fn iface_toward(&self, u: usize, v: usize) -> usize {
        self.adj[u]
            .iter()
            .position(|e| e.peer == v)
            .unwrap_or_else(|| panic!("{v} is not adjacent to {u}"))
    }

    /// Builds a ring of `n` nodes (convenience for tests/experiments).
    pub fn ring(n: usize, attrs: LinkAttrs) -> Self {
        let mut t = Topology::new(n);
        for i in 0..n {
            t.add_link(i, (i + 1) % n, attrs);
        }
        t
    }

    /// Builds a full mesh of `n` nodes.
    pub fn full_mesh(n: usize, attrs: LinkAttrs) -> Self {
        let mut t = Topology::new(n);
        for i in 0..n {
            for j in i + 1..n {
                t.add_link(i, j, attrs);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_bookkeeping() {
        let mut t = Topology::new(3);
        let l0 = t.add_link(0, 1, LinkAttrs { cost: 5, capacity_bps: 10 });
        let l1 = t.add_link(1, 2, LinkAttrs::default());
        assert_eq!((l0, l1), (0, 1));
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.iface_toward(0, 1), 0);
        assert_eq!(t.iface_toward(1, 0), 0);
        assert_eq!(t.iface_toward(1, 2), 1);
        let (u, v, a) = t.link(0);
        assert_eq!((u, v, a.cost), (0, 1, 5));
    }

    #[test]
    fn adjacency_lists_match_iface_order() {
        let mut t = Topology::new(3);
        t.add_link(0, 2, LinkAttrs::default());
        t.add_link(0, 1, LinkAttrs::default());
        let adj = t.adjacency_lists();
        assert_eq!(adj[0], vec![2, 1]);
        assert_eq!(t.iface_toward(0, 1), 1);
    }

    #[test]
    fn ring_and_mesh_shapes() {
        let r = Topology::ring(5, LinkAttrs::default());
        assert_eq!(r.link_count(), 5);
        assert!((0..5).all(|i| r.degree(i) == 2));
        let m = Topology::full_mesh(5, LinkAttrs::default());
        assert_eq!(m.link_count(), 10);
        assert!((0..5).all(|i| m.degree(i) == 4));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        Topology::new(2).add_link(1, 1, LinkAttrs::default());
    }
}
