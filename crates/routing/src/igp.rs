//! Link-state interior routing: SPF computation and a flooding cost model.
//!
//! The paper's §2.2 observes that "routing protocols like OSPF used to build
//! routing tables do not exchange QoS information" — the IGP here computes
//! pure min-cost paths (experiment Q3 contrasts that against CSPF from
//! `netsim-te`, which *does* see resources).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::topology::Topology;

/// The SPF result rooted at one node.
#[derive(Clone, Debug)]
pub struct SpfTree {
    /// Root node.
    pub root: usize,
    /// Total cost to each node (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// First hop (neighbor of the root) toward each node; `None` for the
    /// root itself and unreachable nodes.
    pub next_hop: Vec<Option<usize>>,
    /// All equal-cost first hops toward each node (ECMP set; the single
    /// `next_hop` is the smallest id, making runs deterministic).
    pub ecmp: Vec<Vec<usize>>,
}

impl SpfTree {
    /// Whether `dst` is reachable from the root.
    pub fn reachable(&self, dst: usize) -> bool {
        self.dist[dst] != u64::MAX
    }

    /// Incremental-SPF admission test: could the state change of `link`
    /// (`down` = failure, otherwise repair) alter this tree? A link
    /// failure matters only if the link lay on *some* shortest path from
    /// the root — i.e. it is tight in one direction
    /// (`dist[a] + cost == dist[b]` or vice versa). A repair matters only
    /// if the restored link offers a path at least as good as what either
    /// endpoint already has (`dist[a] + cost <= dist[b]` or vice versa;
    /// equality included so equal-cost sets regain their ECMP members).
    /// When the test returns false the tree is provably unaffected and
    /// the full Dijkstra rerun can be skipped.
    pub fn affected_by(&self, topo: &Topology, link: usize, down: bool) -> bool {
        let (a, b, attrs) = topo.link(link);
        let (da, db) = (self.dist[a], self.dist[b]);
        if down {
            (da != u64::MAX && da.saturating_add(attrs.cost) == db)
                || (db != u64::MAX && db.saturating_add(attrs.cost) == da)
        } else {
            (da != u64::MAX && da.saturating_add(attrs.cost) <= db)
                || (db != u64::MAX && db.saturating_add(attrs.cost) <= da)
        }
    }
}

/// The link-state IGP over a topology: per-node SPF trees plus an LSA
/// flooding cost estimate.
#[derive(Clone, Debug)]
pub struct Igp {
    trees: Vec<SpfTree>,
    lsa_messages: u64,
}

impl Igp {
    /// Runs SPF from every node and tallies the flooding cost: each node
    /// originates one LSA which is flooded once over every link (the
    /// standard reliable-flooding lower bound, 2·E messages per LSA).
    pub fn converge(topo: &Topology) -> Igp {
        Self::converge_filtered(topo, &|_| true)
    }

    /// Like [`Igp::converge`], but links for which `usable(link_id)` is
    /// false are ignored — the reconvergence path after a link failure.
    pub fn converge_filtered(topo: &Topology, usable: &dyn Fn(usize) -> bool) -> Igp {
        let n = topo.node_count();
        let live_links = (0..topo.link_count()).filter(|&l| usable(l)).count() as u64;
        let trees = (0..n).map(|r| spf_filtered(topo, r, usable)).collect();
        let lsa_messages = (n as u64) * 2 * live_links;
        Igp { trees, lsa_messages }
    }

    /// The SPF tree rooted at `node`.
    pub fn tree(&self, node: usize) -> &SpfTree {
        &self.trees[node]
    }

    /// First hop on the min-cost path `from → to` (deterministic ECMP
    /// tie-break: lowest neighbor id).
    pub fn next_hop(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            None
        } else {
            self.trees[from].next_hop[to]
        }
    }

    /// Total cost of the min-cost path, if reachable.
    pub fn path_cost(&self, from: usize, to: usize) -> Option<u64> {
        let d = self.trees[from].dist[to];
        (d != u64::MAX).then_some(d)
    }

    /// The full min-cost node path `from → … → to`, if reachable.
    pub fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if !self.trees[from].reachable(to) {
            return None;
        }
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            at = self.next_hop(at, to)?;
            path.push(at);
            if path.len() > self.trees.len() {
                return None; // inconsistent trees would loop; fail loudly
            }
        }
        Some(path)
    }

    /// LSA messages flooded during convergence (M1 metric).
    pub fn lsa_messages(&self) -> u64 {
        self.lsa_messages
    }
}

/// Dijkstra from `root` with deterministic tie-breaking and ECMP first-hop
/// tracking.
pub fn spf(topo: &Topology, root: usize) -> SpfTree {
    spf_filtered(topo, root, &|_| true)
}

/// [`spf`] restricted to links for which `usable(link_id)` holds.
pub fn spf_filtered(topo: &Topology, root: usize, usable: &dyn Fn(usize) -> bool) -> SpfTree {
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut first_hops: Vec<Vec<usize>> = vec![Vec::new(); n];
    dist[root] = 0;
    // (cost, node); BinaryHeap min via Reverse. Ties resolve by node id,
    // which keeps runs deterministic.
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, root)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, attrs, link) in topo.neighbors(u) {
            if !usable(link) {
                continue;
            }
            let nd = d.saturating_add(attrs.cost);
            // First hop set toward v through u.
            let through: Vec<usize> = if u == root { vec![v] } else { first_hops[u].clone() };
            if nd < dist[v] {
                dist[v] = nd;
                first_hops[v] = through;
                heap.push(Reverse((nd, v)));
            } else if nd == dist[v] && nd != u64::MAX {
                for h in through {
                    if !first_hops[v].contains(&h) {
                        first_hops[v].push(h);
                    }
                }
            }
        }
    }
    let next_hop = first_hops
        .iter()
        .enumerate()
        .map(|(v, hops)| if v == root { None } else { hops.iter().copied().min() })
        .collect();
    for h in &mut first_hops {
        h.sort_unstable();
    }
    SpfTree { root, dist, next_hop, ecmp: first_hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkAttrs;

    fn attrs(cost: u64) -> LinkAttrs {
        LinkAttrs { cost, capacity_bps: 1 }
    }

    /// The classic "fish": 0-1 cheap direct path vs longer detour.
    fn diamond() -> Topology {
        let mut t = Topology::new(4);
        t.add_link(0, 1, attrs(1));
        t.add_link(1, 3, attrs(1));
        t.add_link(0, 2, attrs(1));
        t.add_link(2, 3, attrs(5));
        t
    }

    #[test]
    fn spf_prefers_min_cost() {
        let igp = Igp::converge(&diamond());
        assert_eq!(igp.path(0, 3), Some(vec![0, 1, 3]));
        assert_eq!(igp.path_cost(0, 3), Some(2));
        assert_eq!(igp.next_hop(0, 3), Some(1));
        assert_eq!(igp.next_hop(3, 0), Some(1));
    }

    #[test]
    fn equal_cost_paths_collected_deterministically() {
        let mut t = Topology::new(4);
        t.add_link(0, 1, attrs(1));
        t.add_link(0, 2, attrs(1));
        t.add_link(1, 3, attrs(1));
        t.add_link(2, 3, attrs(1));
        let igp = Igp::converge(&t);
        assert_eq!(igp.tree(0).ecmp[3], vec![1, 2]);
        // Deterministic single choice: smallest id.
        assert_eq!(igp.next_hop(0, 3), Some(1));
        assert_eq!(igp.path_cost(0, 3), Some(2));
    }

    #[test]
    fn unreachable_nodes() {
        let mut t = Topology::new(3);
        t.add_link(0, 1, attrs(1));
        let igp = Igp::converge(&t);
        assert!(!igp.tree(0).reachable(2));
        assert_eq!(igp.path(0, 2), None);
        assert_eq!(igp.next_hop(0, 2), None);
        assert_eq!(igp.path_cost(0, 2), None);
    }

    #[test]
    fn self_paths_are_trivial() {
        let igp = Igp::converge(&diamond());
        assert_eq!(igp.path(2, 2), Some(vec![2]));
        assert_eq!(igp.next_hop(2, 2), None);
        assert_eq!(igp.path_cost(2, 2), Some(0));
    }

    #[test]
    fn costs_are_symmetric_on_undirected_graph() {
        let t = Topology::ring(7, attrs(3));
        let igp = Igp::converge(&t);
        for a in 0..7 {
            for b in 0..7 {
                assert_eq!(igp.path_cost(a, b), igp.path_cost(b, a));
            }
        }
    }

    #[test]
    fn flooding_cost_model() {
        let t = Topology::ring(10, attrs(1));
        let igp = Igp::converge(&t);
        // 10 LSAs × 2 × 10 links.
        assert_eq!(igp.lsa_messages(), 200);
    }

    #[test]
    fn affected_by_skips_irrelevant_links() {
        // diamond: links 0:(0-1,c1) 1:(1-3,c1) 2:(0-2,c1) 3:(2-3,c5).
        let t = diamond();
        let tree = spf(&t, 0);
        // The shortest path 0→3 runs over links 0 and 1: cutting either
        // affects the tree.
        assert!(tree.affected_by(&t, 0, true));
        assert!(tree.affected_by(&t, 1, true));
        // Link 3 (2-3, cost 5) is on no shortest path from 0: dist[2]=1,
        // dist[3]=2, 1+5 != 2 — a failure there cannot change the tree.
        assert!(!tree.affected_by(&t, 3, true));

        // After cutting link 1 the detour is in use; repairing link 1
        // (offering 0→3 at cost 2 < 6) affects the tree, while
        // "repairing" the already-loose link 3 at its current cost does:
        // dist[2]=1, 1+5=6 == dist[3]=6 → equality recomputes (ECMP).
        let cut = spf_filtered(&t, 0, &|l| l != 1);
        assert_eq!(cut.dist[3], 6);
        assert!(cut.affected_by(&t, 1, false));
        assert!(cut.affected_by(&t, 3, false));
    }

    #[test]
    fn affected_by_handles_unreachable_endpoints() {
        let mut t = Topology::new(3);
        t.add_link(0, 1, attrs(1)); // link 0
        t.add_link(1, 2, attrs(1)); // link 1
                                    // Tree computed with link 1 dead: node 2 unreachable.
        let tree = spf_filtered(&t, 0, &|l| l != 1);
        assert!(!tree.reachable(2));
        // Failing the already-unusable far link cannot affect the tree…
        assert!(!tree.affected_by(&t, 1, true));
        // …but repairing it (reaching node 2 at all) must.
        assert!(tree.affected_by(&t, 1, false));
    }

    #[test]
    fn paths_follow_next_hops_consistently() {
        // Random-ish fixed topology; every path must terminate and match
        // its advertised cost.
        let mut t = Topology::new(8);
        let edges = [
            (0, 1, 2),
            (1, 2, 2),
            (2, 3, 1),
            (3, 4, 4),
            (4, 5, 1),
            (5, 6, 2),
            (6, 7, 1),
            (7, 0, 3),
            (1, 5, 7),
            (2, 6, 1),
        ];
        for (u, v, c) in edges {
            t.add_link(u, v, attrs(c));
        }
        let igp = Igp::converge(&t);
        for a in 0..8 {
            for b in 0..8 {
                let p = igp.path(a, b).expect("connected graph");
                assert_eq!(p[0], a);
                assert_eq!(*p.last().unwrap(), b);
                let mut cost = 0;
                for w in p.windows(2) {
                    cost += edges
                        .iter()
                        .filter(|&&(x, y, _)| (x, y) == (w[0], w[1]) || (y, x) == (w[0], w[1]))
                        .map(|&(_, _, c)| c)
                        .min()
                        .unwrap();
                }
                assert_eq!(Some(cost), igp.path_cost(a, b), "{a}->{b} via {p:?}");
            }
        }
    }
}
