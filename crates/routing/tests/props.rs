//! Property-based tests for routing: SPF against a Floyd–Warshall oracle
//! on random weighted graphs, and BGP/VPN fabric invariants under random
//! VRF/route scripts.

use netsim_net::{Ip, Prefix};
use netsim_routing::{
    BgpVpnFabric, DistributionMode, Igp, LinkAttrs, RouteDistinguisher, RouteTarget, Topology,
};
use proptest::prelude::*;

/// Random connected weighted topology: spanning tree + extras.
fn arb_topo(max_n: usize) -> impl Strategy<Value = Topology> {
    (2..max_n)
        .prop_flat_map(|n| {
            let tree = proptest::collection::vec((any::<u64>(), 1u64..20), n - 1);
            let extra = proptest::collection::vec((0..n, 0..n, 1u64..20), 0..n);
            (Just(n), tree, extra)
        })
        .prop_map(|(n, tree, extra)| {
            let mut t = Topology::new(n);
            for (i, (r, cost)) in tree.iter().enumerate() {
                let u = i + 1;
                let v = (*r as usize) % u;
                t.add_link(u, v, LinkAttrs { cost: *cost, capacity_bps: 1 });
            }
            for (u, v, cost) in extra {
                if u != v {
                    t.add_link(u, v, LinkAttrs { cost, capacity_bps: 1 });
                }
            }
            t
        })
}

fn floyd_warshall(t: &Topology) -> Vec<Vec<u64>> {
    let n = t.node_count();
    let mut d = vec![vec![u64::MAX / 4; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for l in 0..t.link_count() {
        let (u, v, a) = t.link(l);
        d[u][v] = d[u][v].min(a.cost);
        d[v][u] = d[v][u].min(a.cost);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SPF distances match the Floyd–Warshall oracle, and every reported
    /// path is consistent with its advertised cost.
    #[test]
    #[allow(clippy::needless_range_loop)] // oracle is indexed by (a, b)
    fn spf_matches_floyd_warshall(topo in arb_topo(10)) {
        let oracle = floyd_warshall(&topo);
        let igp = Igp::converge(&topo);
        let n = topo.node_count();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(igp.path_cost(a, b), Some(oracle[a][b]), "{} -> {}", a, b);
                let path = igp.path(a, b).expect("connected");
                // Sum edge costs along the path and compare.
                let mut cost = 0u64;
                for w in path.windows(2) {
                    let c = topo
                        .neighbors(w[0])
                        .filter(|&(peer, _, _)| peer == w[1])
                        .map(|(_, attrs, _)| attrs.cost)
                        .min()
                        .expect("adjacent");
                    cost += c;
                }
                prop_assert_eq!(cost, oracle[a][b]);
            }
        }
    }

    /// ECMP sets always contain the chosen next hop, and the chosen hop is
    /// the minimum (determinism contract).
    #[test]
    fn ecmp_contains_next_hop(topo in arb_topo(9)) {
        let igp = Igp::converge(&topo);
        let n = topo.node_count();
        for a in 0..n {
            let tree = igp.tree(a);
            for b in 0..n {
                if a == b {
                    continue;
                }
                let nh = tree.next_hop[b].expect("connected");
                prop_assert!(tree.ecmp[b].contains(&nh));
                prop_assert_eq!(Some(&nh), tree.ecmp[b].iter().min());
            }
        }
    }

    /// BGP/VPN fabric: a VRF imports a route iff the route's export
    /// targets intersect its import targets — over random target sets.
    #[test]
    fn import_iff_rt_intersection(
        import_bits in 0u8..16,
        export_bits in 1u8..16,
        pe_count in 2usize..5,
    ) {
        let rts = |bits: u8| -> Vec<RouteTarget> {
            (0..4).filter(|b| bits & (1 << b) != 0).map(|b| RouteTarget(b as u64)).collect()
        };
        let mut f = BgpVpnFabric::new(pe_count, DistributionMode::RouteReflector);
        let importer = f.add_vrf(0, RouteDistinguisher::new(65000, 1), rts(import_bits), vec![]);
        let exporter =
            f.add_vrf(1, RouteDistinguisher::new(65000, 2), vec![], rts(export_bits));
        let p: Prefix = "192.168.0.0/24".parse().unwrap();
        f.advertise(exporter, p);
        let should_import = import_bits & export_bits != 0;
        prop_assert_eq!(f.routes(importer).lookup(p.addr()).is_some(), should_import);
    }

    /// Advertise-then-withdraw leaves every VRF table exactly as before,
    /// and label accounting returns to baseline, for any interleaving of
    /// other routes.
    #[test]
    fn withdraw_restores_state(
        others in proptest::collection::vec((0u8..4, any::<u16>()), 0..12),
        target_pe in 0u8..4,
    ) {
        let rt = RouteTarget(9);
        let rd = RouteDistinguisher::new(65000, 9);
        let build = |with_extra: bool| {
            let mut f = BgpVpnFabric::new(4, DistributionMode::RouteReflector);
            let handles: Vec<_> = (0..4).map(|pe| f.add_vrf(pe, rd, vec![rt], vec![rt])).collect();
            for (pe, third) in &others {
                let p = Prefix::new(Ip(0xC0A8_0000 | (u32::from(*third) << 8)), 24);
                f.advertise(handles[*pe as usize % 4], p);
            }
            if with_extra {
                let extra: Prefix = "172.16.0.0/12".parse().unwrap();
                let h = handles[target_pe as usize % 4];
                f.advertise(h, extra);
                f.withdraw(h, extra);
            }
            let tables: Vec<Vec<(Prefix, usize, u32)>> = handles
                .iter()
                .map(|&h| {
                    let mut v: Vec<(Prefix, usize, u32)> = f
                        .routes(h)
                        .iter()
                        .map(|(p, r)| (p, r.egress_pe, r.vpn_label))
                        .collect();
                    v.sort();
                    v
                })
                .collect();
            let labels: Vec<u64> = (0..4).map(|pe| f.pe_state(pe).2).collect();
            (tables, labels)
        };
        // Duplicate prefixes in `others` advertise twice; fine — both runs
        // do the same thing, so state must still match.
        prop_assert_eq!(build(false), build(true));
    }

    /// Session-count algebra: full mesh is quadratic, RR linear, and both
    /// distribute to the same importers.
    #[test]
    fn distribution_modes_agree_on_reachability(pe_count in 2usize..6, n_routes in 1usize..8) {
        let rt = RouteTarget(1);
        let rd = RouteDistinguisher::new(65000, 1);
        let run = |mode| {
            let mut f = BgpVpnFabric::new(pe_count, mode);
            let handles: Vec<_> =
                (0..pe_count).map(|pe| f.add_vrf(pe, rd, vec![rt], vec![rt])).collect();
            for i in 0..n_routes {
                let p = Prefix::new(Ip(0x0A00_0000 | ((i as u32) << 8)), 24);
                f.advertise(handles[i % pe_count], p);
            }
            let routes: Vec<usize> = handles.iter().map(|&h| f.routes(h).len()).collect();
            (routes, f.session_count())
        };
        let (mesh_routes, mesh_sessions) = run(DistributionMode::FullMesh);
        let (rr_routes, rr_sessions) = run(DistributionMode::RouteReflector);
        prop_assert_eq!(mesh_routes, rr_routes, "reachability must not depend on distribution");
        prop_assert_eq!(mesh_sessions, (pe_count * (pe_count - 1) / 2) as u64);
        prop_assert_eq!(rr_sessions, pe_count as u64);
    }
}
