//! Property-based tests for the simulator: conservation and timing laws
//! that must hold for any traffic pattern and any link configuration.

use netsim_net::addr::ip;
use netsim_net::{Dscp, Packet, Pkt};
use netsim_qos::SEC;
use netsim_sim::node::BlackHole;
use netsim_sim::{CbrSource, Ctx, IfaceId, LinkConfig, LinkId, Network, Node, Sink, SourceConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation over a single link: packets transmitted + dropped at
    /// the egress equals packets offered; everything transmitted arrives.
    #[test]
    fn link_conserves_packets(
        payloads in proptest::collection::vec(0usize..1400, 1..80),
        rate_mbps in 1u64..1000,
        delay_us in 0u64..10_000,
        cap_kb in 1usize..64,
    ) {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Sink::new()));
        let cfg = LinkConfig::new(rate_mbps * 1_000_000, delay_us * 1_000).fifo_cap(cap_kb * 1024);
        let (l, ia, _) = net.connect(a, b, cfg);
        let offered = payloads.len() as u64;
        let mut offered_bytes = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            let mut pkt = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, *p);
            pkt.meta.seq = i as u64;
            offered_bytes += pkt.wire_len() as u64;
            net.inject(a, ia, pkt);
        }
        net.run_to_quiescence();
        let st = net.link_stats(l, 0);
        prop_assert_eq!(st.tx_packets + st.dropped, offered);
        let sink = net.node_ref::<Sink>(b);
        prop_assert_eq!(sink.total_packets, st.tx_packets);
        prop_assert!(st.tx_bytes <= offered_bytes);
        // Busy time is bytes × 8 / rate, up to one floored nanosecond per
        // packet (each transmission time is floor-divided independently).
        let expect_busy = st.tx_bytes as u128 * 8 * 1_000_000_000 / (rate_mbps as u128 * 1_000_000);
        let diff = (st.busy_ns as i128 - expect_busy as i128).unsigned_abs();
        prop_assert!(diff <= st.tx_packets as u128, "busy {} vs {}", st.busy_ns, expect_busy);
    }

    /// A CBR flow through an uncongested path arrives complete, in order,
    /// with constant latency (zero jitter).
    #[test]
    fn uncongested_cbr_is_transparent(
        n in 1u64..200,
        interval_us in 100u64..10_000,
        payload in 0usize..1400,
    ) {
        let mut net = Network::new();
        let cfg = SourceConfig::udp(1, ip("10.0.0.1"), ip("10.0.0.2"), 5000, payload);
        let src = net.add_node(Box::new(CbrSource::new(cfg, interval_us * 1_000, Some(n))));
        let dst = net.add_node(Box::new(Sink::new()));
        net.connect(src, dst, LinkConfig::new(10_000_000_000, 1_000));
        net.arm_timer(src, 0, 0);
        net.run_to_quiescence();
        let sink = net.node_ref::<Sink>(dst);
        let f = sink.flow(1).expect("delivered");
        prop_assert_eq!(f.rx_packets, n);
        prop_assert_eq!(f.reordered, 0);
        prop_assert_eq!(f.jitter_ns, 0.0);
        prop_assert_eq!(f.latency.min(), f.latency.max());
    }

    /// FIFO links never reorder, regardless of packet size mix.
    #[test]
    fn fifo_links_never_reorder(
        payloads in proptest::collection::vec(0usize..1400, 2..100),
        rate_mbps in 1u64..100,
    ) {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Sink::new()));
        let (_, ia, _) =
            net.connect(a, b, LinkConfig::new(rate_mbps * 1_000_000, 5_000).fifo_cap(1 << 22));
        for (i, p) in payloads.iter().enumerate() {
            let mut pkt = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, *p);
            pkt.meta.flow = 1;
            pkt.meta.seq = i as u64;
            net.inject(a, ia, pkt);
        }
        net.run_to_quiescence();
        let f = net.node_ref::<Sink>(b).flow(1).expect("delivered");
        prop_assert_eq!(f.reordered, 0);
        prop_assert_eq!(f.rx_packets, payloads.len() as u64);
    }

    /// Timer causality: a relay chain of nodes forwarding with `send_after`
    /// delays accumulates exactly the sum of the delays.
    #[test]
    fn send_after_accumulates_delay(delays in proptest::collection::vec(1u64..1_000_000, 1..6)) {
        struct Relay {
            delay: u64,
            out: Option<IfaceId>,
        }
        impl Node for Relay {
            fn on_packet(&mut self, _i: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
                if let Some(out) = self.out {
                    ctx.send_after(self.delay, out, pkt);
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut net = Network::new();
        let src = net.add_node(Box::new(BlackHole::default()));
        let mut prev = src;
        // Chain: src → relay… → sink. Links are instant-ish (1 Gb/s, 0 delay).
        let relays: Vec<_> = delays
            .iter()
            .map(|&d| net.add_node(Box::new(Relay { delay: d, out: None })))
            .collect();
        let sink = net.add_node(Box::new(Sink::new()));
        let mut first_iface = None;
        for (k, &r) in relays.iter().enumerate() {
            let (_, ia, _) = net.connect(prev, r, LinkConfig::new(1_000_000_000_000, 0));
            if k == 0 {
                first_iface = Some(ia);
            }
            prev = r;
        }
        let (_, _, _) = net.connect(prev, sink, LinkConfig::new(1_000_000_000_000, 0));
        // Each relay forwards out its *second* interface (toward the next
        // node), which exists after the chain wiring: iface 1 (or 0 for
        // the case where the relay is first... it's always iface 1 because
        // each relay has the inbound link connected first).
        for &r in &relays {
            net.node_mut::<Relay>(r).out = Some(IfaceId(1));
        }
        let pkt = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 0);
        net.inject(src, first_iface.unwrap(), pkt);
        net.run_to_quiescence();
        let s = net.node_ref::<Sink>(sink);
        prop_assert_eq!(s.total_packets, 1);
        let f = s.flow(0).unwrap();
        // Serialization of the 28 B packet on each hop: 28*8 bits at 1 Tb/s
        // rounds to 0 ns; so latency = sum of relay delays exactly.
        let want: u64 = delays.iter().sum();
        prop_assert_eq!(f.last_rx, want);
    }

    /// Determinism: the same random scenario produces identical link stats
    /// when replayed.
    #[test]
    fn replays_are_identical(
        seed in any::<u64>(),
        n_flows in 1usize..5,
    ) {
        /// Forwards everything out interface 0 (the bottleneck).
        struct ForwardAll;
        impl Node for ForwardAll {
            fn on_packet(&mut self, _i: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
                ctx.send(IfaceId(0), pkt);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let run = || {
            let mut net = Network::new();
            let dst = net.add_node(Box::new(Sink::new()));
            let hub = net.add_node(Box::new(ForwardAll));
            let (l, _, _) = net.connect(hub, dst, LinkConfig::new(5_000_000, 1000).fifo_cap(8192));
            for fid in 0..n_flows {
                let cfg = SourceConfig::udp(fid as u64, ip("10.0.0.1"), ip("10.0.0.2"), 5000, 700);
                let s = net.add_node(Box::new(netsim_sim::PoissonSource::new(
                    cfg,
                    500_000,
                    seed ^ fid as u64,
                    Some(SEC / 10),
                )));
                net.connect(s, hub, LinkConfig::new(1_000_000_000, 0));
                net.arm_timer(s, 0, 0);
            }
            net.run_to_quiescence();
            let st = net.link_stats(l, 0);
            (st.tx_packets, st.tx_bytes, st.dropped, net.events_processed())
        };
        prop_assert_eq!(run(), run());
    }
}

/// BlackHole hub forwards nothing — make the determinism scenario actually
/// push packets through the bottleneck by using a forwarding hub instead.
#[test]
fn blackhole_absorbs() {
    let mut net = Network::new();
    let a = net.add_node(Box::new(BlackHole::default()));
    let b = net.add_node(Box::new(BlackHole::default()));
    let (l, ia, _) = net.connect(a, b, LinkConfig::new(1_000_000, 0));
    net.inject(a, ia, Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, 10));
    net.run_to_quiescence();
    assert_eq!(net.node_ref::<BlackHole>(b).absorbed, 1);
    assert_eq!(net.link_stats(l, 0).tx_packets, 1);
    let _ = LinkId(0);
}
