//! A closed-loop TCP-like source and its acking sink.
//!
//! Enough of TCP to make queues *react*: slow start, congestion avoidance,
//! fast retransmit on three duplicate ACKs, RTO with Jacobson's estimator,
//! cumulative ACKs. This is what turns RED from a curiosity into a win —
//! the AQM ablation (`exp_aqm`) runs these sources against tail-drop and
//! RED bottlenecks.
//!
//! Simplifications (documented, deliberate): segment = one packet, no
//! handshake/teardown, no delayed ACKs, no SACK, receiver window unbounded.
//! The RTT estimate rides the simulation metadata (`created_ns` echoed by
//! the sink), standing in for the timestamp option.

use std::any::Any;
use std::collections::BTreeSet;
use std::collections::HashMap;

use netsim_net::{Packet, Pkt, TcpHeader};
use netsim_qos::Nanos;

use crate::node::{Ctx, IfaceId, Node};
use crate::stats::FlowStats;
use crate::traffic::{SourceConfig, TxStats};

/// AIMD congestion-control state of one TCP-like flow.
pub struct TcpSource {
    cfg: SourceConfig,
    /// Congestion window in segments (fractional during CA growth).
    cwnd: f64,
    ssthresh: f64,
    /// Next sequence number to send (first transmission).
    next_seq: u64,
    /// Lowest unacknowledged sequence number.
    snd_una: u64,
    dup_acks: u32,
    /// Stop emitting new data at this simulation time.
    until: Option<Nanos>,
    // Jacobson RTO estimator.
    srtt: f64,
    rttvar: f64,
    /// Timer epoch (stale RTO timers are ignored).
    epoch: u64,
    rto_armed: bool,
    /// Negotiated ECN: segments carry ECT(0) and the window halves on an
    /// echoed CE instead of on loss.
    ecn: bool,
    /// Sequence high-water mark of the last ECN-triggered reduction (one
    /// reduction per window, per RFC 3168).
    ecn_reduced_at: u64,
    /// Transmit counters (first transmissions only).
    pub tx: TxStats,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// Window reductions triggered by ECN echoes.
    pub ecn_reductions: u64,
}

const INITIAL_RTO: f64 = 200e6; // 200 ms in ns
const MIN_RTO: f64 = 10e6;

/// TCP header flag bit used for the ECN echo (RFC 3168 ECE).
pub const ECE_FLAG: u8 = 0x40;

impl TcpSource {
    /// Creates a flow sending `cfg.payload`-byte segments toward
    /// `cfg.dst:cfg.dst_port` until `until` (or forever). Bootstrap with
    /// `arm_timer(node, 0, 0)`.
    pub fn new(cfg: SourceConfig, until: Option<Nanos>) -> Self {
        TcpSource {
            cfg,
            cwnd: 2.0,
            ssthresh: 64.0,
            next_seq: 0,
            snd_una: 0,
            dup_acks: 0,
            until,
            srtt: 0.0,
            rttvar: 0.0,
            epoch: 0,
            rto_armed: false,
            ecn: false,
            ecn_reduced_at: 0,
            tx: TxStats::default(),
            retransmits: 0,
            timeouts: 0,
            ecn_reductions: 0,
        }
    }

    /// Enables ECN on this flow (segments marked ECT(0)).
    pub fn with_ecn(mut self) -> Self {
        self.ecn = true;
        self
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn rto(&self) -> Nanos {
        if self.srtt == 0.0 {
            INITIAL_RTO as Nanos
        } else {
            (self.srtt + 4.0 * self.rttvar).max(MIN_RTO) as Nanos
        }
    }

    fn segment(&self, seq: u64, now: Nanos) -> Packet {
        let mut p = Packet::tcp(
            self.cfg.src,
            self.cfg.dst,
            self.cfg.src_port,
            self.cfg.dst_port,
            self.cfg.dscp,
            seq as u32,
            self.cfg.payload,
        );
        if self.ecn {
            if let Some(h) = p.outer_ipv4_mut() {
                h.ecn = netsim_net::ip::ecn::ECT0;
            }
        }
        p.meta.flow = self.cfg.flow;
        p.meta.seq = seq;
        p.meta.created_ns = now;
        p
    }

    fn fill_window(&mut self, ctx: &mut Ctx) {
        if let Some(t) = self.until {
            if ctx.now() >= t {
                return;
            }
        }
        let limit = self.snd_una + self.cwnd.floor().max(1.0) as u64;
        while self.next_seq < limit {
            let p = self.segment(self.next_seq, ctx.now());
            self.tx.tx_packets += 1;
            self.tx.tx_bytes += p.wire_len() as u64;
            ctx.send(self.cfg.iface, p);
            self.next_seq += 1;
        }
        self.arm_rto(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        if self.rto_armed || self.snd_una == self.next_seq {
            return;
        }
        self.rto_armed = true;
        let rto = self.rto();
        ctx.schedule(rto, self.epoch);
    }

    fn update_rtt(&mut self, sample_ns: Nanos) {
        let r = sample_ns as f64;
        if self.srtt == 0.0 {
            self.srtt = r;
            self.rttvar = r / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - r).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * r;
        }
    }
}

impl Node for TcpSource {
    fn on_packet(&mut self, _iface: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
        // An ACK: `meta.seq` (and the header's ack field) carry the
        // cumulative next-expected sequence; created_ns echoes the data
        // packet's send time for RTT sampling.
        let ack = pkt.meta.seq;
        // ECN echo (RFC 3168): halve once per window, no retransmission.
        let ece = pkt.layers().iter().any(|l| match l {
            netsim_net::Layer::Tcp(t) => t.flags & ECE_FLAG != 0,
            _ => false,
        });
        if self.ecn && ece && self.snd_una >= self.ecn_reduced_at {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.ecn_reduced_at = self.next_seq;
            self.ecn_reductions += 1;
        }
        if ack > self.snd_una {
            self.update_rtt(ctx.now().saturating_sub(pkt.meta.created_ns));
            self.snd_una = ack;
            self.dup_acks = 0;
            // Re-arm the RTO for remaining in-flight data.
            self.epoch += 1;
            self.rto_armed = false;
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
            self.fill_window(ctx);
        } else if ack == self.snd_una && self.next_seq > self.snd_una {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                // Fast retransmit + multiplicative decrease.
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                let p = self.segment(self.snd_una, ctx.now());
                self.retransmits += 1;
                ctx.send(self.cfg.iface, p);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == 0 && self.next_seq == 0 {
            // Bootstrap kick.
            self.fill_window(ctx);
            return;
        }
        if token != self.epoch {
            return; // stale RTO
        }
        self.rto_armed = false;
        if self.snd_una == self.next_seq {
            return; // everything acked meanwhile
        }
        // Retransmission timeout: collapse the window, go back to snd_una.
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.next_seq = self.snd_una;
        self.epoch += 1;
        self.fill_window(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Per-flow receiver state inside [`TcpSink`].
#[derive(Default)]
struct RxFlow {
    expected: u64,
    out_of_order: BTreeSet<u64>,
    stats: FlowStats,
}

/// The acking sink: delivers cumulative ACKs back toward each source and
/// keeps [`FlowStats`] per flow (counting only in-order-delivered data).
#[derive(Default)]
pub struct TcpSink {
    flows: HashMap<u64, RxFlow>,
    /// Total data segments received (including out-of-order/duplicates).
    pub segments_rx: u64,
}

impl TcpSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        TcpSink::default()
    }

    /// Receiver statistics of a flow.
    pub fn flow(&self, flow: u64) -> Option<&FlowStats> {
        self.flows.get(&flow).map(|f| &f.stats)
    }

    /// Highest in-order byte... segment count delivered for a flow.
    pub fn delivered(&self, flow: u64) -> u64 {
        self.flows.get(&flow).map_or(0, |f| f.expected)
    }
}

impl Node for TcpSink {
    fn on_packet(&mut self, iface: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
        self.segments_rx += 1;
        let flow = pkt.meta.flow;
        let seq = pkt.meta.seq;
        let (src, dst, sp, dp) = match pkt.visible_five_tuple() {
            Some(t) => (t.src, t.dst, t.src_port, t.dst_port),
            None => return,
        };
        let f = self.flows.entry(flow).or_default();
        if seq == f.expected {
            f.stats.record(ctx.now(), pkt.meta.created_ns, seq, pkt.wire_len());
            f.expected += 1;
            while f.out_of_order.remove(&f.expected) {
                f.expected += 1;
            }
        } else if seq > f.expected {
            f.out_of_order.insert(seq);
        }
        // Cumulative ACK back to the sender, echoing the data packet's
        // send timestamp for RTT sampling — and the CE mark as ECE.
        let ce = pkt.outer_ipv4().is_some_and(netsim_net::Ipv4Header::is_ce);
        let flags = 0x10 | if ce { ECE_FLAG } else { 0 };
        let mut ack = Packet::new(
            vec![
                netsim_net::Layer::Ipv4(netsim_net::Ipv4Header::new(
                    dst,
                    src,
                    netsim_net::ip::proto::TCP,
                    pkt.dscp().unwrap_or_default(),
                )),
                netsim_net::Layer::Tcp(TcpHeader {
                    src_port: dp,
                    dst_port: sp,
                    seq: 0,
                    ack: f.expected as u32,
                    flags,
                }),
            ],
            Default::default(),
        );
        ack.meta.flow = flow;
        ack.meta.seq = f.expected;
        ack.meta.created_ns = pkt.meta.created_ns;
        ctx.send(iface, ack);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, Network};
    use crate::{LinkId, MSEC, SEC};
    use netsim_net::addr::ip;

    fn tcp_cfg(flow: u64) -> SourceConfig {
        SourceConfig::udp(flow, ip("10.0.0.1"), ip("10.0.0.2"), 80, 1000).as_tcp()
    }

    /// Direct source↔sink over a fat link: everything is delivered in
    /// order, no retransmissions, cwnd opens up.
    #[test]
    fn clean_path_no_retransmits() {
        let mut net = Network::new();
        let src = net.add_node(Box::new(TcpSource::new(tcp_cfg(1), Some(SEC))));
        let dst = net.add_node(Box::new(TcpSink::new()));
        net.connect(src, dst, LinkConfig::new(100_000_000, MSEC));
        net.arm_timer(src, 0, 0);
        net.run_until(2 * SEC);
        let s = net.node_ref::<TcpSource>(src);
        assert_eq!(s.retransmits, 0);
        assert_eq!(s.timeouts, 0);
        assert!(s.cwnd() > 10.0, "cwnd should open: {}", s.cwnd());
        let k = net.node_ref::<TcpSink>(dst);
        assert!(k.delivered(1) > 100, "delivered {}", k.delivered(1));
        assert_eq!(k.flow(1).unwrap().rx_packets, k.delivered(1));
    }

    /// Through a tight bottleneck the flow fills the pipe (≥70% of the
    /// link) and adapts via drops rather than collapsing.
    #[test]
    fn bottleneck_is_filled_adaptively() {
        let mut net = Network::new();
        let src = net.add_node(Box::new(TcpSource::new(tcp_cfg(1), Some(5 * SEC))));
        let dst = net.add_node(Box::new(TcpSink::new()));
        let cfg = LinkConfig::new(5_000_000, MSEC).fifo_cap(16 * 1024);
        let (l, _, _) = net.connect(src, dst, cfg);
        net.arm_timer(src, 0, 0);
        net.run_until(6 * SEC);
        let util = net.link_stats(l, 0).utilization(5 * SEC);
        assert!(util > 0.7, "TCP should fill the pipe, util {util}");
        let s = net.node_ref::<TcpSource>(src);
        assert!(s.retransmits > 0, "a tight buffer must force retransmits");
        // Loss recovery works: delivered count keeps growing to the end.
        let k = net.node_ref::<TcpSink>(dst);
        assert!(k.delivered(1) > 1000, "delivered {}", k.delivered(1));
        let _ = LinkId(0);
    }

    /// An ECN flow through an ECN-RED bottleneck adapts with *zero* data
    /// loss: congestion is signalled by marks, not drops.
    #[test]
    fn ecn_flow_adapts_without_loss() {
        use netsim_qos::{RedParams, RedQueue};
        let mut net = Network::new();
        let src = net.add_node(Box::new(TcpSource::new(tcp_cfg(1), Some(5 * SEC)).with_ecn()));
        let dst = net.add_node(Box::new(TcpSink::new()));
        let cfg = LinkConfig::new(5_000_000, MSEC);
        let red =
            RedQueue::new(64 * 1024, RedParams::new(8 * 1024, 24 * 1024), 42, 1_600).with_ecn();
        net.connect_with_qdiscs(
            src,
            dst,
            cfg,
            cfg,
            Box::new(red),
            Box::new(netsim_qos::FifoQueue::new(1 << 20)),
        );
        net.arm_timer(src, 0, 0);
        net.run_until(6 * SEC);
        let s = net.node_ref::<TcpSource>(src);
        assert!(s.ecn_reductions > 3, "ECN must throttle the window: {}", s.ecn_reductions);
        assert_eq!(s.retransmits, 0, "marks replace drops");
        assert_eq!(s.timeouts, 0);
        let k = net.node_ref::<TcpSink>(dst);
        // The pipe still fills: ≥60% of 5 Mb/s over 5 s ≈ 1500+ segments.
        assert!(k.delivered(1) > 1500, "delivered {}", k.delivered(1));
    }

    /// Two competing flows share a bottleneck roughly fairly.
    #[test]
    fn two_flows_share_roughly_fairly() {
        let mut net = Network::new();
        let dst = net.add_node(Box::new(TcpSink::new()));
        let hub = {
            // Simple forwarder toward iface 0.
            struct Fwd;
            impl Node for Fwd {
                fn on_packet(&mut self, i: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
                    // Data (from sources, ifaces ≥1) goes out iface 0; ACKs
                    // (from the sink on iface 0) go back by flow id.
                    if i.0 == 0 {
                        let out = 1 + (pkt.meta.flow as usize % 2);
                        ctx.send(IfaceId(out), pkt);
                    } else {
                        ctx.send(IfaceId(0), pkt);
                    }
                }
                fn as_any(&self) -> &dyn Any {
                    self
                }
                fn as_any_mut(&mut self) -> &mut dyn Any {
                    self
                }
            }
            net.add_node(Box::new(Fwd))
        };
        let bottleneck = LinkConfig::new(5_000_000, MSEC).fifo_cap(20 * 1024);
        net.connect(hub, dst, bottleneck); // hub iface 0
        let mut cfg0 = tcp_cfg(0);
        cfg0.src_port = 1000;
        let mut cfg1 = tcp_cfg(1);
        cfg1.src_port = 1001;
        let s0 = net.add_node(Box::new(TcpSource::new(cfg0, Some(5 * SEC))));
        let s1 = net.add_node(Box::new(TcpSource::new(cfg1, Some(5 * SEC))));
        net.connect(s0, hub, LinkConfig::new(1_000_000_000, 10_000)); // hub iface 1
        net.connect(s1, hub, LinkConfig::new(1_000_000_000, 10_000)); // hub iface 2
        net.arm_timer(s0, 0, 0);
        net.arm_timer(s1, 0, 0);
        net.run_until(6 * SEC);
        let k = net.node_ref::<TcpSink>(dst);
        let (d0, d1) = (k.delivered(0) as f64, k.delivered(1) as f64);
        assert!(d0 > 100.0 && d1 > 100.0, "both must progress: {d0} {d1}");
        let ratio = d0.max(d1) / d0.min(d1);
        assert!(ratio < 3.0, "gross unfairness: {d0} vs {d1}");
    }
}
