//! Traffic generators and the measuring sink.
//!
//! Sources are [`Node`]s driven entirely by timers; they emit IPv4/UDP or
//! TCP-framed packets with simulation metadata (`flow`, `seq`, creation
//! time) that the [`Sink`] turns into latency/jitter/loss statistics.
//! Randomized sources own a seeded RNG, keeping runs reproducible.

use netsim_net::{Dscp, Ip, Packet, Pkt};
use netsim_qos::Nanos;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::any::Any;

use crate::fxmap::FxHashMap;
use crate::node::{Ctx, IfaceId, Node};
use crate::stats::FlowStats;

/// What a source emits.
#[derive(Clone, Copy, Debug)]
pub struct SourceConfig {
    /// Flow identifier stamped into packet metadata.
    pub flow: u64,
    /// Source address.
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Emit TCP segments instead of UDP datagrams.
    pub tcp: bool,
    /// DSCP marking applied at the source (hosts usually send BE and let
    /// the CPE classifier mark).
    pub dscp: Dscp,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Local interface to emit on.
    pub iface: IfaceId,
    /// Stamp emitted packets as synthetic SLA probes: they traverse the
    /// network exactly like data, but edge marking leaves their DSCP alone
    /// (the probe *is* the class under measurement).
    pub probe: bool,
}

impl SourceConfig {
    /// A UDP flow with sensible defaults.
    pub fn udp(flow: u64, src: Ip, dst: Ip, dst_port: u16, payload: usize) -> Self {
        SourceConfig {
            flow,
            src,
            dst,
            src_port: 10_000 + flow as u16,
            dst_port,
            tcp: false,
            dscp: Dscp::BE,
            payload,
            iface: IfaceId(0),
            probe: false,
        }
    }

    /// Switches the flow to TCP framing.
    pub fn as_tcp(mut self) -> Self {
        self.tcp = true;
        self
    }

    /// Sets the DSCP the source itself marks.
    pub fn with_dscp(mut self, d: Dscp) -> Self {
        self.dscp = d;
        self
    }

    /// Sets the emitting interface.
    pub fn on_iface(mut self, iface: IfaceId) -> Self {
        self.iface = iface;
        self
    }

    /// Marks the flow as a synthetic SLA probe.
    pub fn as_probe(mut self) -> Self {
        self.probe = true;
        self
    }

    fn make_packet(&self, seq: u64, now: Nanos) -> Packet {
        let mut p = if self.tcp {
            Packet::tcp(
                self.src,
                self.dst,
                self.src_port,
                self.dst_port,
                self.dscp,
                seq as u32,
                self.payload,
            )
        } else {
            Packet::udp(self.src, self.dst, self.src_port, self.dst_port, self.dscp, self.payload)
        };
        p.meta.flow = self.flow;
        p.meta.seq = seq;
        p.meta.created_ns = now;
        p.meta.probe = self.probe;
        p
    }
}

/// Shared transmit-side counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TxStats {
    /// Packets emitted.
    pub tx_packets: u64,
    /// Wire bytes emitted.
    pub tx_bytes: u64,
}

/// Constant-bit-rate source: one packet every `interval` ns, optionally
/// bounded to `count` packets. Bootstrap with
/// [`crate::Network::arm_timer`]`(node, start_delay, 0)`.
pub struct CbrSource {
    cfg: SourceConfig,
    interval: Nanos,
    remaining: Option<u64>,
    seq: u64,
    /// Transmit counters.
    pub tx: TxStats,
}

impl CbrSource {
    /// Creates a CBR source; `count = None` means unbounded.
    pub fn new(cfg: SourceConfig, interval: Nanos, count: Option<u64>) -> Self {
        assert!(interval > 0, "CBR interval must be positive");
        CbrSource { cfg, interval, remaining: count, seq: 0, tx: TxStats::default() }
    }

    /// The source configuration.
    pub fn config(&self) -> &SourceConfig {
        &self.cfg
    }

    fn emit(&mut self, ctx: &mut Ctx) {
        let p = self.cfg.make_packet(self.seq, ctx.now());
        self.tx.tx_packets += 1;
        self.tx.tx_bytes += p.wire_len() as u64;
        self.seq += 1;
        ctx.send(self.cfg.iface, p);
    }
}

impl Node for CbrSource {
    fn on_packet(&mut self, _iface: IfaceId, _pkt: Pkt, _ctx: &mut Ctx) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        if let Some(0) = self.remaining {
            return;
        }
        self.emit(ctx);
        if let Some(n) = self.remaining.as_mut() {
            *n -= 1;
            if *n == 0 {
                return;
            }
        }
        ctx.schedule(self.interval, 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Poisson source: exponentially distributed inter-packet gaps with the
/// given mean. Deterministic per seed.
pub struct PoissonSource {
    cfg: SourceConfig,
    mean_interval: Nanos,
    rng: SmallRng,
    seq: u64,
    until: Option<Nanos>,
    /// Transmit counters.
    pub tx: TxStats,
}

impl PoissonSource {
    /// Creates a Poisson source with the given mean inter-arrival time.
    /// `until = Some(t)` stops emission at simulation time `t`.
    pub fn new(cfg: SourceConfig, mean_interval: Nanos, seed: u64, until: Option<Nanos>) -> Self {
        assert!(mean_interval > 0, "mean interval must be positive");
        PoissonSource {
            cfg,
            mean_interval,
            rng: SmallRng::seed_from_u64(seed),
            seq: 0,
            until,
            tx: TxStats::default(),
        }
    }

    fn next_gap(&mut self) -> Nanos {
        let u: f64 = self.rng.random_range(1e-12..1.0);
        (-u.ln() * self.mean_interval as f64).ceil() as Nanos
    }
}

impl Node for PoissonSource {
    fn on_packet(&mut self, _iface: IfaceId, _pkt: Pkt, _ctx: &mut Ctx) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
        if let Some(t) = self.until {
            if ctx.now() >= t {
                return;
            }
        }
        let p = self.cfg.make_packet(self.seq, ctx.now());
        self.tx.tx_packets += 1;
        self.tx.tx_bytes += p.wire_len() as u64;
        self.seq += 1;
        ctx.send(self.cfg.iface, p);
        let gap = self.next_gap();
        ctx.schedule(gap, 0);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Markov on-off (bursty) source: exponentially distributed ON and OFF
/// periods; during ON it emits CBR at `interval`. A common voice/data burst
/// model. Deterministic per seed.
pub struct OnOffSource {
    cfg: SourceConfig,
    interval: Nanos,
    mean_on: Nanos,
    mean_off: Nanos,
    rng: SmallRng,
    on: bool,
    epoch: u64,
    seq: u64,
    until: Option<Nanos>,
    /// Transmit counters.
    pub tx: TxStats,
}

/// Timer token layout for [`OnOffSource`]: low bit selects the handler,
/// upper bits carry the epoch so stale timers are ignored after a state
/// flip.
const KIND_EMIT: u64 = 0;
const KIND_TOGGLE: u64 = 1;

impl OnOffSource {
    /// Creates an on-off source (starts OFF; the bootstrap timer toggles it
    /// ON immediately, so arm the kick with token `1`).
    pub fn new(
        cfg: SourceConfig,
        interval: Nanos,
        mean_on: Nanos,
        mean_off: Nanos,
        seed: u64,
        until: Option<Nanos>,
    ) -> Self {
        assert!(interval > 0 && mean_on > 0 && mean_off > 0);
        OnOffSource {
            cfg,
            interval,
            mean_on,
            mean_off,
            rng: SmallRng::seed_from_u64(seed),
            on: false,
            epoch: 0,
            seq: 0,
            until,
            tx: TxStats::default(),
        }
    }

    fn exp_sample(&mut self, mean: Nanos) -> Nanos {
        let u: f64 = self.rng.random_range(1e-12..1.0);
        (-u.ln() * mean as f64).ceil() as Nanos
    }

    fn token(&self, kind: u64) -> u64 {
        (self.epoch << 1) | kind
    }
}

impl Node for OnOffSource {
    fn on_packet(&mut self, _iface: IfaceId, _pkt: Pkt, _ctx: &mut Ctx) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let (epoch, kind) = (token >> 1, token & 1);
        if epoch != self.epoch {
            return; // stale timer from before a state flip
        }
        if let Some(t) = self.until {
            if ctx.now() >= t {
                return;
            }
        }
        match kind {
            KIND_TOGGLE => {
                self.on = !self.on;
                self.epoch += 1;
                let dwell = if self.on {
                    self.exp_sample(self.mean_on)
                } else {
                    self.exp_sample(self.mean_off)
                };
                ctx.schedule(dwell, self.token(KIND_TOGGLE));
                if self.on {
                    ctx.schedule(0, self.token(KIND_EMIT));
                }
            }
            _ => {
                if !self.on {
                    return;
                }
                let p = self.cfg.make_packet(self.seq, ctx.now());
                self.tx.tx_packets += 1;
                self.tx.tx_bytes += p.wire_len() as u64;
                self.seq += 1;
                ctx.send(self.cfg.iface, p);
                ctx.schedule(self.interval, self.token(KIND_EMIT));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The measuring sink: absorbs every packet and aggregates per-flow
/// statistics keyed by `meta.flow`.
#[derive(Default)]
pub struct Sink {
    flows: FxHashMap<u64, FlowStats>,
    /// Total packets absorbed (all flows).
    pub total_packets: u64,
    /// Total wire bytes absorbed.
    pub total_bytes: u64,
}

impl Sink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Sink::default()
    }

    /// Statistics of one flow, if any packets arrived.
    pub fn flow(&self, flow: u64) -> Option<&FlowStats> {
        self.flows.get(&flow)
    }

    /// Iterates over `(flow, stats)` pairs.
    pub fn flows(&self) -> impl Iterator<Item = (u64, &FlowStats)> {
        self.flows.iter().map(|(k, v)| (*k, v))
    }
}

impl Node for Sink {
    fn on_packet(&mut self, _iface: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
        let bytes = pkt.wire_len();
        self.total_packets += 1;
        self.total_bytes += bytes as u64;
        self.flows.entry(pkt.meta.flow).or_default().record(
            ctx.now(),
            pkt.meta.created_ns,
            pkt.meta.seq,
            bytes,
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkConfig, Network};
    use crate::MSEC;
    use netsim_net::addr::ip;

    #[test]
    fn cbr_emits_exact_count_and_spacing() {
        let mut net = Network::new();
        let cfg = SourceConfig::udp(1, ip("10.0.0.1"), ip("10.0.0.2"), 5000, 100);
        let src = net.add_node(Box::new(CbrSource::new(cfg, MSEC, Some(10))));
        let dst = net.add_node(Box::new(Sink::new()));
        net.connect(src, dst, LinkConfig::new(1_000_000_000, 0));
        net.arm_timer(src, 0, 0);
        net.run_to_quiescence();
        let sink = net.node_ref::<Sink>(dst);
        let f = sink.flow(1).expect("flow 1 delivered");
        assert_eq!(f.rx_packets, 10);
        assert_eq!(net.node_ref::<CbrSource>(src).tx.tx_packets, 10);
        // CBR through an uncongested fast link: zero jitter.
        assert_eq!(f.jitter_ns, 0.0);
        assert_eq!(f.reordered, 0);
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_roughly_calibrated() {
        let run = |seed: u64| {
            let mut net = Network::new();
            let cfg = SourceConfig::udp(7, ip("10.0.0.1"), ip("10.0.0.2"), 5000, 100);
            let src = net.add_node(Box::new(PoissonSource::new(cfg, MSEC, seed, Some(crate::SEC))));
            let dst = net.add_node(Box::new(Sink::new()));
            net.connect(src, dst, LinkConfig::new(1_000_000_000, 0));
            net.arm_timer(src, 0, 0);
            net.run_to_quiescence();
            net.node_ref::<Sink>(dst).total_packets
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same trajectory");
        // Mean gap 1 ms over 1 s ⇒ ~1000 packets; allow wide tolerance.
        assert!((600..1500).contains(&a), "got {a}");
        assert_ne!(a, run(43));
    }

    #[test]
    fn onoff_produces_bursts_and_silences() {
        let mut net = Network::new();
        let cfg = SourceConfig::udp(3, ip("10.0.0.1"), ip("10.0.0.2"), 5000, 100);
        let src = net.add_node(Box::new(OnOffSource::new(
            cfg,
            100_000, // 10 kpps while on
            20 * MSEC,
            20 * MSEC,
            9,
            Some(crate::SEC),
        )));
        let dst = net.add_node(Box::new(Sink::new()));
        net.connect(src, dst, LinkConfig::new(1_000_000_000, 0));
        net.arm_timer(src, 0, KIND_TOGGLE);
        net.run_to_quiescence();
        let got = net.node_ref::<Sink>(dst).total_packets;
        // ~50% duty cycle of 10 kpps over 1 s ≈ 5000; very wide bounds.
        assert!((1000..9500).contains(&got), "got {got}");
        let tx = &net.node_ref::<OnOffSource>(src).tx;
        assert_eq!(tx.tx_packets, got, "fast link loses nothing");
    }

    #[test]
    fn sink_separates_flows() {
        let mut net = Network::new();
        let c1 = SourceConfig::udp(1, ip("10.0.0.1"), ip("10.0.0.9"), 5000, 100);
        let c2 = SourceConfig::udp(2, ip("10.0.0.2"), ip("10.0.0.9"), 5000, 200);
        let s1 = net.add_node(Box::new(CbrSource::new(c1, MSEC, Some(5))));
        let s2 = net.add_node(Box::new(CbrSource::new(c2, MSEC, Some(7))));
        let dst = net.add_node(Box::new(Sink::new()));
        net.connect(s1, dst, LinkConfig::new(1_000_000_000, 0));
        net.connect(s2, dst, LinkConfig::new(1_000_000_000, 0));
        net.arm_timer(s1, 0, 0);
        net.arm_timer(s2, 0, 0);
        net.run_to_quiescence();
        let sink = net.node_ref::<Sink>(dst);
        assert_eq!(sink.flow(1).unwrap().rx_packets, 5);
        assert_eq!(sink.flow(2).unwrap().rx_packets, 7);
        assert_eq!(sink.total_packets, 12);
        assert!(sink.flow(3).is_none());
    }
}
