//! A minimal Fowler/Fx-style integer hasher for hot-path maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs ~1–2 ns per lookup,
//! which is measurable when a map sits on the per-packet forwarding path
//! (sink flow stats, PE label tables, per-interface policers). Simulation
//! keys are small trusted integers, so a multiply-and-rotate hash is safe
//! and several times faster.
//!
//! The scheme is the classic FxHash fold used by rustc: for each 64-bit
//! word of input, `state = (state.rotate_left(5) ^ word) * K` with `K` an
//! odd constant derived from the golden ratio.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`]; drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`]; drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-and-rotate hasher for small trusted keys (see module docs).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(1 << 40, "big");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&(1 << 40)), Some(&"big"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        // Sequential small integers (the common key shape here) must spread.
        let hashes: FxHashSet<u64> = (0u64..1000).map(h).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, 13");
        let mut b = FxHasher::default();
        b.write(b"hello world, 13");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, 14");
        assert_ne!(a.finish(), c.finish());
    }
}
