//! # netsim-sim — deterministic discrete-event network simulator
//!
//! The substrate standing in for the paper's hardware LSR backbone: nodes
//! exchange [`netsim_net::Packet`]s over duplex links with finite bandwidth,
//! propagation delay, and a pluggable [`netsim_qos::QueueDiscipline`] on each
//! egress. Everything the QoS experiments measure — queueing delay, jitter,
//! loss, utilization — emerges from this model.
//!
//! Design points:
//!
//! * **Determinism.** One event calendar, ties broken by insertion order;
//!   all randomness comes from seeds owned by traffic sources. Identical
//!   seeds ⇒ identical runs, which the integration tests rely on.
//! * **Store-and-forward links.** A transmission occupies the egress for
//!   `wire_len * 8 / rate`; the packet arrives at the peer after an
//!   additional propagation delay. Non-work-conserving disciplines (CBQ
//!   bounded classes, shapers) are honoured via
//!   [`netsim_qos::QueueDiscipline::next_ready`] retries.
//! * **Single-threaded networks, parallel experiments.** A [`Network`] is a
//!   plain single-threaded state machine; the benchmark harness runs many
//!   networks concurrently, one per thread.
//!
//! # Example
//!
//! ```
//! use netsim_sim::{CbrSource, LinkConfig, Network, Sink, SourceConfig, MSEC, SEC};
//!
//! let mut net = Network::new();
//! let cfg = SourceConfig::udp(
//!     1, "10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), 5000, 200);
//! let src = net.add_node(Box::new(CbrSource::new(cfg, MSEC, Some(100))));
//! let dst = net.add_node(Box::new(Sink::new()));
//! net.connect(src, dst, LinkConfig::new(10_000_000, MSEC)); // 10 Mb/s, 1 ms
//! net.arm_timer(src, 0, 0);
//! net.run_until(SEC);
//!
//! let stats = net.node_ref::<Sink>(dst).flow(1).unwrap();
//! assert_eq!(stats.rx_packets, 100);
//! assert_eq!(stats.jitter_ns, 0.0); // uncongested CBR is jitter-free
//! ```

#![warn(missing_docs)]

mod calendar;
pub mod engine;
pub mod fault;
pub mod fxmap;
pub mod node;
pub mod stats;
pub mod tcp;
pub mod traffic;

pub use engine::{LinkConfig, LinkId, LinkStats, Network};
pub use fault::{FaultAction, FaultEvent, FaultPlan};
pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use netsim_qos::{Nanos, MSEC, SEC};
pub use node::{Ctx, IfaceId, Node, NodeId};
pub use stats::{FlowStats, Histogram};
pub use tcp::{TcpSink, TcpSource};
pub use traffic::{CbrSource, OnOffSource, PoissonSource, Sink, SourceConfig};
