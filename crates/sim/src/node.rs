//! The node abstraction: anything attached to the network — routers, hosts,
//! traffic sources and sinks — implements [`Node`].

use std::any::Any;

use netsim_net::Pkt;
use netsim_qos::Nanos;

/// Identifies a node within one [`crate::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// Identifies an interface local to one node (dense, assigned in connection
/// order by [`crate::Network::connect`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IfaceId(pub usize);

/// Handler context: lets a node emit packets and arm timers. Actions are
/// buffered and applied by the network after the handler returns, so the
/// handler never sees a partially updated network.
pub struct Ctx {
    now: Nanos,
    node: NodeId,
    pub(crate) actions: Vec<Action>,
}

pub(crate) enum Action {
    Send { iface: IfaceId, pkt: Pkt },
    SendLater { iface: IfaceId, pkt: Pkt, delay: Nanos },
    Timer { delay: Nanos, token: u64 },
}

impl Ctx {
    /// `actions` is a scratch buffer owned by the network and recycled
    /// across dispatches, so handlers don't cost an allocation per event.
    pub(crate) fn new(now: Nanos, node: NodeId, actions: Vec<Action>) -> Self {
        debug_assert!(actions.is_empty(), "scratch buffer handed over dirty");
        Ctx { now, node, actions }
    }

    pub(crate) fn into_actions(self) -> Vec<Action> {
        self.actions
    }

    /// Current simulation time in nanoseconds.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The node this context belongs to.
    #[inline]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmits `pkt` out of local interface `iface`. The packet enters
    /// that egress's queueing discipline immediately. Accepts either an
    /// owned packet (boxed here, at the edge) or an already-boxed [`Pkt`]
    /// being forwarded (no new allocation).
    pub fn send(&mut self, iface: IfaceId, pkt: impl Into<Pkt>) {
        self.actions.push(Action::Send { iface, pkt: pkt.into() });
    }

    /// Like [`Ctx::send`], but the packet reaches the egress queue only
    /// after `delay` ns — models local processing time (e.g. IPsec crypto)
    /// spent before transmission.
    pub fn send_after(&mut self, delay: Nanos, iface: IfaceId, pkt: impl Into<Pkt>) {
        self.actions.push(Action::SendLater { iface, pkt: pkt.into(), delay });
    }

    /// Arms a one-shot timer that fires `on_timer(token)` after `delay`.
    pub fn schedule(&mut self, delay: Nanos, token: u64) {
        self.actions.push(Action::Timer { delay, token });
    }
}

/// A network-attached device.
///
/// Implementations are plain state machines: they react to packet arrivals
/// and timer expiries through the [`Ctx`] and hold whatever state they need.
/// `as_any`/`as_any_mut` allow experiment code to downcast a node back to
/// its concrete type to read statistics after (or during) a run.
pub trait Node: Any {
    /// A packet arrived on local interface `iface`. Packets travel boxed
    /// (see [`Pkt`]) so forwarding a packet on is a pointer move.
    fn on_packet(&mut self, iface: IfaceId, pkt: Pkt, ctx: &mut Ctx);

    /// A timer armed via [`Ctx::schedule`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx) {}

    /// Upcast for downcasting in experiment code.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting in experiment code.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A node that silently discards everything (useful as a placeholder peer).
#[derive(Default)]
pub struct BlackHole {
    /// Packets absorbed.
    pub absorbed: u64,
}

impl Node for BlackHole {
    fn on_packet(&mut self, _iface: IfaceId, _pkt: Pkt, _ctx: &mut Ctx) {
        self.absorbed += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
