//! Measurement machinery: histograms and per-flow statistics.
//!
//! The histogram type itself lives in `netsim-obs` so the registry, the
//! flow sinks and the SLA probes all share one implementation (and one set
//! of bucket-boundary tests); it is re-exported here for compatibility.

use netsim_qos::Nanos;

pub use netsim_obs::Histogram;

/// Receiver-side statistics of one flow, as accumulated by
/// [`crate::traffic::Sink`].
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Packets received.
    pub rx_packets: u64,
    /// Payload-inclusive wire bytes received.
    pub rx_bytes: u64,
    /// One-way latency histogram (created → delivered).
    pub latency: Histogram,
    /// RFC 3550 interarrival jitter estimate, in ns.
    pub jitter_ns: f64,
    /// Highest sequence number seen.
    pub max_seq: u64,
    /// Packets that arrived with a sequence number lower than an earlier
    /// arrival (reordering indicator).
    pub reordered: u64,
    /// Arrival time of the first packet.
    pub first_rx: Nanos,
    /// Arrival time of the most recent packet.
    pub last_rx: Nanos,
    last_transit: Option<i128>,
    seen_any: bool,
}

impl FlowStats {
    /// Records a delivery at `now` for a packet created at `created` with
    /// sequence `seq` and `bytes` on the wire.
    pub fn record(&mut self, now: Nanos, created: Nanos, seq: u64, bytes: usize) {
        let latency = now.saturating_sub(created);
        self.latency.record(latency);
        self.rx_packets += 1;
        self.rx_bytes += bytes as u64;
        if !self.seen_any {
            self.first_rx = now;
            self.seen_any = true;
        } else if seq < self.max_seq {
            self.reordered += 1;
        }
        self.max_seq = self.max_seq.max(seq);
        self.last_rx = now;
        // RFC 3550: J += (|D(i-1, i)| - J) / 16, with D the difference in
        // transit times of consecutive packets.
        let transit = latency as i128;
        if let Some(prev) = self.last_transit {
            let d = (transit - prev).unsigned_abs() as f64;
            self.jitter_ns += (d - self.jitter_ns) / 16.0;
        }
        self.last_transit = Some(transit);
    }

    /// Goodput in bits/s over the window from first to last arrival.
    pub fn throughput_bps(&self) -> f64 {
        let window = self.last_rx.saturating_sub(self.first_rx);
        if window == 0 {
            return 0.0;
        }
        self.rx_bytes as f64 * 8.0 * 1e9 / window as f64
    }

    /// Loss fraction given the sender's transmitted count.
    pub fn loss(&self, tx_packets: u64) -> f64 {
        if tx_packets == 0 {
            return 0.0;
        }
        1.0 - (self.rx_packets.min(tx_packets) as f64 / tx_packets as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        for v in [100, 200, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 200.0);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // Log buckets: p50 of 1..1000 lands in bucket covering 512..1023.
        assert!((256..=1023).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn flow_stats_constant_transit_has_zero_jitter() {
        let mut f = FlowStats::default();
        for i in 0..100u64 {
            // Created every ms, delivered exactly 5 ms later.
            f.record(i * 1_000_000 + 5_000_000, i * 1_000_000, i, 100);
        }
        assert_eq!(f.rx_packets, 100);
        assert_eq!(f.jitter_ns, 0.0);
        assert_eq!(f.reordered, 0);
        assert_eq!(f.loss(100), 0.0);
        assert!((f.loss(200) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flow_stats_variable_transit_accumulates_jitter() {
        let mut f = FlowStats::default();
        for i in 0..100u64 {
            let jitter = if i % 2 == 0 { 0 } else { 2_000_000 };
            f.record(i * 1_000_000 + 5_000_000 + jitter, i * 1_000_000, i, 100);
        }
        assert!(f.jitter_ns > 500_000.0, "jitter {}", f.jitter_ns);
    }

    #[test]
    fn flow_stats_detects_reordering() {
        let mut f = FlowStats::default();
        f.record(10, 0, 0, 10);
        f.record(20, 1, 2, 10);
        f.record(30, 2, 1, 10); // out of order
        assert_eq!(f.reordered, 1);
        assert_eq!(f.max_seq, 2);
    }

    #[test]
    fn throughput_window() {
        let mut f = FlowStats::default();
        f.record(0, 0, 0, 1250);
        f.record(1_000_000_000, 0, 1, 1250);
        // 2500 B over 1 s = 20 kb/s.
        assert!((f.throughput_bps() - 20_000.0).abs() < 1.0);
    }
}
