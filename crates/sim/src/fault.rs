//! Seeded fault-injection plans.
//!
//! A [`FaultPlan`] is a deterministic schedule of link cuts, repairs and
//! flaps. Plans are either hand-written (regression scenarios) or generated
//! from a seed ([`FaultPlan::random`]) for chaos testing: the same seed
//! always yields the same schedule, so a failing chaos run can be replayed
//! bit-for-bit. Plans are pure data — the executor (in `mplsvpn-core`)
//! walks the schedule against a live network, or individual entries can be
//! dropped straight onto the calendar via
//! [`Network::schedule_link_admin`](crate::Network::schedule_link_admin).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::Nanos;

/// What a scheduled fault event does to its link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The link goes down (fiber cut): its egress buffers flush to
    /// `LinkStats.dropped` and further offered packets are lost.
    Cut,
    /// The link comes back up.
    Repair,
}

/// One entry of a fault schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute simulation time the event lands.
    pub at: Nanos,
    /// Topology link index the event applies to.
    pub link: usize,
    /// Cut or repair.
    pub action: FaultAction,
}

/// A deterministic schedule of link faults, sorted by time.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from explicit events (sorted by time; ties keep the
    /// given order, so a cut listed before a repair at the same instant is
    /// applied first).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Generates a seeded random plan: `flaps` cut/repair pairs over
    /// `links`, with cut times in `[0, horizon)` and outage durations in
    /// `[min_outage, 2 * min_outage)`. The same `(seed, links, horizon,
    /// flaps, min_outage)` tuple always produces the same plan.
    pub fn random(
        seed: u64,
        links: &[usize],
        horizon: Nanos,
        flaps: usize,
        min_outage: Nanos,
    ) -> Self {
        assert!(!links.is_empty(), "fault plan needs at least one link");
        assert!(horizon > 0 && min_outage > 0, "horizon and outage must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(flaps * 2);
        for _ in 0..flaps {
            let link = links[rng.random_range(0..links.len() as u64) as usize];
            let at = rng.random_range(0..horizon);
            let outage = min_outage + rng.random_range(0..min_outage);
            events.push(FaultEvent { at, link, action: FaultAction::Cut });
            events.push(FaultEvent { at: at + outage, link, action: FaultAction::Repair });
        }
        FaultPlan::new(events)
    }

    /// The schedule, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event, or 0 for an empty plan (callers use this to
    /// size the run window past the final repair).
    pub fn end(&self) -> Nanos {
        self.events.last().map_or(0, |e| e.at)
    }

    /// The set of distinct links the plan touches, sorted.
    pub fn touched_links(&self) -> Vec<usize> {
        let mut links: Vec<usize> = self.events.iter().map(|e| e.link).collect();
        links.sort_unstable();
        links.dedup();
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MSEC;

    #[test]
    fn random_plans_are_seed_stable() {
        let links = [0usize, 1, 2, 3];
        let a = FaultPlan::random(7, &links, 100 * MSEC, 5, 10 * MSEC);
        let b = FaultPlan::random(7, &links, 100 * MSEC, 5, 10 * MSEC);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::random(8, &links, 100 * MSEC, 5, 10 * MSEC);
        assert_ne!(a.events(), c.events(), "different seeds should differ");
    }

    #[test]
    fn events_are_time_sorted_and_cut_precedes_its_repair() {
        let plan = FaultPlan::random(42, &[0, 1], 50 * MSEC, 8, 5 * MSEC);
        assert_eq!(plan.len(), 16);
        for w in plan.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Per link, walk the schedule: a repair never precedes its cut.
        for &link in &plan.touched_links() {
            let mut down = 0i32;
            for e in plan.events().iter().filter(|e| e.link == link) {
                match e.action {
                    FaultAction::Cut => down += 1,
                    FaultAction::Repair => down -= 1,
                }
                assert!(down >= 0, "a repair must follow its cut");
            }
            assert_eq!(down, 0, "every cut is eventually repaired");
        }
    }

    #[test]
    fn explicit_plans_sort_and_report_extent() {
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 30 * MSEC, link: 1, action: FaultAction::Repair },
            FaultEvent { at: 10 * MSEC, link: 1, action: FaultAction::Cut },
        ]);
        assert_eq!(plan.events()[0].action, FaultAction::Cut);
        assert_eq!(plan.end(), 30 * MSEC);
        assert_eq!(plan.touched_links(), vec![1]);
    }
}
