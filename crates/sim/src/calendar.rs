//! Hierarchical timing-wheel event calendar.
//!
//! The hot path of the simulator is `push` + `pop` of near-future events:
//! serialization completions and propagation arrivals sit microseconds to
//! milliseconds ahead of the clock. A binary heap pays O(log n) compares
//! *and* moves the full event payload at every sift step; the wheel places
//! each event in a slot indexed by its arrival granule in O(1) and only
//! heap-orders the handful of events sharing the cursor's granule.
//!
//! Two structural decisions keep the constant factor low:
//!
//! * **Payloads live in a slab.** An event (which carries a whole `Packet`)
//!   is written once into a free-listed slot; everything the wheel moves
//!   around — slots, cascades, the `cur` heap — is a 24-byte
//!   `(at, seq, slab index)` key.
//! * **Three 256-slot levels over a 2^10 ns ≈ 1 µs granule** (level 0 spans
//!   ~262 µs, level 1 ~67 ms, level 2 ~17 s), plus a binary heap for the
//!   rare far-future timers beyond the wheel span, plus `cur` — a small
//!   heap holding every event whose granule is at or behind the cursor,
//!   which is what `pop` actually drains.
//!
//! Ordering contract: events pop in exactly `(at, seq)` order, identical to
//! the `BinaryHeap<Reverse<Scheduled>>` the engine used before. Two
//! invariants make the wheel order-safe:
//!
//! * every wheel slot only ever holds events of a single granule (level 0)
//!   or a single parent-granule (levels 1–2) at a time, so draining a slot
//!   wholesale into `cur` cannot reorder anything already pending;
//! * events pushed at or behind the cursor go straight into `cur`, which is
//!   fully ordered — late injection (e.g. after `run_until` parked the
//!   cursor far ahead) degrades to heap behaviour instead of misordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsim_qos::Nanos;

/// log2 of the wheel granule in nanoseconds (2^10 ns ≈ 1 µs).
const GRANULE_BITS: u32 = 10;
/// log2 of the slot count per wheel level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot index mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Number of wheel levels; farther events go to the overflow heap.
const LEVELS: usize = 3;
/// Granules covered by all wheel levels together (2^24 granules ≈ 17 s).
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Scheduling key: everything the wheel shuffles between slots. The payload
/// stays parked in the slab at `idx`. Ordered by `(at, seq)`.
#[derive(Clone, Copy)]
struct Key {
    at: Nanos,
    seq: u64,
    idx: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Index of the first set bit at or after `from` in a 256-bit slot bitmap.
fn next_set_bit(occ: &[u64; SLOTS / 64], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let mut w = from >> 6;
    let mut word = occ[w] & (!0u64 << (from & 63));
    loop {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == SLOTS / 64 {
            return None;
        }
        word = occ[w];
    }
}

/// A hierarchical timing wheel with a heap overflow level, popping items in
/// strict `(at, seq)` order.
pub(crate) struct TimingWheel<T> {
    /// Payload slab; `free` lists vacant slots for reuse.
    items: Vec<Option<T>>,
    free: Vec<u32>,
    /// Events whose granule is ≤ the cursor, sorted descending by
    /// `(at, seq)`: the next event to pop is always `cur.last()`.
    cur: Vec<Key>,
    /// Wheel levels; `levels[l][s]` holds events `SLOTS^l` granules apart.
    levels: [Vec<Vec<Key>>; LEVELS],
    /// Per-level slot-occupancy bitmaps (bit `s` set iff `levels[l][s]` is
    /// non-empty): `advance` finds the next populated slot with a couple of
    /// word scans instead of touching up to 255 slot `Vec` headers.
    occ: [[u64; SLOTS / 64]; LEVELS],
    /// Events currently resident per wheel level.
    counts: [usize; LEVELS],
    /// Events beyond the wheel span, refilled as the cursor crosses
    /// top-level boundaries.
    overflow: BinaryHeap<Reverse<Key>>,
    /// Cursor granule (`at >> GRANULE_BITS`).
    tick: u64,
    /// Total events pending (all storage areas).
    len: usize,
}

impl<T> TimingWheel<T> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            items: Vec::new(),
            free: Vec::new(),
            cur: Vec::new(),
            levels: std::array::from_fn(|_| (0..SLOTS).map(|_| Vec::new()).collect()),
            occ: [[0; SLOTS / 64]; LEVELS],
            counts: [0; LEVELS],
            overflow: BinaryHeap::new(),
            tick: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Schedules `item` at time `at` with tie-break key `seq`.
    pub(crate) fn push(&mut self, at: Nanos, seq: u64, item: T) {
        let idx = match self.free.pop() {
            Some(i) => {
                self.items[i as usize] = Some(item);
                i
            }
            None => {
                let i = u32::try_from(self.items.len()).expect("calendar slab overflow");
                self.items.push(Some(item));
                i
            }
        };
        self.len += 1;
        self.place(Key { at, seq, idx });
    }

    /// Timestamp of the earliest pending event. Advances the cursor (an
    /// order-preserving internal reorganization), hence `&mut self`.
    pub(crate) fn peek_at(&mut self) -> Option<Nanos> {
        self.advance();
        self.cur.last().map(|k| k.at)
    }

    /// Removes and returns the earliest pending event.
    pub(crate) fn pop(&mut self) -> Option<(Nanos, u64, T)> {
        self.advance();
        let k = self.cur.pop()?;
        self.len -= 1;
        let item = self.items[k.idx as usize].take().expect("slab slot vacated early");
        self.free.push(k.idx);
        Some((k.at, k.seq, item))
    }

    /// Routes a key to `cur`, a wheel slot, or the overflow heap based on
    /// its distance from the cursor. Does not touch `len`.
    fn place(&mut self, k: Key) {
        let g = k.at >> GRANULE_BITS;
        if g <= self.tick {
            // Sorted insert (descending). `cur` holds the few events of the
            // current granule, so the shift is short; ties are impossible
            // (`seq` is unique) which makes the position unambiguous.
            let pos = self.cur.partition_point(|x| *x > k);
            self.cur.insert(pos, k);
            return;
        }
        let delta = g - self.tick;
        if delta < SLOTS as u64 {
            self.slot_in(0, (g & MASK) as usize, k);
        } else if delta < 1 << (2 * SLOT_BITS) {
            self.slot_in(1, ((g >> SLOT_BITS) & MASK) as usize, k);
        } else if delta < WHEEL_SPAN {
            self.slot_in(2, ((g >> (2 * SLOT_BITS)) & MASK) as usize, k);
        } else {
            self.overflow.push(Reverse(k));
        }
    }

    /// Appends `k` to `levels[lvl][slot]`, keeping the occupancy bitmap and
    /// resident count in sync.
    fn slot_in(&mut self, lvl: usize, slot: usize, k: Key) {
        self.levels[lvl][slot].push(k);
        self.occ[lvl][slot >> 6] |= 1 << (slot & 63);
        self.counts[lvl] += 1;
    }

    /// Empties `levels[lvl][slot]`, re-placing each key relative to the
    /// current cursor. With the cursor at the slot's granule this moves
    /// level-0 keys straight into `cur`.
    fn cascade(&mut self, lvl: usize, slot: usize) {
        let mut tmp = std::mem::take(&mut self.levels[lvl][slot]);
        self.occ[lvl][slot >> 6] &= !(1 << (slot & 63));
        self.counts[lvl] -= tmp.len();
        if lvl == 0 {
            // Every key in a level-0 slot shares one granule ≤ the cursor,
            // so the whole slot belongs in `cur`. With `cur` empty this is
            // a buffer swap (no copying); otherwise merge and re-sort.
            if self.cur.is_empty() {
                std::mem::swap(&mut self.cur, &mut tmp);
            } else {
                self.cur.append(&mut tmp);
            }
            self.cur.sort_unstable_by(|a, b| b.cmp(a));
        } else {
            for k in tmp.drain(..) {
                self.place(k);
            }
        }
        // Hand the (now empty) vector back so the slot keeps its capacity.
        self.levels[lvl][slot] = tmp;
    }

    /// Moves overflow events with granule below `horizon` into the wheels.
    fn refill_overflow(&mut self, horizon: u64) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.at >> GRANULE_BITS >= horizon {
                break;
            }
            let Reverse(k) = self.overflow.pop().expect("peeked");
            self.place(k);
        }
    }

    /// Advances the cursor until `cur` holds the earliest pending events.
    /// No-op when `cur` is already populated or nothing is pending.
    fn advance(&mut self) {
        if !self.cur.is_empty() || self.len == 0 {
            return;
        }
        loop {
            // Scan the remainder of the current level-0 revolution. Slots
            // strictly after the cursor's slot can only hold this
            // revolution's granules (`base + s`); wrapped entries for the
            // next revolution sit in slots ≤ the cursor's and are reached
            // after the boundary cascade below.
            if self.counts[0] > 0 {
                let base = self.tick & !MASK;
                let from = ((self.tick & MASK) + 1) as usize;
                if let Some(s) = next_set_bit(&self.occ[0], from) {
                    self.tick = base + s as u64;
                    self.cascade(0, s);
                    return;
                }
            }
            // All wheels empty: jump straight to the first overflow event
            // and pull everything within a wheel span of it.
            if self.counts == [0; LEVELS] {
                let Some(Reverse(head)) = self.overflow.peek() else { return };
                self.tick = head.at >> GRANULE_BITS;
                self.refill_overflow(self.tick + WHEEL_SPAN);
                debug_assert!(!self.cur.is_empty());
                return;
            }
            // Step to the next boundary and cascade the parent slots. When
            // levels 0 and 1 are empty, whole level-1 revolutions can be
            // skipped by stepping level-2-boundary to level-2-boundary.
            let next = if self.counts[0] == 0 && self.counts[1] == 0 {
                ((self.tick >> (2 * SLOT_BITS)) + 1) << (2 * SLOT_BITS)
            } else {
                ((self.tick >> SLOT_BITS) + 1) << SLOT_BITS
            };
            self.tick = next;
            if next & (WHEEL_SPAN - 1) == 0 {
                self.refill_overflow(next + WHEEL_SPAN);
            }
            if next & ((1 << (2 * SLOT_BITS)) - 1) == 0 && self.counts[2] > 0 {
                self.cascade(2, ((next >> (2 * SLOT_BITS)) & MASK) as usize);
            }
            if self.counts[1] > 0 {
                self.cascade(1, ((next >> SLOT_BITS) & MASK) as usize);
            }
            // Events at exactly the boundary granule may now sit in `cur`
            // (cascaded with zero delta) or in level-0 slot 0 (inserted
            // directly before the cursor arrived); merge both.
            if !self.levels[0][0].is_empty() {
                self.cascade(0, 0);
            }
            if !self.cur.is_empty() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* so the shuffle test needs no RNG crate.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn drain(w: &mut TimingWheel<u32>) -> Vec<(Nanos, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = w.pop() {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(500, 2, 0);
        w.push(500, 1, 0);
        w.push(100, 3, 0);
        w.push(2_000_000, 0, 0); // level 1 territory
        assert_eq!(w.peek_at(), Some(100));
        assert_eq!(drain(&mut w), vec![(100, 3), (500, 1), (500, 2), (2_000_000, 0)]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn payloads_follow_their_keys() {
        let mut w = TimingWheel::new();
        for i in 0..100u32 {
            w.push(u64::from(i % 10) * 100_000, u64::from(i), i);
        }
        let mut seen = Vec::new();
        while let Some((at, seq, item)) = w.pop() {
            // The slab index is recycled aggressively; the payload must
            // still be the one pushed with this (at, seq).
            assert_eq!(u64::from(item % 10) * 100_000, at);
            assert_eq!(u64::from(item), seq);
            seen.push(item);
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn matches_reference_heap_on_shuffled_workload() {
        // Mixed horizons: same-granule ties, level 0/1/2 and overflow, plus
        // interleaved pops. The wheel must reproduce the reference heap's
        // (at, seq) order exactly.
        let mut w = TimingWheel::new();
        let mut reference = BinaryHeap::new();
        let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
        let mut now = 0u64;
        for round in 0..2000u64 {
            let horizon = match rng.next() % 5 {
                0 => rng.next() % (1 << 12), // same/near granule
                1 => rng.next() % (1 << 19), // level 0/1
                2 => rng.next() % (1 << 27), // level 2
                3 => rng.next() % (1 << 36), // overflow
                _ => rng.next() % 64,        // dense ties
            };
            let at = now + horizon;
            // `round` doubles as the unique, monotone tie-break seq.
            w.push(at, round, round);
            reference.push(Reverse((at, round)));
            if rng.next().is_multiple_of(3) {
                let got = w.pop().map(|(at, s, _)| (at, s));
                let want = reference.pop().map(|Reverse(p)| p);
                assert_eq!(got, want, "diverged at round {round}");
                if let Some((at, _)) = got {
                    now = at; // future pushes stay causal, like the engine
                }
            }
        }
        loop {
            let got = w.pop().map(|(at, s, _)| (at, s));
            let want = reference.pop().map(|Reverse(p)| p);
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn far_timer_beyond_wheel_span_pops_correctly() {
        let mut w = TimingWheel::new();
        let far = 60 * 1_000_000_000u64; // 60 s — deep into overflow
        w.push(far, 0, 1);
        w.push(10, 1, 2);
        assert_eq!(drain(&mut w), vec![(10, 1), (far, 0)]);
    }

    #[test]
    fn injection_behind_parked_cursor_stays_ordered() {
        // Pop a far event so the cursor parks far ahead, then push earlier
        // times (legal after the engine clock advanced past them via
        // run_until): they must still pop in (at, seq) order.
        let mut w = TimingWheel::new();
        w.push(5_000_000_000, 0, 0);
        assert!(w.pop().is_some());
        w.push(6_000_000_000, 1, 0);
        w.push(5_500_000_000, 2, 0);
        w.push(5_500_000_000, 3, 0);
        assert_eq!(drain(&mut w), vec![(5_500_000_000, 2), (5_500_000_000, 3), (6_000_000_000, 1)]);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert_eq!(w.peek_at(), None);
        assert!(w.pop().is_none());
    }
}
