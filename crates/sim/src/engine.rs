//! The event calendar, link model and [`Network`] container.

use netsim_net::Pkt;
use netsim_obs::{DropCause, FlightRecorder};
use netsim_qos::{EnqueueOutcome, FifoQueue, Nanos, QueueDiscipline, TxCost};

use crate::calendar::TimingWheel;
use crate::node::{Action, Ctx, IfaceId, Node, NodeId};

/// Identifies a duplex link within one [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub usize);

/// Configuration of one link direction (both directions share it unless
/// connected with [`Network::connect_asymmetric`]).
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: Nanos,
    /// Byte capacity of the default FIFO attached to each egress. Ignored
    /// when an explicit discipline is supplied.
    pub fifo_cap_bytes: usize,
}

impl LinkConfig {
    /// A link with the given rate and delay and a 256 KiB default FIFO.
    pub fn new(rate_bps: u64, delay_ns: Nanos) -> Self {
        LinkConfig { rate_bps, delay_ns, fifo_cap_bytes: 256 * 1024 }
    }

    /// Overrides the default FIFO capacity.
    pub fn fifo_cap(mut self, bytes: usize) -> Self {
        self.fifo_cap_bytes = bytes;
        self
    }
}

/// Per-direction transmit statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets refused by the egress discipline.
    pub dropped: u64,
    /// Nanoseconds the transmitter was busy (utilization = busy / elapsed).
    pub busy_ns: Nanos,
    /// Transmitted packets broken down by wire class (MPLS EXP of the top
    /// label, or IP precedence when unlabeled).
    pub tx_by_class: [u64; 8],
    /// Dropped packets broken down the same way.
    pub dropped_by_class: [u64; 8],
}

impl LinkStats {
    /// Link utilization over an observation window of `elapsed` ns.
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_ns as f64 / elapsed as f64
        }
    }
}

/// The 3-bit wire class a queue drop or transmission is attributed to:
/// the MPLS EXP bits of the top label inside the core, or the IP
/// precedence (DSCP >> 3) at the unlabeled edge — the same fold every
/// EXP-classifying discipline applies.
fn wire_class(pkt: &Pkt) -> usize {
    match pkt.top_label() {
        Some(l) => (l.exp & 0x7) as usize,
        None => pkt.dscp().map_or(0, |d| (d.value() >> 3) as usize),
    }
}

struct Direction {
    /// Link rate plus its fixed-point reciprocal: serialization times come
    /// from a multiply instead of a per-packet division (bit-exact).
    tx_cost: TxCost,
    delay_ns: Nanos,
    qdisc: Box<dyn QueueDiscipline>,
    enabled: bool,
    /// The transmitter is serializing until this instant; it is idle when
    /// `now >= busy_until`. Tracking the completion time instead of a busy
    /// flag lets an empty egress skip its completion event entirely: the
    /// next enqueue observes the timestamp and either starts transmitting
    /// immediately or arms one [`Event::TxIdle`] poke at `busy_until`.
    busy_until: Nanos,
    /// Earliest outstanding [`Event::TxIdle`] poke for this direction, or
    /// `Nanos::MAX` when none is known. Pokes are never cancelled — a
    /// superseded one fires as a harmless no-op — the field only
    /// deduplicates arming so the calendar is not flooded.
    poke_at: Nanos,
    dst_node: NodeId,
    dst_iface: IfaceId,
    stats: LinkStats,
}

struct Link {
    dirs: [Direction; 2],
}

enum Event {
    /// Packet finishes propagation and arrives at a node.
    Arrival { node: NodeId, iface: IfaceId, pkt: Pkt },
    /// A transmitter finished serialization (or a retry poke): try to start
    /// the next transmission on (link, dir).
    TxIdle { link: LinkId, dir: u8 },
    /// A node timer fires.
    Timer { node: NodeId, token: u64 },
    /// A deferred send (see [`Ctx::send_after`]) reaches its egress queue.
    DeferredSend { node: NodeId, iface: IfaceId, pkt: Pkt },
    /// A scheduled administrative link state change (fault injection: cut
    /// or repair lands exactly at its calendar time).
    LinkAdmin { link: LinkId, enabled: bool },
}

/// The simulated network: nodes, links, and the event calendar.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    /// Per node: iface index → (link, direction owned by this node).
    ifaces: Vec<Vec<(LinkId, u8)>>,
    links: Vec<Link>,
    calendar: TimingWheel<Event>,
    now: Nanos,
    seq: u64,
    events_processed: u64,
    /// Reusable [`Action`] buffer handed to each dispatched [`Ctx`], so node
    /// handlers don't allocate per event.
    scratch: Vec<Action>,
    /// Optional drop-cause flight recorder. When attached, every packet the
    /// link layer discards (egress refusal, AQM, purge on failure) lands
    /// here with its cause; `None` keeps the hot path to a single branch.
    recorder: Option<FlightRecorder>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        Network {
            nodes: Vec::new(),
            ifaces: Vec::new(),
            links: Vec::new(),
            calendar: TimingWheel::new(),
            now: 0,
            seq: 0,
            events_processed: 0,
            scratch: Vec::new(),
            recorder: None,
        }
    }

    /// Attaches a drop-cause flight recorder. The recorder is a shared
    /// handle: clone it before attaching to keep a reader on the outside.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        self.recorder = Some(rec);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.ifaces.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Downcasts node `id` to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is not of type `T`.
    pub fn node_ref<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.0].as_any().downcast_ref::<T>().expect("node type mismatch")
    }

    /// Mutable downcast of node `id` to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is not of type `T`.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0].as_any_mut().downcast_mut::<T>().expect("node type mismatch")
    }

    /// Connects `a` and `b` with a symmetric duplex link using default FIFO
    /// egress queues. Returns `(link, iface at a, iface at b)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, IfaceId, IfaceId) {
        let qa: Box<dyn QueueDiscipline> = Box::new(FifoQueue::new(cfg.fifo_cap_bytes));
        let qb: Box<dyn QueueDiscipline> = Box::new(FifoQueue::new(cfg.fifo_cap_bytes));
        self.connect_with_qdiscs(a, b, cfg, cfg, qa, qb)
    }

    /// Connects `a` and `b` with per-direction configs and explicit egress
    /// disciplines (`qdisc_a` schedules a→b traffic at node `a`).
    pub fn connect_asymmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        cfg_ab: LinkConfig,
        cfg_ba: LinkConfig,
    ) -> (LinkId, IfaceId, IfaceId) {
        let qa: Box<dyn QueueDiscipline> = Box::new(FifoQueue::new(cfg_ab.fifo_cap_bytes));
        let qb: Box<dyn QueueDiscipline> = Box::new(FifoQueue::new(cfg_ba.fifo_cap_bytes));
        self.connect_with_qdiscs(a, b, cfg_ab, cfg_ba, qa, qb)
    }

    /// Fully explicit connection: per-direction configs and disciplines.
    pub fn connect_with_qdiscs(
        &mut self,
        a: NodeId,
        b: NodeId,
        cfg_ab: LinkConfig,
        cfg_ba: LinkConfig,
        qdisc_a: Box<dyn QueueDiscipline>,
        qdisc_b: Box<dyn QueueDiscipline>,
    ) -> (LinkId, IfaceId, IfaceId) {
        assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len(), "unknown node");
        assert!(cfg_ab.rate_bps > 0 && cfg_ba.rate_bps > 0, "link rate must be positive");
        let link = LinkId(self.links.len());
        let ia = IfaceId(self.ifaces[a.0].len());
        let ib = IfaceId(self.ifaces[b.0].len());
        self.ifaces[a.0].push((link, 0));
        self.ifaces[b.0].push((link, 1));
        self.links.push(Link {
            dirs: [
                Direction {
                    tx_cost: TxCost::new(cfg_ab.rate_bps),
                    delay_ns: cfg_ab.delay_ns,
                    qdisc: qdisc_a,
                    enabled: true,
                    busy_until: 0,
                    poke_at: Nanos::MAX,
                    dst_node: b,
                    dst_iface: ib,
                    stats: LinkStats::default(),
                },
                Direction {
                    tx_cost: TxCost::new(cfg_ba.rate_bps),
                    delay_ns: cfg_ba.delay_ns,
                    qdisc: qdisc_b,
                    enabled: true,
                    busy_until: 0,
                    poke_at: Nanos::MAX,
                    dst_node: a,
                    dst_iface: ia,
                    stats: LinkStats::default(),
                },
            ],
        });
        (link, ia, ib)
    }

    /// Replaces the egress discipline on the `dir`-th direction of `link`
    /// (0 = the direction away from the first-connected node). Packets
    /// queued in the old discipline are discarded, and counted into this
    /// direction's [`LinkStats::dropped`] so mid-run swaps don't corrupt
    /// loss accounting.
    pub fn set_qdisc(&mut self, link: LinkId, dir: u8, qdisc: Box<dyn QueueDiscipline>) {
        let now = self.now;
        let d = &mut self.links[link.0].dirs[dir as usize];
        for pkt in d.qdisc.purge() {
            d.stats.dropped += 1;
            d.stats.dropped_by_class[wire_class(&pkt)] += 1;
            if let Some(rec) = &self.recorder {
                rec.record(now, pkt.meta.flow, pkt.meta.seq, DropCause::LinkDownPurge);
            }
        }
        d.qdisc = qdisc;
    }

    /// Number of links in the network.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Transmit statistics of one direction of a link.
    pub fn link_stats(&self, link: LinkId, dir: u8) -> LinkStats {
        self.links[link.0].dirs[dir as usize].stats
    }

    /// Enables or disables both directions of a link (fiber cut / repair).
    /// While disabled, packets offered to either egress are dropped and
    /// counted in [`LinkStats::dropped`]; packets already in flight still
    /// arrive.
    pub fn set_link_enabled(&mut self, link: LinkId, enabled: bool) {
        if self.link_enabled(link) == enabled {
            return; // idempotent: re-failing a dead link must not re-purge
        }
        let now = self.now;
        let mut kick = [false; 2];
        for (i, d) in self.links[link.0].dirs.iter_mut().enumerate() {
            d.enabled = enabled;
            if enabled {
                kick[i] = now >= d.busy_until;
            } else {
                // A cut link loses whatever its egress buffer holds; count
                // the flush so conservation (delivered + dropped + in-flight
                // == sent) survives any failure schedule.
                for pkt in d.qdisc.purge() {
                    d.stats.dropped += 1;
                    d.stats.dropped_by_class[wire_class(&pkt)] += 1;
                    if let Some(rec) = &self.recorder {
                        rec.record(now, pkt.meta.flow, pkt.meta.seq, DropCause::LinkDownPurge);
                    }
                }
            }
        }
        // Kick idle transmitters in case traffic queued while down.
        for (i, k) in kick.into_iter().enumerate() {
            if k {
                self.arm_poke(link, i as u8, now);
            }
        }
    }

    /// Whether the link is currently enabled.
    pub fn link_enabled(&self, link: LinkId) -> bool {
        self.links[link.0].dirs[0].enabled
    }

    /// Schedules an administrative link state change at absolute time `at`
    /// (a [`FaultPlan`](crate::FaultPlan) entry landing on the calendar).
    ///
    /// # Panics
    /// Panics in debug builds if `at` is in the past.
    pub fn schedule_link_admin(&mut self, at: Nanos, link: LinkId, enabled: bool) {
        self.push(at, Event::LinkAdmin { link, enabled });
    }

    /// Packets currently buffered across every link egress — the "in
    /// flight or queued" term of the chaos harness's conservation check
    /// (delivered + dropped + queued == sent).
    pub fn queued_packets(&self) -> u64 {
        self.links.iter().flat_map(|l| l.dirs.iter()).map(|d| d.qdisc.len_packets() as u64).sum()
    }

    /// Injects a packet as if node `node` had sent it on `iface` now.
    pub fn inject(&mut self, node: NodeId, iface: IfaceId, pkt: impl Into<Pkt>) {
        self.do_send(node, iface, pkt.into());
    }

    /// Arms a timer for `node` to fire after `delay` (used to bootstrap
    /// sources before the run starts).
    pub fn arm_timer(&mut self, node: NodeId, delay: Nanos, token: u64) {
        let at = self.now + delay;
        self.push(at, Event::Timer { node, token });
    }

    fn push(&mut self, at: Nanos, ev: Event) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.calendar.push(at, self.seq, ev);
        self.seq += 1;
    }

    /// Runs until the calendar is empty or `t_end` is reached (events at
    /// exactly `t_end` are processed). Returns events processed.
    pub fn run_until(&mut self, t_end: Nanos) -> u64 {
        let start_events = self.events_processed;
        while let Some(at) = self.calendar.peek_at() {
            if at > t_end {
                break;
            }
            let (at, _seq, ev) = self.calendar.pop().expect("peeked");
            self.now = at;
            self.events_processed += 1;
            self.dispatch(ev);
        }
        if t_end != Nanos::MAX {
            // Advance the clock to the deadline so consecutive run_until
            // calls observe contiguous windows.
            self.now = self.now.max(t_end);
        }
        self.events_processed - start_events
    }

    /// Runs until the calendar drains completely. Returns events processed.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(Nanos::MAX)
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrival { node, iface, pkt } => {
                let mut ctx = Ctx::new(self.now, node, std::mem::take(&mut self.scratch));
                self.nodes[node.0].on_packet(iface, pkt, &mut ctx);
                self.apply_actions(node, ctx);
            }
            Event::Timer { node, token } => {
                let mut ctx = Ctx::new(self.now, node, std::mem::take(&mut self.scratch));
                self.nodes[node.0].on_timer(token, &mut ctx);
                self.apply_actions(node, ctx);
            }
            Event::TxIdle { link, dir } => {
                let d = &mut self.links[link.0].dirs[dir as usize];
                if d.poke_at <= self.now {
                    d.poke_at = Nanos::MAX;
                }
                self.try_start_tx(link, dir);
            }
            Event::DeferredSend { node, iface, pkt } => self.do_send(node, iface, pkt),
            Event::LinkAdmin { link, enabled } => self.set_link_enabled(link, enabled),
        }
    }

    fn apply_actions(&mut self, node: NodeId, ctx: Ctx) {
        let mut actions = ctx.into_actions();
        for action in actions.drain(..) {
            match action {
                Action::Send { iface, pkt } => self.do_send(node, iface, pkt),
                Action::SendLater { iface, pkt, delay } => {
                    let at = self.now + delay;
                    self.push(at, Event::DeferredSend { node, iface, pkt });
                }
                Action::Timer { delay, token } => {
                    let at = self.now + delay;
                    self.push(at, Event::Timer { node, token });
                }
            }
        }
        // Return the drained buffer so the next dispatch reuses its capacity.
        self.scratch = actions;
    }

    fn do_send(&mut self, node: NodeId, iface: IfaceId, pkt: Pkt) {
        let Some(&(link, dir)) = self.ifaces[node.0].get(iface.0) else {
            panic!("node {node:?} has no interface {iface:?}");
        };
        let d = &mut self.links[link.0].dirs[dir as usize];
        if !d.enabled {
            // Interface is down: the packet is lost on the floor.
            d.stats.dropped += 1;
            d.stats.dropped_by_class[wire_class(&pkt)] += 1;
            if let Some(rec) = &self.recorder {
                rec.record(self.now, pkt.meta.flow, pkt.meta.seq, DropCause::LinkDownPurge);
            }
            return;
        }
        match d.qdisc.enqueue(pkt, self.now) {
            EnqueueOutcome::Queued => {}
            EnqueueOutcome::Dropped(pkt, cause) => {
                d.stats.dropped += 1;
                d.stats.dropped_by_class[wire_class(&pkt)] += 1;
                if let Some(rec) = &self.recorder {
                    rec.record(self.now, pkt.meta.flow, pkt.meta.seq, cause);
                }
                return;
            }
        }
        let busy_until = d.busy_until;
        if self.now >= busy_until {
            self.try_start_tx(link, dir);
        } else {
            // Transmitter is mid-serialization: make sure it polls the
            // queue again the moment it finishes.
            self.arm_poke(link, dir, busy_until);
        }
    }

    /// Schedules a [`Event::TxIdle`] poke at `at` unless an earlier (or
    /// equal) one is already outstanding for this direction.
    fn arm_poke(&mut self, link: LinkId, dir: u8, at: Nanos) {
        let d = &mut self.links[link.0].dirs[dir as usize];
        if at < d.poke_at {
            d.poke_at = at;
            self.push(at, Event::TxIdle { link, dir });
        }
    }

    fn try_start_tx(&mut self, link: LinkId, dir: u8) {
        let now = self.now;
        let d = &mut self.links[link.0].dirs[dir as usize];
        if !d.enabled {
            return;
        }
        if now < d.busy_until {
            // A poke consumed mid-serialization must hand the baton on, or
            // a backlogged queue would never be polled again.
            if d.qdisc.len_packets() > 0 {
                let at = d.busy_until;
                self.arm_poke(link, dir, at);
            }
            return;
        }
        match d.qdisc.dequeue(now) {
            Some(pkt) => {
                let bytes = pkt.wire_len();
                let tx = d.tx_cost.tx_time(bytes);
                d.busy_until = now + tx;
                d.stats.tx_packets += 1;
                d.stats.tx_bytes += bytes as u64;
                d.stats.busy_ns += tx;
                d.stats.tx_by_class[wire_class(&pkt)] += 1;
                let arrive = now + tx + d.delay_ns;
                let dst_node = d.dst_node;
                let dst_iface = d.dst_iface;
                // Only a backlogged egress needs a completion event; an
                // empty one restarts lazily from the next enqueue. The poke
                // precedes the arrival push so same-instant events keep the
                // historical order (transmitter poll, then receiver).
                if d.qdisc.len_packets() > 0 {
                    self.arm_poke(link, dir, now + tx);
                }
                self.push(arrive, Event::Arrival { node: dst_node, iface: dst_iface, pkt });
            }
            None => {
                // Nothing eligible now. If the discipline holds deferred
                // packets (shaped / bounded classes), poke it again later.
                if let Some(t) = d.qdisc.next_ready(now) {
                    let at = t.max(now + 1);
                    self.arm_poke(link, dir, at);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BlackHole;
    use netsim_net::addr::ip;
    use netsim_net::{Dscp, Packet};
    use netsim_qos::{CbqScheduler, MSEC, SEC};

    fn pkt(payload: usize) -> Packet {
        Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, payload)
    }

    /// A node that echoes every packet back out the interface it came in on.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, iface: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
            ctx.send(iface, pkt);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// A node that records arrival times.
    #[derive(Default)]
    struct Recorder {
        arrivals: Vec<Nanos>,
    }
    impl Node for Recorder {
        fn on_packet(&mut self, _iface: IfaceId, _pkt: Pkt, ctx: &mut Ctx) {
            self.arrivals.push(ctx.now());
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn single_packet_timing_is_exact() {
        // 10 Mb/s, 1 ms propagation: a 1250 B packet (incl. headers) takes
        // 1 ms serialization + 1 ms propagation = 2 ms.
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (_, ia, _) = net.connect(a, b, LinkConfig::new(10_000_000, MSEC));
        let p = pkt(1250 - 28); // wire_len = 1250
        net.inject(a, ia, p);
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals, vec![2 * MSEC]);
    }

    #[test]
    fn serialization_queueing_delays_back_to_back_packets() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (_, ia, _) = net.connect(a, b, LinkConfig::new(10_000_000, 0));
        for _ in 0..3 {
            net.inject(a, ia, pkt(1250 - 28));
        }
        net.run_to_quiescence();
        // Packets serialize sequentially: arrivals at 1, 2, 3 ms.
        assert_eq!(net.node_ref::<Recorder>(b).arrivals, vec![MSEC, 2 * MSEC, 3 * MSEC]);
        let st = net.link_stats(LinkId(0), 0);
        assert_eq!(st.tx_packets, 3);
        assert_eq!(st.tx_bytes, 3 * 1250);
        assert_eq!(st.busy_ns, 3 * MSEC);
    }

    #[test]
    fn echo_round_trip() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::default()));
        let b = net.add_node(Box::new(Echo));
        let (_, ia, _) = net.connect(a, b, LinkConfig::new(100_000_000, 500_000));
        net.inject(a, ia, pkt(100));
        net.run_to_quiescence();
        let rec = net.node_ref::<Recorder>(a);
        assert_eq!(rec.arrivals.len(), 1);
        // 128 B at 100 Mb/s = 10.24 us each way + 0.5 ms each way.
        assert_eq!(rec.arrivals[0], 2 * (10_240 + 500_000));
    }

    #[test]
    fn fifo_overflow_counts_drops() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let cfg = LinkConfig::new(1_000_000, 0).fifo_cap(300);
        let (l, ia, _) = net.connect(a, b, cfg);
        // 128 B wire each; one serializing + two queued fit, 4th drops.
        for _ in 0..5 {
            net.inject(a, ia, pkt(100));
        }
        net.run_to_quiescence();
        let st = net.link_stats(l, 0);
        assert_eq!(st.tx_packets + st.dropped, 5);
        assert!(st.dropped >= 1, "expected tail drops, got {st:?}");
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len() as u64, st.tx_packets);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<(Nanos, u64)>,
        }
        impl Node for TimerNode {
            fn on_packet(&mut self, _: IfaceId, _: Pkt, _: &mut Ctx) {}
            fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
                self.fired.push((ctx.now(), token));
                if token < 3 {
                    ctx.schedule(10, token + 1);
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut net = Network::new();
        let n = net.add_node(Box::new(TimerNode { fired: vec![] }));
        net.arm_timer(n, 5, 1);
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<TimerNode>(n).fired, vec![(5, 1), (15, 2), (25, 3)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (_, ia, _) = net.connect(a, b, LinkConfig::new(1_000_000, SEC));
        net.inject(a, ia, pkt(100));
        net.run_until(MSEC); // propagation alone is 1 s; nothing arrives yet
        assert!(net.node_ref::<Recorder>(b).arrivals.is_empty());
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 1);
    }

    /// A CBQ bounded class must drain via next_ready retries instead of
    /// wedging the link.
    #[test]
    fn non_work_conserving_qdisc_drains_via_retries() {
        use netsim_qos::sched::CbqClassConfig;
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let cbq = CbqScheduler::new(
            vec![CbqClassConfig { rate_bps: 800_000, bounded: true, cap_bytes: 1 << 20 }],
            Box::new(|_| 0),
        );
        let cfg = LinkConfig::new(1_000_000_000, 0);
        let (_, ia, _) = net.connect_with_qdiscs(
            a,
            b,
            cfg,
            cfg,
            Box::new(cbq),
            Box::new(netsim_qos::FifoQueue::new(1 << 20)),
        );
        // 20 packets of 1000 B at a shaped 800 kb/s ≈ 10 ms each beyond the burst.
        for _ in 0..20 {
            net.inject(a, ia, pkt(972));
        }
        net.run_to_quiescence();
        let rec = net.node_ref::<Recorder>(b);
        assert_eq!(rec.arrivals.len(), 20, "all packets must eventually arrive");
        let last = *rec.arrivals.last().unwrap();
        // 20 kB at 800 kb/s = 200 ms minus the ~burst credit.
        assert!(last > 100 * MSEC, "shaping must spread arrivals, last={last}");
    }

    #[test]
    fn disabled_link_drops_and_reenabling_resumes() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (l, ia, _) = net.connect(a, b, LinkConfig::new(100_000_000, 0));
        assert!(net.link_enabled(l));
        net.inject(a, ia, pkt(100));
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 1);

        net.set_link_enabled(l, false);
        assert!(!net.link_enabled(l));
        for _ in 0..5 {
            net.inject(a, ia, pkt(100));
        }
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 1, "down link delivers nothing");
        assert_eq!(net.link_stats(l, 0).dropped, 5);

        net.set_link_enabled(l, true);
        net.inject(a, ia, pkt(100));
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 2, "repair restores service");
    }

    #[test]
    fn packet_in_flight_survives_link_failure() {
        // Failure cuts the *egress*; a packet already propagating arrives.
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (l, ia, _) = net.connect(a, b, LinkConfig::new(1_000_000_000, SEC));
        net.inject(a, ia, pkt(100));
        net.run_until(MSEC); // serialized, now propagating
        net.set_link_enabled(l, false);
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 1);
    }

    #[test]
    fn cutting_a_link_flushes_queued_packets_into_dropped() {
        // 1 Mb/s link, five 128 B packets (1.024 ms serialization each):
        // by 1.5 ms one has been delivered and a second is on the wire,
        // leaving three in the egress buffer when the fiber is cut.
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (l, ia, _) = net.connect(a, b, LinkConfig::new(1_000_000, 0));
        for _ in 0..5 {
            net.inject(a, ia, pkt(100));
        }
        net.run_until(1_500_000);
        net.set_link_enabled(l, false);
        assert_eq!(net.link_stats(l, 0).dropped, 3, "queued packets land in dropped");
        // Failing an already-failed link must not double-count.
        net.set_link_enabled(l, false);
        assert_eq!(net.link_stats(l, 0).dropped, 3);
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 2, "in-flight packet survives");
        assert_eq!(net.queued_packets(), 0);
    }

    #[test]
    fn scheduled_link_admin_cuts_and_repairs_on_the_calendar() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (l, ia, _) = net.connect(a, b, LinkConfig::new(100_000_000, 0));
        net.schedule_link_admin(2 * MSEC, l, false);
        net.schedule_link_admin(4 * MSEC, l, true);
        net.run_until(MSEC);
        net.inject(a, ia, pkt(100)); // link still up: delivered
        net.run_until(3 * MSEC);
        net.inject(a, ia, pkt(100)); // cut landed at 2 ms: dropped
        net.run_until(5 * MSEC);
        net.inject(a, ia, pkt(100)); // repair landed at 4 ms: delivered
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 2);
        assert_eq!(net.link_stats(l, 0).dropped, 1);
    }

    #[test]
    fn set_qdisc_counts_stranded_packets_as_dropped() {
        // 1 Mb/s link: the first packet occupies the transmitter while the
        // rest sit in the FIFO; swapping the qdisc mid-run must account the
        // stranded ones as drops instead of losing them silently.
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        let b = net.add_node(Box::new(Recorder::default()));
        let (l, ia, _) = net.connect(a, b, LinkConfig::new(1_000_000, 0));
        for _ in 0..5 {
            net.inject(a, ia, pkt(100));
        }
        // One packet is serializing; four are queued.
        net.set_qdisc(l, 0, Box::new(FifoQueue::new(1 << 20)));
        net.run_to_quiescence();
        let st = net.link_stats(l, 0);
        assert_eq!(st.dropped, 4, "stranded packets must be counted");
        assert_eq!(st.tx_packets, 1);
        assert_eq!(net.node_ref::<Recorder>(b).arrivals.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no interface")]
    fn sending_on_unknown_interface_panics() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(BlackHole::default()));
        net.inject(a, IfaceId(0), pkt(10));
    }
}
