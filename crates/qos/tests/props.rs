//! Property-based tests for the QoS building blocks: conservation,
//! ordering, fairness and metering invariants that must hold for *any*
//! traffic pattern.

use netsim_net::addr::ip;
use netsim_net::{Dscp, Packet, Pkt};
use netsim_qos::sched::CbqClassConfig;
use netsim_qos::{
    CbqScheduler, ClassOf, DrrScheduler, EnqueueOutcome, FifoQueue, PriorityScheduler,
    QueueDiscipline, RedParams, RedQueue, SrTcm, TokenBucket, WfqScheduler, WredQueue, SEC,
};
use proptest::prelude::*;

/// An arbitrary traffic script: (class, payload, enqueue-or-dequeue).
#[derive(Clone, Debug)]
enum Op {
    Enq { class: u8, payload: u16 },
    Deq,
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4, 0u16..1400).prop_map(|(class, payload)| Op::Enq { class, payload }),
            Just(Op::Deq),
        ],
        1..max,
    )
}

fn mk_pkt(class: u8, payload: u16, seq: u64) -> Pkt {
    let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, payload as usize);
    p.meta.flow = u64::from(class);
    p.meta.seq = seq;
    p.into()
}

fn by_flow() -> ClassOf {
    Box::new(|p: &Packet| p.meta.flow as usize)
}

/// Runs a script against a discipline and checks the conservation law:
/// every enqueued packet is either still buffered, was dequeued, or was
/// explicitly dropped — and byte accounting matches exactly.
fn check_conservation(mut q: Box<dyn QueueDiscipline>, ops: &[Op]) {
    let mut enq = 0u64;
    let mut deq = 0u64;
    let mut dropped = 0u64;
    let mut bytes_in = 0usize;
    let mut bytes_out = 0usize;
    let mut now = 0u64;
    let mut seq = 0u64;
    for op in ops {
        now += 1_000;
        match op {
            Op::Enq { class, payload } => {
                let p = mk_pkt(*class, *payload, seq);
                seq += 1;
                let sz = p.wire_len();
                enq += 1;
                match q.enqueue(p, now) {
                    EnqueueOutcome::Queued => bytes_in += sz,
                    EnqueueOutcome::Dropped(..) => dropped += 1,
                }
            }
            Op::Deq => {
                if let Some(p) = q.dequeue(now) {
                    deq += 1;
                    bytes_out += p.wire_len();
                }
            }
        }
    }
    // Drain (far future so shaped classes are eligible).
    let mut guard = 0;
    loop {
        now += SEC;
        match q.dequeue(now) {
            Some(p) => {
                deq += 1;
                bytes_out += p.wire_len();
            }
            None => {
                if q.is_empty() {
                    break;
                }
            }
        }
        guard += 1;
        assert!(guard < 100_000, "drain did not terminate");
    }
    assert_eq!(enq, deq + dropped, "packet conservation");
    assert_eq!(bytes_in, bytes_out, "byte conservation");
    assert_eq!(q.len_packets(), 0);
    assert_eq!(q.len_bytes(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fifo_conserves(ops in arb_ops(200)) {
        check_conservation(Box::new(FifoQueue::new(64 * 1024)), &ops);
    }

    #[test]
    fn red_conserves(ops in arb_ops(200), seed in any::<u64>()) {
        check_conservation(
            Box::new(RedQueue::new(64 * 1024, RedParams::new(8 * 1024, 32 * 1024), seed, 10_000)),
            &ops,
        );
    }

    #[test]
    fn wred_conserves(ops in arb_ops(200), seed in any::<u64>()) {
        check_conservation(
            Box::new(WredQueue::new(64 * 1024, WredQueue::af_profiles(64 * 1024), by_flow(), seed, 10_000)),
            &ops,
        );
    }

    #[test]
    fn priority_conserves(ops in arb_ops(200)) {
        let bands: Vec<Box<dyn QueueDiscipline>> =
            (0..4).map(|_| Box::new(FifoQueue::new(16 * 1024)) as Box<dyn QueueDiscipline>).collect();
        check_conservation(Box::new(PriorityScheduler::new(bands, by_flow())), &ops);
    }

    #[test]
    fn wfq_conserves(ops in arb_ops(200)) {
        check_conservation(Box::new(WfqScheduler::new(&[1, 2, 4, 8], 16 * 1024, by_flow())), &ops);
    }

    #[test]
    fn drr_conserves(ops in arb_ops(200)) {
        check_conservation(
            Box::new(DrrScheduler::new(&[1500, 1500, 3000, 6000], 16 * 1024, by_flow())),
            &ops,
        );
    }

    #[test]
    fn cbq_conserves(ops in arb_ops(200), bounded in any::<bool>()) {
        let cfgs = (0..4)
            .map(|i| CbqClassConfig {
                rate_bps: 1_000_000 * (i + 1),
                bounded: bounded && i == 0,
                cap_bytes: 16 * 1024,
            })
            .collect();
        check_conservation(Box::new(CbqScheduler::new(cfgs, by_flow())), &ops);
    }

    /// Within one class, every work-conserving scheduler must preserve
    /// arrival order (FIFO-per-class).
    #[test]
    fn schedulers_preserve_per_class_order(ops in arb_ops(300), which in 0usize..4) {
        let mut q: Box<dyn QueueDiscipline> = match which {
            0 => Box::new(FifoQueue::new(1 << 20)),
            1 => {
                let bands: Vec<Box<dyn QueueDiscipline>> =
                    (0..4).map(|_| Box::new(FifoQueue::new(1 << 18)) as Box<dyn QueueDiscipline>).collect();
                Box::new(PriorityScheduler::new(bands, by_flow()))
            }
            2 => Box::new(WfqScheduler::new(&[1, 2, 4, 8], 1 << 18, by_flow())),
            _ => Box::new(DrrScheduler::new(&[1500, 1500, 3000, 6000], 1 << 18, by_flow())),
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut last_seen = [0u64; 4]; // last dequeued seq+1 per class
        for op in &ops {
            now += 1_000;
            match op {
                Op::Enq { class, payload } => {
                    seq += 1;
                    let _ = q.enqueue(mk_pkt(*class, *payload, seq), now);
                }
                Op::Deq => {
                    if let Some(p) = q.dequeue(now) {
                        let c = p.meta.flow as usize;
                        prop_assert!(
                            p.meta.seq > last_seen[c],
                            "class {c} reordered: {} after {}",
                            p.meta.seq,
                            last_seen[c]
                        );
                        last_seen[c] = p.meta.seq;
                    }
                }
            }
        }
    }

    /// Hierarchical CBQ conserves packets/bytes over arbitrary scripts.
    #[test]
    fn hier_cbq_conserves(ops in arb_ops(150), bounded_root in any::<bool>()) {
        use netsim_qos::{CbqNodeConfig, HierCbq};
        let m = 1_000_000u64;
        let tree = HierCbq::new(
            vec![
                CbqNodeConfig { parent: None, rate_bps: 10 * m, bounded: bounded_root, cap_bytes: 0 },
                CbqNodeConfig { parent: Some(0), rate_bps: 6 * m, bounded: true, cap_bytes: 0 },
                CbqNodeConfig { parent: Some(1), rate_bps: 2 * m, bounded: false, cap_bytes: 16 * 1024 },
                CbqNodeConfig { parent: Some(1), rate_bps: 4 * m, bounded: false, cap_bytes: 16 * 1024 },
                CbqNodeConfig { parent: Some(0), rate_bps: 4 * m, bounded: false, cap_bytes: 16 * 1024 },
                CbqNodeConfig { parent: Some(0), rate_bps: m, bounded: true, cap_bytes: 16 * 1024 },
            ],
            by_flow(),
        );
        check_conservation(Box::new(tree), &ops);
    }

    /// The shaper conserves packets/bytes like every other discipline
    /// (its drain needs future timestamps, which `check_conservation`
    /// already provides).
    #[test]
    fn shaper_conserves(ops in arb_ops(150), rate_kbps in 64u64..100_000) {
        check_conservation(
            Box::new(netsim_qos::ShapedQueue::new(
                Box::new(FifoQueue::new(1 << 20)),
                rate_kbps * 1000,
                4_000,
            )),
            &ops,
        );
    }

    /// Shaper long-run output rate never exceeds the contract (plus burst).
    #[test]
    fn shaper_rate_bound(payloads in proptest::collection::vec(0u16..1400, 1..100)) {
        let rate = 8_000_000u64; // 1 MB/s
        let burst = 3_000u64;
        let mut q = netsim_qos::ShapedQueue::new(Box::new(FifoQueue::new(1 << 22)), rate, burst);
        for (i, p) in payloads.iter().enumerate() {
            let _ = q.enqueue(mk_pkt(0, *p, i as u64), 0);
        }
        // Drain with the link-retry loop, recording release times.
        let mut now = 0u64;
        let mut released_bytes = 0u64;
        let mut last = 0u64;
        while !q.is_empty() {
            match q.dequeue(now) {
                Some(p) => {
                    released_bytes += p.wire_len() as u64;
                    last = now;
                }
                None => now = q.next_ready(now).expect("backlogged"),
            }
        }
        let budget = burst + rate * last / 8 / 1_000_000_000 + 1500;
        prop_assert!(released_bytes <= budget, "released {released_bytes} > {budget}");
    }

    /// Token bucket long-run rate: over any script, accepted bytes never
    /// exceed burst + rate × elapsed.
    #[test]
    fn token_bucket_rate_bound(
        sizes in proptest::collection::vec(1usize..2000, 1..200),
        gap_ns in 1u64..1_000_000,
    ) {
        let rate = 8_000_000u64; // 1 MB/s
        let burst = 10_000u64;
        let mut tb = TokenBucket::new(rate, burst);
        let mut accepted = 0u64;
        let mut now = 0u64;
        for s in &sizes {
            now += gap_ns;
            if tb.conforms(*s, now) {
                accepted += *s as u64;
            }
        }
        let budget = burst + rate * now / 8 / 1_000_000_000 + 2000;
        prop_assert!(accepted <= budget, "accepted {accepted} > budget {budget}");
    }

    /// srTCM colors are monotone: a packet marked Green would also have
    /// been accepted by a pure CIR bucket of the same parameters.
    #[test]
    fn srtcm_green_never_exceeds_cir(
        sizes in proptest::collection::vec(1usize..1500, 1..200),
        gap_ns in 1u64..500_000,
    ) {
        let mut m = SrTcm::new(8_000_000, 5_000, 5_000);
        let mut green_bytes = 0u64;
        let mut now = 0u64;
        for s in &sizes {
            now += gap_ns;
            if m.meter(*s, now) == netsim_qos::Color::Green {
                green_bytes += *s as u64;
            }
        }
        let budget = 5_000 + 8_000_000 * now / 8 / 1_000_000_000 + 1500;
        prop_assert!(green_bytes <= budget);
    }

    /// The EXP map always produces 3-bit values and the inverse lands in
    /// the same scheduling class.
    #[test]
    fn exp_map_closed_under_roundtrip(v in 0u8..64) {
        let m = netsim_qos::ExpMap::default();
        let d = Dscp::new(v);
        let e = m.exp_of(d);
        prop_assert!(e <= 7);
        let back = m.dscp_of(e);
        prop_assert_eq!(m.exp_of(back), e);
    }
}
