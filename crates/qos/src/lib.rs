//! # netsim-qos — DiffServ building blocks
//!
//! Everything the paper's end-to-end QoS pipeline (§5) needs, as composable
//! pieces:
//!
//! * **Classification & marking** ([`classify`]): rule-based 5-tuple
//!   classifiers used at the customer premises to set DSCP — and which go
//!   blind behind IPsec, reproducing §3's observation.
//! * **PHBs and the DSCP↔EXP mapping** ([`phb`]): how the provider edge maps
//!   the CPE's DiffServ marking into "the QoS field of the MPLS header".
//! * **Metering** ([`meter`]): token bucket and srTCM (RFC 2697) for edge
//!   policing.
//! * **Active queue management** ([`red`]): RED and per-precedence WRED.
//! * **Schedulers** ([`sched`]): FIFO, strict priority, WFQ, DRR and a CBQ
//!   emulation, all behind one [`QueueDiscipline`] trait so any of them can
//!   be attached to any simulated link egress.
//!
//! Time is a bare `u64` nanosecond count ([`Nanos`]); this crate never owns
//! a clock — the simulator passes `now` in.
//!
//! # Example
//!
//! ```
//! use netsim_net::{Dscp, Packet};
//! use netsim_qos::{queue::class_by_exp_or_dscp, FifoQueue, PriorityScheduler, QueueDiscipline};
//!
//! // An 8-band strict-priority scheduler keyed on EXP/DSCP class.
//! let bands: Vec<Box<dyn QueueDiscipline>> =
//!     (0..8).map(|_| Box::new(FifoQueue::new(64 * 1024)) as Box<dyn QueueDiscipline>).collect();
//! let mut sched = PriorityScheduler::new(bands, class_by_exp_or_dscp());
//!
//! let src = "10.0.0.1".parse().unwrap();
//! let dst = "10.0.0.2".parse().unwrap();
//! sched.enqueue(Packet::udp(src, dst, 1, 2, Dscp::BE, 100).into(), 0);
//! sched.enqueue(Packet::udp(src, dst, 1, 2, Dscp::EF, 100).into(), 0);
//!
//! // EF (class 5) outranks best effort.
//! assert_eq!(sched.dequeue(0).unwrap().dscp(), Some(Dscp::EF));
//! assert_eq!(sched.dequeue(0).unwrap().dscp(), Some(Dscp::BE));
//! ```

#![warn(missing_docs)]

pub mod cbq_tree;
pub mod classify;
pub mod meter;
pub mod phb;
pub mod queue;
pub mod red;
pub mod sched;
pub mod shaper;

pub use cbq_tree::{CbqNodeConfig, HierCbq};
pub use classify::{MarkingPolicy, MatchRule};
pub use meter::{Color, SrTcm, TokenBucket, TrTcm};
pub use phb::{ExpMap, Phb};
pub use queue::{ClassOf, EnqueueOutcome, FifoQueue, QueueDiscipline};
pub use red::{RedParams, RedQueue, WredQueue};
pub use sched::{CbqScheduler, DrrScheduler, PriorityScheduler, WfqScheduler};
pub use shaper::ShapedQueue;

/// Simulation time in nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per second.
pub const SEC: Nanos = 1_000_000_000;

/// Nanoseconds per millisecond.
pub const MSEC: Nanos = 1_000_000;

/// Converts a byte count and a rate in bits/s to a duration in nanoseconds.
///
/// Stays in 64-bit arithmetic for every realistic frame (`bytes * 8e9` fits
/// `u64` up to ~2.3 GB), falling back to 128-bit only beyond that; the u128
/// divide (`__udivti3`) is measurably hot when this runs once per hop.
#[inline]
pub fn tx_time(bytes: usize, rate_bps: u64) -> Nanos {
    debug_assert!(rate_bps > 0, "link rate must be positive");
    if let Some(bits_ns) = (bytes as u64).checked_mul(8 * SEC) {
        bits_ns / rate_bps
    } else {
        (bytes as u128 * 8 * SEC as u128 / rate_bps as u128) as Nanos
    }
}

/// Precomputed fixed-point reciprocal of a link rate, turning the per-hop
/// [`tx_time`] division into a multiply.
///
/// The candidate `(bytes * mul) >> 40` with `mul = ceil(8e9·2^40 / rate)`
/// overshoots the true quotient by strictly less than one (the ceiling
/// excess contributes `bytes / 2^40 < 1`), so a single compare-and-decrement
/// against `bytes * 8e9` makes the result *bit-exact* with [`tx_time`] —
/// determinism-sensitive callers can adopt it without replaying results.
#[derive(Clone, Copy, Debug)]
pub struct TxCost {
    rate_bps: u64,
    /// `ceil(8e9 << 40 / rate)`, or 0 when that overflows u64 (rates below
    /// ~512 b/s) — the flag for the plain-division fallback.
    mul: u64,
}

impl TxCost {
    /// Prepares the reciprocal for a link of `rate_bps` bits/s.
    pub fn new(rate_bps: u64) -> Self {
        debug_assert!(rate_bps > 0, "link rate must be positive");
        let num = (u128::from(8 * SEC) << 40) + u128::from(rate_bps) - 1;
        let mul = u64::try_from(num / u128::from(rate_bps.max(1))).unwrap_or(0);
        TxCost { rate_bps, mul }
    }

    /// The rate this reciprocal was built for.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Serialization time of `bytes` at this rate; equals
    /// `tx_time(bytes, self.rate_bps())` exactly.
    #[inline]
    pub fn tx_time(&self, bytes: usize) -> Nanos {
        let Some(bits_ns) = (bytes as u64).checked_mul(8 * SEC) else {
            return tx_time(bytes, self.rate_bps);
        };
        if self.mul == 0 {
            return bits_ns / self.rate_bps;
        }
        let mut q = ((bytes as u128 * u128::from(self.mul)) >> 40) as u64;
        if q.checked_mul(self.rate_bps).is_none_or(|p| p > bits_ns) {
            q -= 1;
        }
        debug_assert_eq!(q, bits_ns / self.rate_bps);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_basics() {
        // 1250 bytes at 10 Mb/s = 1 ms.
        assert_eq!(tx_time(1250, 10_000_000), MSEC);
        // 1 byte at 1 Gb/s = 8 ns.
        assert_eq!(tx_time(1, 1_000_000_000), 8);
        assert_eq!(tx_time(0, 1_000_000), 0);
    }

    #[test]
    fn tx_cost_matches_division_exactly() {
        // Awkward rates on purpose: primes, sub-512 fallback, modem, E1,
        // round powers of ten, 100G. Every byte size must agree bit-exactly.
        let rates = [
            1u64,
            511,
            512,
            9_600,
            56_000,
            1_536_000,
            1_999_999,
            10_000_000,
            99_999_937,
            100_000_000,
            999_999_937,
            1_000_000_000,
            100_000_000_000,
        ];
        for &r in &rates {
            let c = TxCost::new(r);
            for b in (0..=4096).chain([9000, 65_535, 1 << 20]) {
                assert_eq!(c.tx_time(b), tx_time(b, r), "bytes={b} rate={r}");
            }
        }
    }
}
