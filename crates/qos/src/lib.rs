//! # netsim-qos — DiffServ building blocks
//!
//! Everything the paper's end-to-end QoS pipeline (§5) needs, as composable
//! pieces:
//!
//! * **Classification & marking** ([`classify`]): rule-based 5-tuple
//!   classifiers used at the customer premises to set DSCP — and which go
//!   blind behind IPsec, reproducing §3's observation.
//! * **PHBs and the DSCP↔EXP mapping** ([`phb`]): how the provider edge maps
//!   the CPE's DiffServ marking into "the QoS field of the MPLS header".
//! * **Metering** ([`meter`]): token bucket and srTCM (RFC 2697) for edge
//!   policing.
//! * **Active queue management** ([`red`]): RED and per-precedence WRED.
//! * **Schedulers** ([`sched`]): FIFO, strict priority, WFQ, DRR and a CBQ
//!   emulation, all behind one [`QueueDiscipline`] trait so any of them can
//!   be attached to any simulated link egress.
//!
//! Time is a bare `u64` nanosecond count ([`Nanos`]); this crate never owns
//! a clock — the simulator passes `now` in.
//!
//! # Example
//!
//! ```
//! use netsim_net::{Dscp, Packet};
//! use netsim_qos::{queue::class_by_exp_or_dscp, FifoQueue, PriorityScheduler, QueueDiscipline};
//!
//! // An 8-band strict-priority scheduler keyed on EXP/DSCP class.
//! let bands: Vec<Box<dyn QueueDiscipline>> =
//!     (0..8).map(|_| Box::new(FifoQueue::new(64 * 1024)) as Box<dyn QueueDiscipline>).collect();
//! let mut sched = PriorityScheduler::new(bands, class_by_exp_or_dscp());
//!
//! let src = "10.0.0.1".parse().unwrap();
//! let dst = "10.0.0.2".parse().unwrap();
//! sched.enqueue(Packet::udp(src, dst, 1, 2, Dscp::BE, 100), 0);
//! sched.enqueue(Packet::udp(src, dst, 1, 2, Dscp::EF, 100), 0);
//!
//! // EF (class 5) outranks best effort.
//! assert_eq!(sched.dequeue(0).unwrap().dscp(), Some(Dscp::EF));
//! assert_eq!(sched.dequeue(0).unwrap().dscp(), Some(Dscp::BE));
//! ```

#![warn(missing_docs)]

pub mod cbq_tree;
pub mod classify;
pub mod meter;
pub mod phb;
pub mod queue;
pub mod red;
pub mod sched;
pub mod shaper;

pub use cbq_tree::{CbqNodeConfig, HierCbq};
pub use classify::{MarkingPolicy, MatchRule};
pub use meter::{Color, SrTcm, TokenBucket, TrTcm};
pub use phb::{ExpMap, Phb};
pub use queue::{ClassOf, EnqueueOutcome, FifoQueue, QueueDiscipline};
pub use red::{RedParams, RedQueue, WredQueue};
pub use sched::{CbqScheduler, DrrScheduler, PriorityScheduler, WfqScheduler};
pub use shaper::ShapedQueue;

/// Simulation time in nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per second.
pub const SEC: Nanos = 1_000_000_000;

/// Nanoseconds per millisecond.
pub const MSEC: Nanos = 1_000_000;

/// Converts a byte count and a rate in bits/s to a duration in nanoseconds.
#[inline]
pub fn tx_time(bytes: usize, rate_bps: u64) -> Nanos {
    debug_assert!(rate_bps > 0, "link rate must be positive");
    (bytes as u128 * 8 * SEC as u128 / rate_bps as u128) as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_basics() {
        // 1250 bytes at 10 Mb/s = 1 ms.
        assert_eq!(tx_time(1250, 10_000_000), MSEC);
        // 1 byte at 1 Gb/s = 8 ns.
        assert_eq!(tx_time(1, 1_000_000_000), 8);
        assert_eq!(tx_time(0, 1_000_000), 0);
    }
}
