//! Random Early Detection and Weighted RED.
//!
//! RED (Floyd & Jacobson) keeps an exponentially weighted moving average of
//! the queue size and drops arriving packets with a probability that rises
//! between two thresholds — signalling congestion to responsive sources
//! before the buffer overflows. WRED runs several drop profiles over one
//! physical queue, selected per packet (here: by AF drop precedence or by
//! MPLS EXP), so that out-of-profile traffic is discarded first. This is the
//! AQM half of the paper's DiffServ-over-MPLS core behaviour.

use std::collections::VecDeque;

use netsim_net::Pkt;
use netsim_obs::DropCause;

use crate::queue::{ClassOf, EnqueueOutcome, QueueDiscipline};
use crate::Nanos;

/// RED drop-curve parameters (byte-based).
#[derive(Clone, Copy, Debug)]
pub struct RedParams {
    /// Below this average queue size nothing is dropped.
    pub min_th_bytes: f64,
    /// Above this average queue size everything is dropped.
    pub max_th_bytes: f64,
    /// Drop probability at `max_th` (the slope endpoint).
    pub max_p: f64,
}

impl RedParams {
    /// A conventional profile: thresholds at `min`/`max` bytes, 10% max
    /// probability.
    pub fn new(min_th_bytes: usize, max_th_bytes: usize) -> Self {
        assert!(max_th_bytes > min_th_bytes, "max_th must exceed min_th");
        RedParams {
            min_th_bytes: min_th_bytes as f64,
            max_th_bytes: max_th_bytes as f64,
            max_p: 0.1,
        }
    }

    /// Sets the drop probability at `max_th`.
    pub fn with_max_p(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.max_p = p;
        self
    }
}

/// EWMA weight for the average queue estimate (RED paper default).
const EWMA_WEIGHT: f64 = 0.002;

/// Deterministic xorshift64* generator for drop decisions; seeded per queue
/// so runs are reproducible.
#[derive(Clone, Debug)]
struct DropRng(u64);

impl DropRng {
    fn new(seed: u64) -> Self {
        DropRng(seed | 1)
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        // Map the top 53 bits to [0, 1).
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Shared RED state machine: average tracking + drop decision.
#[derive(Clone, Debug)]
struct RedCore {
    avg: f64,
    /// Packets accepted since the last drop (per RED's uniformization).
    count: i64,
    rng: DropRng,
    /// Time the queue went empty (for idle decay), if currently idle.
    idle_since: Option<Nanos>,
    /// Typical packet transmission time used to decay `avg` across idle
    /// periods, in ns.
    mean_pkt_time: Nanos,
}

impl RedCore {
    fn new(seed: u64, mean_pkt_time: Nanos) -> Self {
        RedCore { avg: 0.0, count: -1, rng: DropRng::new(seed), idle_since: Some(0), mean_pkt_time }
    }

    fn update_avg(&mut self, qbytes: usize, now: Nanos) {
        if let Some(t0) = self.idle_since.take() {
            // Decay the average as if m small packets had drained while idle.
            let m = ((now.saturating_sub(t0)) / self.mean_pkt_time.max(1)) as i32;
            self.avg *= (1.0 - EWMA_WEIGHT).powi(m.min(100_000));
        }
        self.avg += EWMA_WEIGHT * (qbytes as f64 - self.avg);
    }

    /// RED drop decision for the current average against `params`:
    /// `None` to accept, or the cause distinguishing a *forced* drop
    /// (average at/above `max_th`) from a probabilistic *early* drop.
    fn should_drop(&mut self, params: &RedParams) -> Option<DropCause> {
        if self.avg < params.min_th_bytes {
            self.count = -1;
            return None;
        }
        if self.avg >= params.max_th_bytes {
            self.count = 0;
            return Some(DropCause::RedForced);
        }
        self.count += 1;
        let pb = params.max_p * (self.avg - params.min_th_bytes)
            / (params.max_th_bytes - params.min_th_bytes);
        let pa = pb / (1.0 - (self.count as f64) * pb).max(1e-9);
        if self.rng.next_f64() < pa {
            self.count = 0;
            Some(DropCause::RedEarly)
        } else {
            None
        }
    }

    fn note_empty(&mut self, now: Nanos) {
        self.idle_since = Some(now);
    }
}

/// A RED-managed FIFO, optionally ECN-aware (RFC 3168: mark instead of
/// drop for ECN-capable packets).
pub struct RedQueue {
    q: VecDeque<Pkt>,
    bytes: usize,
    cap_bytes: usize,
    params: RedParams,
    core: RedCore,
    ecn: bool,
    drops_early: u64,
    drops_forced: u64,
    drops_tail: u64,
    ce_marks: u64,
}

impl RedQueue {
    /// Creates a RED queue with hard capacity `cap_bytes`, the given drop
    /// curve, and a deterministic seed. `mean_pkt_time_ns` calibrates the
    /// idle decay (use payload size / link rate; 12 µs ≈ 1500 B at 1 Gb/s).
    pub fn new(cap_bytes: usize, params: RedParams, seed: u64, mean_pkt_time_ns: Nanos) -> Self {
        RedQueue {
            q: VecDeque::new(),
            bytes: 0,
            cap_bytes,
            params,
            core: RedCore::new(seed, mean_pkt_time_ns),
            ecn: false,
            drops_early: 0,
            drops_forced: 0,
            drops_tail: 0,
            ce_marks: 0,
        }
    }

    /// Enables ECN: an early "drop" of an ECN-capable packet becomes a CE
    /// mark and the packet is queued (hard tail drops still drop).
    pub fn with_ecn(mut self) -> Self {
        self.ecn = true;
        self
    }

    /// RED drops so far (probabilistic early drops *plus* forced drops at
    /// the max threshold; see [`RedQueue::drops_forced`] for the split).
    pub fn drops_early(&self) -> u64 {
        self.drops_early
    }

    /// The subset of RED drops that were *forced* — average queue at or
    /// above `max_th`, where RED degenerates to tail-drop behaviour.
    pub fn drops_forced(&self) -> u64 {
        self.drops_forced
    }

    /// CE marks applied instead of drops (ECN mode).
    pub fn ce_marks(&self) -> u64 {
        self.ce_marks
    }

    /// Hard tail drops so far.
    pub fn drops_tail(&self) -> u64 {
        self.drops_tail
    }

    /// Current average queue estimate in bytes.
    pub fn avg_bytes(&self) -> f64 {
        self.core.avg
    }
}

impl QueueDiscipline for RedQueue {
    fn enqueue(&mut self, mut pkt: Pkt, now: Nanos) -> EnqueueOutcome {
        self.core.update_avg(self.bytes, now);
        let sz = pkt.wire_len();
        if self.bytes + sz > self.cap_bytes {
            self.drops_tail += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        if let Some(cause) = self.core.should_drop(&self.params) {
            let ect = self.ecn && pkt.outer_ipv4().is_some_and(netsim_net::Ipv4Header::is_ect);
            if ect {
                pkt.outer_ipv4_mut().expect("checked above").set_ce();
                self.ce_marks += 1;
                // fall through and queue the marked packet
            } else {
                self.drops_early += 1;
                if cause == DropCause::RedForced {
                    self.drops_forced += 1;
                }
                return EnqueueOutcome::Dropped(pkt, cause);
            }
        }
        self.bytes += sz;
        self.q.push_back(pkt);
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Pkt> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_len();
        if self.q.is_empty() {
            self.core.note_empty(now);
        }
        Some(pkt)
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn peek_len(&self) -> Option<usize> {
        self.q.front().map(|p| p.wire_len())
    }

    fn purge(&mut self) -> Vec<Pkt> {
        self.bytes = 0;
        self.q.drain(..).collect()
    }
}

/// Weighted RED: one physical FIFO, several drop profiles selected per
/// packet by a class function (e.g. AF drop precedence, or "discard
/// eligible" for the overlay baseline). Classes with lower thresholds are
/// culled earlier under congestion.
pub struct WredQueue {
    q: VecDeque<Pkt>,
    bytes: usize,
    cap_bytes: usize,
    profiles: Vec<RedParams>,
    class_of: ClassOf,
    core: RedCore,
    drops_early: Vec<u64>,
    drops_tail: u64,
}

impl WredQueue {
    /// Creates a WRED queue. `profiles[class_of(pkt)]` selects the drop
    /// curve; out-of-range classes use the last profile.
    pub fn new(
        cap_bytes: usize,
        profiles: Vec<RedParams>,
        class_of: ClassOf,
        seed: u64,
        mean_pkt_time_ns: Nanos,
    ) -> Self {
        assert!(!profiles.is_empty(), "WRED needs at least one profile");
        let n = profiles.len();
        WredQueue {
            q: VecDeque::new(),
            bytes: 0,
            cap_bytes,
            profiles,
            class_of,
            core: RedCore::new(seed, mean_pkt_time_ns),
            drops_early: vec![0; n],
            drops_tail: 0,
        }
    }

    /// A standard three-precedence AF profile set over `cap_bytes`:
    /// precedence 0 (in-profile) tolerates the deepest queue; precedence 2
    /// is dropped earliest.
    pub fn af_profiles(cap_bytes: usize) -> Vec<RedParams> {
        vec![
            RedParams::new(cap_bytes * 5 / 10, cap_bytes * 9 / 10).with_max_p(0.05),
            RedParams::new(cap_bytes * 3 / 10, cap_bytes * 7 / 10).with_max_p(0.1),
            RedParams::new(cap_bytes / 10, cap_bytes * 4 / 10).with_max_p(0.2),
        ]
    }

    /// Early drops per class.
    pub fn drops_early(&self) -> &[u64] {
        &self.drops_early
    }

    /// Hard tail drops.
    pub fn drops_tail(&self) -> u64 {
        self.drops_tail
    }
}

impl QueueDiscipline for WredQueue {
    fn enqueue(&mut self, pkt: Pkt, now: Nanos) -> EnqueueOutcome {
        self.core.update_avg(self.bytes, now);
        let sz = pkt.wire_len();
        if self.bytes + sz > self.cap_bytes {
            self.drops_tail += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        let class = (self.class_of)(&pkt).min(self.profiles.len() - 1);
        let params = self.profiles[class];
        if let Some(cause) = self.core.should_drop(&params) {
            self.drops_early[class] += 1;
            return EnqueueOutcome::Dropped(pkt, cause);
        }
        self.bytes += sz;
        self.q.push_back(pkt);
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Pkt> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_len();
        if self.q.is_empty() {
            self.core.note_empty(now);
        }
        Some(pkt)
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn peek_len(&self) -> Option<usize> {
        self.q.front().map(|p| p.wire_len())
    }

    fn purge(&mut self) -> Vec<Pkt> {
        self.bytes = 0;
        self.q.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;
    use netsim_net::Packet;

    fn pkt(n: usize) -> Pkt {
        Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, n).into()
    }

    /// Fill-and-hold: with the average persistently above max_th, every
    /// arrival is dropped; below min_th, none are.
    #[test]
    fn red_extremes() {
        let params = RedParams::new(1000, 2000);
        let mut q = RedQueue::new(1_000_000, params, 42, 1000);
        // Queue near empty: avg < min_th, no early drops.
        for _ in 0..50 {
            assert!(q.enqueue(pkt(100), 0).is_queued());
            q.dequeue(0);
        }
        assert_eq!(q.drops_early(), 0);

        // Force the average high by keeping ~10 KB buffered for many arrivals.
        let mut q = RedQueue::new(1_000_000, params, 42, 1000);
        let mut accepted = 0u32;
        for i in 0..20_000u64 {
            if q.enqueue(pkt(972), i).is_queued() {
                accepted += 1;
            }
            // Drain only enough to keep ~10 packets buffered.
            if q.len_packets() > 10 {
                q.dequeue(i);
            }
        }
        assert!(accepted > 0);
        assert!(q.avg_bytes() > 2000.0, "avg should converge above max_th");
        assert!(q.drops_early() > 1000, "persistent congestion must drop");
    }

    /// Persistent congestion pushes the average past `max_th`: most drops
    /// are then *forced*, and the forced tally is a subset of the total.
    #[test]
    fn forced_drops_are_distinguished_from_early() {
        let params = RedParams::new(1000, 2000);
        let mut q = RedQueue::new(1_000_000, params, 42, 1000);
        for i in 0..20_000u64 {
            q.enqueue(pkt(972), i);
            if q.len_packets() > 10 {
                q.dequeue(i);
            }
        }
        assert!(q.drops_forced() > 0, "avg above max_th must force drops");
        assert!(
            q.drops_early() > q.drops_forced(),
            "the climb through [min_th, max_th) must also drop probabilistically: \
             total {} vs forced {}",
            q.drops_early(),
            q.drops_forced()
        );
    }

    #[test]
    fn red_is_deterministic_per_seed() {
        let params = RedParams::new(500, 1500);
        let run = |seed: u64| {
            let mut q = RedQueue::new(100_000, params, seed, 1000);
            let mut pattern = Vec::new();
            for i in 0..5000u64 {
                pattern.push(q.enqueue(pkt(500), i * 10).is_queued());
                if q.len_packets() > 3 {
                    q.dequeue(i * 10);
                }
            }
            (pattern, q.drops_early())
        };
        assert_eq!(run(7), run(7));
        let (_, d7) = run(7);
        let (_, d8) = run(8);
        // Different seeds may differ in exact pattern but both must drop.
        assert!(d7 > 0 && d8 > 0);
    }

    #[test]
    fn red_tail_drop_still_enforced() {
        let mut q = RedQueue::new(150, RedParams::new(10_000, 20_000), 1, 1000);
        assert!(q.enqueue(pkt(100), 0).is_queued());
        assert!(!q.enqueue(pkt(100), 0).is_queued());
        assert_eq!(q.drops_tail(), 1);
    }

    #[test]
    fn idle_decay_resets_average() {
        let params = RedParams::new(1000, 2000);
        let mut q = RedQueue::new(1_000_000, params, 3, 1000);
        // Congest to raise avg.
        for i in 0..5000u64 {
            q.enqueue(pkt(972), i);
            if q.len_packets() > 10 {
                q.dequeue(i);
            }
        }
        let high = q.avg_bytes();
        assert!(high > 1000.0);
        while q.dequeue(5000).is_some() {}
        // Long idle: next enqueue must see a decayed average.
        assert!(q.enqueue(pkt(100), 50_000_000).is_queued());
        assert!(q.avg_bytes() < high / 10.0, "avg {high} -> {}", q.avg_bytes());
    }

    /// With ECN enabled, ECT packets are marked instead of dropped; non-ECT
    /// packets in the same queue still take the drops.
    #[test]
    fn ecn_marks_ect_packets_instead_of_dropping() {
        let params = RedParams::new(1000, 2000);
        let mut q = RedQueue::new(1_000_000, params, 42, 1000).with_ecn();
        let mut ce_seen = 0u64;
        for i in 0..20_000u64 {
            let mut p = pkt(972);
            if i % 2 == 0 {
                p.outer_ipv4_mut().unwrap().ecn = netsim_net::ip::ecn::ECT0;
            }
            q.enqueue(p, i);
            if q.len_packets() > 10 {
                if let Some(out) = q.dequeue(i) {
                    if out.outer_ipv4().unwrap().is_ce() {
                        ce_seen += 1;
                    }
                }
            }
        }
        assert!(q.ce_marks() > 500, "marks {}", q.ce_marks());
        assert!(q.drops_early() > 500, "non-ECT packets still drop: {}", q.drops_early());
        assert!(ce_seen > 0, "marked packets are delivered with CE set");
    }

    /// WRED must discriminate: under identical offered load, the
    /// high-precedence (class 2) profile drops far more than class 0.
    #[test]
    fn wred_orders_drop_rates_by_precedence() {
        let profiles = WredQueue::af_profiles(10_000);
        let class_of: ClassOf = Box::new(|p: &Packet| usize::from(p.meta.flow as u8 % 3));
        let mut q = WredQueue::new(10_000, profiles, class_of, 11, 1000);
        for i in 0..30_000u64 {
            let mut p = pkt(472);
            p.meta.flow = i % 3;
            q.enqueue(p, i * 5);
            if q.len_bytes() > 5_000 {
                q.dequeue(i * 5);
            }
        }
        let d = q.drops_early();
        assert!(d[2] > d[1], "class2 {} should exceed class1 {}", d[2], d[1]);
        assert!(d[1] > d[0], "class1 {} should exceed class0 {}", d[1], d[0]);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn wred_requires_profiles() {
        WredQueue::new(100, vec![], Box::new(|_| 0), 1, 1);
    }
}
