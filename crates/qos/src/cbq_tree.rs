//! Hierarchical CBQ: Floyd & Van Jacobson's link-sharing class tree.
//!
//! The paper's CPE "could use technologies such as CBQ to classify
//! traffic" (§5). The flat [`crate::CbqScheduler`] covers per-class rates;
//! this discipline adds the *hierarchy*: an organization buys a bounded
//! share of the link, divides it among departments, and departments'
//! traffic classes borrow unused capacity from their own organization
//! before anyone else sees it.
//!
//! Semantics (simplified from the formal link-sharing guidelines, but
//! faithful in effect):
//!
//! * Every node has a rate. **Bounded** nodes are hard caps: traffic under
//!   them never exceeds their rate. Unbounded nodes are *targets*: they
//!   gate only the in-profile pass, so their subtree can borrow idle
//!   capacity.
//! * Pass 1 (in-profile, round-robin): a leaf may send if every node on
//!   its root path has tokens.
//! * Pass 2 (borrowing, round-robin): a leaf may send if every **bounded**
//!   node on its root path has tokens.
//! * Non-work-conserving when every eligible leaf is gated by a bounded
//!   ancestor — the link retries at [`QueueDiscipline::next_ready`].

use std::collections::VecDeque;

use netsim_net::Pkt;
use netsim_obs::DropCause;

use crate::meter::TokenBucket;
use crate::queue::{ClassOf, EnqueueOutcome, QueueDiscipline};
use crate::{Nanos, SEC};

/// Configuration of one node in the class tree.
#[derive(Clone, Debug)]
pub struct CbqNodeConfig {
    /// Parent node index; `None` for the root. Parents must be declared
    /// before children (indices ascend toward the leaves).
    pub parent: Option<usize>,
    /// The node's rate, bits/s.
    pub rate_bps: u64,
    /// Hard cap: the subtree may never exceed `rate_bps`.
    pub bounded: bool,
    /// Leaf buffer capacity in bytes (ignored for interior nodes).
    pub cap_bytes: usize,
}

struct TreeNode {
    cfg: CbqNodeConfig,
    bucket: TokenBucket,
    /// Queue, present only on leaves.
    q: Option<VecDeque<Pkt>>,
    bytes: usize,
    drops: u64,
}

/// The hierarchical CBQ discipline. Packets are classified to *leaves* by
/// `class_of` (leaf ordinal in declaration order).
pub struct HierCbq {
    nodes: Vec<TreeNode>,
    /// Node indices of the leaves, in declaration order.
    leaves: Vec<usize>,
    class_of: ClassOf,
    rr: usize,
}

impl HierCbq {
    /// Builds the tree.
    ///
    /// # Panics
    /// Panics if a parent index is not smaller than its child's, or if the
    /// tree has no leaves.
    pub fn new(configs: Vec<CbqNodeConfig>, class_of: ClassOf) -> Self {
        assert!(!configs.is_empty(), "CBQ tree needs nodes");
        let mut has_child = vec![false; configs.len()];
        for (i, c) in configs.iter().enumerate() {
            if let Some(p) = c.parent {
                assert!(p < i, "parent {p} must be declared before child {i}");
                has_child[p] = true;
            } else {
                assert_eq!(i, 0, "only node 0 may be the root");
            }
        }
        let nodes: Vec<TreeNode> = configs
            .into_iter()
            .map(|cfg| {
                let burst = (cfg.rate_bps / 80).max(3200);
                TreeNode {
                    bucket: TokenBucket::new(cfg.rate_bps, burst),
                    cfg,
                    q: None,
                    bytes: 0,
                    drops: 0,
                }
            })
            .collect();
        let mut me = HierCbq { nodes, leaves: Vec::new(), class_of, rr: 0 };
        for (i, leaf) in has_child.iter().enumerate() {
            if !leaf {
                me.nodes[i].q = Some(VecDeque::new());
                me.leaves.push(i);
            }
        }
        assert!(!me.leaves.is_empty(), "CBQ tree needs at least one leaf");
        me
    }

    /// Drops per leaf, in leaf order.
    pub fn drops(&self) -> Vec<u64> {
        self.leaves.iter().map(|&i| self.nodes[i].drops).collect()
    }

    /// The node configurations in declaration order (read by the static
    /// verifier to lint the link-share allocation).
    pub fn configs(&self) -> Vec<CbqNodeConfig> {
        self.nodes.iter().map(|n| n.cfg.clone()).collect()
    }

    fn path_of(&self, mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while let Some(p) = self.nodes[node].cfg.parent {
            path.push(p);
            node = p;
        }
        path
    }

    /// Whether every node in `path` (filtered by `only_bounded`) can cover
    /// `bytes` at `now`; if yes, charges all of them and returns true.
    fn try_charge(&mut self, path: &[usize], bytes: usize, now: Nanos, only_bounded: bool) -> bool {
        // Check first (level_bytes refills as a side effect, which is fine).
        for &n in path {
            let gate = !only_bounded || self.nodes[n].cfg.bounded;
            if gate && (self.nodes[n].bucket.level_bytes(now) as usize) < bytes {
                return false;
            }
        }
        for &n in path {
            // Charge every node that can pay (hierarchical accounting);
            // nodes that can't are borrowers' victims and simply stay empty.
            self.nodes[n].bucket.conforms(bytes, now);
        }
        true
    }

    fn try_pass(&mut self, now: Nanos, only_bounded: bool) -> Option<Pkt> {
        let n_leaves = self.leaves.len();
        for off in 0..n_leaves {
            let li = (self.rr + off) % n_leaves;
            let leaf = self.leaves[li];
            let head_len = match self.nodes[leaf].q.as_ref().and_then(|q| q.front()) {
                Some(p) => p.wire_len(),
                None => continue,
            };
            let path = self.path_of(leaf);
            if self.try_charge(&path, head_len, now, only_bounded) {
                let node = &mut self.nodes[leaf];
                let pkt = node.q.as_mut().expect("leaf").pop_front().expect("head");
                node.bytes -= head_len;
                self.rr = (li + 1) % n_leaves;
                return Some(pkt);
            }
        }
        None
    }
}

impl QueueDiscipline for HierCbq {
    fn enqueue(&mut self, pkt: Pkt, _now: Nanos) -> EnqueueOutcome {
        let li = (self.class_of)(&pkt).min(self.leaves.len() - 1);
        let leaf = self.leaves[li];
        let node = &mut self.nodes[leaf];
        let sz = pkt.wire_len();
        if node.bytes + sz > node.cfg.cap_bytes {
            node.drops += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        node.bytes += sz;
        node.q.as_mut().expect("leaf").push_back(pkt);
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Pkt> {
        // In-profile leaves first, then borrowers (gated by bounded
        // ancestors only).
        self.try_pass(now, false).or_else(|| self.try_pass(now, true))
    }

    fn len_packets(&self) -> usize {
        self.leaves.iter().map(|&i| self.nodes[i].q.as_ref().map_or(0, VecDeque::len)).sum()
    }

    fn len_bytes(&self) -> usize {
        self.leaves.iter().map(|&i| self.nodes[i].bytes).sum()
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        let mut earliest: Option<Nanos> = None;
        for &leaf in &self.leaves {
            let Some(head) = self.nodes[leaf].q.as_ref().and_then(|q| q.front()) else {
                continue;
            };
            let need = head.wire_len();
            // Wait until the slowest bounded gate on the path can cover the
            // head (conservative: rate-based estimate from zero tokens).
            let mut wait = 1u64; // borrowers with no bounded gate: ~now
            let mut node = leaf;
            loop {
                let n = &self.nodes[node];
                if n.cfg.bounded {
                    let w = (need as u128 * 8 * SEC as u128 / n.cfg.rate_bps as u128) as Nanos;
                    wait = wait.max(w);
                }
                match n.cfg.parent {
                    Some(p) => node = p,
                    None => break,
                }
            }
            let t = now + wait;
            earliest = Some(earliest.map_or(t, |e: Nanos| e.min(t)));
        }
        earliest
    }

    fn purge(&mut self) -> Vec<Pkt> {
        let mut out = Vec::new();
        for &leaf in &self.leaves {
            let node = &mut self.nodes[leaf];
            if let Some(q) = node.q.as_mut() {
                out.extend(q.drain(..));
            }
            node.bytes = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;
    use netsim_net::Packet;

    fn pkt(class: u64, payload: usize) -> Pkt {
        let mut p = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, payload);
        p.meta.flow = class;
        p.into()
    }

    fn by_flow() -> ClassOf {
        Box::new(|p: &Packet| p.meta.flow as usize)
    }

    /// Root(10M, bounded) ── orgA(6M, bounded) ── {voiceA(2M), dataA(4M)}
    ///                    └─ orgB(4M, bounded) ── {dataB(4M)}
    fn two_orgs() -> HierCbq {
        let m = 1_000_000u64;
        HierCbq::new(
            vec![
                CbqNodeConfig { parent: None, rate_bps: 10 * m, bounded: true, cap_bytes: 0 },
                CbqNodeConfig { parent: Some(0), rate_bps: 6 * m, bounded: true, cap_bytes: 0 },
                CbqNodeConfig { parent: Some(0), rate_bps: 4 * m, bounded: true, cap_bytes: 0 },
                CbqNodeConfig {
                    parent: Some(1),
                    rate_bps: 2 * m,
                    bounded: false,
                    cap_bytes: 1 << 22,
                },
                CbqNodeConfig {
                    parent: Some(1),
                    rate_bps: 4 * m,
                    bounded: false,
                    cap_bytes: 1 << 22,
                },
                CbqNodeConfig {
                    parent: Some(2),
                    rate_bps: 4 * m,
                    bounded: false,
                    cap_bytes: 1 << 22,
                },
            ],
            by_flow(),
        )
    }

    /// Drains with the link-retry loop for `dur` ns; returns bytes per leaf.
    fn drain(q: &mut HierCbq, dur: Nanos) -> Vec<u64> {
        let mut out = vec![0u64; 3];
        let mut now = 0u64;
        while now < dur {
            match q.dequeue(now) {
                Some(p) => out[p.meta.flow as usize] += p.wire_len() as u64,
                None => match q.next_ready(now) {
                    Some(t) if t > now => now = t.min(dur),
                    _ => break,
                },
            }
        }
        out
    }

    #[test]
    fn org_shares_hold_when_all_backlogged() {
        let mut q = two_orgs();
        for _ in 0..6000 {
            q.enqueue(pkt(0, 972), 0); // voiceA
            q.enqueue(pkt(1, 972), 0); // dataA
            q.enqueue(pkt(2, 972), 0); // dataB
        }
        let bytes = drain(&mut q, SEC);
        let org_a = bytes[0] + bytes[1];
        let org_b = bytes[2];
        // OrgA ≈ 6 Mb/s = 750 kB, orgB ≈ 4 Mb/s = 500 kB (±burst slack).
        assert!((650_000..=900_000).contains(&org_a), "orgA {org_a}");
        assert!((420_000..=620_000).contains(&org_b), "orgB {org_b}");
        // Within orgA, data gets about twice voice's share.
        let ratio = bytes[1] as f64 / bytes[0] as f64;
        assert!((1.4..=2.8).contains(&ratio), "intra-org ratio {ratio}");
    }

    /// When dataA goes idle, voiceA borrows the whole org allowance — but
    /// never exceeds the bounded org cap.
    #[test]
    fn child_borrows_within_its_organization() {
        let mut q = two_orgs();
        for _ in 0..6000 {
            q.enqueue(pkt(0, 972), 0); // voiceA only (rate 2M, org 6M)
            q.enqueue(pkt(2, 972), 0); // dataB keeps orgB busy
        }
        let bytes = drain(&mut q, SEC);
        // voiceA borrowed up to orgA's 6 Mb/s ≈ 750 kB.
        assert!(bytes[0] > 600_000, "voiceA should borrow org idle: {}", bytes[0]);
        assert!(bytes[0] < 950_000, "but never past the bounded org cap: {}", bytes[0]);
        assert_eq!(bytes[1], 0);
    }

    /// A bounded organization cannot borrow from the other organization,
    /// even when the link is otherwise idle.
    #[test]
    fn bounded_org_cannot_poach_idle_link() {
        let mut q = two_orgs();
        for _ in 0..6000 {
            q.enqueue(pkt(2, 972), 0); // only orgB has traffic
        }
        let bytes = drain(&mut q, SEC);
        // OrgB stays at its 4 Mb/s cap ≈ 500 kB despite 10 Mb/s idle link.
        assert!((400_000..=650_000).contains(&bytes[2]), "orgB {}", bytes[2]);
    }

    #[test]
    fn conservation_and_buffer_caps() {
        let mut q = HierCbq::new(
            vec![
                CbqNodeConfig { parent: None, rate_bps: 1_000_000, bounded: true, cap_bytes: 0 },
                CbqNodeConfig {
                    parent: Some(0),
                    rate_bps: 1_000_000,
                    bounded: false,
                    cap_bytes: 2000,
                },
            ],
            Box::new(|_| 0),
        );
        let mut queued = 0;
        for _ in 0..10 {
            if q.enqueue(pkt(0, 972), 0).is_queued() {
                queued += 1;
            }
        }
        assert_eq!(queued, 2, "1000 B wire each against a 2000 B leaf cap");
        assert_eq!(q.drops(), vec![8]);
        let mut got = 0;
        let mut now = 0;
        while !q.is_empty() {
            match q.dequeue(now) {
                Some(_) => got += 1,
                None => now = q.next_ready(now).expect("backlogged"),
            }
        }
        assert_eq!(got, queued);
    }

    #[test]
    #[should_panic(expected = "parent 2 must be declared before child")]
    fn rejects_forward_parent_reference() {
        HierCbq::new(
            vec![
                CbqNodeConfig { parent: None, rate_bps: 1, bounded: false, cap_bytes: 0 },
                CbqNodeConfig { parent: Some(2), rate_bps: 1, bounded: false, cap_bytes: 1 },
            ],
            Box::new(|_| 0),
        );
    }
}
