//! Traffic metering: token bucket and the single-rate three-color marker.
//!
//! Used at the provider edge to police customer traffic against the
//! contracted rate before it enters the backbone — the "granular Service
//! Level Agreements" of the paper's §3.1. Out-of-profile traffic is either
//! dropped or demoted to a higher drop precedence (AF model), which WRED in
//! the core then discriminates against.

use crate::Nanos;

/// A classic token bucket: `rate_bps` sustained, `burst_bytes` depth.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    tokens_mibits: u128, // token level in micro-bits to avoid rounding drift
    last: Nanos,
}

const MICRO: u128 = 1_000_000;

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    /// Panics if `rate_bps` is zero.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0, "token bucket rate must be positive");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens_mibits: burst_bytes as u128 * 8 * MICRO,
            last: 0,
        }
    }

    /// The configured rate in bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last {
            return;
        }
        let dt = now - self.last;
        self.last = now;
        let cap = self.burst_bytes as u128 * 8 * MICRO;
        // tokens (micro-bits) accrued = rate_bps * dt_ns / 1e9 * 1e6.
        // Per-packet refill gaps are small, so rate*dt almost always fits
        // u64; dividing there avoids a 128-bit `__udivti3` on every packet.
        let add = match self.rate_bps.checked_mul(dt) {
            Some(p) => u128::from(p / 1_000),
            None => self.rate_bps as u128 * dt as u128 / 1_000,
        };
        self.tokens_mibits = (self.tokens_mibits + add).min(cap);
    }

    /// Attempts to consume `bytes` at time `now`. Returns `true` (and
    /// debits) when the packet conforms.
    pub fn conforms(&mut self, bytes: usize, now: Nanos) -> bool {
        self.refill(now);
        let need = bytes as u128 * 8 * MICRO;
        if self.tokens_mibits >= need {
            self.tokens_mibits -= need;
            true
        } else {
            false
        }
    }

    /// Current token level in bytes (for tests and introspection).
    pub fn level_bytes(&mut self, now: Nanos) -> u64 {
        self.refill(now);
        (self.tokens_mibits / (8 * MICRO)) as u64
    }
}

/// Metering verdict of a three-color marker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Color {
    /// Within committed rate.
    Green,
    /// Exceeds committed rate but within excess burst.
    Yellow,
    /// Out of profile.
    Red,
}

/// Single-rate three-color marker (RFC 2697): committed information rate
/// with committed and excess burst sizes, color-blind mode.
#[derive(Clone, Debug)]
pub struct SrTcm {
    cir_bps: u64,
    committed: TokenBucket,
    excess: TokenBucket,
}

impl SrTcm {
    /// Creates a marker with committed rate `cir_bps`, committed burst
    /// `cbs_bytes` and excess burst `ebs_bytes`.
    pub fn new(cir_bps: u64, cbs_bytes: u64, ebs_bytes: u64) -> Self {
        SrTcm {
            cir_bps,
            committed: TokenBucket::new(cir_bps, cbs_bytes),
            excess: TokenBucket::new(cir_bps, ebs_bytes),
        }
    }

    /// The committed information rate in bits/s.
    pub fn cir_bps(&self) -> u64 {
        self.cir_bps
    }

    /// Meters one packet of `bytes` at time `now`.
    pub fn meter(&mut self, bytes: usize, now: Nanos) -> Color {
        if self.committed.conforms(bytes, now) {
            Color::Green
        } else if self.excess.conforms(bytes, now) {
            Color::Yellow
        } else {
            Color::Red
        }
    }
}

/// Two-rate three-color marker (RFC 2698): peak information rate (PIR)
/// gates Red, committed information rate (CIR) gates Green, color-blind
/// mode. Unlike [`SrTcm`], sustained traffic between CIR and PIR stays
/// Yellow indefinitely — the profile used when a contract sells a
/// committed rate with a bursting ceiling.
#[derive(Clone, Debug)]
pub struct TrTcm {
    peak: TokenBucket,
    committed: TokenBucket,
}

impl TrTcm {
    /// Creates a marker with peak rate/burst and committed rate/burst.
    ///
    /// # Panics
    /// Panics if `pir_bps < cir_bps` (a peak below the commitment is a
    /// configuration error).
    pub fn new(pir_bps: u64, pbs_bytes: u64, cir_bps: u64, cbs_bytes: u64) -> Self {
        assert!(pir_bps >= cir_bps, "PIR must be at least CIR");
        TrTcm {
            peak: TokenBucket::new(pir_bps, pbs_bytes),
            committed: TokenBucket::new(cir_bps, cbs_bytes),
        }
    }

    /// Meters one packet of `bytes` at time `now`.
    pub fn meter(&mut self, bytes: usize, now: Nanos) -> Color {
        if !self.peak.conforms(bytes, now) {
            return Color::Red;
        }
        if self.committed.conforms(bytes, now) {
            Color::Green
        } else {
            Color::Yellow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MSEC, SEC};

    #[test]
    fn bucket_allows_burst_then_blocks() {
        let mut tb = TokenBucket::new(8_000_000, 1000); // 8 Mb/s, 1000 B burst
        assert!(tb.conforms(600, 0));
        assert!(tb.conforms(400, 0));
        assert!(!tb.conforms(1, 0));
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut tb = TokenBucket::new(8_000_000, 1000); // 1 B per microsecond
        assert!(tb.conforms(1000, 0));
        // After 500 us, 500 bytes available.
        assert!(tb.conforms(500, 500_000));
        assert!(!tb.conforms(1, 500_000));
        // A full second refills to the cap, not beyond.
        assert_eq!(tb.level_bytes(2 * SEC), 1000);
    }

    #[test]
    fn bucket_sustained_rate_is_exact() {
        // Send 125-byte packets every ms at exactly the rate: all conform.
        let mut tb = TokenBucket::new(1_000_000, 125); // 1 Mb/s = 125 B/ms
        for i in 0..1000u64 {
            assert!(tb.conforms(125, i * MSEC), "packet {i} should conform");
        }
        // One extra in the same window must fail.
        assert!(!tb.conforms(125, 999 * MSEC));
    }

    #[test]
    fn bucket_ignores_time_going_backwards() {
        let mut tb = TokenBucket::new(8_000_000, 100);
        assert!(tb.conforms(100, 1000));
        // Clock replay must not mint tokens.
        assert!(!tb.conforms(1, 999));
    }

    #[test]
    fn srtcm_colors() {
        let mut m = SrTcm::new(8_000_000, 500, 500);
        assert_eq!(m.meter(500, 0), Color::Green);
        assert_eq!(m.meter(500, 0), Color::Yellow);
        assert_eq!(m.meter(500, 0), Color::Red);
        // After enough time both buckets refill.
        assert_eq!(m.meter(500, SEC), Color::Green);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        TokenBucket::new(0, 1);
    }

    #[test]
    fn trtcm_colors_by_rate_band() {
        // PIR 16 Mb/s, CIR 8 Mb/s, small bursts: sustained traffic between
        // the rates stays Yellow (unlike srTCM, whose excess bucket would
        // run dry).
        let mut m = TrTcm::new(16_000_000, 2_000, 8_000_000, 2_000);
        let mut colors = [0u32; 3];
        // Offer 12 Mb/s: 1500 B every ms.
        for i in 0..1000u64 {
            match m.meter(1500, i * MSEC) {
                Color::Green => colors[0] += 1,
                Color::Yellow => colors[1] += 1,
                Color::Red => colors[2] += 1,
            }
        }
        // CIR admits ~2/3 of packets as green, the rest yellow, ~no red.
        assert!(colors[0] > 500, "green {colors:?}");
        assert!(colors[1] > 200, "yellow {colors:?}");
        assert!(colors[2] < 50, "red {colors:?}");
    }

    #[test]
    fn trtcm_red_above_peak() {
        let mut m = TrTcm::new(8_000_000, 1_500, 4_000_000, 1_500);
        // A 3000 B burst at t=0 blows both buckets.
        assert_eq!(m.meter(1500, 0), Color::Green);
        assert_eq!(m.meter(1500, 0), Color::Red, "peak bucket empty");
    }

    #[test]
    #[should_panic(expected = "PIR must be at least CIR")]
    fn trtcm_rejects_inverted_rates() {
        TrTcm::new(1_000, 100, 2_000, 100);
    }
}
