//! The queueing-discipline abstraction and the basic tail-drop FIFO.
//!
//! Every simulated link egress owns one `Box<dyn QueueDiscipline>`; the
//! simulator enqueues on arrival and dequeues when the transmitter goes
//! idle. All QoS experiments reduce to swapping the discipline attached to
//! the bottleneck link.

use netsim_net::{Packet, Pkt};
use netsim_obs::DropCause;

use crate::Nanos;

/// Result of an enqueue attempt.
#[derive(Debug)]
pub enum EnqueueOutcome {
    /// The packet was accepted.
    Queued,
    /// The packet was dropped; it is returned together with *why* so the
    /// caller can attribute the loss (flight recorder, per-cause stats).
    Dropped(Pkt, DropCause),
}

impl EnqueueOutcome {
    /// Whether the packet was accepted.
    pub fn is_queued(&self) -> bool {
        matches!(self, EnqueueOutcome::Queued)
    }
}

/// A queueing discipline: the scheduler + buffer attached to a link egress.
pub trait QueueDiscipline: Send {
    /// Offers a packet at time `now`.
    fn enqueue(&mut self, pkt: Pkt, now: Nanos) -> EnqueueOutcome;

    /// Takes the next packet to transmit at time `now`, if any.
    fn dequeue(&mut self, now: Nanos) -> Option<Pkt>;

    /// Packets currently buffered.
    fn len_packets(&self) -> usize;

    /// Bytes currently buffered.
    fn len_bytes(&self) -> usize;

    /// Whether the discipline holds no packets.
    fn is_empty(&self) -> bool {
        self.len_packets() == 0
    }

    /// Wire length of the packet the next `dequeue` would return, when the
    /// discipline can cheaply know it (simple FIFOs can; classful
    /// schedulers may return `None`). Used by wrappers like
    /// [`crate::ShapedQueue`] to budget tokens exactly.
    fn peek_len(&self) -> Option<usize> {
        None
    }

    /// When the discipline could next hand out a packet.
    ///
    /// Work-conserving disciplines return `Some(now)` whenever they hold
    /// packets. Non-work-conserving ones (shapers, CBQ bounded classes) may
    /// return a later time: the link must retry `dequeue` then rather than
    /// going idle. `None` means "nothing buffered".
    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        if self.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    /// Discards everything buffered, bypassing any scheduling or shaping
    /// gates, and returns the removed packets. The caller owns the loss
    /// accounting — e.g. a failing link flushes its egress buffer into
    /// `LinkStats.dropped` and records each packet with the flight
    /// recorder. Per-discipline drop counters (tail/early drops) are *not*
    /// incremented: a purge is a link event, not a buffer-management
    /// decision.
    fn purge(&mut self) -> Vec<Pkt>;
}

/// Maps a packet to a class index for classful disciplines (priority bands,
/// WFQ/DRR/CBQ classes, WRED precedence levels).
pub type ClassOf = Box<dyn Fn(&Packet) -> usize + Send>;

/// Class selector: the MPLS EXP field of the top label (0 when unlabeled).
/// This is what P routers in the backbone schedule on.
pub fn class_by_exp() -> ClassOf {
    Box::new(|p: &Packet| p.top_label().map_or(0, |l| usize::from(l.exp)))
}

/// Class selector: the EXP of the top label if labeled, else the EXP the
/// default [`crate::ExpMap`] would assign from the IP DSCP. Lets one
/// scheduler serve both labeled core traffic and unlabeled edge traffic.
pub fn class_by_exp_or_dscp() -> ClassOf {
    let map = crate::ExpMap::default();
    Box::new(move |p: &Packet| {
        if let Some(l) = p.top_label() {
            usize::from(l.exp)
        } else {
            p.dscp().map_or(0, |d| usize::from(map.exp_of(d)))
        }
    })
}

/// A FIFO with tail drop, bounded by bytes (the common router buffer model).
pub struct FifoQueue {
    q: std::collections::VecDeque<Pkt>,
    bytes: usize,
    cap_bytes: usize,
    drops: u64,
}

impl FifoQueue {
    /// Creates a FIFO holding at most `cap_bytes` of packet data.
    pub fn new(cap_bytes: usize) -> Self {
        FifoQueue { q: std::collections::VecDeque::new(), bytes: 0, cap_bytes, drops: 0 }
    }

    /// Total packets tail-dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl QueueDiscipline for FifoQueue {
    fn enqueue(&mut self, pkt: Pkt, _now: Nanos) -> EnqueueOutcome {
        let sz = pkt.wire_len();
        if self.bytes + sz > self.cap_bytes {
            self.drops += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        self.bytes += sz;
        self.q.push_back(pkt);
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Pkt> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_len();
        Some(pkt)
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn peek_len(&self) -> Option<usize> {
        self.q.front().map(|p| p.wire_len())
    }

    fn purge(&mut self) -> Vec<Pkt> {
        self.bytes = 0;
        self.q.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;

    fn pkt(n: usize) -> Pkt {
        Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, n).into()
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = FifoQueue::new(100_000);
        for seq in 0..5u64 {
            let mut p = pkt(10);
            p.meta.seq = seq;
            assert!(q.enqueue(p, 0).is_queued());
        }
        for seq in 0..5u64 {
            assert_eq!(q.dequeue(0).unwrap().meta.seq, seq);
        }
        assert!(q.dequeue(0).is_none());
    }

    #[test]
    fn fifo_tail_drops_over_capacity() {
        // Each UDP packet of 72 B payload is 100 B on the wire.
        let mut q = FifoQueue::new(250);
        assert!(q.enqueue(pkt(72), 0).is_queued());
        assert!(q.enqueue(pkt(72), 0).is_queued());
        match q.enqueue(pkt(72), 0) {
            EnqueueOutcome::Dropped(p, cause) => {
                assert_eq!(p.wire_len(), 100);
                assert_eq!(cause, DropCause::QueueOverflow);
            }
            EnqueueOutcome::Queued => panic!("should have tail-dropped"),
        }
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len_packets(), 2);
        assert_eq!(q.len_bytes(), 200);
    }

    #[test]
    fn byte_accounting_tracks_through_dequeue() {
        let mut q = FifoQueue::new(1000);
        q.enqueue(pkt(100), 0);
        q.enqueue(pkt(200), 0);
        assert_eq!(q.len_bytes(), 128 + 228);
        q.dequeue(0);
        assert_eq!(q.len_bytes(), 228);
        q.dequeue(0);
        assert_eq!(q.len_bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn exp_class_selector() {
        use netsim_net::{Layer, MplsLabel};
        let by_exp = class_by_exp();
        let mut p = pkt(0);
        assert_eq!(by_exp(&p), 0);
        p.push_outer(Layer::Mpls(MplsLabel::new(100, 5, 64)));
        assert_eq!(by_exp(&p), 5);
    }

    #[test]
    fn exp_or_dscp_selector_uses_default_map_when_unlabeled() {
        let sel = class_by_exp_or_dscp();
        let mut p = pkt(0);
        p.outer_ipv4_mut().unwrap().dscp = Dscp::EF;
        assert_eq!(sel(&p), 5);
        use netsim_net::{Layer, MplsLabel};
        p.push_outer(Layer::Mpls(MplsLabel::new(9, 3, 1)));
        assert_eq!(sel(&p), 3);
    }
}
