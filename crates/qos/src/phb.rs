//! Per-hop behaviours and the DSCP ↔ MPLS EXP mapping.
//!
//! The paper's §5 pipeline: the CPE marks DiffServ/ToS; "the network edge
//! will then map the CPE-specified DiffServ/ToS service level specification
//! into the QoS field of the MPLS header". The EXP field has 3 bits, so the
//! 64 DSCP values fold into 8 EXP classes; [`ExpMap`] is that fold plus its
//! inverse (applied when the egress LSR pops the stack and restores IP
//! scheduling).

use netsim_net::Dscp;

/// The per-hop behaviour groups the emulator schedules on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phb {
    /// Expedited forwarding: low delay, low jitter (voice).
    Ef,
    /// Assured forwarding class 1..=4 (higher class = better treatment).
    Af(u8),
    /// Class selector (network control and legacy IP precedence).
    Cs(u8),
    /// Default best-effort forwarding.
    BestEffort,
}

impl Phb {
    /// Maps a DSCP to its PHB group.
    pub fn of(dscp: Dscp) -> Phb {
        if dscp == Dscp::EF {
            return Phb::Ef;
        }
        if let Some(class) = dscp.af_class() {
            return Phb::Af(class);
        }
        let v = dscp.value();
        if v != 0 && v.is_multiple_of(8) {
            return Phb::Cs(v / 8);
        }
        Phb::BestEffort
    }
}

/// Bidirectional DSCP ↔ EXP mapping used at the MPLS edge.
///
/// The default map follows the common deployment convention:
///
/// | traffic | DSCP | EXP |
/// |---|---|---|
/// | network control | CS6/CS7 | 6 |
/// | voice | EF | 5 |
/// | video / AF4x | AF41..AF43 | 4 |
/// | critical data / AF3x | AF31..AF33 | 3 |
/// | transactional / AF2x | AF21..AF23 | 2 |
/// | bulk / AF1x | AF11..AF13 | 1 |
/// | best effort | BE and unlisted | 0 |
///
/// The inverse map returns the lowest-drop-precedence DSCP of each class so
/// that a remark at the egress never *raises* drop precedence.
#[derive(Clone, Debug)]
pub struct ExpMap {
    dscp_to_exp: [u8; 64],
    exp_to_dscp: [Dscp; 8],
}

impl Default for ExpMap {
    fn default() -> Self {
        let mut dscp_to_exp = [0u8; 64];
        for v in 0..64u8 {
            let d = Dscp::new(v);
            dscp_to_exp[v as usize] = match Phb::of(d) {
                Phb::Ef => 5,
                Phb::Af(c) => c, // AF1x..AF4x -> 1..4
                Phb::Cs(p) if p >= 6 => 6,
                Phb::Cs(p) => p.min(7),
                Phb::BestEffort => 0,
            };
        }
        let exp_to_dscp = [
            Dscp::BE,
            Dscp::AF11,
            Dscp::AF21,
            Dscp::AF31,
            Dscp::AF41,
            Dscp::EF,
            Dscp::CS6,
            Dscp::new(56), // CS7
        ];
        ExpMap { dscp_to_exp, exp_to_dscp }
    }
}

impl ExpMap {
    /// Maps a DSCP to the 3-bit EXP value pushed at the ingress PE.
    #[inline]
    pub fn exp_of(&self, dscp: Dscp) -> u8 {
        self.dscp_to_exp[dscp.value() as usize]
    }

    /// Maps an EXP value back to a representative DSCP at the egress PE.
    #[inline]
    pub fn dscp_of(&self, exp: u8) -> Dscp {
        self.exp_to_dscp[(exp & 7) as usize]
    }

    /// Overrides the mapping for one DSCP.
    pub fn set_exp(&mut self, dscp: Dscp, exp: u8) {
        assert!(exp <= 7, "EXP {exp} exceeds 3 bits");
        self.dscp_to_exp[dscp.value() as usize] = exp;
    }

    /// Overrides the inverse mapping for one EXP value.
    pub fn set_dscp(&mut self, exp: u8, dscp: Dscp) {
        self.exp_to_dscp[(exp & 7) as usize] = dscp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phb_grouping() {
        assert_eq!(Phb::of(Dscp::EF), Phb::Ef);
        assert_eq!(Phb::of(Dscp::AF32), Phb::Af(3));
        assert_eq!(Phb::of(Dscp::BE), Phb::BestEffort);
        assert_eq!(Phb::of(Dscp::CS6), Phb::Cs(6));
        assert_eq!(Phb::of(Dscp::new(8)), Phb::Cs(1));
        assert_eq!(Phb::of(Dscp::new(5)), Phb::BestEffort);
    }

    #[test]
    fn default_map_conventions() {
        let m = ExpMap::default();
        assert_eq!(m.exp_of(Dscp::EF), 5);
        assert_eq!(m.exp_of(Dscp::AF41), 4);
        assert_eq!(m.exp_of(Dscp::AF42), 4);
        assert_eq!(m.exp_of(Dscp::AF11), 1);
        assert_eq!(m.exp_of(Dscp::BE), 0);
        assert_eq!(m.exp_of(Dscp::CS6), 6);
    }

    #[test]
    fn map_roundtrip_preserves_class() {
        // dscp -> exp -> dscp must land in the same PHB scheduling class.
        let m = ExpMap::default();
        for v in [Dscp::EF, Dscp::AF11, Dscp::AF22, Dscp::AF33, Dscp::AF41, Dscp::BE] {
            let back = m.dscp_of(m.exp_of(v));
            assert_eq!(m.exp_of(back), m.exp_of(v), "class changed for {v}");
        }
    }

    #[test]
    fn overrides() {
        let mut m = ExpMap::default();
        m.set_exp(Dscp::AF11, 7);
        assert_eq!(m.exp_of(Dscp::AF11), 7);
        m.set_dscp(7, Dscp::AF11);
        assert_eq!(m.dscp_of(7), Dscp::AF11);
    }

    #[test]
    #[should_panic(expected = "exceeds 3 bits")]
    fn set_exp_rejects_wide_values() {
        ExpMap::default().set_exp(Dscp::BE, 8);
    }
}
