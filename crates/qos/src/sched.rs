//! Classful schedulers: strict priority, WFQ, DRR, and a CBQ emulation.
//!
//! These are the "consistent level of service for flows that are of higher
//! priority" machinery of the paper's §5. The backbone experiments attach a
//! [`PriorityScheduler`] over WRED children to core links (EF in the
//! low-latency band, AF under WRED, BE at the bottom); the CPE experiments
//! use [`CbqScheduler`] — the paper names CBQ as the customer-premises
//! classifier/scheduler.

use std::collections::VecDeque;

use netsim_net::Pkt;
use netsim_obs::DropCause;

use crate::meter::TokenBucket;
use crate::queue::{ClassOf, EnqueueOutcome, QueueDiscipline};
use crate::{Nanos, SEC};

// ---------------------------------------------------------------------------
// Strict priority
// ---------------------------------------------------------------------------

/// Strict-priority scheduler over child disciplines.
///
/// `class_of` maps a packet to a band index; **higher band index = higher
/// priority** (matching MPLS EXP semantics where EXP 5 outranks EXP 0).
/// A band can be any child discipline, e.g. WRED for the AF bands.
pub struct PriorityScheduler {
    bands: Vec<Box<dyn QueueDiscipline>>,
    class_of: ClassOf,
    drops: Vec<u64>,
}

impl PriorityScheduler {
    /// Creates a scheduler from child bands (index = class = priority).
    pub fn new(bands: Vec<Box<dyn QueueDiscipline>>, class_of: ClassOf) -> Self {
        assert!(!bands.is_empty(), "priority scheduler needs at least one band");
        let n = bands.len();
        PriorityScheduler { bands, class_of, drops: vec![0; n] }
    }

    /// Packets dropped per band (by the band's own discipline).
    pub fn drops(&self) -> &[u64] {
        &self.drops
    }
}

impl QueueDiscipline for PriorityScheduler {
    fn enqueue(&mut self, pkt: Pkt, now: Nanos) -> EnqueueOutcome {
        let band = (self.class_of)(&pkt).min(self.bands.len() - 1);
        let out = self.bands[band].enqueue(pkt, now);
        if !out.is_queued() {
            self.drops[band] += 1;
        }
        out
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Pkt> {
        for band in self.bands.iter_mut().rev() {
            if let Some(p) = band.dequeue(now) {
                return Some(p);
            }
        }
        None
    }

    fn len_packets(&self) -> usize {
        self.bands.iter().map(|b| b.len_packets()).sum()
    }

    fn len_bytes(&self) -> usize {
        self.bands.iter().map(|b| b.len_bytes()).sum()
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        self.bands.iter().filter_map(|b| b.next_ready(now)).min()
    }

    fn purge(&mut self) -> Vec<Pkt> {
        self.bands.iter_mut().flat_map(|b| b.purge()).collect()
    }
}

// ---------------------------------------------------------------------------
// Weighted fair queueing
// ---------------------------------------------------------------------------

struct WfqClass {
    weight: u64,
    q: VecDeque<(u128, Pkt)>, // (virtual finish time, packet)
    bytes: usize,
    cap_bytes: usize,
    last_finish: u128,
    drops: u64,
}

/// Weighted fair queueing (a practical virtual-finish-time approximation).
///
/// Each class receives bandwidth proportional to its weight when backlogged;
/// unused capacity redistributes to the others (work conserving).
pub struct WfqScheduler {
    classes: Vec<WfqClass>,
    class_of: ClassOf,
    vtime: u128,
}

/// Fixed-point scale for virtual time arithmetic.
const VT_SCALE: u128 = 1 << 16;

impl WfqScheduler {
    /// Creates a WFQ scheduler; `weights[i]` serves class `i`, each class
    /// buffering at most `cap_bytes`.
    ///
    /// # Panics
    /// Panics if any weight is zero.
    pub fn new(weights: &[u64], cap_bytes: usize, class_of: ClassOf) -> Self {
        assert!(!weights.is_empty(), "WFQ needs at least one class");
        let classes = weights
            .iter()
            .map(|&w| {
                assert!(w > 0, "WFQ weights must be positive");
                WfqClass {
                    weight: w,
                    q: VecDeque::new(),
                    bytes: 0,
                    cap_bytes,
                    last_finish: 0,
                    drops: 0,
                }
            })
            .collect();
        WfqScheduler { classes, class_of, vtime: 0 }
    }

    /// Packets dropped per class (buffer overflow).
    pub fn drops(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.drops).collect()
    }
}

impl QueueDiscipline for WfqScheduler {
    fn enqueue(&mut self, pkt: Pkt, _now: Nanos) -> EnqueueOutcome {
        let ci = (self.class_of)(&pkt).min(self.classes.len() - 1);
        let c = &mut self.classes[ci];
        let sz = pkt.wire_len();
        if c.bytes + sz > c.cap_bytes {
            c.drops += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        let start = self.vtime.max(c.last_finish);
        let finish = start + (sz as u128 * VT_SCALE) / c.weight as u128;
        c.last_finish = finish;
        c.bytes += sz;
        c.q.push_back((finish, pkt));
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Pkt> {
        let ci = self
            .classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.q.front().map(|(f, _)| (*f, i)))
            .min()?
            .1;
        let c = &mut self.classes[ci];
        let (finish, pkt) = c.q.pop_front().expect("selected class is nonempty");
        c.bytes -= pkt.wire_len();
        self.vtime = self.vtime.max(finish);
        if self.classes.iter().all(|c| c.q.is_empty()) {
            // System idle: reset virtual time to keep tags small.
            self.vtime = 0;
            for c in &mut self.classes {
                c.last_finish = 0;
            }
        }
        Some(pkt)
    }

    fn len_packets(&self) -> usize {
        self.classes.iter().map(|c| c.q.len()).sum()
    }

    fn len_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    fn purge(&mut self) -> Vec<Pkt> {
        let mut out = Vec::new();
        for c in &mut self.classes {
            out.extend(c.q.drain(..).map(|(_, p)| p));
            c.bytes = 0;
            c.last_finish = 0;
        }
        self.vtime = 0;
        out
    }
}

// ---------------------------------------------------------------------------
// Deficit round robin
// ---------------------------------------------------------------------------

struct DrrClass {
    quantum: usize,
    deficit: usize,
    q: VecDeque<Pkt>,
    bytes: usize,
    cap_bytes: usize,
    active: bool,
    drops: u64,
}

/// Deficit round robin (Shreedhar & Varghese): O(1) fair queueing with
/// byte-accurate shares set by per-class quanta.
pub struct DrrScheduler {
    classes: Vec<DrrClass>,
    active: VecDeque<usize>,
    class_of: ClassOf,
}

impl DrrScheduler {
    /// Creates a DRR scheduler with one quantum (in bytes) per class.
    ///
    /// # Panics
    /// Panics if any quantum is zero.
    pub fn new(quanta: &[usize], cap_bytes: usize, class_of: ClassOf) -> Self {
        assert!(!quanta.is_empty(), "DRR needs at least one class");
        let classes = quanta
            .iter()
            .map(|&q| {
                assert!(q > 0, "DRR quanta must be positive");
                DrrClass {
                    quantum: q,
                    deficit: 0,
                    q: VecDeque::new(),
                    bytes: 0,
                    cap_bytes,
                    active: false,
                    drops: 0,
                }
            })
            .collect();
        DrrScheduler { classes, active: VecDeque::new(), class_of }
    }

    /// Packets dropped per class (buffer overflow).
    pub fn drops(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.drops).collect()
    }
}

impl QueueDiscipline for DrrScheduler {
    fn enqueue(&mut self, pkt: Pkt, _now: Nanos) -> EnqueueOutcome {
        let ci = (self.class_of)(&pkt).min(self.classes.len() - 1);
        let c = &mut self.classes[ci];
        let sz = pkt.wire_len();
        if c.bytes + sz > c.cap_bytes {
            c.drops += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        c.bytes += sz;
        c.q.push_back(pkt);
        if !c.active {
            c.active = true;
            c.deficit = c.quantum;
            self.active.push_back(ci);
        }
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Pkt> {
        loop {
            let &ci = self.active.front()?;
            let c = &mut self.classes[ci];
            match c.q.front() {
                None => {
                    c.active = false;
                    c.deficit = 0;
                    self.active.pop_front();
                }
                Some(head) if head.wire_len() <= c.deficit => {
                    let pkt = c.q.pop_front().expect("head exists");
                    let sz = pkt.wire_len();
                    c.deficit -= sz;
                    c.bytes -= sz;
                    if c.q.is_empty() {
                        c.active = false;
                        c.deficit = 0;
                        self.active.pop_front();
                    }
                    return Some(pkt);
                }
                Some(_) => {
                    // Head exceeds the deficit: bank a quantum and go to the
                    // back of the round.
                    c.deficit += c.quantum;
                    self.active.rotate_left(1);
                }
            }
        }
    }

    fn len_packets(&self) -> usize {
        self.classes.iter().map(|c| c.q.len()).sum()
    }

    fn len_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    fn purge(&mut self) -> Vec<Pkt> {
        let mut out = Vec::new();
        for c in &mut self.classes {
            out.extend(c.q.drain(..));
            c.bytes = 0;
            c.active = false;
            c.deficit = 0;
        }
        self.active.clear();
        out
    }
}

// ---------------------------------------------------------------------------
// CBQ
// ---------------------------------------------------------------------------

/// Configuration of one CBQ class.
#[derive(Clone, Debug)]
pub struct CbqClassConfig {
    /// Share of the link the class is entitled to, in bits/s.
    pub rate_bps: u64,
    /// Whether the class is *bounded*: a bounded class may never exceed its
    /// rate, even when the link is otherwise idle (non-work-conserving). An
    /// unbounded class borrows idle capacity.
    pub bounded: bool,
    /// Per-class buffer in bytes.
    pub cap_bytes: usize,
}

struct CbqClass {
    cfg: CbqClassConfig,
    bucket: TokenBucket,
    q: VecDeque<Pkt>,
    bytes: usize,
    drops: u64,
    /// Bytes sent by borrowing (over-rate), for introspection.
    borrowed_bytes: u64,
}

/// Class-based queueing (Floyd & Van Jacobson's link-sharing model,
/// emulated): each class owns a rate; in-profile classes are served
/// round-robin; idle capacity is lent to unbounded classes. Bounded classes
/// are rate-capped, which makes the discipline non-work-conserving — the
/// link retries at [`QueueDiscipline::next_ready`].
pub struct CbqScheduler {
    classes: Vec<CbqClass>,
    class_of: ClassOf,
    rr: usize,
}

impl CbqScheduler {
    /// Creates a CBQ scheduler from per-class configs.
    pub fn new(configs: Vec<CbqClassConfig>, class_of: ClassOf) -> Self {
        assert!(!configs.is_empty(), "CBQ needs at least one class");
        let classes = configs
            .into_iter()
            .map(|cfg| {
                // Burst of ~100 ms at the class rate, floored at two MTUs so
                // a bounded class can always eventually send a full-size
                // packet (a bucket smaller than the packet would deadlock).
                let burst = (cfg.rate_bps / 80).max(3200);
                CbqClass {
                    bucket: TokenBucket::new(cfg.rate_bps, burst),
                    cfg,
                    q: VecDeque::new(),
                    bytes: 0,
                    drops: 0,
                    borrowed_bytes: 0,
                }
            })
            .collect();
        CbqScheduler { classes, class_of, rr: 0 }
    }

    /// Packets dropped per class.
    pub fn drops(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.drops).collect()
    }

    /// Bytes each class sent by borrowing idle capacity.
    pub fn borrowed_bytes(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.borrowed_bytes).collect()
    }
}

impl QueueDiscipline for CbqScheduler {
    fn enqueue(&mut self, pkt: Pkt, _now: Nanos) -> EnqueueOutcome {
        let ci = (self.class_of)(&pkt).min(self.classes.len() - 1);
        let c = &mut self.classes[ci];
        let sz = pkt.wire_len();
        if c.bytes + sz > c.cfg.cap_bytes {
            c.drops += 1;
            return EnqueueOutcome::Dropped(pkt, DropCause::QueueOverflow);
        }
        c.bytes += sz;
        c.q.push_back(pkt);
        EnqueueOutcome::Queued
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Pkt> {
        let n = self.classes.len();
        // Pass 1: in-profile classes, round-robin from self.rr.
        for off in 0..n {
            let ci = (self.rr + off) % n;
            let c = &mut self.classes[ci];
            if let Some(head) = c.q.front() {
                let sz = head.wire_len();
                if c.bucket.conforms(sz, now) {
                    let pkt = c.q.pop_front().expect("head exists");
                    c.bytes -= sz;
                    self.rr = (ci + 1) % n;
                    return Some(pkt);
                }
            }
        }
        // Pass 2: borrowing — unbounded classes may exceed their rate.
        for off in 0..n {
            let ci = (self.rr + off) % n;
            let c = &mut self.classes[ci];
            if !c.cfg.bounded {
                if let Some(pkt) = c.q.pop_front() {
                    let sz = pkt.wire_len();
                    c.bytes -= sz;
                    c.borrowed_bytes += sz as u64;
                    self.rr = (ci + 1) % n;
                    return Some(pkt);
                }
            }
        }
        None
    }

    fn len_packets(&self) -> usize {
        self.classes.iter().map(|c| c.q.len()).sum()
    }

    fn len_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        // Any unbounded backlogged class can send immediately (borrowing).
        let mut earliest: Option<Nanos> = None;
        for c in &self.classes {
            if let Some(head) = c.q.front() {
                if !c.cfg.bounded {
                    return Some(now);
                }
                // Conservative estimate: time to accrue one head's worth of
                // tokens at the class rate.
                let wait =
                    (head.wire_len() as u128 * 8 * SEC as u128 / c.cfg.rate_bps as u128) as Nanos;
                let t = now + wait.max(1);
                earliest = Some(earliest.map_or(t, |e: Nanos| e.min(t)));
            }
        }
        earliest
    }

    fn purge(&mut self) -> Vec<Pkt> {
        let mut out = Vec::new();
        for c in &mut self.classes {
            out.extend(c.q.drain(..));
            c.bytes = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FifoQueue;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;
    use netsim_net::Packet;

    fn pkt_class(class: u64, payload: usize) -> Pkt {
        let mut p = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, payload);
        p.meta.flow = class;
        p.into()
    }

    fn by_flow() -> ClassOf {
        Box::new(|p: &Packet| p.meta.flow as usize)
    }

    // --- priority ---

    #[test]
    fn priority_serves_high_band_first() {
        let bands: Vec<Box<dyn QueueDiscipline>> =
            (0..3).map(|_| Box::new(FifoQueue::new(1 << 20)) as Box<dyn QueueDiscipline>).collect();
        let mut s = PriorityScheduler::new(bands, by_flow());
        s.enqueue(pkt_class(0, 10), 0);
        s.enqueue(pkt_class(2, 10), 0);
        s.enqueue(pkt_class(1, 10), 0);
        s.enqueue(pkt_class(2, 10), 0);
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue(0)).map(|p| p.meta.flow).collect();
        assert_eq!(order, vec![2, 2, 1, 0]);
    }

    #[test]
    fn priority_clamps_out_of_range_class() {
        let bands: Vec<Box<dyn QueueDiscipline>> =
            (0..2).map(|_| Box::new(FifoQueue::new(1 << 20)) as Box<dyn QueueDiscipline>).collect();
        let mut s = PriorityScheduler::new(bands, by_flow());
        assert!(s.enqueue(pkt_class(9, 10), 0).is_queued());
        assert_eq!(s.len_packets(), 1);
        assert!(s.dequeue(0).is_some());
    }

    #[test]
    fn priority_counts_child_drops() {
        let bands: Vec<Box<dyn QueueDiscipline>> =
            vec![Box::new(FifoQueue::new(50)), Box::new(FifoQueue::new(1 << 20))];
        let mut s = PriorityScheduler::new(bands, by_flow());
        s.enqueue(pkt_class(0, 100), 0); // 128 B > 50 B cap -> drop
        assert_eq!(s.drops()[0], 1);
    }

    // --- WFQ ---

    /// Two saturated classes with weights 3:1 must share throughput ~3:1.
    #[test]
    fn wfq_weighted_shares() {
        let mut s = WfqScheduler::new(&[3, 1], 1 << 20, by_flow());
        for _ in 0..600 {
            s.enqueue(pkt_class(0, 472), 0); // 500 B wire
            s.enqueue(pkt_class(1, 472), 0);
        }
        let mut sent = [0usize; 2];
        for _ in 0..400 {
            let p = s.dequeue(0).unwrap();
            sent[p.meta.flow as usize] += 1;
        }
        assert_eq!(sent[0] + sent[1], 400);
        let ratio = sent[0] as f64 / sent[1] as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    /// With unequal packet sizes, shares must be fair in *bytes* not packets.
    #[test]
    fn wfq_is_byte_fair() {
        let mut s = WfqScheduler::new(&[1, 1], 1 << 22, by_flow());
        for _ in 0..2000 {
            s.enqueue(pkt_class(0, 1472), 0); // 1500 B wire
            s.enqueue(pkt_class(1, 72), 0); // 100 B wire
        }
        let mut bytes = [0usize; 2];
        for _ in 0..1000 {
            let p = s.dequeue(0).unwrap();
            bytes[p.meta.flow as usize] += p.wire_len();
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((0.8..=1.25).contains(&ratio), "byte ratio {ratio}");
    }

    #[test]
    fn wfq_empty_class_cedes_bandwidth() {
        let mut s = WfqScheduler::new(&[1, 1000], 1 << 20, by_flow());
        for _ in 0..10 {
            s.enqueue(pkt_class(0, 100), 0);
        }
        // Class 1 idle: class 0 gets everything (work conserving).
        for _ in 0..10 {
            assert_eq!(s.dequeue(0).unwrap().meta.flow, 0);
        }
        assert!(s.dequeue(0).is_none());
    }

    #[test]
    fn wfq_per_class_buffer_cap() {
        let mut s = WfqScheduler::new(&[1, 1], 150, by_flow());
        assert!(s.enqueue(pkt_class(0, 100), 0).is_queued());
        assert!(!s.enqueue(pkt_class(0, 100), 0).is_queued());
        // Other class has its own budget.
        assert!(s.enqueue(pkt_class(1, 100), 0).is_queued());
        assert_eq!(s.drops(), vec![1, 0]);
    }

    // --- DRR ---

    #[test]
    fn drr_quantum_shares() {
        let mut s = DrrScheduler::new(&[1500, 500], 1 << 22, by_flow());
        for _ in 0..3000 {
            s.enqueue(pkt_class(0, 472), 0);
            s.enqueue(pkt_class(1, 472), 0);
        }
        let mut bytes = [0usize; 2];
        for _ in 0..2000 {
            let p = s.dequeue(0).unwrap();
            bytes[p.meta.flow as usize] += p.wire_len();
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn drr_handles_quantum_smaller_than_packet() {
        // Quantum 100 < packet 500: class must bank deficits across rounds
        // and still get served; must not loop forever.
        let mut s = DrrScheduler::new(&[100, 100], 1 << 20, by_flow());
        s.enqueue(pkt_class(0, 472), 0);
        s.enqueue(pkt_class(1, 472), 0);
        assert!(s.dequeue(0).is_some());
        assert!(s.dequeue(0).is_some());
        assert!(s.dequeue(0).is_none());
    }

    #[test]
    fn drr_single_class_degenerates_to_fifo() {
        let mut s = DrrScheduler::new(&[1500], 1 << 20, Box::new(|_| 0));
        for seq in 0..5u64 {
            let mut p = pkt_class(0, 100);
            p.meta.seq = seq;
            s.enqueue(p, 0);
        }
        for seq in 0..5u64 {
            assert_eq!(s.dequeue(0).unwrap().meta.seq, seq);
        }
    }

    // --- CBQ ---

    #[test]
    fn cbq_bounded_class_is_rate_capped() {
        // Class 0: bounded 1 Mb/s; class 1: unbounded.
        let cfgs = vec![
            CbqClassConfig { rate_bps: 1_000_000, bounded: true, cap_bytes: 1 << 22 },
            CbqClassConfig { rate_bps: 1_000_000, bounded: false, cap_bytes: 1 << 22 },
        ];
        let mut s = CbqScheduler::new(cfgs, by_flow());
        for _ in 0..2000 {
            s.enqueue(pkt_class(0, 972), 0); // 1000 B wire
            s.enqueue(pkt_class(1, 972), 0);
        }
        // Simulate 1 second of dequeues at effectively unlimited link rate.
        let mut bytes = [0u64; 2];
        for t in 0..100_000u64 {
            if let Some(p) = s.dequeue(t * 10_000) {
                bytes[p.meta.flow as usize] += p.wire_len() as u64;
            }
        }
        // Bounded class ≈ 1 Mb/s ≈ 125 kB (+burst); unbounded takes the rest.
        assert!(bytes[0] < 300_000, "bounded sent {}", bytes[0]);
        assert!(bytes[1] > 1_000_000, "unbounded sent {}", bytes[1]);
    }

    #[test]
    fn cbq_next_ready_signals_retry_for_bounded_backlog() {
        let cfgs = vec![CbqClassConfig { rate_bps: 8_000, bounded: true, cap_bytes: 1 << 20 }];
        let mut s = CbqScheduler::new(cfgs, by_flow());
        for _ in 0..10 {
            s.enqueue(pkt_class(0, 1472), 0); // 1500 B wire
        }
        // Exhaust the initial burst.
        while s.dequeue(0).is_some() {}
        assert!(!s.is_empty());
        let t = s.next_ready(0).expect("backlogged");
        assert!(t > 0, "bounded class must ask for a later retry");
        // At 8 kb/s a 1500 B packet needs 1.5 seconds of tokens.
        assert!(s.dequeue(3 * SEC).is_some());
    }

    #[test]
    fn cbq_in_profile_round_robin_is_fair() {
        let cfgs = vec![
            CbqClassConfig { rate_bps: 100_000_000, bounded: false, cap_bytes: 1 << 22 },
            CbqClassConfig { rate_bps: 100_000_000, bounded: false, cap_bytes: 1 << 22 },
        ];
        let mut s = CbqScheduler::new(cfgs, by_flow());
        for _ in 0..100 {
            s.enqueue(pkt_class(0, 100), 0);
            s.enqueue(pkt_class(1, 100), 0);
        }
        let mut counts = [0; 2];
        for _ in 0..100 {
            counts[s.dequeue(0).unwrap().meta.flow as usize] += 1;
        }
        assert_eq!(counts[0], 50);
        assert_eq!(counts[1], 50);
    }
}
