//! A token-bucket shaper discipline: smooths traffic to a contracted rate
//! rather than dropping the excess.
//!
//! Policing (drop out-of-profile, see [`crate::meter`]) and shaping (delay
//! out-of-profile) are the two ways an edge enforces a rate. The shaper
//! wraps any child discipline and releases packets only as tokens accrue —
//! non-work-conserving, so it leans on
//! [`QueueDiscipline::next_ready`] to have the link retry.

use netsim_net::Pkt;

use crate::meter::TokenBucket;
use crate::queue::{EnqueueOutcome, QueueDiscipline};
use crate::{Nanos, SEC};

/// A rate shaper over a child discipline.
pub struct ShapedQueue {
    child: Box<dyn QueueDiscipline>,
    bucket: TokenBucket,
    rate_bps: u64,
}

impl ShapedQueue {
    /// Shapes the child's output to `rate_bps` with `burst_bytes` of
    /// tolerance.
    pub fn new(child: Box<dyn QueueDiscipline>, rate_bps: u64, burst_bytes: u64) -> Self {
        ShapedQueue { child, bucket: TokenBucket::new(rate_bps, burst_bytes), rate_bps }
    }

    /// The shaping rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }
}

impl QueueDiscipline for ShapedQueue {
    fn enqueue(&mut self, pkt: Pkt, now: Nanos) -> EnqueueOutcome {
        self.child.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Pkt> {
        // The child decides *which* packet; the bucket decides *when*.
        // With a child that can report its head size we budget exactly;
        // otherwise we conservatively require one MTU of tokens before
        // taking (taking is destructive, so we cannot peek-by-dequeue).
        let need = self.child.peek_len().unwrap_or(1500);
        if (self.bucket.level_bytes(now) as usize) < need {
            return None;
        }
        let pkt = self.child.dequeue(now)?;
        self.bucket.conforms(pkt.wire_len(), now);
        Some(pkt)
    }

    fn len_packets(&self) -> usize {
        self.child.len_packets()
    }

    fn len_bytes(&self) -> usize {
        self.child.len_bytes()
    }

    fn next_ready(&self, now: Nanos) -> Option<Nanos> {
        if self.child.is_empty() {
            return None;
        }
        // Time until the head's worth of tokens is available.
        let need = self.child.peek_len().unwrap_or(1500);
        let mut probe = self.bucket.clone();
        let have = probe.level_bytes(now) as usize;
        if have >= need {
            return Some(now);
        }
        let deficit_bits = ((need - have) * 8) as u128;
        let wait = (deficit_bits * SEC as u128 / self.rate_bps as u128) as Nanos;
        Some(now + wait.max(1))
    }

    fn purge(&mut self) -> Vec<Pkt> {
        self.child.purge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FifoQueue;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;
    use netsim_net::Packet;

    fn pkt(n: usize) -> Pkt {
        Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, n).into()
    }

    #[test]
    fn releases_at_the_contracted_rate() {
        // 8 Mb/s shaper = 1000 B per ms.
        let mut q = ShapedQueue::new(Box::new(FifoQueue::new(1 << 20)), 8_000_000, 2_000);
        for _ in 0..20 {
            assert!(q.enqueue(pkt(972), 0).is_queued()); // 1000 B wire
        }
        // Burst allows the first two immediately.
        assert!(q.dequeue(0).is_some());
        assert!(q.dequeue(0).is_some());
        assert!(q.dequeue(0).is_none(), "bucket exhausted");
        // Packets drain one per ms afterwards.
        let mut released = 0;
        for t in 1..=18u64 {
            if q.dequeue(t * 1_000_000).is_some() {
                released += 1;
            }
        }
        assert_eq!(released, 18);
        assert!(q.is_empty());
    }

    #[test]
    fn next_ready_estimates_token_arrival() {
        let mut q = ShapedQueue::new(Box::new(FifoQueue::new(1 << 20)), 8_000_000, 2_000);
        for _ in 0..5 {
            q.enqueue(pkt(1472), 0);
        }
        while q.dequeue(0).is_some() {}
        let t = q.next_ready(0).expect("backlogged");
        assert!(t > 0);
        // At the suggested time a dequeue (eventually) succeeds.
        assert!(q.dequeue(t + 2_000_000).is_some());
    }

    #[test]
    fn empty_shaper_reports_none() {
        let q = ShapedQueue::new(Box::new(FifoQueue::new(1024)), 1_000_000, 1_500);
        assert!(q.next_ready(0).is_none());
        assert!(q.is_empty());
    }

    /// Emulating the simulator's link loop (dequeue / retry at
    /// `next_ready`): a burst is spread out to the shaping rate.
    #[test]
    fn shapes_through_a_fast_link() {
        let mut q = ShapedQueue::new(Box::new(FifoQueue::new(1 << 20)), 1_000_000, 2_000);
        for _ in 0..10 {
            q.enqueue(pkt(972), 0);
        }
        let mut now = 0u64;
        let mut last_release = 0u64;
        let mut gaps = Vec::new();
        while !q.is_empty() {
            match q.dequeue(now) {
                Some(_) => {
                    if last_release > 0 {
                        gaps.push(now - last_release);
                    }
                    last_release = now;
                }
                None => {
                    now = q.next_ready(now).expect("backlogged");
                }
            }
        }
        // Steady-state gap ≈ 8 ms per 1000 B at 1 Mb/s.
        let steady: Vec<u64> = gaps.into_iter().filter(|&g| g > 0).collect();
        assert!(!steady.is_empty());
        for g in &steady {
            assert!((7_000_000..=9_000_000).contains(g), "gap {g}");
        }
    }
}
