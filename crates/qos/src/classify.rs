//! Rule-based traffic classification and DSCP marking.
//!
//! This is the CPE role in the paper's §5 pipeline: "the customer premises
//! device could use technologies such as CBQ to classify traffic and
//! DiffServ/ToS to mark it in a way that the service provider network
//! understands the service level requirement."
//!
//! Rules match on what is *visible* at the point of classification
//! ([`netsim_net::Packet::visible_five_tuple`]). Classifying an IPsec ESP
//! packet therefore sees `protocol = 50` and zero ports — the rules written
//! for the inner applications simply stop matching, which is the mechanism
//! behind experiment Q2.

use netsim_net::{Dscp, Packet, Prefix};

/// A match rule over the visible 5-tuple plus the current DSCP. `None`
/// fields are wildcards; port ranges are inclusive.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatchRule {
    /// Source prefix to match, if any.
    pub src: Option<Prefix>,
    /// Destination prefix to match, if any.
    pub dst: Option<Prefix>,
    /// IP protocol number to match, if any.
    pub protocol: Option<u8>,
    /// Inclusive source port range, if any.
    pub src_ports: Option<(u16, u16)>,
    /// Inclusive destination port range, if any.
    pub dst_ports: Option<(u16, u16)>,
    /// Existing DSCP value to match, if any (for re-marking policies).
    pub dscp: Option<Dscp>,
}

impl MatchRule {
    /// A rule that matches everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Builder: require a destination port range.
    pub fn dst_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.dst_ports = Some((lo, hi));
        self
    }

    /// Builder: require one destination port.
    pub fn dst_port(self, p: u16) -> Self {
        self.dst_port_range(p, p)
    }

    /// Builder: require an IP protocol.
    pub fn protocol(mut self, p: u8) -> Self {
        self.protocol = Some(p);
        self
    }

    /// Builder: require a source prefix.
    pub fn from_prefix(mut self, p: Prefix) -> Self {
        self.src = Some(p);
        self
    }

    /// Builder: require a destination prefix.
    pub fn to_prefix(mut self, p: Prefix) -> Self {
        self.dst = Some(p);
        self
    }

    /// Whether this rule matches the packet's visible headers.
    pub fn matches(&self, pkt: &Packet) -> bool {
        let Some(t) = pkt.visible_five_tuple() else {
            // No visible IPv4 header at all: only the pure wildcard matches.
            return self.src.is_none()
                && self.dst.is_none()
                && self.protocol.is_none()
                && self.src_ports.is_none()
                && self.dst_ports.is_none()
                && self.dscp.is_none();
        };
        if let Some(p) = self.src {
            if !p.contains(t.src) {
                return false;
            }
        }
        if let Some(p) = self.dst {
            if !p.contains(t.dst) {
                return false;
            }
        }
        if let Some(pr) = self.protocol {
            if pr != t.protocol {
                return false;
            }
        }
        if let Some((lo, hi)) = self.src_ports {
            if t.src_port < lo || t.src_port > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dst_ports {
            if t.dst_port < lo || t.dst_port > hi {
                return false;
            }
        }
        if let Some(d) = self.dscp {
            if pkt.dscp() != Some(d) {
                return false;
            }
        }
        true
    }
}

/// An ordered list of `(rule, mark)` pairs with a default marking: the CPE's
/// marking policy. First matching rule wins.
#[derive(Clone, Debug)]
pub struct MarkingPolicy {
    rules: Vec<(MatchRule, Dscp)>,
    default: Dscp,
}

impl MarkingPolicy {
    /// Creates a policy that marks everything `default`.
    pub fn new(default: Dscp) -> Self {
        MarkingPolicy { rules: Vec::new(), default }
    }

    /// A conventional enterprise policy: voice ports → EF, interactive video
    /// → AF41, business-critical data → AF31, bulk → AF11, rest best-effort.
    pub fn enterprise_default() -> Self {
        let mut p = MarkingPolicy::new(Dscp::BE);
        p.push(
            MatchRule::any().protocol(netsim_net::ip::proto::UDP).dst_port_range(16384, 16484),
            Dscp::EF,
        );
        p.push(
            MatchRule::any().protocol(netsim_net::ip::proto::UDP).dst_port_range(5004, 5005),
            Dscp::AF41,
        );
        p.push(MatchRule::any().protocol(netsim_net::ip::proto::TCP).dst_port(1433), Dscp::AF31);
        p.push(MatchRule::any().protocol(netsim_net::ip::proto::TCP).dst_port(443), Dscp::AF21);
        p.push(
            MatchRule::any().protocol(netsim_net::ip::proto::TCP).dst_port_range(20, 21),
            Dscp::AF11,
        );
        p
    }

    /// Appends a rule (evaluated after all existing rules).
    pub fn push(&mut self, rule: MatchRule, mark: Dscp) {
        self.rules.push((rule, mark));
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the policy has no rules (everything gets the default mark).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The DSCP this policy assigns to `pkt` (without modifying it).
    pub fn classify(&self, pkt: &Packet) -> Dscp {
        for (rule, mark) in &self.rules {
            if rule.matches(pkt) {
                return *mark;
            }
        }
        self.default
    }

    /// Classifies and writes the DSCP into the packet's outermost IPv4
    /// header. Returns the mark applied (or `None` if the packet has no
    /// IPv4 header to mark).
    pub fn mark(&self, pkt: &mut Packet) -> Option<Dscp> {
        let mark = self.classify(pkt);
        let hdr = pkt.outer_ipv4_mut()?;
        hdr.dscp = mark;
        Some(mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netsim_net::addr::ip;
    use netsim_net::ip::proto;
    use netsim_net::packet::EspHeader;
    use netsim_net::{Ipv4Header, Layer};

    fn voice_pkt() -> Packet {
        Packet::udp(ip("10.0.0.1"), ip("10.9.0.1"), 30000, 16400, Dscp::BE, 160)
    }

    #[test]
    fn enterprise_policy_marks_voice_ef() {
        let p = MarkingPolicy::enterprise_default();
        let mut pkt = voice_pkt();
        assert_eq!(p.mark(&mut pkt), Some(Dscp::EF));
        assert_eq!(pkt.dscp(), Some(Dscp::EF));
    }

    #[test]
    fn first_match_wins() {
        let mut p = MarkingPolicy::new(Dscp::BE);
        p.push(MatchRule::any().dst_port(80), Dscp::AF21);
        p.push(MatchRule::any(), Dscp::AF11);
        let pkt = Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 80, Dscp::BE, 0, 10);
        assert_eq!(p.classify(&pkt), Dscp::AF21);
        let other = Packet::tcp(ip("1.1.1.1"), ip("2.2.2.2"), 5, 81, Dscp::BE, 0, 10);
        assert_eq!(p.classify(&other), Dscp::AF11);
    }

    #[test]
    fn prefix_and_protocol_constraints() {
        let rule = MatchRule::any().from_prefix("10.0.0.0/8".parse().unwrap()).protocol(proto::UDP);
        assert!(rule.matches(&voice_pkt()));
        let wrong_src = Packet::udp(ip("11.0.0.1"), ip("10.9.0.1"), 1, 2, Dscp::BE, 0);
        assert!(!rule.matches(&wrong_src));
        let wrong_proto = Packet::tcp(ip("10.0.0.1"), ip("10.9.0.1"), 1, 2, Dscp::BE, 0, 0);
        assert!(!rule.matches(&wrong_proto));
    }

    #[test]
    fn dscp_rematch_rule() {
        let rule = MatchRule { dscp: Some(Dscp::EF), ..MatchRule::default() };
        let mut pkt = voice_pkt();
        assert!(!rule.matches(&pkt));
        pkt.outer_ipv4_mut().unwrap().dscp = Dscp::EF;
        assert!(rule.matches(&pkt));
    }

    /// The paper's §3 point: after ESP encapsulation the classifier can no
    /// longer see the application, so the voice rule stops matching and the
    /// packet falls to the default class.
    #[test]
    fn classifier_is_blind_behind_esp() {
        let policy = MarkingPolicy::enterprise_default();
        // Before encryption: classified EF.
        assert_eq!(policy.classify(&voice_pkt()), Dscp::EF);
        // After: outer IP + ESP, inner packet opaque.
        let esp = Packet::new(
            vec![
                Layer::Ipv4(Ipv4Header::new(
                    ip("100.0.0.1"),
                    ip("100.0.0.2"),
                    proto::ESP,
                    Dscp::BE,
                )),
                Layer::Esp(EspHeader { spi: 1, seq: 1 }),
            ],
            Bytes::from(vec![0u8; 180]),
        );
        assert_eq!(policy.classify(&esp), Dscp::BE);
    }

    #[test]
    fn wildcard_matches_headerless_packet_but_specific_rules_do_not() {
        let bare = Packet::new(vec![], Bytes::from_static(b"x"));
        assert!(MatchRule::any().matches(&bare));
        assert!(!MatchRule::any().dst_port(80).matches(&bare));
    }
}
