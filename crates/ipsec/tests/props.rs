//! Property-based tests for the IPsec substrate: ESP round-trips for
//! arbitrary inner packets, tamper resistance over random corruption, and
//! replay-window behaviour under random sequence schedules.

use bytes::Bytes;
use netsim_ipsec::{decapsulate, encapsulate, ReplayWindow, SecurityAssociation};
use netsim_net::addr::ip;
use netsim_net::ip::proto;
use netsim_net::{Dscp, Ip, Ipv4Header, Layer, Packet};
use proptest::prelude::*;

fn arb_inner() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        0u8..64,
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(src, dst, dscp, sp, dp, tcp, payload)| {
            let d = Dscp::new(dscp);
            let mut pkt = if tcp {
                Packet::tcp(Ip(src), Ip(dst), sp, dp, d, 0, 0)
            } else {
                Packet::udp(Ip(src), Ip(dst), sp, dp, d, 0)
            };
            pkt.payload = Bytes::from(payload);
            pkt
        })
}

fn sa(k: u64) -> SecurityAssociation {
    SecurityAssociation::new(0x2000, k | 1, k.rotate_left(17) | 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any inner packet round-trips through ESP bit-exactly.
    #[test]
    fn esp_roundtrip_arbitrary_inner(inner in arb_inner(), key in any::<u64>()) {
        let mut tx = sa(key);
        let mut rx = sa(key);
        let outer = encapsulate(&inner, &mut tx, ip("198.51.100.1"), ip("198.51.100.2"));
        // ESP payload is block-aligned plus IV and ICV.
        prop_assert_eq!((outer.payload.len() - 8 - 8) % 8, 0);
        let got = decapsulate(&outer, &mut rx).expect("roundtrip");
        prop_assert_eq!(got.layers(), inner.layers());
        prop_assert_eq!(&got.payload, &inner.payload);
    }

    /// Flipping any single bit of the ESP payload is detected — decap must
    /// never return success on tampered ciphertext.
    #[test]
    fn any_single_bitflip_detected(inner in arb_inner(), key in any::<u64>(), pos in any::<usize>(), bit in 0u8..8) {
        let mut tx = sa(key);
        let mut rx = sa(key);
        let mut outer = encapsulate(&inner, &mut tx, ip("198.51.100.1"), ip("198.51.100.2"));
        let mut body = outer.payload.to_vec();
        let idx = pos % body.len();
        body[idx] ^= 1 << bit;
        outer.payload = Bytes::from(body);
        prop_assert!(decapsulate(&outer, &mut rx).is_err());
    }

    /// Tampering with the ESP header (SPI/seq) is also detected, because
    /// both are inside the ICV scope.
    #[test]
    fn header_tamper_detected(inner in arb_inner(), key in any::<u64>(), dseq in 1u32..1000) {
        let mut tx = sa(key);
        let mut rx = sa(key);
        let outer = encapsulate(&inner, &mut tx, ip("198.51.100.1"), ip("198.51.100.2"));
        // Mutate the seq in the structured header.
        let mut layers: Vec<Layer> = outer.layers().to_vec();
        if let Layer::Esp(ref mut e) = layers[1] {
            e.seq = e.seq.wrapping_add(dseq);
        }
        let forged = {
            let mut p = Packet::new(layers, outer.payload.clone());
            p.meta = outer.meta;
            p
        };
        prop_assert!(decapsulate(&forged, &mut rx).is_err());
    }

    /// Replay window: for any schedule of sequence numbers, each distinct
    /// number is accepted at most once, and numbers newer than the highest
    /// seen are always accepted.
    #[test]
    fn replay_window_at_most_once(seqs in proptest::collection::vec(1u32..500, 1..300)) {
        let mut w = ReplayWindow::default();
        let mut accepted = std::collections::HashSet::new();
        let mut highest = 0u32;
        for s in seqs {
            let fresh_high = s > highest;
            let ok = w.check_and_update(s);
            if ok {
                prop_assert!(accepted.insert(s), "seq {s} accepted twice");
            }
            if fresh_high {
                prop_assert!(ok, "strictly newer seq {s} must be accepted");
                highest = s;
            }
        }
    }

    /// Different SAs (wrong keys) never successfully decapsulate.
    #[test]
    fn cross_sa_never_decapsulates(inner in arb_inner(), k1 in any::<u64>(), k2 in any::<u64>()) {
        prop_assume!(k1 | 1 != k2 | 1);
        let mut tx = sa(k1);
        let mut rx = sa(k2);
        let outer = encapsulate(&inner, &mut tx, ip("1.1.1.1"), ip("2.2.2.2"));
        prop_assert!(decapsulate(&outer, &mut rx).is_err());
    }

    /// Ciphertext reveals nothing classifiable: the visible 5-tuple of the
    /// outer packet is constant regardless of the inner flow.
    #[test]
    fn outer_tuple_independent_of_inner(a in arb_inner(), b in arb_inner(), key in any::<u64>()) {
        let mut tx = sa(key);
        let oa = encapsulate(&a, &mut tx, ip("1.1.1.1"), ip("2.2.2.2"));
        let ob = encapsulate(&b, &mut tx, ip("1.1.1.1"), ip("2.2.2.2"));
        let ta = oa.visible_five_tuple().unwrap();
        let tb = ob.visible_five_tuple().unwrap();
        prop_assert_eq!(ta.protocol, proto::ESP);
        prop_assert_eq!((ta.src, ta.dst, ta.src_port, ta.dst_port), (tb.src, tb.dst, tb.src_port, tb.dst_port));
    }

    /// The cipher itself: CBC round-trips any block-aligned buffer.
    #[test]
    fn cbc_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..32).prop_map(|mut v| {
        v.resize(v.len() / 8 * 8, 0);
        v
    }), key in any::<u64>(), iv in any::<u64>()) {
        use netsim_ipsec::FeistelCipher;
        let c = FeistelCipher::new(key);
        let mut buf = data.clone();
        c.cbc_encrypt(iv, &mut buf);
        c.cbc_decrypt(iv, &mut buf);
        prop_assert_eq!(buf, data);
    }
}

/// Sanity for the oddly-typed `header_tamper_detected` helper above: a
/// plain unit check that the test really mutates the seq field.
#[test]
fn forged_seq_actually_differs() {
    let inner = Packet::new(
        vec![Layer::Ipv4(Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), proto::UDP, Dscp::BE))],
        Bytes::new(),
    );
    let mut tx = sa(5);
    let outer = encapsulate(&inner, &mut tx, ip("3.3.3.3"), ip("4.4.4.4"));
    let Layer::Esp(e) = outer.layers()[1] else { panic!("esp") };
    assert_eq!(e.seq, 1);
}
