//! Simulated IKE: the two-phase exchange that establishes ESP SAs.
//!
//! The paper (§2.3): "IKE simplifies the process of assigning keys to
//! devices that need to communicate via encrypted connections." The
//! emulation reproduces the *shape* of IKEv1 — a 6-message phase 1 (main
//! mode) deriving a shared secret, and a 3-message phase 2 (quick mode)
//! deriving the SA pair — with deterministic key derivation standing in
//! for Diffie-Hellman, and a per-exchange CPU cost the gateway nodes charge
//! before any data can flow. Experiment Q2 uses the message/latency figures
//! for tunnel setup cost; T1 uses the session counts.

use crate::sa::{SaPair, SecurityAssociation};

/// Parameters of an IKE negotiation.
#[derive(Clone, Copy, Debug)]
pub struct IkeProposal {
    /// Initiator's secret seed (DH private stand-in).
    pub initiator_secret: u64,
    /// Responder's secret seed.
    pub responder_secret: u64,
    /// Agreed SPI base; the exchange derives one SPI per direction.
    pub spi_base: u32,
}

/// Messages in IKEv1 phase 1 main mode.
pub const PHASE1_MESSAGES: u32 = 6;
/// Messages in IKEv1 phase 2 quick mode.
pub const PHASE2_MESSAGES: u32 = 3;

/// Per-endpoint CPU cost of the public-key operations in phase 1, ns
/// (a late-90s software modexp took tens of milliseconds).
pub const PHASE1_CPU_NS: u64 = 30_000_000;
/// Per-endpoint CPU cost of phase 2, ns.
pub const PHASE2_CPU_NS: u64 = 2_000_000;

/// The outcome of a completed IKE negotiation.
#[derive(Clone, Debug)]
pub struct IkeExchange {
    /// The derived SA pair.
    pub sas: SaPair,
    /// Total messages exchanged (phase 1 + phase 2).
    pub messages: u32,
    /// Total CPU time consumed across both endpoints, ns.
    pub cpu_ns: u64,
    /// Handshake latency given a one-way network delay, computable via
    /// [`IkeExchange::setup_latency_ns`].
    rtt_messages: u32,
}

fn derive(a: u64, b: u64, salt: u64) -> u64 {
    // Commutative mixing so both sides derive the same secret (DH stand-in).
    let s = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut x = s ^ salt;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Runs the two-phase exchange and derives the SA pair.
pub fn establish(p: IkeProposal) -> IkeExchange {
    let shared = derive(p.initiator_secret, p.responder_secret, 0);
    let enc_i2r = derive(shared, 1, 0x0101);
    let auth_i2r = derive(shared, 1, 0x0202);
    let enc_r2i = derive(shared, 2, 0x0101);
    let auth_r2i = derive(shared, 2, 0x0202);
    let out_sa = SecurityAssociation::new(p.spi_base, enc_i2r, auth_i2r);
    let in_sa = SecurityAssociation::new(p.spi_base + 1, enc_r2i, auth_r2i);
    IkeExchange {
        sas: SaPair { out_sa, in_sa },
        messages: PHASE1_MESSAGES + PHASE2_MESSAGES,
        cpu_ns: 2 * (PHASE1_CPU_NS + PHASE2_CPU_NS),
        rtt_messages: PHASE1_MESSAGES + PHASE2_MESSAGES,
    }
}

impl IkeExchange {
    /// Wall-clock setup latency for a given one-way network delay: each
    /// message traverses the path once, plus each endpoint's CPU time.
    pub fn setup_latency_ns(&self, one_way_delay_ns: u64) -> u64 {
        u64::from(self.rtt_messages) * one_way_delay_ns + self.cpu_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_get_distinct_sas() {
        let x =
            establish(IkeProposal { initiator_secret: 11, responder_secret: 22, spi_base: 0x500 });
        assert_ne!(x.sas.out_sa.spi, x.sas.in_sa.spi);
        assert_ne!(x.sas.out_sa.enc_key, x.sas.in_sa.enc_key);
        assert_ne!(x.sas.out_sa.enc_key, x.sas.out_sa.auth_key);
    }

    #[test]
    fn derivation_is_symmetric_in_secrets() {
        // Either side computing with the same pair of secrets agrees.
        let a = establish(IkeProposal { initiator_secret: 5, responder_secret: 7, spi_base: 1 });
        let b = establish(IkeProposal { initiator_secret: 7, responder_secret: 5, spi_base: 1 });
        assert_eq!(a.sas.out_sa.enc_key, b.sas.out_sa.enc_key);
    }

    #[test]
    fn message_and_cost_shape() {
        let x = establish(IkeProposal { initiator_secret: 1, responder_secret: 2, spi_base: 1 });
        assert_eq!(x.messages, 9);
        assert!(x.cpu_ns > 2 * PHASE1_CPU_NS);
        // 10 ms one-way: 9 messages in flight + CPU.
        let lat = x.setup_latency_ns(10_000_000);
        assert!(lat > 90_000_000);
    }

    #[test]
    fn sas_interoperate_with_esp() {
        use netsim_net::addr::ip;
        use netsim_net::{Dscp, Packet};
        let x =
            establish(IkeProposal { initiator_secret: 3, responder_secret: 9, spi_base: 0x700 });
        let mut tx = x.sas.out_sa.clone();
        let mut rx = x.sas.out_sa.clone();
        let inner = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::AF21, 99);
        let outer = crate::esp::encapsulate(&inner, &mut tx, ip("1.1.1.1"), ip("2.2.2.2"));
        let got = crate::esp::decapsulate(&outer, &mut rx).unwrap();
        assert_eq!(got.layers(), inner.layers());
    }
}
