//! Keyed-hash message authenticator (HMAC stand-in).
//!
//! A 64-bit keyed hash with an HMAC-like inner/outer structure. **Not
//! secure** — see the crate-level disclaimer — but collision-free enough
//! that the integrity and replay tests are meaningful.

/// Length in bytes of the integrity check value appended to ESP payloads.
pub const ICV_LEN: usize = 8;

fn mix(mut h: u64, b: u8) -> u64 {
    h ^= u64::from(b);
    h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a prime
    h ^ (h >> 29)
}

fn keyed_hash(key: u64, data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325 ^ key;
    for &b in data {
        h = mix(h, b);
    }
    h.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
}

/// Computes the ICV over `data` with the HMAC-like double hash.
pub fn icv(key: u64, data: &[u8]) -> [u8; ICV_LEN] {
    let inner = keyed_hash(key ^ 0x3636_3636_3636_3636, data);
    let outer = keyed_hash(key ^ 0x5C5C_5C5C_5C5C_5C5C, &inner.to_be_bytes());
    outer.to_be_bytes()
}

/// Constant-shape verification of an ICV.
pub fn verify(key: u64, data: &[u8], tag: &[u8]) -> bool {
    if tag.len() != ICV_LEN {
        return false;
    }
    let want = icv(key, data);
    // XOR-accumulate to avoid early exit (mirrors constant-time practice).
    let mut acc = 0u8;
    for (a, b) in want.iter().zip(tag.iter()) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_own_tag() {
        let tag = icv(42, b"hello world");
        assert!(verify(42, b"hello world", &tag));
    }

    #[test]
    fn rejects_modified_message() {
        let tag = icv(42, b"hello world");
        assert!(!verify(42, b"hello worle", &tag));
    }

    #[test]
    fn rejects_wrong_key() {
        let tag = icv(42, b"hello");
        assert!(!verify(43, b"hello", &tag));
    }

    #[test]
    fn rejects_truncated_tag() {
        let tag = icv(42, b"hello");
        assert!(!verify(42, b"hello", &tag[..4]));
    }

    #[test]
    fn distinct_messages_distinct_tags() {
        // Smoke-check for gross collisions over many short messages.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            assert!(seen.insert(icv(7, &i.to_be_bytes())), "collision at {i}");
        }
    }
}
