//! A toy 64-bit-block Feistel cipher with CBC mode.
//!
//! Shape-compatible stand-in for DES/3DES (64-bit blocks, 16 rounds, CBC
//! with explicit IV) so that ESP padding, IV handling, and per-byte costs
//! behave like the real thing. **Not secure**; see the crate-level
//! disclaimer.

/// A 16-round Feistel cipher over 64-bit blocks.
#[derive(Clone, Debug)]
pub struct FeistelCipher {
    round_keys: [u32; 16],
}

/// Cipher block size in bytes.
pub const BLOCK: usize = 8;

fn round_fn(half: u32, key: u32) -> u32 {
    // A small ARX mix: add, rotate, xor. Enough diffusion to make
    // ciphertext look uniform to the classifier experiments.
    let x = half.wrapping_add(key);
    let x = x.rotate_left(5) ^ x.rotate_right(11) ^ key;
    x.wrapping_mul(0x9E37_79B9).rotate_left(7)
}

impl FeistelCipher {
    /// Derives round keys from a 64-bit key via an xorshift-style schedule.
    pub fn new(key: u64) -> Self {
        let mut s = key | 1;
        let mut round_keys = [0u32; 16];
        for rk in &mut round_keys {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *rk = (s >> 16) as u32;
        }
        FeistelCipher { round_keys }
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let (mut l, mut r) = ((block >> 32) as u32, block as u32);
        for &k in &self.round_keys {
            let (nl, nr) = (r, l ^ round_fn(r, k));
            l = nl;
            r = nr;
        }
        // Final swap, as in DES.
        (u64::from(r) << 32) | u64::from(l)
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let (mut r, mut l) = ((block >> 32) as u32, block as u32);
        for &k in self.round_keys.iter().rev() {
            let (nr, nl) = (l, r ^ round_fn(l, k));
            r = nr;
            l = nl;
        }
        (u64::from(l) << 32) | u64::from(r)
    }

    /// CBC-encrypts `data` in place. `data.len()` must be a multiple of
    /// [`BLOCK`]; the caller pads first (ESP does).
    ///
    /// # Panics
    /// Panics on unpadded input.
    pub fn cbc_encrypt(&self, iv: u64, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(BLOCK), "CBC input must be block-aligned");
        let mut prev = iv;
        for chunk in data.chunks_exact_mut(BLOCK) {
            let p = u64::from_be_bytes(chunk.try_into().expect("exact chunk"));
            let c = self.encrypt_block(p ^ prev);
            chunk.copy_from_slice(&c.to_be_bytes());
            prev = c;
        }
    }

    /// CBC-decrypts `data` in place.
    ///
    /// # Panics
    /// Panics on unpadded input.
    pub fn cbc_decrypt(&self, iv: u64, data: &mut [u8]) {
        assert!(data.len().is_multiple_of(BLOCK), "CBC input must be block-aligned");
        let mut prev = iv;
        for chunk in data.chunks_exact_mut(BLOCK) {
            let c = u64::from_be_bytes(chunk.try_into().expect("exact chunk"));
            let p = self.decrypt_block(c) ^ prev;
            chunk.copy_from_slice(&p.to_be_bytes());
            prev = c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let c = FeistelCipher::new(0xDEAD_BEEF_CAFE_F00D);
        for p in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(c.decrypt_block(c.encrypt_block(p)), p);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = FeistelCipher::new(1);
        let b = FeistelCipher::new(2);
        assert_ne!(a.encrypt_block(42), b.encrypt_block(42));
    }

    #[test]
    fn encryption_is_not_identity_and_diffuses() {
        let c = FeistelCipher::new(7);
        let e0 = c.encrypt_block(0);
        let e1 = c.encrypt_block(1);
        assert_ne!(e0, 0);
        // One flipped plaintext bit should flip many ciphertext bits.
        assert!((e0 ^ e1).count_ones() > 10, "poor diffusion: {:064b}", e0 ^ e1);
    }

    #[test]
    fn cbc_roundtrip_and_chaining() {
        let c = FeistelCipher::new(99);
        let mut data = (0u8..64).collect::<Vec<_>>();
        let orig = data.clone();
        c.cbc_encrypt(0x1111, &mut data);
        assert_ne!(data, orig);
        // Identical plaintext blocks must encrypt differently under CBC.
        let mut rep = vec![0xAB; 32];
        c.cbc_encrypt(0x2222, &mut rep);
        assert_ne!(rep[0..8], rep[8..16]);
        c.cbc_decrypt(0x1111, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn cbc_wrong_iv_garbles_first_block_only() {
        let c = FeistelCipher::new(5);
        let mut data = vec![7u8; 24];
        c.cbc_encrypt(123, &mut data);
        c.cbc_decrypt(124, &mut data);
        assert_ne!(&data[..8], &[7u8; 8][..]);
        assert_eq!(&data[8..], &[7u8; 16][..]);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn cbc_rejects_unaligned() {
        FeistelCipher::new(1).cbc_encrypt(0, &mut [0u8; 7]);
    }
}
