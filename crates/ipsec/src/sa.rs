//! Security associations and anti-replay.

/// The RFC 2401 64-entry sliding anti-replay window.
#[derive(Clone, Debug, Default)]
pub struct ReplayWindow {
    highest: u32,
    bitmap: u64,
}

impl ReplayWindow {
    /// Window width in sequence numbers.
    pub const WIDTH: u32 = 64;

    /// Checks sequence number `seq` and, if acceptable, marks it received.
    /// Returns `false` for replays and for packets older than the window.
    pub fn check_and_update(&mut self, seq: u32) -> bool {
        if seq == 0 {
            return false; // ESP sequence numbers start at 1
        }
        if seq > self.highest {
            let shift = seq - self.highest;
            self.bitmap = if shift >= Self::WIDTH { 0 } else { self.bitmap << shift };
            self.bitmap |= 1;
            self.highest = seq;
            return true;
        }
        let offset = self.highest - seq;
        if offset >= Self::WIDTH {
            return false; // too old
        }
        let bit = 1u64 << offset;
        if self.bitmap & bit != 0 {
            return false; // replay
        }
        self.bitmap |= bit;
        true
    }
}

/// One unidirectional security association.
#[derive(Clone, Debug)]
pub struct SecurityAssociation {
    /// Security parameters index carried in the ESP header.
    pub spi: u32,
    /// Encryption key (toy cipher).
    pub enc_key: u64,
    /// Authentication key (keyed hash).
    pub auth_key: u64,
    /// Next outbound sequence number (sender side).
    pub seq: u32,
    /// Anti-replay state (receiver side).
    pub replay: ReplayWindow,
    /// Copy the inner DSCP to the outer header on encapsulation. Paper
    /// context: even with DSCP copied, flow/port information is gone, so
    /// only coarse class-of-service survives — experiments Q2 runs both
    /// settings.
    pub copy_dscp: bool,
}

impl SecurityAssociation {
    /// Creates an SA.
    pub fn new(spi: u32, enc_key: u64, auth_key: u64) -> Self {
        SecurityAssociation {
            spi,
            enc_key,
            auth_key,
            seq: 0,
            replay: ReplayWindow::default(),
            copy_dscp: false,
        }
    }

    /// Enables DSCP copying to the outer header.
    pub fn with_dscp_copy(mut self) -> Self {
        self.copy_dscp = true;
        self
    }

    /// Takes the next outbound sequence number.
    pub fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }
}

/// The pair of SAs (initiator→responder, responder→initiator) produced by
/// an IKE phase-2 exchange.
#[derive(Clone, Debug)]
pub struct SaPair {
    /// SA protecting initiator → responder traffic.
    pub out_sa: SecurityAssociation,
    /// SA protecting responder → initiator traffic.
    pub in_sa: SecurityAssociation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_in_order() {
        let mut w = ReplayWindow::default();
        for s in 1..100 {
            assert!(w.check_and_update(s), "seq {s}");
        }
    }

    #[test]
    fn rejects_replay() {
        let mut w = ReplayWindow::default();
        assert!(w.check_and_update(5));
        assert!(!w.check_and_update(5));
    }

    #[test]
    fn accepts_reordered_within_window() {
        let mut w = ReplayWindow::default();
        assert!(w.check_and_update(10));
        assert!(w.check_and_update(3));
        assert!(w.check_and_update(9));
        assert!(!w.check_and_update(3), "but only once");
    }

    #[test]
    fn rejects_older_than_window() {
        let mut w = ReplayWindow::default();
        assert!(w.check_and_update(100));
        assert!(!w.check_and_update(100 - ReplayWindow::WIDTH));
        assert!(w.check_and_update(100 - ReplayWindow::WIDTH + 1));
    }

    #[test]
    fn big_jump_clears_window() {
        let mut w = ReplayWindow::default();
        assert!(w.check_and_update(1));
        assert!(w.check_and_update(1000));
        assert!(!w.check_and_update(1000));
        assert!(w.check_and_update(999));
    }

    #[test]
    fn zero_sequence_invalid() {
        let mut w = ReplayWindow::default();
        assert!(!w.check_and_update(0));
    }

    #[test]
    fn sa_sequence_increments() {
        let mut sa = SecurityAssociation::new(1, 2, 3);
        assert_eq!(sa.next_seq(), 1);
        assert_eq!(sa.next_seq(), 2);
    }
}
