//! # netsim-ipsec — ESP tunnel-mode emulation and IKE simulation
//!
//! The paper (§2.3) positions IPsec as "the standards for security" on IP
//! VPNs, and (§3) observes its cost: "during the development of the second
//! encryption tunnel, all information including the IP and MAC addresses
//! are encrypted thus erasing any hope one may have to control QoS."
//!
//! This crate makes that observation *mechanically true* inside the
//! emulator: [`esp::encapsulate`] wire-serializes the real inner packet,
//! encrypts the bytes, and ships them as the payload of an outer
//! `IP(proto=50)+ESP` packet. Downstream classifiers see exactly what a
//! real DiffServ edge would see — an opaque ESP flow.
//!
//! **Security disclaimer (per DESIGN.md substitution table):** the block
//! cipher is a toy 16-round Feistel network and the authenticator a keyed
//! 64-bit hash. They stand in for DES/3DES + HMAC so that framing, padding,
//! replay protection and per-byte processing cost are realistic; they are
//! **not** cryptographically secure and exist only to drive the QoS
//! experiments.
//!
//! # Example
//!
//! ```
//! use netsim_ipsec::{decapsulate, encapsulate, SecurityAssociation};
//! use netsim_net::{Dscp, Packet};
//!
//! let mut tx = SecurityAssociation::new(0x1001, 0xAAAA, 0xBBBB);
//! let mut rx = SecurityAssociation::new(0x1001, 0xAAAA, 0xBBBB);
//!
//! let inner = Packet::udp(
//!     "10.1.0.5".parse().unwrap(), "10.2.0.9".parse().unwrap(), 16000, 16400, Dscp::EF, 160);
//! let outer = encapsulate(
//!     &inner, &mut tx, "198.51.100.1".parse().unwrap(), "198.51.100.2".parse().unwrap());
//!
//! // The outer packet is classification-blind (§3 of the paper)…
//! let t = outer.visible_five_tuple().unwrap();
//! assert_eq!((t.protocol, t.dst_port), (netsim_net::ip::proto::ESP, 0));
//! // …and a replayed copy is rejected.
//! assert_eq!(decapsulate(&outer, &mut rx).unwrap().layers(), inner.layers());
//! assert!(decapsulate(&outer, &mut rx).is_err());
//! ```

#![warn(missing_docs)]

pub mod auth;
pub mod cipher;
pub mod esp;
pub mod ike;
pub mod sa;

pub use cipher::FeistelCipher;
pub use esp::{decapsulate, encapsulate, CryptoCostModel, IpsecError};
pub use ike::{IkeExchange, IkeProposal};
pub use sa::{ReplayWindow, SaPair, SecurityAssociation};
