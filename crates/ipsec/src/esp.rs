//! ESP tunnel-mode encapsulation and decapsulation.
//!
//! Wire layout of the produced packet:
//!
//! ```text
//! [outer IPv4, proto=50][ESP: spi, seq][payload = IV ‖ E(inner ‖ pad ‖
//!   pad_len ‖ next_hdr) ‖ ICV]
//! ```
//!
//! The inner packet is a *real* wire serialization of the customer packet,
//! so nothing downstream can classify on it — the mechanical core of the
//! paper's §3 observation and of experiment Q2.

use bytes::Bytes;
use netsim_net::ip::proto;
use netsim_net::packet::EspHeader;
use netsim_net::{wire, Dscp, Ip, Ipv4Header, Layer, NetError, Packet};

use crate::auth::{icv, verify, ICV_LEN};
use crate::cipher::{FeistelCipher, BLOCK};
use crate::sa::SecurityAssociation;

/// Why decapsulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IpsecError {
    /// The packet is not an outer-IP + ESP packet.
    NotEsp,
    /// The SPI does not match the SA.
    WrongSpi {
        /// SPI found in the packet.
        got: u32,
    },
    /// Integrity check failed (corruption or wrong key).
    BadIcv,
    /// Anti-replay rejected the sequence number.
    Replayed {
        /// The offending sequence number.
        seq: u32,
    },
    /// Padding or trailer was malformed after decryption.
    BadPadding,
    /// The decrypted inner bytes did not parse as a packet.
    BadInner(NetError),
}

/// Per-packet crypto processing cost model, used by the IPsec gateway node
/// to charge CPU time (the paper's §3.1: "performing security functions
/// such as encryption and key exchange are processor intensive").
/// Defaults approximate late-90s software 3DES on a branch-office box:
/// ~20 MB/s bulk, ~20 µs fixed per packet.
#[derive(Clone, Copy, Debug)]
pub struct CryptoCostModel {
    /// Fixed per-packet cost (header handling, ICV), ns.
    pub per_packet_ns: u64,
    /// Per-byte cost of encrypt/decrypt, ns.
    pub per_byte_ns: u64,
}

impl Default for CryptoCostModel {
    fn default() -> Self {
        CryptoCostModel { per_packet_ns: 20_000, per_byte_ns: 50 }
    }
}

impl CryptoCostModel {
    /// Processing time charged for a packet of `bytes`.
    pub fn cost_ns(&self, bytes: usize) -> u64 {
        self.per_packet_ns + self.per_byte_ns * bytes as u64
    }
}

/// Encapsulates `inner` in ESP tunnel mode under `sa`, producing the outer
/// packet addressed `outer_src → outer_dst`. Simulation metadata is
/// carried over so measurement survives the tunnel.
pub fn encapsulate(
    inner: &Packet,
    sa: &mut SecurityAssociation,
    outer_src: Ip,
    outer_dst: Ip,
) -> Packet {
    let inner_bytes = wire::encode(inner).expect("inner packet must be encodable");
    let seq = sa.next_seq();

    // Pad to the cipher block: data ‖ 0x00.. ‖ pad_len ‖ next_header(=wire).
    let mut body = inner_bytes;
    let unpadded = body.len() + 2;
    let pad = (BLOCK - unpadded % BLOCK) % BLOCK;
    body.extend(std::iter::repeat_n(0u8, pad));
    body.push(pad as u8);
    body.push(0x04); // next header: IP-in-IP, as tunnel mode uses

    // Deterministic per-packet IV (derived from the sequence number the
    // way many implementations derive from a counter).
    let cipher = FeistelCipher::new(sa.enc_key);
    let iv = cipher.encrypt_block(u64::from(seq) ^ 0xA5A5_5A5A_0F0F_F0F0);
    cipher.cbc_encrypt(iv, &mut body);

    // Payload = IV ‖ ciphertext ‖ ICV(spi‖seq‖iv‖ciphertext).
    let mut payload = Vec::with_capacity(BLOCK + body.len() + ICV_LEN);
    payload.extend_from_slice(&iv.to_be_bytes());
    payload.extend_from_slice(&body);
    let mut auth_scope = Vec::with_capacity(8 + payload.len());
    auth_scope.extend_from_slice(&sa.spi.to_be_bytes());
    auth_scope.extend_from_slice(&seq.to_be_bytes());
    auth_scope.extend_from_slice(&payload);
    payload.extend_from_slice(&icv(sa.auth_key, &auth_scope));

    let outer_dscp = if sa.copy_dscp {
        inner.outer_ipv4().map(|h| h.dscp).unwrap_or(Dscp::BE)
    } else {
        Dscp::BE
    };
    let mut outer = Packet::new(
        vec![
            Layer::Ipv4(Ipv4Header::new(outer_src, outer_dst, proto::ESP, outer_dscp)),
            Layer::Esp(EspHeader { spi: sa.spi, seq }),
        ],
        Bytes::from(payload),
    );
    outer.meta = inner.meta;
    outer
}

/// Reverses [`encapsulate`]: verifies integrity, enforces anti-replay,
/// decrypts, and parses the inner packet.
pub fn decapsulate(outer: &Packet, sa: &mut SecurityAssociation) -> Result<Packet, IpsecError> {
    let esp = match (outer.layers().first(), outer.layers().get(1)) {
        (Some(Layer::Ipv4(h)), Some(Layer::Esp(e))) if h.protocol == proto::ESP => *e,
        _ => return Err(IpsecError::NotEsp),
    };
    if esp.spi != sa.spi {
        return Err(IpsecError::WrongSpi { got: esp.spi });
    }
    let payload = &outer.payload;
    if payload.len() < BLOCK + ICV_LEN || !(payload.len() - BLOCK - ICV_LEN).is_multiple_of(BLOCK) {
        return Err(IpsecError::BadPadding);
    }
    let (body, tag) = payload.split_at(payload.len() - ICV_LEN);
    let mut auth_scope = Vec::with_capacity(8 + body.len());
    auth_scope.extend_from_slice(&esp.spi.to_be_bytes());
    auth_scope.extend_from_slice(&esp.seq.to_be_bytes());
    auth_scope.extend_from_slice(body);
    if !verify(sa.auth_key, &auth_scope, tag) {
        return Err(IpsecError::BadIcv);
    }
    // Integrity verified before replay state is touched (RFC 4303 order).
    if !sa.replay.check_and_update(esp.seq) {
        return Err(IpsecError::Replayed { seq: esp.seq });
    }

    let iv = u64::from_be_bytes(body[..BLOCK].try_into().expect("checked length"));
    let mut ct = body[BLOCK..].to_vec();
    let cipher = FeistelCipher::new(sa.enc_key);
    cipher.cbc_decrypt(iv, &mut ct);

    // Strip trailer.
    if ct.len() < 2 {
        return Err(IpsecError::BadPadding);
    }
    let next_hdr = ct[ct.len() - 1];
    let pad_len = ct[ct.len() - 2] as usize;
    if next_hdr != 0x04 || pad_len + 2 > ct.len() {
        return Err(IpsecError::BadPadding);
    }
    let inner_len = ct.len() - 2 - pad_len;
    if !ct[inner_len..ct.len() - 2].iter().all(|&b| b == 0) {
        return Err(IpsecError::BadPadding);
    }
    let mut inner = wire::decode(&ct[..inner_len]).map_err(IpsecError::BadInner)?;
    inner.meta = outer.meta;
    Ok(inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;

    fn sa() -> SecurityAssociation {
        SecurityAssociation::new(0x1001, 0xAAAA_BBBB_CCCC_DDDD, 0x1234_5678_9ABC_DEF0)
    }

    fn inner() -> Packet {
        let mut p = Packet::udp(ip("10.1.0.5"), ip("10.2.0.9"), 16000, 16400, Dscp::EF, 160);
        p.meta.flow = 9;
        p.meta.seq = 3;
        p.meta.created_ns = 777;
        p
    }

    #[test]
    fn roundtrip_preserves_inner_packet_and_meta() {
        let (mut tx, mut rx) = (sa(), sa());
        let outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        let got = decapsulate(&outer, &mut rx).expect("decap");
        assert_eq!(got.layers(), inner().layers());
        assert_eq!(got.payload, inner().payload);
        assert_eq!(got.meta.flow, 9);
        assert_eq!(got.meta.created_ns, 777);
    }

    #[test]
    fn outer_packet_hides_inner_fields() {
        let mut tx = sa();
        let outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        let t = outer.visible_five_tuple().unwrap();
        assert_eq!(t.protocol, proto::ESP);
        assert_eq!((t.src_port, t.dst_port), (0, 0));
        assert_eq!(outer.dscp(), Some(Dscp::BE), "EF marking is gone");
        // The inner header bytes must not appear in the ciphertext.
        let inner_bytes = wire::encode(&inner()).unwrap();
        let hay = &outer.payload[..];
        assert!(
            !hay.windows(8).any(|w| inner_bytes.windows(8).any(|x| x == w)),
            "plaintext leaked into ESP payload"
        );
    }

    #[test]
    fn dscp_copy_mode_preserves_class_only() {
        let mut tx = sa().with_dscp_copy();
        let outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        assert_eq!(outer.dscp(), Some(Dscp::EF), "class survives");
        let t = outer.visible_five_tuple().unwrap();
        assert_eq!((t.src_port, t.dst_port), (0, 0), "flow identity still gone");
    }

    #[test]
    fn tampering_detected() {
        let (mut tx, mut rx) = (sa(), sa());
        let mut outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        let mut tampered = outer.payload.to_vec();
        tampered[10] ^= 1;
        outer.payload = Bytes::from(tampered);
        assert_eq!(decapsulate(&outer, &mut rx), Err(IpsecError::BadIcv));
    }

    #[test]
    fn replay_detected() {
        let (mut tx, mut rx) = (sa(), sa());
        let outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        assert!(decapsulate(&outer, &mut rx).is_ok());
        assert_eq!(decapsulate(&outer, &mut rx), Err(IpsecError::Replayed { seq: 1 }));
    }

    #[test]
    fn wrong_keys_fail_integrity() {
        let mut tx = sa();
        let mut rx = SecurityAssociation::new(0x1001, 1, 2);
        let outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        assert_eq!(decapsulate(&outer, &mut rx), Err(IpsecError::BadIcv));
    }

    #[test]
    fn wrong_spi_rejected() {
        let mut tx = sa();
        let mut rx = SecurityAssociation::new(0x9999, tx.enc_key, tx.auth_key);
        let outer = encapsulate(&inner(), &mut tx, ip("100.0.0.1"), ip("100.0.0.2"));
        assert_eq!(decapsulate(&outer, &mut rx), Err(IpsecError::WrongSpi { got: 0x1001 }));
    }

    #[test]
    fn non_esp_packet_rejected() {
        let mut rx = sa();
        assert_eq!(decapsulate(&inner(), &mut rx), Err(IpsecError::NotEsp));
    }

    #[test]
    fn sequence_numbers_advance_per_packet() {
        let (mut tx, mut rx) = (sa(), sa());
        for want_seq in 1..=5u32 {
            let outer = encapsulate(&inner(), &mut tx, ip("1.1.1.1"), ip("2.2.2.2"));
            let Layer::Esp(e) = outer.layers()[1] else { panic!("esp layer") };
            assert_eq!(e.seq, want_seq);
            assert!(decapsulate(&outer, &mut rx).is_ok());
        }
    }

    #[test]
    fn cost_model_scales_with_size() {
        let m = CryptoCostModel::default();
        assert!(m.cost_ns(1500) > m.cost_ns(64));
        assert_eq!(m.cost_ns(0), m.per_packet_ns);
    }
}
