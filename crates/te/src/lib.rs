//! # netsim-te — MPLS traffic engineering
//!
//! The paper's §5: "MPLS uses layer three routing information to establish
//! forwarding tables and to allocate resources … Users can also control QoS
//! and general traffic flow more precisely to avoid congested, constrained
//! or disabled links." Plain IGP routing cannot do that (§2.2 — OSPF
//! exchanges no resource information); this crate adds what is missing:
//!
//! * [`cspf`] — constraint-based shortest path first: Dijkstra over only
//!   those links with enough *unreserved* bandwidth at the trunk's setup
//!   priority.
//! * [`trunk`] — trunk admission control: bandwidth bookkeeping per link
//!   and per priority, preemption of lower-priority trunks, release and
//!   re-optimization.
//!
//! Experiment Q3 routes two trunks across the classic "fish" topology: the
//! IGP piles both onto the shortest path and congests it; CSPF places the
//! second trunk on the longer path and both meet their SLAs.
//!
//! # Example
//!
//! ```
//! use netsim_routing::{LinkAttrs, Topology};
//! use netsim_te::{TeDomain, TrunkRequest};
//!
//! // The fish: a short and a long path between nodes 0 and 4.
//! let mut t = Topology::new(5);
//! let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
//! for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
//!     t.add_link(u, v, attrs);
//! }
//! let mut te = TeDomain::new(t);
//! let (t1, _) = te.signal(TrunkRequest::new(0, 4, 7_000_000)).unwrap();
//! let (t2, _) = te.signal(TrunkRequest::new(0, 4, 7_000_000)).unwrap();
//! assert_eq!(te.path(t1).unwrap(), &[0, 1, 4]);      // shortest
//! assert_eq!(te.path(t2).unwrap(), &[0, 2, 3, 4]);   // CSPF detours
//! ```

#![warn(missing_docs)]

pub mod cspf;
pub mod frr;
pub mod intserv;
pub mod trunk;

pub use cspf::cspf_path;
pub use frr::{cspf_path_excluding, BackupRoute, SrlgMap};
pub use intserv::{FlowId, FlowRequest, IntServDomain, RsvpError};
pub use trunk::{TeDomain, TeError, TeStats, TrunkId, TrunkRequest};
