//! Constraint-based SPF: min-cost path over links satisfying a bandwidth
//! constraint.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsim_routing::Topology;

/// Computes the min-IGP-cost path `src → dst` using only links for which
/// `usable(link_id) ≥ demand` holds (the caller encodes reservations and
/// priorities in `usable`). Ties break toward fewer hops, then lower node
/// ids, so results are deterministic.
///
/// Returns the node path including both endpoints, or `None` when no
/// feasible path exists.
pub fn cspf_path(
    topo: &Topology,
    src: usize,
    dst: usize,
    usable: &dyn Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let n = topo.node_count();
    if src >= n || dst >= n {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    // Lexicographic relaxation on (cost, hops, predecessor id).
    let mut best: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
    let mut pred: Vec<usize> = vec![usize::MAX; n];
    best[src] = (0, 0);
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, 0u32, src)));
    while let Some(Reverse((cost, hops, u))) = heap.pop() {
        if (cost, hops) > best[u] {
            continue;
        }
        if u == dst {
            break;
        }
        for (v, attrs, link) in topo.neighbors(u) {
            if !usable(link) {
                continue;
            }
            let cand = (cost.saturating_add(attrs.cost), hops + 1);
            if cand < best[v] || (cand == best[v] && u < pred[v]) {
                best[v] = cand;
                pred[v] = u;
                heap.push(Reverse((cand.0, cand.1, v)));
            }
        }
    }
    if best[dst].0 == u64::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut at = dst;
    while at != src {
        at = pred[at];
        path.push(at);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::LinkAttrs;

    fn attrs(cost: u64, cap: u64) -> LinkAttrs {
        LinkAttrs { cost, capacity_bps: cap }
    }

    /// 0 —1— 3 (cheap) and 0 —2— 3 (expensive detour).
    fn fish() -> Topology {
        let mut t = Topology::new(4);
        t.add_link(0, 1, attrs(1, 10)); // link 0
        t.add_link(1, 3, attrs(1, 10)); // link 1
        t.add_link(0, 2, attrs(2, 10)); // link 2
        t.add_link(2, 3, attrs(2, 10)); // link 3
        t
    }

    #[test]
    fn unconstrained_takes_shortest() {
        let t = fish();
        assert_eq!(cspf_path(&t, 0, 3, &|_| true), Some(vec![0, 1, 3]));
    }

    #[test]
    fn constraint_diverts_to_detour() {
        let t = fish();
        // Link 1 (1→3) is full: must take the detour.
        assert_eq!(cspf_path(&t, 0, 3, &|l| l != 1), Some(vec![0, 2, 3]));
    }

    #[test]
    fn no_feasible_path_returns_none() {
        let t = fish();
        assert_eq!(cspf_path(&t, 0, 3, &|l| l != 1 && l != 3), None);
    }

    #[test]
    fn degenerate_cases() {
        let t = fish();
        assert_eq!(cspf_path(&t, 2, 2, &|_| true), Some(vec![2]));
        assert_eq!(cspf_path(&t, 0, 9, &|_| true), None);
    }

    #[test]
    fn deterministic_on_equal_cost() {
        let mut t = Topology::new(4);
        t.add_link(0, 1, attrs(1, 1));
        t.add_link(1, 3, attrs(1, 1));
        t.add_link(0, 2, attrs(1, 1));
        t.add_link(2, 3, attrs(1, 1));
        // Both paths cost 2 with 2 hops: lower node id (1) wins.
        assert_eq!(cspf_path(&t, 0, 3, &|_| true), Some(vec![0, 1, 3]));
    }
}
