//! Fast-reroute link protection: SRLG bookkeeping and backup-route
//! computation.
//!
//! The paper's §5 promise is that MPLS lets the operator "avoid congested,
//! constrained or disabled links"; plain re-optimization only does that
//! *after* global reconvergence. Fast reroute closes the gap: for every
//! link `u → v` a protected trunk crosses, a *bypass* route from `u` to the
//! merge point `v` is precomputed, excluding the protected link and every
//! link sharing a risk group (SRLG) with it. When `u` detects the link
//! down, it pushes the bypass label over the label it would have sent and
//! forwards on — the merge point sees exactly the traffic it expected, just
//! one detour later.

use netsim_routing::Topology;

use crate::cspf::cspf_path;

/// Shared-risk link group membership: links riding the same conduit or
/// fiber fail together, so a backup must avoid the whole group, not just
/// the protected link.
#[derive(Clone, Debug, Default)]
pub struct SrlgMap {
    /// groups[link] = the risk-group ids the link belongs to.
    groups: Vec<Vec<u32>>,
}

impl SrlgMap {
    /// Creates an empty map for `link_count` links (no shared risks).
    pub fn new(link_count: usize) -> Self {
        SrlgMap { groups: vec![Vec::new(); link_count] }
    }

    /// Adds `link` to risk group `group`.
    pub fn assign(&mut self, link: usize, group: u32) {
        if !self.groups[link].contains(&group) {
            self.groups[link].push(group);
        }
    }

    /// The risk groups `link` belongs to.
    pub fn groups_of(&self, link: usize) -> &[u32] {
        self.groups.get(link).map_or(&[], Vec::as_slice)
    }

    /// Whether two links share fate: the same link, or a common risk group.
    pub fn share_risk(&self, a: usize, b: usize) -> bool {
        a == b || self.groups_of(a).iter().any(|g| self.groups_of(b).contains(g))
    }
}

/// Computes a bypass path `src → dst` that avoids `protected` and every
/// link sharing an SRLG with it, on top of the caller's `usable` filter.
/// This is the CSPF exclusion primitive both trunk protection and
/// link-level protection build on.
pub fn cspf_path_excluding(
    topo: &Topology,
    src: usize,
    dst: usize,
    srlg: &SrlgMap,
    protected: usize,
    usable: &dyn Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    cspf_path(topo, src, dst, &|l| usable(l) && !srlg.share_risk(l, protected))
}

/// A precomputed backup explicit route protecting one link of a trunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackupRoute {
    /// The topology link this bypass protects.
    pub protected_link: usize,
    /// Node path from the upstream end of the protected link to the merge
    /// point (its downstream end), avoiding the link and its SRLG peers.
    pub path: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::LinkAttrs;

    /// The fish: short path 0-1-4 (links 0,1), long path 0-2-3-4 (2,3,4).
    fn fish() -> Topology {
        let mut t = Topology::new(5);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
        for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
            t.add_link(u, v, attrs);
        }
        t
    }

    #[test]
    fn exclusion_routes_around_the_protected_link() {
        let t = fish();
        let srlg = SrlgMap::new(t.link_count());
        // Protecting 1→4 (link 1): bypass must reach 4 the long way round.
        let p = cspf_path_excluding(&t, 1, 4, &srlg, 1, &|_| true).unwrap();
        assert_eq!(p, vec![1, 0, 2, 3, 4]);
    }

    #[test]
    fn srlg_peers_are_excluded_with_the_protected_link() {
        let t = fish();
        let mut srlg = SrlgMap::new(t.link_count());
        // Links 1 (1→4) and 4 (3→4) ride the same conduit into node 4.
        srlg.assign(1, 9);
        srlg.assign(4, 9);
        assert!(srlg.share_risk(1, 4));
        assert!(!srlg.share_risk(1, 3));
        // With the whole group down, node 4 is unreachable from 1.
        assert_eq!(cspf_path_excluding(&t, 1, 4, &srlg, 1, &|_| true), None);
    }

    #[test]
    fn usable_filter_composes_with_exclusion() {
        let t = fish();
        let srlg = SrlgMap::new(t.link_count());
        // Protect link 1, and link 3 is administratively unusable.
        assert_eq!(cspf_path_excluding(&t, 1, 4, &srlg, 1, &|l| l != 3), None);
    }
}
