//! Trunk admission control: per-link bandwidth bookkeeping with eight
//! setup/hold priority levels and preemption, in the RSVP-TE style.

use netsim_routing::Topology;

use crate::cspf::cspf_path;
use crate::frr::{cspf_path_excluding, BackupRoute, SrlgMap};

/// Number of priority levels (0 = most important, 7 = least).
pub const PRIORITIES: usize = 8;

/// Identifies an admitted trunk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TrunkId(pub usize);

/// A request to establish a traffic trunk.
#[derive(Clone, Debug)]
pub struct TrunkRequest {
    /// Ingress node.
    pub src: usize,
    /// Egress node.
    pub dst: usize,
    /// Bandwidth to reserve, bits/s.
    pub demand_bps: u64,
    /// Priority at which the trunk competes for bandwidth when signalled
    /// (may preempt reservations held at numerically greater priority).
    pub setup_priority: u8,
    /// Priority at which the reservation is held afterwards.
    pub hold_priority: u8,
    /// Pin the trunk to this exact node path instead of running CSPF.
    pub explicit_path: Option<Vec<usize>>,
}

impl TrunkRequest {
    /// A best-effort-priority trunk (setup=hold=7).
    pub fn new(src: usize, dst: usize, demand_bps: u64) -> Self {
        TrunkRequest {
            src,
            dst,
            demand_bps,
            setup_priority: 7,
            hold_priority: 7,
            explicit_path: None,
        }
    }

    /// Sets both setup and hold priority.
    pub fn priority(mut self, p: u8) -> Self {
        assert!((p as usize) < PRIORITIES);
        self.setup_priority = p;
        self.hold_priority = p;
        self
    }

    /// Pins an explicit route.
    pub fn via(mut self, path: Vec<usize>) -> Self {
        self.explicit_path = Some(path);
        self
    }
}

/// Why a trunk could not be admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TeError {
    /// No path satisfies the bandwidth constraint at the setup priority.
    NoFeasiblePath,
    /// The explicit path is not a connected path in the topology.
    BadExplicitPath,
    /// The explicit path lacks bandwidth at the setup priority.
    ExplicitPathFull {
        /// First saturated link on the path.
        link: usize,
    },
}

#[derive(Clone, Debug)]
struct Trunk {
    req: TrunkRequest,
    path: Vec<usize>,
    links: Vec<usize>,
    /// Fast-reroute bypasses, one per protected link of `path` (empty
    /// until [`TeDomain::protect_trunk`] runs; recompute after
    /// re-optimization moves the trunk).
    backups: Vec<BackupRoute>,
}

/// Control-plane counters of one [`TeDomain`]: how often admission,
/// preemption, protection and re-optimization actually fired. Exported into
/// the observability snapshot so an experiment can report signalling churn
/// next to the data-plane numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TeStats {
    /// Trunks admitted (successful [`TeDomain::signal`] calls, including
    /// re-placements during re-optimization).
    pub admitted: u64,
    /// Signalling attempts rejected (no feasible path / bad or full
    /// explicit path).
    pub rejected: u64,
    /// Trunks torn down to make room for higher-priority arrivals.
    pub preempted: u64,
    /// Re-optimization passes run.
    pub reoptimized: u64,
    /// Links for which [`TeDomain::protect_trunk`] found a risk-disjoint
    /// bypass, cumulative.
    pub protected_links: u64,
}

/// The TE bandwidth broker for one backbone.
pub struct TeDomain {
    topo: Topology,
    /// reserved[link][prio] = bits/s held at that priority.
    reserved: Vec<[u64; PRIORITIES]>,
    trunks: Vec<Option<Trunk>>,
    srlg: SrlgMap,
    stats: TeStats,
}

impl TeDomain {
    /// Creates a TE domain over a topology (capacities come from
    /// [`netsim_routing::LinkAttrs::capacity_bps`]).
    pub fn new(topo: Topology) -> Self {
        let links = topo.link_count();
        TeDomain {
            topo,
            reserved: vec![[0; PRIORITIES]; links],
            trunks: Vec::new(),
            srlg: SrlgMap::new(links),
            stats: TeStats::default(),
        }
    }

    /// Signalling counters accumulated so far.
    pub fn stats(&self) -> TeStats {
        self.stats
    }

    /// Declares that `link` belongs to shared-risk group `group`; backup
    /// computation avoids the whole group, not just the protected link.
    pub fn assign_srlg(&mut self, link: usize, group: u32) {
        assert!(link < self.topo.link_count(), "no such link");
        self.srlg.assign(link, group);
    }

    /// The SRLG membership map.
    pub fn srlg(&self) -> &SrlgMap {
        &self.srlg
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Bandwidth on `link` still available to a trunk signalled at
    /// priority `prio` (reservations at numerically greater hold priority
    /// are preemptable and therefore count as available).
    pub fn available_bps(&self, link: usize, prio: u8) -> u64 {
        let cap = self.topo.link(link).2.capacity_bps;
        let held: u64 = self.reserved[link][..=prio as usize].iter().sum();
        cap.saturating_sub(held)
    }

    /// Total reserved bandwidth on a link, all priorities.
    pub fn reserved_bps(&self, link: usize) -> u64 {
        self.reserved[link].iter().sum()
    }

    /// Reservation-based utilization of a link.
    pub fn utilization(&self, link: usize) -> f64 {
        self.reserved_bps(link) as f64 / self.topo.link(link).2.capacity_bps as f64
    }

    /// Bandwidth held on `link` at exactly priority `prio` (the static
    /// verifier reconciles this ledger against the admitted trunks).
    pub fn reserved_at(&self, link: usize, prio: u8) -> u64 {
        self.reserved[link][prio as usize]
    }

    /// Iterates over admitted trunks: id, request, and the link ids of
    /// the reserved path.
    pub fn trunk_entries(&self) -> impl Iterator<Item = (TrunkId, &TrunkRequest, &[usize])> + '_ {
        self.trunks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (TrunkId(i), &t.req, t.links.as_slice())))
    }

    /// Deliberately skews the reservation ledger — a fault-injection hook
    /// for the verifier's negative tests (models a lost teardown or a
    /// double booking). Not used by any forwarding path.
    pub fn corrupt_reservation_for_test(&mut self, link: usize, prio: u8, delta_bps: u64) {
        self.reserved[link][prio as usize] += delta_bps;
    }

    /// The node path of an admitted trunk.
    pub fn path(&self, id: TrunkId) -> Option<&[usize]> {
        self.trunks.get(id.0)?.as_ref().map(|t| t.path.as_slice())
    }

    /// Number of currently admitted trunks.
    pub fn active_trunks(&self) -> usize {
        self.trunks.iter().flatten().count()
    }

    /// Attempts to admit a trunk. On success returns its id and the ids of
    /// any lower-priority trunks preempted to make room.
    pub fn signal(&mut self, req: TrunkRequest) -> Result<(TrunkId, Vec<TrunkId>), TeError> {
        assert!((req.setup_priority as usize) < PRIORITIES);
        assert!(
            req.hold_priority >= req.setup_priority,
            "hold priority must not outrank setup priority (priority inversion)"
        );
        let path = match &req.explicit_path {
            Some(p) => {
                if let Err(e) = self.validate_explicit(p, req.demand_bps, req.setup_priority) {
                    self.stats.rejected += 1;
                    return Err(e);
                }
                p.clone()
            }
            None => {
                let prio = req.setup_priority;
                let demand = req.demand_bps;
                let usable = |l: usize| self.available_bps(l, prio) >= demand;
                match cspf_path(&self.topo, req.src, req.dst, &usable) {
                    Some(p) => p,
                    None => {
                        self.stats.rejected += 1;
                        return Err(TeError::NoFeasiblePath);
                    }
                }
            }
        };
        let links = self.links_of(&path);

        // Preempt until the demand physically fits on every link.
        let mut preempted = Vec::new();
        for &l in &links {
            loop {
                let cap = self.topo.link(l).2.capacity_bps;
                if self.reserved_bps(l) + req.demand_bps <= cap {
                    break;
                }
                let victim = self
                    .victim_on(l, req.setup_priority)
                    .expect("CSPF admitted the link, so enough must be preemptable");
                self.release(victim);
                preempted.push(victim);
            }
        }

        for &l in &links {
            self.reserved[l][req.hold_priority as usize] += req.demand_bps;
        }
        let id = TrunkId(self.trunks.len());
        self.trunks.push(Some(Trunk { req, path, links, backups: Vec::new() }));
        self.stats.admitted += 1;
        self.stats.preempted += preempted.len() as u64;
        Ok((id, preempted))
    }

    /// Computes a fast-reroute bypass for every link of an admitted
    /// trunk's path: from the link's upstream node to its downstream node
    /// (the merge point), excluding the protected link and every link
    /// sharing an SRLG with it — a conduit cut must not take primary and
    /// bypass down together. Returns how many of the path's links could be
    /// protected; links with no risk-disjoint detour are left unprotected.
    /// Bypasses reserve no bandwidth (the standard zero-bandwidth bypass
    /// model: protection is transient, and moving the trunk for good is
    /// the re-optimization pass's job).
    ///
    /// # Panics
    /// Panics if `id` does not name an admitted trunk.
    pub fn protect_trunk(&mut self, id: TrunkId) -> usize {
        let t = self.trunks[id.0].as_ref().expect("protecting an unknown trunk");
        let path = t.path.clone();
        let links = t.links.clone();
        let mut backups = Vec::new();
        for (w, &protected) in path.windows(2).zip(&links) {
            let bypass =
                cspf_path_excluding(&self.topo, w[0], w[1], &self.srlg, protected, &|_| true);
            if let Some(p) = bypass {
                backups.push(BackupRoute { protected_link: protected, path: p });
            }
        }
        let n = backups.len();
        self.trunks[id.0].as_mut().expect("checked above").backups = backups;
        self.stats.protected_links += n as u64;
        n
    }

    /// The computed backup routes of a trunk (empty before
    /// [`TeDomain::protect_trunk`], or when no link had a disjoint detour).
    pub fn backups(&self, id: TrunkId) -> &[BackupRoute] {
        self.trunks.get(id.0).and_then(|t| t.as_ref()).map_or(&[], |t| t.backups.as_slice())
    }

    /// Overwrites one backup route — a fault-injection hook for the static
    /// verifier's negative tests (models a stale bypass surviving a
    /// re-optimization that moved the primary onto it). Not used by any
    /// forwarding path.
    pub fn corrupt_backup_for_test(&mut self, id: TrunkId, backup_idx: usize, path: Vec<usize>) {
        self.trunks[id.0].as_mut().expect("unknown trunk").backups[backup_idx].path = path;
    }

    /// Releases a trunk's reservation. Idempotent.
    pub fn release(&mut self, id: TrunkId) {
        let Some(slot) = self.trunks.get_mut(id.0) else {
            return;
        };
        let Some(t) = slot.take() else {
            return;
        };
        for &l in &t.links {
            let r = &mut self.reserved[l][t.req.hold_priority as usize];
            *r = r.saturating_sub(t.req.demand_bps);
        }
    }

    /// Tears down and re-signals every trunk in admission order — the
    /// periodic re-optimization pass operators run after topology changes.
    /// Returns trunk ids that could no longer be placed. Re-placement
    /// drops any fast-reroute backups (the primary may have moved); call
    /// [`TeDomain::protect_trunk`] again afterwards.
    pub fn reoptimize(&mut self) -> Vec<TrunkId> {
        self.stats.reoptimized += 1;
        let ids: Vec<TrunkId> =
            (0..self.trunks.len()).filter(|&i| self.trunks[i].is_some()).map(TrunkId).collect();
        let mut failed = Vec::new();
        for id in ids {
            let req = self.trunks[id.0].as_ref().expect("listed above").req.clone();
            self.release(id);
            match self.signal(req) {
                Ok((new_id, _)) => {
                    // Keep the original slot id stable for callers.
                    let t = self.trunks[new_id.0].take();
                    self.trunks[id.0] = t;
                    self.trunks.truncate(self.trunks.len().saturating_sub(1));
                }
                Err(_) => failed.push(id),
            }
        }
        failed
    }

    fn validate_explicit(&self, path: &[usize], demand: u64, prio: u8) -> Result<(), TeError> {
        if path.len() < 2 {
            return Err(TeError::BadExplicitPath);
        }
        for w in path.windows(2) {
            let Some(link) =
                self.topo.neighbors(w[0]).find(|&(peer, _, _)| peer == w[1]).map(|(_, _, l)| l)
            else {
                return Err(TeError::BadExplicitPath);
            };
            if self.available_bps(link, prio) < demand {
                return Err(TeError::ExplicitPathFull { link });
            }
        }
        Ok(())
    }

    fn links_of(&self, path: &[usize]) -> Vec<usize> {
        path.windows(2)
            .map(|w| {
                self.topo
                    .neighbors(w[0])
                    .find(|&(peer, _, _)| peer == w[1])
                    .map(|(_, _, l)| l)
                    .expect("path follows topology links")
            })
            .collect()
    }

    /// Lowest-importance preemptable trunk crossing `l` (hold priority
    /// numerically greater than `setup_prio`), largest demand first.
    fn victim_on(&self, l: usize, setup_prio: u8) -> Option<TrunkId> {
        self.trunks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i, t)))
            .filter(|(_, t)| t.links.contains(&l) && t.req.hold_priority > setup_prio)
            .max_by_key(|(_, t)| (t.req.hold_priority, t.req.demand_bps))
            .map(|(i, _)| TrunkId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::LinkAttrs;

    fn attrs(cost: u64, cap: u64) -> LinkAttrs {
        LinkAttrs { cost, capacity_bps: cap }
    }

    /// The fish: short path 0-1-4, long path 0-2-3-4, both 10 Mb/s.
    fn fish() -> Topology {
        let mut t = Topology::new(5);
        t.add_link(0, 1, attrs(1, 10_000_000)); // 0
        t.add_link(1, 4, attrs(1, 10_000_000)); // 1
        t.add_link(0, 2, attrs(1, 10_000_000)); // 2
        t.add_link(2, 3, attrs(1, 10_000_000)); // 3
        t.add_link(3, 4, attrs(1, 10_000_000)); // 4
        t
    }

    #[test]
    fn second_trunk_diverts_around_reservation() {
        let mut te = TeDomain::new(fish());
        let (a, pre) = te.signal(TrunkRequest::new(0, 4, 7_000_000)).unwrap();
        assert!(pre.is_empty());
        assert_eq!(te.path(a).unwrap(), &[0, 1, 4]);
        // 7 of 10 Mb/s taken: a second 7 Mb/s trunk must take the long way.
        let (b, pre) = te.signal(TrunkRequest::new(0, 4, 7_000_000)).unwrap();
        assert!(pre.is_empty());
        assert_eq!(te.path(b).unwrap(), &[0, 2, 3, 4]);
        assert!(te.utilization(0) > 0.69 && te.utilization(2) > 0.69);
    }

    #[test]
    fn admission_fails_when_everything_is_full() {
        let mut te = TeDomain::new(fish());
        te.signal(TrunkRequest::new(0, 4, 9_000_000)).unwrap();
        te.signal(TrunkRequest::new(0, 4, 9_000_000)).unwrap();
        assert_eq!(te.signal(TrunkRequest::new(0, 4, 2_000_000)), Err(TeError::NoFeasiblePath));
        // A smaller trunk still fits.
        assert!(te.signal(TrunkRequest::new(0, 4, 1_000_000)).is_ok());
    }

    #[test]
    fn high_priority_preempts_low() {
        let mut te = TeDomain::new(fish());
        let (low1, _) = te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(7)).unwrap();
        let (_low2, _) = te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(7)).unwrap();
        // Priority-0 trunk preempts one of them.
        let (high, pre) = te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(0)).unwrap();
        assert_eq!(pre.len(), 1);
        assert_eq!(pre[0], low1, "victim is on the chosen (shortest) path");
        assert_eq!(te.path(high).unwrap(), &[0, 1, 4]);
        assert!(te.path(low1).is_none(), "preempted trunk is gone");
        assert_eq!(te.active_trunks(), 2);
    }

    #[test]
    fn low_priority_cannot_preempt_high() {
        let mut te = TeDomain::new(fish());
        te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(0)).unwrap();
        te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(0)).unwrap();
        assert_eq!(
            te.signal(TrunkRequest::new(0, 4, 5_000_000).priority(7)),
            Err(TeError::NoFeasiblePath)
        );
    }

    #[test]
    fn explicit_path_admission_and_rejection() {
        let mut te = TeDomain::new(fish());
        let (t, _) = te.signal(TrunkRequest::new(0, 4, 1_000_000).via(vec![0, 2, 3, 4])).unwrap();
        assert_eq!(te.path(t).unwrap(), &[0, 2, 3, 4]);
        // Disconnected explicit path.
        assert_eq!(
            te.signal(TrunkRequest::new(0, 4, 1_000_000).via(vec![0, 3, 4])),
            Err(TeError::BadExplicitPath)
        );
        // Saturate link 2 (0→2), then an explicit route over it must fail.
        te.signal(TrunkRequest::new(0, 2, 9_000_000)).unwrap();
        assert_eq!(
            te.signal(TrunkRequest::new(0, 4, 2_000_000).via(vec![0, 2, 3, 4])),
            Err(TeError::ExplicitPathFull { link: 2 })
        );
    }

    #[test]
    fn release_frees_bandwidth() {
        let mut te = TeDomain::new(fish());
        let (a, _) = te.signal(TrunkRequest::new(0, 4, 9_000_000)).unwrap();
        assert_eq!(te.reserved_bps(0), 9_000_000);
        te.release(a);
        assert_eq!(te.reserved_bps(0), 0);
        te.release(a); // idempotent
        let (b, _) = te.signal(TrunkRequest::new(0, 4, 9_000_000)).unwrap();
        assert_eq!(te.path(b).unwrap(), &[0, 1, 4], "shortest path available again");
    }

    #[test]
    fn protect_trunk_computes_disjoint_bypasses() {
        let mut te = TeDomain::new(fish());
        let (a, _) = te.signal(TrunkRequest::new(0, 4, 1_000_000)).unwrap();
        assert_eq!(te.path(a).unwrap(), &[0, 1, 4]);
        assert!(te.backups(a).is_empty(), "no protection before protect_trunk");
        assert_eq!(te.protect_trunk(a), 2, "both links of the short path protectable");
        let backups = te.backups(a);
        assert_eq!(backups[0].protected_link, 0);
        assert_eq!(backups[0].path, vec![0, 2, 3, 4, 1], "bypass merges at node 1");
        assert_eq!(backups[1].protected_link, 1);
        assert_eq!(backups[1].path, vec![1, 0, 2, 3, 4], "bypass merges at node 4");
    }

    #[test]
    fn srlg_blocks_fate_shared_bypass() {
        let mut te = TeDomain::new(fish());
        // Short and long approaches to node 4 ride one conduit.
        te.assign_srlg(1, 7);
        te.assign_srlg(4, 7);
        let (a, _) = te.signal(TrunkRequest::new(0, 4, 1_000_000)).unwrap();
        // Link 0 (0→1) still has a risk-disjoint detour; link 1 (1→4)
        // does not — its only alternative shares the conduit.
        assert_eq!(te.protect_trunk(a), 1);
        assert_eq!(te.backups(a)[0].protected_link, 0);
    }

    #[test]
    fn reoptimize_drops_stale_backups() {
        let mut te = TeDomain::new(fish());
        let (a, _) = te.signal(TrunkRequest::new(0, 4, 1_000_000)).unwrap();
        te.protect_trunk(a);
        assert!(!te.backups(a).is_empty());
        assert!(te.reoptimize().is_empty());
        assert!(te.backups(a).is_empty(), "protection must be recomputed after reopt");
    }

    #[test]
    fn stats_track_signalling_outcomes() {
        let mut te = TeDomain::new(fish());
        te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(7)).unwrap();
        te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(7)).unwrap();
        assert_eq!(
            te.signal(TrunkRequest::new(0, 4, 5_000_000).priority(7)),
            Err(TeError::NoFeasiblePath)
        );
        let (high, pre) = te.signal(TrunkRequest::new(0, 4, 9_000_000).priority(0)).unwrap();
        assert_eq!(pre.len(), 1);
        te.protect_trunk(high);
        te.reoptimize();
        let s = te.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.preempted, 1);
        assert_eq!(s.reoptimized, 1);
        assert!(s.protected_links >= 1);
        // 3 direct admissions + the re-placements reoptimize performed.
        assert!(s.admitted >= 3, "admitted={}", s.admitted);
    }

    #[test]
    fn utilization_accounting() {
        let mut te = TeDomain::new(fish());
        te.signal(TrunkRequest::new(0, 1, 2_500_000)).unwrap();
        assert!((te.utilization(0) - 0.25).abs() < 1e-9);
        assert_eq!(te.utilization(1), 0.0);
    }
}
