//! IntServ/RSVP per-flow reservations — the road the paper declines to
//! take (§2.2).
//!
//! "A number of activities, including work on the Resource Reservation
//! Protocol (RSVP) have been directed at adding QoS selectivity, but many
//! carriers and users are uncomfortable with individually selectable QoS
//! … users question the size of the administration task."
//!
//! This module implements the per-flow model faithfully enough to price
//! it: every flow reserves along its path (PATH + RESV message pair per
//! hop), every router on the path holds per-flow soft state, and soft
//! state must be refreshed every 30 s. Experiment **S1** tabulates that
//! against DiffServ's fixed eight-classes-per-interface state.

use std::collections::HashMap;

use netsim_routing::Topology;

/// RSVP soft-state refresh period (RFC 2205 default R = 30 s).
pub const REFRESH_PERIOD_SECS: f64 = 30.0;

/// Identifies an admitted flow reservation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowId(pub u64);

/// One per-flow reservation request.
#[derive(Clone, Debug)]
pub struct FlowRequest {
    /// Flow identity (stands in for the RSVP session + sender template).
    pub id: FlowId,
    /// Ingress node.
    pub src: usize,
    /// Egress node.
    pub dst: usize,
    /// Reserved rate, bits/s (the TSpec).
    pub rate_bps: u64,
}

/// Why a reservation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RsvpError {
    /// No route between the endpoints.
    NoRoute,
    /// A link on the path lacks unreserved bandwidth (admission control).
    AdmissionFailed {
        /// The saturated link.
        link: usize,
    },
    /// Duplicate flow id.
    DuplicateFlow,
}

struct FlowState {
    path: Vec<usize>,
    links: Vec<usize>,
    rate_bps: u64,
}

/// An IntServ domain: per-flow admission control and soft-state accounting
/// over a topology.
pub struct IntServDomain<'a> {
    topo: &'a Topology,
    next_hop: Box<dyn Fn(usize, usize) -> Option<usize> + 'a>,
    reserved: Vec<u64>,
    flows: HashMap<FlowId, FlowState>,
    /// Per-node count of flow soft-state entries (the §2.2 metric).
    pub per_node_state: Vec<u64>,
    /// Signalling messages sent (PATH + RESV per hop per setup/teardown).
    pub messages: u64,
}

impl<'a> IntServDomain<'a> {
    /// Creates a domain over `topo`; `next_hop(u, dst)` supplies routing.
    pub fn new(topo: &'a Topology, next_hop: impl Fn(usize, usize) -> Option<usize> + 'a) -> Self {
        IntServDomain {
            reserved: vec![0; topo.link_count()],
            per_node_state: vec![0; topo.node_count()],
            flows: HashMap::new(),
            messages: 0,
            next_hop: Box::new(next_hop),
            topo,
        }
    }

    fn path_of(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let mut path = vec![src];
        let mut at = src;
        while at != dst {
            at = (self.next_hop)(at, dst)?;
            path.push(at);
            if path.len() > self.topo.node_count() {
                return None;
            }
        }
        Some(path)
    }

    fn links_of(&self, path: &[usize]) -> Vec<usize> {
        path.windows(2)
            .map(|w| {
                self.topo
                    .neighbors(w[0])
                    .find(|&(peer, _, _)| peer == w[1])
                    .map(|(_, _, l)| l)
                    .expect("path follows links")
            })
            .collect()
    }

    /// Attempts to admit a per-flow reservation (PATH downstream, RESV
    /// upstream, admission checked per link).
    pub fn reserve(&mut self, req: FlowRequest) -> Result<(), RsvpError> {
        if self.flows.contains_key(&req.id) {
            return Err(RsvpError::DuplicateFlow);
        }
        let path = self.path_of(req.src, req.dst).ok_or(RsvpError::NoRoute)?;
        let links = self.links_of(&path);
        // PATH messages travel the whole path even if RESV then fails.
        self.messages += (path.len() - 1) as u64;
        for &l in &links {
            if self.reserved[l] + req.rate_bps > self.topo.link(l).2.capacity_bps {
                return Err(RsvpError::AdmissionFailed { link: l });
            }
        }
        self.messages += (path.len() - 1) as u64; // RESV back upstream
        for &l in &links {
            self.reserved[l] += req.rate_bps;
        }
        for &u in &path {
            self.per_node_state[u] += 1;
        }
        self.flows.insert(req.id, FlowState { path, links, rate_bps: req.rate_bps });
        Ok(())
    }

    /// Tears a reservation down (ResvTear along the path).
    pub fn teardown(&mut self, id: FlowId) {
        let Some(f) = self.flows.remove(&id) else {
            return;
        };
        self.messages += (f.path.len() - 1) as u64;
        for &l in &f.links {
            self.reserved[l] -= f.rate_bps;
        }
        for &u in &f.path {
            self.per_node_state[u] -= 1;
        }
    }

    /// Admitted flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The largest per-router soft-state table in the domain.
    pub fn max_node_state(&self) -> u64 {
        self.per_node_state.iter().copied().max().unwrap_or(0)
    }

    /// Soft-state refresh load: messages per second across the domain
    /// (each flow refreshes PATH and RESV over every hop each period).
    pub fn refresh_messages_per_sec(&self) -> f64 {
        let hop_msgs: u64 = self.flows.values().map(|f| 2 * (f.path.len() as u64 - 1)).sum();
        hop_msgs as f64 / REFRESH_PERIOD_SECS
    }

    /// Reserved bandwidth on a link.
    pub fn reserved_bps(&self, link: usize) -> u64 {
        self.reserved[link]
    }
}

/// The DiffServ comparison point: classes of state per interface,
/// independent of flow count (the per-VPN/per-class model the paper's §2.2
/// recommends).
pub const DIFFSERV_CLASSES_PER_IFACE: u64 = 8;

/// DiffServ state at a node: classes × interfaces, flat in flows.
pub fn diffserv_node_state(topo: &Topology, node: usize) -> u64 {
    DIFFSERV_CLASSES_PER_IFACE * topo.degree(node) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::{Igp, LinkAttrs};

    fn line(n: usize, mbps: u64) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_link(i, i + 1, LinkAttrs { cost: 1, capacity_bps: mbps * 1_000_000 });
        }
        t
    }

    #[test]
    fn reservations_accumulate_state_on_the_path() {
        let t = line(4, 100);
        let igp = Igp::converge(&t);
        let mut d = IntServDomain::new(&t, |u, v| igp.next_hop(u, v));
        for i in 0..10 {
            d.reserve(FlowRequest { id: FlowId(i), src: 0, dst: 3, rate_bps: 1_000_000 }).unwrap();
        }
        assert_eq!(d.flow_count(), 10);
        // Every node on the path holds all 10 flows' state.
        assert_eq!(d.per_node_state, vec![10, 10, 10, 10]);
        assert_eq!(d.reserved_bps(1), 10_000_000);
        // Setup cost: (PATH + RESV) × 3 hops × 10 flows.
        assert_eq!(d.messages, 60);
        // Refresh: 2 × 3 hops × 10 flows / 30 s = 2/s.
        assert!((d.refresh_messages_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let t = line(3, 10);
        let igp = Igp::converge(&t);
        let mut d = IntServDomain::new(&t, |u, v| igp.next_hop(u, v));
        for i in 0..10 {
            d.reserve(FlowRequest { id: FlowId(i), src: 0, dst: 2, rate_bps: 1_000_000 }).unwrap();
        }
        let err = d
            .reserve(FlowRequest { id: FlowId(99), src: 0, dst: 2, rate_bps: 1_000_000 })
            .unwrap_err();
        assert!(matches!(err, RsvpError::AdmissionFailed { .. }));
        // State unchanged by the failed attempt.
        assert_eq!(d.flow_count(), 10);
        assert_eq!(d.per_node_state[1], 10);
    }

    #[test]
    fn teardown_releases_everything() {
        let t = line(3, 10);
        let igp = Igp::converge(&t);
        let mut d = IntServDomain::new(&t, |u, v| igp.next_hop(u, v));
        d.reserve(FlowRequest { id: FlowId(1), src: 0, dst: 2, rate_bps: 5_000_000 }).unwrap();
        d.teardown(FlowId(1));
        assert_eq!(d.flow_count(), 0);
        assert_eq!(d.max_node_state(), 0);
        assert_eq!(d.reserved_bps(0), 0);
        d.teardown(FlowId(1)); // idempotent
    }

    #[test]
    fn duplicate_and_unroutable_flows_rejected() {
        let mut t = line(2, 10);
        let isolated = t.add_node();
        let igp = Igp::converge(&t);
        let mut d = IntServDomain::new(&t, |u, v| igp.next_hop(u, v));
        d.reserve(FlowRequest { id: FlowId(1), src: 0, dst: 1, rate_bps: 1 }).unwrap();
        assert_eq!(
            d.reserve(FlowRequest { id: FlowId(1), src: 0, dst: 1, rate_bps: 1 }),
            Err(RsvpError::DuplicateFlow)
        );
        assert_eq!(
            d.reserve(FlowRequest { id: FlowId(2), src: 0, dst: isolated, rate_bps: 1 }),
            Err(RsvpError::NoRoute)
        );
    }

    #[test]
    fn diffserv_state_is_flat() {
        let t = line(4, 100);
        // Interior node: 2 interfaces × 8 classes.
        assert_eq!(diffserv_node_state(&t, 1), 16);
        assert_eq!(diffserv_node_state(&t, 0), 8);
    }
}
