//! Vendored, dependency-free subset of the `criterion` bench harness.
//!
//! Provides the same authoring API the workspace benches use
//! (`criterion_group!`, `benchmark_group`, `bench_with_input`, `iter`, ...)
//! with a simple calibrated-timing backend: each benchmark is warmed up,
//! then run for a fixed wall-clock budget, and the mean per-iteration time
//! (plus optional throughput) is printed to stdout. No plotting, no
//! statistics beyond the mean — enough to compare runs by eye offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, used to derive rate output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendered inline.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { full: format!("{}/{parameter}", name.into()) }
    }

    /// Creates an id from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { full: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Per-iteration timing loop handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch-size calibration: aim for batches >= ~1ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= (1 << 20) {
                break;
            }
            batch *= 8;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.total += start.elapsed();
            self.iters += batch;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored; accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Ignored; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher { total: Duration::ZERO, iters: 0, budget: self.criterion.budget };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                b.total.as_nanos() as f64 / b.iters as f64
            }
        };
        let rate = match (self.throughput, mean_ns > 0.0) {
            (Some(Throughput::Elements(n)), true) => {
                #[allow(clippy::cast_precision_loss)]
                let eps = n as f64 * 1e9 / mean_ns;
                format!("  {eps:.3e} elem/s")
            }
            (Some(Throughput::Bytes(n)), true) => {
                #[allow(clippy::cast_precision_loss)]
                let bps = n as f64 * 1e9 / mean_ns;
                format!("  {:.1} MiB/s", bps / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean_ns:.1} ns/iter ({} iters){rate}", self.name, b.iters);
    }

    /// Finishes the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// The top-level harness handle passed to each `criterion_group!` target.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep full `cargo bench` runs fast; CRITERION_BUDGET_MS overrides.
        let ms =
            std::env::var("CRITERION_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
        Self { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group entry point (generated by `criterion_group!`)."]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
