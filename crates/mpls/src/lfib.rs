//! The label forwarding information base: ILM, NHLFE and FTN.
//!
//! The ILM is a dense vector indexed by incoming label, so the per-packet
//! cost of label-switched forwarding is a bounds-checked array read — the
//! speed claim of the paper's §3 ("forward traffic based on information in
//! the labels instead of having to inspect the various fields deep within
//! each and every packet"), which bench `lpm_vs_label` quantifies against
//! the LPM trie.

use netsim_net::{Layer, MplsLabel, Packet};

/// The label operation of an NHLFE.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LabelOp {
    /// Replace the top label with `0.0` (value set by the entry).
    Swap(u32),
    /// Pop the top label (penultimate hop or egress).
    Pop,
    /// Swap the top label and push one more above it (used when an LSP is
    /// nested into another tunnel, e.g. inter-provider stitching).
    SwapPush {
        /// Replacement for the current top label.
        swap: u32,
        /// Additional label pushed above it.
        push: u32,
    },
}

/// Next-hop label forwarding entry: what to do with a matched packet and
/// where to send it. `out_iface` is an opaque interface index interpreted
/// by the owning router.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Nhlfe {
    /// The label-stack operation.
    pub op: LabelOp,
    /// Egress interface index.
    pub out_iface: usize,
}

/// Ingress mapping for one FEC: labels to push and the egress interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FtnEntry {
    /// Labels to push, bottom first (tunnel label last ⇒ outermost).
    pub push: Vec<u32>,
    /// Egress interface index.
    pub out_iface: usize,
}

/// Result of running a packet through [`Lfib::forward`].
#[derive(Debug, PartialEq, Eq)]
pub enum LfibVerdict {
    /// Forward out `out_iface` (label ops already applied to the packet).
    Forward {
        /// Interface to transmit on.
        out_iface: usize,
    },
    /// The stack emptied at this LSR: deliver the inner packet locally
    /// (egress processing, e.g. VPN label handling or IP forwarding).
    PoppedToLocal,
    /// No ILM entry for the top label: drop (counts as a misrouting bug in
    /// tests).
    NoEntry,
    /// MPLS TTL expired: drop.
    TtlExpired,
    /// The packet carried no label.
    NotLabeled,
}

/// The label forwarding table of one LSR.
#[derive(Clone, Debug, Default)]
pub struct Lfib {
    ilm: Vec<Option<Nhlfe>>,
    entries: usize,
}

impl Lfib {
    /// Creates an empty LFIB.
    pub fn new() -> Self {
        Lfib::default()
    }

    /// Installs an ILM entry for `in_label`.
    pub fn install(&mut self, in_label: u32, nhlfe: Nhlfe) {
        let idx = in_label as usize;
        if idx >= self.ilm.len() {
            self.ilm.resize(idx + 1, None);
        }
        if self.ilm[idx].replace(nhlfe).is_none() {
            self.entries += 1;
        }
    }

    /// Removes the ILM entry for `in_label`, returning it if present.
    pub fn remove(&mut self, in_label: u32) -> Option<Nhlfe> {
        let e = self.ilm.get_mut(in_label as usize)?.take();
        if e.is_some() {
            self.entries -= 1;
        }
        e
    }

    /// Looks up an incoming label. This is the hot path.
    #[inline]
    pub fn lookup(&self, in_label: u32) -> Option<&Nhlfe> {
        self.ilm.get(in_label as usize)?.as_ref()
    }

    /// Number of installed ILM entries (per-LSR state metric for T1).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates over the installed `(incoming label, NHLFE)` pairs, in
    /// label order. This is how the static verifier walks the ILM.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Nhlfe)> + '_ {
        self.ilm.iter().enumerate().filter_map(|(label, e)| e.as_ref().map(|n| (label as u32, n)))
    }

    /// Applies this LSR's forwarding to a labeled packet in place:
    /// TTL check + ILM lookup + label operation.
    pub fn forward(&self, pkt: &mut Packet) -> LfibVerdict {
        let Some(top) = pkt.top_label() else {
            return LfibVerdict::NotLabeled;
        };
        let Some(nhlfe) = self.lookup(top.label) else {
            return LfibVerdict::NoEntry;
        };
        // TTL processing: decrement the top entry; expiry drops the packet.
        let mut top = top;
        if !top.decrement_ttl() {
            return LfibVerdict::TtlExpired;
        }
        match nhlfe.op {
            LabelOp::Swap(out) => {
                if let Some(Layer::Mpls(l)) = pkt.outer_mut() {
                    *l = MplsLabel { label: out, exp: top.exp, ttl: top.ttl };
                }
                LfibVerdict::Forward { out_iface: nhlfe.out_iface }
            }
            LabelOp::SwapPush { swap, push } => {
                if let Some(Layer::Mpls(l)) = pkt.outer_mut() {
                    *l = MplsLabel { label: swap, exp: top.exp, ttl: top.ttl };
                }
                pkt.push_outer(Layer::Mpls(MplsLabel { label: push, exp: top.exp, ttl: top.ttl }));
                LfibVerdict::Forward { out_iface: nhlfe.out_iface }
            }
            LabelOp::Pop => {
                pkt.pop_outer();
                if pkt.top_label().is_some() {
                    // Propagate the decremented TTL to the exposed entry
                    // (uniform TTL model) and keep forwarding.
                    if let Some(Layer::Mpls(l)) = pkt.outer_mut() {
                        l.ttl = top.ttl;
                    }
                    LfibVerdict::Forward { out_iface: nhlfe.out_iface }
                } else if nhlfe.out_iface == LOCAL_IFACE {
                    LfibVerdict::PoppedToLocal
                } else {
                    // Penultimate-hop pop: forward the now-unlabeled packet.
                    LfibVerdict::Forward { out_iface: nhlfe.out_iface }
                }
            }
        }
    }
}

/// Sentinel interface index meaning "deliver locally" in an [`Nhlfe`].
pub const LOCAL_IFACE: usize = usize::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;

    fn labeled(label: u32, exp: u8, ttl: u8) -> Packet {
        let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 64);
        p.push_outer(Layer::Mpls(MplsLabel::new(label, exp, ttl)));
        p
    }

    #[test]
    fn swap_preserves_exp_and_decrements_ttl() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
        let mut p = labeled(100, 5, 64);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 3 });
        let top = p.top_label().unwrap();
        assert_eq!(top.label, 200);
        assert_eq!(top.exp, 5, "EXP must survive the swap (QoS in the core)");
        assert_eq!(top.ttl, 63);
    }

    #[test]
    fn pop_to_local_at_egress() {
        let mut lfib = Lfib::new();
        lfib.install(77, Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE });
        let mut p = labeled(77, 1, 10);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::PoppedToLocal);
        assert!(p.top_label().is_none());
    }

    #[test]
    fn php_pop_forwards_unlabeled() {
        let mut lfib = Lfib::new();
        lfib.install(77, Nhlfe { op: LabelOp::Pop, out_iface: 2 });
        let mut p = labeled(77, 1, 10);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 2 });
        assert!(p.top_label().is_none());
    }

    #[test]
    fn pop_exposes_inner_label_with_propagated_ttl() {
        let mut lfib = Lfib::new();
        lfib.install(300, Nhlfe { op: LabelOp::Pop, out_iface: 4 });
        let mut p = labeled(42, 3, 9); // inner VPN label
        p.push_outer(Layer::Mpls(MplsLabel::new(300, 3, 7))); // tunnel label
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 4 });
        let top = p.top_label().unwrap();
        assert_eq!(top.label, 42);
        assert_eq!(top.ttl, 6, "uniform TTL model propagates downward");
    }

    #[test]
    fn swap_push_nests_tunnels() {
        let mut lfib = Lfib::new();
        lfib.install(10, Nhlfe { op: LabelOp::SwapPush { swap: 11, push: 500 }, out_iface: 1 });
        let mut p = labeled(10, 2, 20);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 1 });
        assert_eq!(p.label_depth(), 2);
        assert_eq!(p.top_label().unwrap().label, 500);
        assert_eq!(p.layers()[1], Layer::Mpls(MplsLabel::new(11, 2, 19)));
    }

    #[test]
    fn ttl_expiry_and_missing_entry() {
        let mut lfib = Lfib::new();
        lfib.install(5, Nhlfe { op: LabelOp::Swap(6), out_iface: 0 });
        let mut p = labeled(5, 0, 1);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::TtlExpired);
        let mut q = labeled(9, 0, 64);
        assert_eq!(lfib.forward(&mut q), LfibVerdict::NoEntry);
        let mut r = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, 0);
        assert_eq!(lfib.forward(&mut r), LfibVerdict::NotLabeled);
    }

    #[test]
    fn install_remove_len() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Pop, out_iface: 0 });
        lfib.install(100, Nhlfe { op: LabelOp::Swap(1), out_iface: 0 });
        assert_eq!(lfib.len(), 1, "reinstall replaces");
        lfib.install(200, Nhlfe { op: LabelOp::Pop, out_iface: 0 });
        assert_eq!(lfib.len(), 2);
        assert!(lfib.remove(100).is_some());
        assert!(lfib.remove(100).is_none());
        assert_eq!(lfib.len(), 1);
        assert!(lfib.lookup(100).is_none());
    }
}
