//! The label forwarding information base: ILM, NHLFE and FTN.
//!
//! The ILM is a dense vector indexed by incoming label, so the per-packet
//! cost of label-switched forwarding is a bounds-checked array read — the
//! speed claim of the paper's §3 ("forward traffic based on information in
//! the labels instead of having to inspect the various fields deep within
//! each and every packet"), which bench `lpm_vs_label` quantifies against
//! the LPM trie.

use netsim_net::{Layer, MplsLabel, Packet};
use std::cell::{Cell, RefCell};

/// Forwarding-plane counters of one LFIB.
///
/// Interior-mutable (`Cell`) so [`Lfib::forward`] keeps its `&self` hot-path
/// signature: counting must not force exclusive borrows onto every caller.
#[derive(Clone, Debug, Default)]
pub struct LfibStats {
    swaps: Cell<u64>,
    pops: Cell<u64>,
    pushes: Cell<u64>,
    bypass_activations: Cell<u64>,
}

impl LfibStats {
    /// Label swap operations applied (including the swap half of
    /// swap-and-push).
    pub fn swaps(&self) -> u64 {
        self.swaps.get()
    }

    /// Labels popped (PHP and egress pops alike).
    pub fn pops(&self) -> u64 {
        self.pops.get()
    }

    /// Labels pushed (tunnel nesting and fast-reroute bypass wraps).
    pub fn pushes(&self) -> u64 {
        self.pushes.get()
    }

    /// Packets redirected into a fast-reroute bypass tunnel.
    pub fn bypass_activations(&self) -> u64 {
        self.bypass_activations.get()
    }

    /// Accumulates another block's counts into this one — used to carry
    /// forwarding history across a table replacement on reconvergence.
    pub fn merge(&self, other: &LfibStats) {
        self.swaps.set(self.swaps.get() + other.swaps.get());
        self.pops.set(self.pops.get() + other.pops.get());
        self.pushes.set(self.pushes.get() + other.pushes.get());
        self.bypass_activations.set(self.bypass_activations.get() + other.bypass_activations.get());
    }
}

/// The label operation of an NHLFE.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LabelOp {
    /// Replace the top label with `0.0` (value set by the entry).
    Swap(u32),
    /// Pop the top label (penultimate hop or egress).
    Pop,
    /// Swap the top label and push one more above it (used when an LSP is
    /// nested into another tunnel, e.g. inter-provider stitching).
    SwapPush {
        /// Replacement for the current top label.
        swap: u32,
        /// Additional label pushed above it.
        push: u32,
    },
}

/// Next-hop label forwarding entry: what to do with a matched packet and
/// where to send it. `out_iface` is an opaque interface index interpreted
/// by the owning router.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Nhlfe {
    /// The label-stack operation.
    pub op: LabelOp,
    /// Egress interface index.
    pub out_iface: usize,
}

/// Ingress mapping for one FEC: labels to push and the egress interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FtnEntry {
    /// Labels to push, bottom first (tunnel label last ⇒ outermost).
    pub push: Vec<u32>,
    /// Egress interface index.
    pub out_iface: usize,
}

/// Result of running a packet through [`Lfib::forward`].
#[derive(Debug, PartialEq, Eq)]
pub enum LfibVerdict {
    /// Forward out `out_iface` (label ops already applied to the packet).
    Forward {
        /// Interface to transmit on.
        out_iface: usize,
    },
    /// The stack emptied at this LSR: deliver the inner packet locally
    /// (egress processing, e.g. VPN label handling or IP forwarding).
    PoppedToLocal,
    /// No ILM entry for the top label: drop (counts as a misrouting bug in
    /// tests).
    NoEntry,
    /// MPLS TTL expired: drop.
    TtlExpired,
    /// The packet carried no label.
    NotLabeled,
}

/// The label forwarding table of one LSR.
#[derive(Clone, Debug, Default)]
pub struct Lfib {
    ilm: Vec<Option<Nhlfe>>,
    entries: usize,
    /// Fast-reroute state: `protection[out_iface]` is the bypass tunnel
    /// protecting that egress. The bypass terminates at the merge point
    /// (the protected link's far end), which expects exactly the label
    /// this LSR would have sent — so switchover is "apply the primary
    /// operation, then push the bypass labels and redirect".
    protection: Vec<Option<FtnEntry>>,
    /// Interfaces the local failure detector has declared down.
    down: Vec<bool>,
    /// Whether any interface is down — keeps the hot path to one branch
    /// while the network is healthy.
    any_down: bool,
    /// Forwarding counters (interior-mutable; see [`LfibStats`]).
    stats: LfibStats,
    /// Per-entry hit counts, indexed like `ilm` by incoming label.
    hits: RefCell<Vec<u64>>,
}

impl Lfib {
    /// Creates an empty LFIB.
    pub fn new() -> Self {
        Lfib::default()
    }

    /// Installs an ILM entry for `in_label`.
    pub fn install(&mut self, in_label: u32, nhlfe: Nhlfe) {
        let idx = in_label as usize;
        if idx >= self.ilm.len() {
            self.ilm.resize(idx + 1, None);
        }
        if self.ilm[idx].replace(nhlfe).is_none() {
            self.entries += 1;
        }
    }

    /// Removes the ILM entry for `in_label`, returning it if present.
    pub fn remove(&mut self, in_label: u32) -> Option<Nhlfe> {
        let e = self.ilm.get_mut(in_label as usize)?.take();
        if e.is_some() {
            self.entries -= 1;
        }
        e
    }

    /// Looks up an incoming label. This is the hot path.
    #[inline]
    pub fn lookup(&self, in_label: u32) -> Option<&Nhlfe> {
        self.ilm.get(in_label as usize)?.as_ref()
    }

    /// Number of installed ILM entries (per-LSR state metric for T1).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// The forwarding counters of this table.
    pub fn stats(&self) -> &LfibStats {
        &self.stats
    }

    /// How many packets matched the ILM entry for `in_label` in
    /// [`Lfib::forward`] (0 for labels never installed or never hit).
    pub fn entry_hits(&self, in_label: u32) -> u64 {
        self.hits.borrow().get(in_label as usize).copied().unwrap_or(0)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates over the installed `(incoming label, NHLFE)` pairs, in
    /// label order. This is how the static verifier walks the ILM.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Nhlfe)> + '_ {
        self.ilm.iter().enumerate().filter_map(|(label, e)| e.as_ref().map(|n| (label as u32, n)))
    }

    /// Installs a fast-reroute bypass for egress `out_iface`: while the
    /// interface is marked down, traffic headed there is redirected into
    /// the bypass tunnel instead of being dropped on the dead link.
    pub fn install_protection(&mut self, out_iface: usize, bypass: FtnEntry) {
        if out_iface >= self.protection.len() {
            self.protection.resize(out_iface + 1, None);
        }
        self.protection[out_iface] = Some(bypass);
    }

    /// Removes the bypass protecting `out_iface`, returning it if present.
    pub fn remove_protection(&mut self, out_iface: usize) -> Option<FtnEntry> {
        self.protection.get_mut(out_iface)?.take()
    }

    /// The bypass protecting `out_iface`, if any.
    pub fn protection(&self, out_iface: usize) -> Option<&FtnEntry> {
        self.protection.get(out_iface)?.as_ref()
    }

    /// Interfaces that currently have a bypass installed.
    pub fn protected_ifaces(&self) -> impl Iterator<Item = usize> + '_ {
        self.protection.iter().enumerate().filter_map(|(i, p)| p.as_ref().map(|_| i))
    }

    /// Records the local failure detector's view of an interface. Marking
    /// an unprotected interface down is allowed (traffic keeps flowing to
    /// the dead link and drops there, as without FRR).
    pub fn set_iface_down(&mut self, iface: usize, down: bool) {
        if iface >= self.down.len() {
            if !down {
                return;
            }
            self.down.resize(iface + 1, false);
        }
        self.down[iface] = down;
        self.any_down = self.down.iter().any(|&d| d);
    }

    /// Whether the failure detector considers `iface` down.
    pub fn iface_down(&self, iface: usize) -> bool {
        self.down.get(iface).copied().unwrap_or(false)
    }

    /// Fast-reroute switchover: if `out_iface` is down and protected,
    /// pushes the bypass labels over whatever the packet now carries and
    /// returns the bypass egress; otherwise returns `out_iface` unchanged.
    /// Single-level: a bypass is never itself rerouted.
    #[inline]
    pub fn apply_protection(&self, pkt: &mut Packet, out_iface: usize) -> usize {
        if !self.any_down || !self.iface_down(out_iface) {
            return out_iface;
        }
        let Some(bypass) = self.protection.get(out_iface).and_then(Option::as_ref) else {
            return out_iface;
        };
        let (exp, ttl) = match pkt.top_label() {
            Some(l) => (l.exp, l.ttl),
            // PHP already stripped the stack: classify the bypass label
            // from the IP precedence bits (the default DSCP→EXP fold).
            None => (pkt.dscp().map_or(0, |d| d.value() >> 3), 64),
        };
        for &l in &bypass.push {
            pkt.push_outer(Layer::Mpls(MplsLabel { label: l, exp, ttl }));
            self.stats.pushes.set(self.stats.pushes.get() + 1);
        }
        self.stats.bypass_activations.set(self.stats.bypass_activations.get() + 1);
        bypass.out_iface
    }

    /// Applies this LSR's forwarding to a labeled packet in place:
    /// TTL check + ILM lookup + label operation, then fast-reroute
    /// switchover when the chosen egress is down and protected.
    pub fn forward(&self, pkt: &mut Packet) -> LfibVerdict {
        match self.forward_primary(pkt) {
            LfibVerdict::Forward { out_iface } if self.any_down => {
                LfibVerdict::Forward { out_iface: self.apply_protection(pkt, out_iface) }
            }
            v => v,
        }
    }

    /// The primary forwarding decision, before protection.
    fn forward_primary(&self, pkt: &mut Packet) -> LfibVerdict {
        let Some(top) = pkt.top_label() else {
            return LfibVerdict::NotLabeled;
        };
        let Some(nhlfe) = self.lookup(top.label) else {
            return LfibVerdict::NoEntry;
        };
        {
            let mut hits = self.hits.borrow_mut();
            let idx = top.label as usize;
            if idx >= hits.len() {
                hits.resize(idx + 1, 0);
            }
            hits[idx] += 1;
        }
        // TTL processing: decrement the top entry; expiry drops the packet.
        let mut top = top;
        if !top.decrement_ttl() {
            return LfibVerdict::TtlExpired;
        }
        match nhlfe.op {
            LabelOp::Swap(out) => {
                if let Some(Layer::Mpls(l)) = pkt.outer_mut() {
                    *l = MplsLabel { label: out, exp: top.exp, ttl: top.ttl };
                }
                self.stats.swaps.set(self.stats.swaps.get() + 1);
                LfibVerdict::Forward { out_iface: nhlfe.out_iface }
            }
            LabelOp::SwapPush { swap, push } => {
                if let Some(Layer::Mpls(l)) = pkt.outer_mut() {
                    *l = MplsLabel { label: swap, exp: top.exp, ttl: top.ttl };
                }
                pkt.push_outer(Layer::Mpls(MplsLabel { label: push, exp: top.exp, ttl: top.ttl }));
                self.stats.swaps.set(self.stats.swaps.get() + 1);
                self.stats.pushes.set(self.stats.pushes.get() + 1);
                LfibVerdict::Forward { out_iface: nhlfe.out_iface }
            }
            LabelOp::Pop => {
                pkt.pop_outer();
                self.stats.pops.set(self.stats.pops.get() + 1);
                if pkt.top_label().is_some() {
                    // Propagate the decremented TTL to the exposed entry
                    // (uniform TTL model) and keep forwarding.
                    if let Some(Layer::Mpls(l)) = pkt.outer_mut() {
                        l.ttl = top.ttl;
                    }
                    LfibVerdict::Forward { out_iface: nhlfe.out_iface }
                } else if nhlfe.out_iface == LOCAL_IFACE {
                    LfibVerdict::PoppedToLocal
                } else {
                    // Penultimate-hop pop: forward the now-unlabeled packet.
                    LfibVerdict::Forward { out_iface: nhlfe.out_iface }
                }
            }
        }
    }
}

/// Sentinel interface index meaning "deliver locally" in an [`Nhlfe`].
pub const LOCAL_IFACE: usize = usize::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;
    use netsim_net::Dscp;

    fn labeled(label: u32, exp: u8, ttl: u8) -> Packet {
        let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 64);
        p.push_outer(Layer::Mpls(MplsLabel::new(label, exp, ttl)));
        p
    }

    #[test]
    fn swap_preserves_exp_and_decrements_ttl() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
        let mut p = labeled(100, 5, 64);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 3 });
        let top = p.top_label().unwrap();
        assert_eq!(top.label, 200);
        assert_eq!(top.exp, 5, "EXP must survive the swap (QoS in the core)");
        assert_eq!(top.ttl, 63);
    }

    #[test]
    fn pop_to_local_at_egress() {
        let mut lfib = Lfib::new();
        lfib.install(77, Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE });
        let mut p = labeled(77, 1, 10);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::PoppedToLocal);
        assert!(p.top_label().is_none());
    }

    #[test]
    fn php_pop_forwards_unlabeled() {
        let mut lfib = Lfib::new();
        lfib.install(77, Nhlfe { op: LabelOp::Pop, out_iface: 2 });
        let mut p = labeled(77, 1, 10);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 2 });
        assert!(p.top_label().is_none());
    }

    #[test]
    fn pop_exposes_inner_label_with_propagated_ttl() {
        let mut lfib = Lfib::new();
        lfib.install(300, Nhlfe { op: LabelOp::Pop, out_iface: 4 });
        let mut p = labeled(42, 3, 9); // inner VPN label
        p.push_outer(Layer::Mpls(MplsLabel::new(300, 3, 7))); // tunnel label
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 4 });
        let top = p.top_label().unwrap();
        assert_eq!(top.label, 42);
        assert_eq!(top.ttl, 6, "uniform TTL model propagates downward");
    }

    #[test]
    fn swap_push_nests_tunnels() {
        let mut lfib = Lfib::new();
        lfib.install(10, Nhlfe { op: LabelOp::SwapPush { swap: 11, push: 500 }, out_iface: 1 });
        let mut p = labeled(10, 2, 20);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 1 });
        assert_eq!(p.label_depth(), 2);
        assert_eq!(p.top_label().unwrap().label, 500);
        assert_eq!(p.layers()[1], Layer::Mpls(MplsLabel::new(11, 2, 19)));
    }

    #[test]
    fn ttl_expiry_and_missing_entry() {
        let mut lfib = Lfib::new();
        lfib.install(5, Nhlfe { op: LabelOp::Swap(6), out_iface: 0 });
        let mut p = labeled(5, 0, 1);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::TtlExpired);
        let mut q = labeled(9, 0, 64);
        assert_eq!(lfib.forward(&mut q), LfibVerdict::NoEntry);
        let mut r = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, 0);
        assert_eq!(lfib.forward(&mut r), LfibVerdict::NotLabeled);
    }

    #[test]
    fn protection_reroutes_only_while_iface_is_down() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
        lfib.install_protection(3, FtnEntry { push: vec![900], out_iface: 7 });

        // Healthy: primary egress, single label.
        let mut p = labeled(100, 5, 64);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 3 });
        assert_eq!(p.label_depth(), 1);

        // Down: primary swap still applied, bypass label pushed on top
        // (the merge point expects label 200), redirected out iface 7.
        lfib.set_iface_down(3, true);
        assert!(lfib.iface_down(3));
        let mut p = labeled(100, 5, 64);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 7 });
        assert_eq!(p.label_depth(), 2);
        let top = p.top_label().unwrap();
        assert_eq!((top.label, top.exp), (900, 5), "bypass inherits the packet's EXP");
        assert_eq!(p.layers()[1], Layer::Mpls(MplsLabel::new(200, 5, 63)));

        // Repair detected: back on the primary.
        lfib.set_iface_down(3, false);
        let mut p = labeled(100, 5, 64);
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 3 });
        assert_eq!(p.label_depth(), 1);
    }

    #[test]
    fn down_iface_without_protection_forwards_unchanged() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
        lfib.set_iface_down(3, true);
        let mut p = labeled(100, 0, 64);
        // No bypass installed: the packet heads for the dead link and will
        // drop there, exactly as before FRR existed.
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 3 });
        assert_eq!(p.label_depth(), 1);
    }

    #[test]
    fn php_pop_onto_bypass_classifies_from_precedence() {
        // Penultimate hop: the pop strips the last label; protection must
        // still wrap the bare IP packet so the merge point receives what
        // it expected.
        let mut lfib = Lfib::new();
        lfib.install(77, Nhlfe { op: LabelOp::Pop, out_iface: 2 });
        lfib.install_protection(2, FtnEntry { push: vec![901], out_iface: 5 });
        lfib.set_iface_down(2, true);
        let mut p = labeled(77, 5, 10);
        p.outer_ipv4_mut().unwrap().dscp = Dscp::EF;
        assert_eq!(lfib.forward(&mut p), LfibVerdict::Forward { out_iface: 5 });
        let top = p.top_label().unwrap();
        assert_eq!(top.label, 901);
        assert_eq!(top.exp, 5, "EF precedence bits classify the bypass label");
    }

    #[test]
    fn protection_table_management() {
        let mut lfib = Lfib::new();
        lfib.install_protection(4, FtnEntry { push: vec![1], out_iface: 0 });
        lfib.install_protection(9, FtnEntry { push: vec![2], out_iface: 1 });
        assert_eq!(lfib.protected_ifaces().collect::<Vec<_>>(), vec![4, 9]);
        assert!(lfib.protection(4).is_some());
        assert!(lfib.remove_protection(4).is_some());
        assert!(lfib.remove_protection(4).is_none());
        assert_eq!(lfib.protected_ifaces().collect::<Vec<_>>(), vec![9]);
        // Marking an out-of-range iface up is a no-op, not a panic.
        lfib.set_iface_down(1000, false);
        assert!(!lfib.iface_down(1000));
    }

    #[test]
    fn stats_count_ops_and_entry_hits() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
        lfib.install(77, Nhlfe { op: LabelOp::Pop, out_iface: 2 });
        lfib.install(10, Nhlfe { op: LabelOp::SwapPush { swap: 11, push: 500 }, out_iface: 1 });
        for _ in 0..3 {
            let mut p = labeled(100, 0, 64);
            lfib.forward(&mut p);
        }
        let mut p = labeled(77, 0, 64);
        lfib.forward(&mut p);
        let mut p = labeled(10, 0, 64);
        lfib.forward(&mut p);
        assert_eq!(lfib.stats().swaps(), 4, "3 plain swaps + the swap half of swap-push");
        assert_eq!(lfib.stats().pops(), 1);
        assert_eq!(lfib.stats().pushes(), 1);
        assert_eq!(lfib.stats().bypass_activations(), 0);
        assert_eq!(lfib.entry_hits(100), 3);
        assert_eq!(lfib.entry_hits(77), 1);
        assert_eq!(lfib.entry_hits(999), 0, "never-installed label has no hits");
    }

    #[test]
    fn stats_count_bypass_and_merge_carries_history() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
        lfib.install_protection(3, FtnEntry { push: vec![900], out_iface: 7 });
        lfib.set_iface_down(3, true);
        let mut p = labeled(100, 0, 64);
        lfib.forward(&mut p);
        assert_eq!(lfib.stats().bypass_activations(), 1);
        assert_eq!(lfib.stats().pushes(), 1, "bypass wrap is a push");

        // Reconvergence replaces the table; merging first keeps history.
        let fresh = Lfib::new();
        fresh.stats().merge(lfib.stats());
        assert_eq!(fresh.stats().swaps(), 1);
        assert_eq!(fresh.stats().bypass_activations(), 1);
    }

    #[test]
    fn install_remove_len() {
        let mut lfib = Lfib::new();
        lfib.install(100, Nhlfe { op: LabelOp::Pop, out_iface: 0 });
        lfib.install(100, Nhlfe { op: LabelOp::Swap(1), out_iface: 0 });
        assert_eq!(lfib.len(), 1, "reinstall replaces");
        lfib.install(200, Nhlfe { op: LabelOp::Pop, out_iface: 0 });
        assert_eq!(lfib.len(), 2);
        assert!(lfib.remove(100).is_some());
        assert!(lfib.remove(100).is_none());
        assert_eq!(lfib.len(), 1);
        assert!(lfib.lookup(100).is_none());
    }
}
