//! # netsim-mpls — MPLS data plane and label distribution
//!
//! The label-switching substrate of the reproduction:
//!
//! * [`label`] — per-LSR label spaces (allocation/release).
//! * [`lfib`] — the forwarding tables: ILM (incoming label map) with O(1)
//!   dense lookup, NHLFE operations (swap/push/pop with TTL and EXP
//!   handling), and the FTN (FEC-to-NHLFE) map used at the ingress.
//! * [`ldp`] — an LDP emulation (downstream-unsolicited, ordered control)
//!   that runs in synchronous rounds over a topology and counts every
//!   Label Mapping message — the currency of the paper's scalability
//!   argument (§2.1 vs §4).
//! * [`explicit`] — RSVP-TE-style signalling of an LSP along an explicit
//!   route, used by the traffic-engineering crate.
//!
//! The paper (§3): "MPLS brings the same kind of label swapping based
//! forwarding used in frame relay and ATM to the handling of IP traffic."
//! [`lfib::Lfib::lookup`] *is* that claim's fast path; bench `lpm_vs_label`
//! measures it against the IP longest-prefix match.
//!
//! # Example
//!
//! ```
//! use netsim_mpls::lfib::{LabelOp, LfibVerdict, Nhlfe};
//! use netsim_mpls::Lfib;
//! use netsim_net::{Dscp, Layer, MplsLabel, Packet};
//!
//! let mut lfib = Lfib::new();
//! lfib.install(100, Nhlfe { op: LabelOp::Swap(200), out_iface: 3 });
//!
//! let mut pkt = Packet::udp(
//!     "10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), 1, 2, Dscp::EF, 64);
//! pkt.push_outer(Layer::Mpls(MplsLabel::new(100, 5, 64)));
//!
//! assert_eq!(lfib.forward(&mut pkt), LfibVerdict::Forward { out_iface: 3 });
//! let top = pkt.top_label().unwrap();
//! assert_eq!((top.label, top.exp, top.ttl), (200, 5, 63)); // EXP survives the swap
//! ```

#![warn(missing_docs)]

pub mod explicit;
pub mod label;
pub mod ldp;
pub mod lfib;

pub use explicit::{signal_explicit_lsp, ExplicitLsp, LspHop};
pub use label::LabelSpace;
pub use ldp::{Fec, LdpConfig, LdpDomain, LdpNodeState};
pub use lfib::{FtnEntry, LabelOp, Lfib, LfibStats, Nhlfe};
