//! Per-LSR label space management.

use netsim_net::mpls::{MAX_LABEL, MIN_UNRESERVED_LABEL};

/// Allocates labels from one platform-wide label space (per-LSR), reusing
/// released labels LIFO.
#[derive(Clone, Debug)]
pub struct LabelSpace {
    base: u32,
    next: u32,
    free: Vec<u32>,
    live: u64,
}

impl Default for LabelSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelSpace {
    /// Creates an empty label space starting at the first unreserved label.
    pub fn new() -> Self {
        Self::with_base(MIN_UNRESERVED_LABEL)
    }

    /// Creates a label space allocating from `base` upward. Platforms
    /// partition the 20-bit space between protocols (e.g. LDP vs BGP VPN
    /// labels) so that one device's tables never alias; the emulator does
    /// the same.
    pub fn with_base(base: u32) -> Self {
        assert!((MIN_UNRESERVED_LABEL..=MAX_LABEL).contains(&base), "base {base} out of range");
        LabelSpace { base, next: base, free: Vec::new(), live: 0 }
    }

    /// Allocates a fresh label.
    ///
    /// # Panics
    /// Panics if the 20-bit space is exhausted (over one million live
    /// labels — far beyond any experiment here; treat as a logic error).
    pub fn allocate(&mut self) -> u32 {
        self.live += 1;
        if let Some(l) = self.free.pop() {
            return l;
        }
        assert!(self.next <= MAX_LABEL, "label space exhausted");
        let l = self.next;
        self.next += 1;
        l
    }

    /// Returns a label to the pool.
    ///
    /// # Panics
    /// Panics on double release or on releasing a never-allocated label
    /// (debug builds only for the scan; the live counter is always checked).
    pub fn release(&mut self, label: u32) {
        assert!(self.live > 0, "release with no live labels");
        debug_assert!(
            label >= self.base && label < self.next && !self.free.contains(&label),
            "releasing invalid label {label}"
        );
        self.live -= 1;
        self.free.push(label);
    }

    /// Labels currently allocated and not released. This is the per-LSR
    /// state metric of experiment T1.
    pub fn live(&self) -> u64 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_unreserved_labels() {
        let mut s = LabelSpace::new();
        let a = s.allocate();
        let b = s.allocate();
        assert_ne!(a, b);
        assert!(a >= MIN_UNRESERVED_LABEL && b >= MIN_UNRESERVED_LABEL);
        assert_eq!(s.live(), 2);
    }

    #[test]
    fn release_enables_reuse() {
        let mut s = LabelSpace::new();
        let a = s.allocate();
        let _b = s.allocate();
        s.release(a);
        assert_eq!(s.live(), 1);
        assert_eq!(s.allocate(), a, "released labels are reused LIFO");
    }

    #[test]
    #[should_panic(expected = "no live labels")]
    fn release_without_allocation_panics() {
        LabelSpace::new().release(MIN_UNRESERVED_LABEL);
    }
}
