//! LDP emulation: downstream-unsolicited label distribution in synchronous
//! rounds, with every Label Mapping message counted.
//!
//! The paper's §4: "The ISP's routing system distributes this information by
//! piggybacking labels in the routing protocol updates or by using a label
//! distribution protocol." This module is that label distribution protocol
//! for the *tunnel* LSPs (PE-to-PE transport); the VPN route labels ride the
//! BGP emulation in `netsim-routing`.
//!
//! The run is a fixpoint over rounds: the egress of each FEC advertises a
//! binding; each LSR, on hearing a binding from its IGP next hop toward the
//! FEC, allocates a local label, installs ILM/FTN state, and re-advertises
//! (ordered control mode). Liberal retention: bindings from non-next-hop
//! neighbors are remembered (and counted) but not installed.

use std::collections::HashMap;

use crate::label::LabelSpace;
use crate::lfib::{FtnEntry, LabelOp, Lfib, Nhlfe, LOCAL_IFACE};
use netsim_net::mpls::IMPLICIT_NULL;

/// A forwarding equivalence class. In this emulator a FEC identifies the
/// egress LSR's loopback (one tunnel LSP per egress PE), but the value is
/// opaque to LDP.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fec(pub u32);

/// LDP behaviour switches.
#[derive(Clone, Copy, Debug)]
pub struct LdpConfig {
    /// Penultimate-hop popping: the egress advertises implicit-null so the
    /// hop before it pops the label (saves one lookup at the egress).
    pub php: bool,
}

impl Default for LdpConfig {
    fn default() -> Self {
        LdpConfig { php: true }
    }
}

/// Per-LSR LDP state after convergence.
#[derive(Debug, Default)]
pub struct LdpNodeState {
    /// The node's label space.
    pub space: LabelSpace,
    /// Installed label-switching table.
    pub lfib: Lfib,
    /// Local binding per FEC (implicit-null at a PHP egress).
    pub bindings: HashMap<Fec, u32>,
    /// Ingress map: FEC → labels to push + egress interface.
    pub ftn: HashMap<Fec, FtnEntry>,
    /// Bindings heard per (FEC, neighbor) — liberal retention.
    pub received: HashMap<(Fec, usize), u32>,
}

impl LdpNodeState {
    fn new() -> Self {
        LdpNodeState {
            space: LabelSpace::new(),
            lfib: Lfib::new(),
            bindings: HashMap::new(),
            ftn: HashMap::new(),
            received: HashMap::new(),
        }
    }
}

/// A converged LDP domain plus its convergence cost metrics.
#[derive(Debug)]
pub struct LdpDomain {
    /// Per-node state, indexed by node id.
    pub nodes: Vec<LdpNodeState>,
    /// Egress node per FEC.
    pub egress: HashMap<Fec, usize>,
    /// Label Mapping messages exchanged during convergence.
    pub messages: u64,
    /// Synchronous rounds until quiescence.
    pub rounds: u32,
    /// LDP sessions (one per adjacency, both directions counted once).
    pub sessions: u64,
}

struct Mapping {
    from: usize,
    to: usize,
    fec: Fec,
    label: u32,
}

impl LdpDomain {
    /// Runs LDP to convergence.
    ///
    /// * `adjacency[u]` lists `u`'s neighbors; the position of `v` in that
    ///   list is the interface index `u` uses to reach `v`.
    /// * `fecs` maps each FEC to its egress node.
    /// * `next_hop(u, egress)` gives `u`'s IGP next hop toward `egress`
    ///   (`None` at the egress itself or when unreachable).
    pub fn run(
        adjacency: &[Vec<usize>],
        fecs: &[(Fec, usize)],
        next_hop: &dyn Fn(usize, usize) -> Option<usize>,
        cfg: LdpConfig,
    ) -> LdpDomain {
        let n = adjacency.len();
        let mut nodes: Vec<LdpNodeState> = (0..n).map(|_| LdpNodeState::new()).collect();
        let mut egress_of: HashMap<Fec, usize> = HashMap::new();
        let mut messages = 0u64;
        let mut rounds = 0u32;
        let sessions = adjacency.iter().map(|a| a.len() as u64).sum::<u64>() / 2;

        let mut queue: Vec<Mapping> = Vec::new();

        // Round 0: each egress originates its binding.
        for &(fec, egress) in fecs {
            assert!(egress < n, "egress {egress} out of range");
            let prev = egress_of.insert(fec, egress);
            assert!(prev.is_none() || prev == Some(egress), "duplicate FEC with different egress");
            let local = if cfg.php {
                IMPLICIT_NULL
            } else {
                let l = nodes[egress].space.allocate();
                nodes[egress].lfib.install(l, Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE });
                l
            };
            nodes[egress].bindings.insert(fec, local);
            for &nb in &adjacency[egress] {
                queue.push(Mapping { from: egress, to: nb, fec, label: local });
                messages += 1;
            }
        }

        // Rounds 1..: deliver, install, re-advertise until quiescent.
        while !queue.is_empty() {
            rounds += 1;
            assert!(rounds as usize <= n + 2, "LDP failed to converge — inconsistent next_hop?");
            let mut next_queue: Vec<Mapping> = Vec::new();
            for m in queue.drain(..) {
                let node = &mut nodes[m.to];
                node.received.insert((m.fec, m.from), m.label);
                let egress = egress_of[&m.fec];
                if m.to == egress {
                    continue; // the egress ignores upstream bindings
                }
                if next_hop(m.to, egress) != Some(m.from) {
                    continue; // liberal retention only
                }
                let out_iface = adjacency[m.to]
                    .iter()
                    .position(|&v| v == m.from)
                    .expect("mapping sender must be a neighbor");
                let op =
                    if m.label == IMPLICIT_NULL { LabelOp::Pop } else { LabelOp::Swap(m.label) };
                let push = if m.label == IMPLICIT_NULL { Vec::new() } else { vec![m.label] };
                node.ftn.insert(m.fec, FtnEntry { push, out_iface });
                match node.bindings.get(&m.fec) {
                    Some(&local) => {
                        // Next-hop binding changed: refresh the ILM only.
                        node.lfib.install(local, Nhlfe { op, out_iface });
                    }
                    None => {
                        let local = node.space.allocate();
                        node.bindings.insert(m.fec, local);
                        node.lfib.install(local, Nhlfe { op, out_iface });
                        for &nb in &adjacency[m.to] {
                            next_queue.push(Mapping {
                                from: m.to,
                                to: nb,
                                fec: m.fec,
                                label: local,
                            });
                            messages += 1;
                        }
                    }
                }
            }
            queue = next_queue;
        }

        LdpDomain { nodes, egress: egress_of, messages, rounds, sessions }
    }

    /// Follows the installed tables from `ingress` toward `fec`, returning
    /// the node path (including ingress and egress) or `None` if forwarding
    /// fails. Used by tests and the tunnel experiments.
    pub fn walk(&self, adjacency: &[Vec<usize>], ingress: usize, fec: Fec) -> Option<Vec<usize>> {
        let egress = *self.egress.get(&fec)?;
        if ingress == egress {
            return Some(vec![ingress]);
        }
        let ftn = self.nodes[ingress].ftn.get(&fec)?;
        let mut path = vec![ingress];
        let mut label = ftn.push.first().copied();
        let mut at = *adjacency[ingress].get(ftn.out_iface)?;
        for _ in 0..adjacency.len() {
            path.push(at);
            if at == egress {
                return match label {
                    // PHP: the label was already popped upstream.
                    None => Some(path),
                    // Non-PHP: the egress must hold a Pop entry for it.
                    Some(l) => match self.nodes[at].lfib.lookup(l)?.op {
                        LabelOp::Pop => Some(path),
                        _ => None,
                    },
                };
            }
            let l = label?;
            let nhlfe = self.nodes[at].lfib.lookup(l)?;
            match nhlfe.op {
                LabelOp::Swap(out) => {
                    label = Some(out);
                    at = *adjacency[at].get(nhlfe.out_iface)?;
                }
                LabelOp::Pop => {
                    label = None;
                    at = *adjacency[at].get(nhlfe.out_iface)?;
                }
                LabelOp::SwapPush { .. } => return None, // LDP never installs these
            }
        }
        None
    }

    /// Total labels allocated across all LSRs (state metric for T1).
    pub fn total_labels(&self) -> u64 {
        self.nodes.iter().map(|s| s.space.live()).sum()
    }

    /// Total ILM entries across all LSRs.
    pub fn total_ilm_entries(&self) -> usize {
        self.nodes.iter().map(|s| s.lfib.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hop-count next-hop on an adjacency list via BFS (deterministic:
    /// lowest neighbor id wins ties).
    pub(crate) fn bfs_next_hop(
        adjacency: &[Vec<usize>],
    ) -> impl Fn(usize, usize) -> Option<usize> + '_ {
        move |from: usize, to: usize| {
            if from == to {
                return None;
            }
            // BFS from `to`, tracking distance; next hop = neighbor of
            // `from` minimizing (distance, id).
            let n = adjacency.len();
            let mut dist = vec![usize::MAX; n];
            dist[to] = 0;
            let mut q = std::collections::VecDeque::from([to]);
            while let Some(u) = q.pop_front() {
                for &v in &adjacency[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            adjacency[from]
                .iter()
                .copied()
                .filter(|&v| dist[v] != usize::MAX)
                .min_by_key(|&v| (dist[v], v))
                .filter(|_| dist[from] != usize::MAX)
        }
    }

    fn chain(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut adj = Vec::new();
                if i > 0 {
                    adj.push(i - 1);
                }
                if i + 1 < n {
                    adj.push(i + 1);
                }
                adj
            })
            .collect()
    }

    #[test]
    fn chain_converges_and_forwards_php() {
        let adj = chain(5);
        let nh = bfs_next_hop(&adj);
        let d = LdpDomain::run(&adj, &[(Fec(0), 4)], &nh, LdpConfig { php: true });
        // Every non-egress node walks to the egress.
        for ingress in 0..4 {
            assert_eq!(d.walk(&adj, ingress, Fec(0)), Some((ingress..=4).collect::<Vec<_>>()));
        }
        // PHP: egress allocated no label; nodes 1..=3 allocated one each,
        // plus node 0 (ingress also re-advertises).
        assert_eq!(d.nodes[4].space.live(), 0);
        assert_eq!(d.total_labels(), 4);
        // 4 propagation rounds plus the final quiescent delivery round.
        assert_eq!(d.rounds, 5);
        assert_eq!(d.sessions, 4);
    }

    #[test]
    fn chain_non_php_has_egress_label() {
        let adj = chain(3);
        let nh = bfs_next_hop(&adj);
        let d = LdpDomain::run(&adj, &[(Fec(0), 2)], &nh, LdpConfig { php: false });
        assert_eq!(d.nodes[2].space.live(), 1, "egress allocates an explicit label");
        assert_eq!(d.walk(&adj, 0, Fec(0)), Some(vec![0, 1, 2]));
        // The penultimate hop swaps (not pops) under non-PHP.
        let local1 = d.nodes[1].bindings[&Fec(0)];
        assert!(matches!(d.nodes[1].lfib.lookup(local1).unwrap().op, LabelOp::Swap(_)));
    }

    #[test]
    fn full_mesh_fecs_state_scales_linearly_per_node() {
        // 6-node ring, one FEC per node (the T1 comparison point: per-PE
        // state grows O(N), not O(N²)).
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect();
        let nh = bfs_next_hop(&adj);
        let fecs: Vec<(Fec, usize)> = (0..n).map(|i| (Fec(i as u32), i)).collect();
        let d = LdpDomain::run(&adj, &fecs, &nh, LdpConfig::default());
        for u in 0..n {
            // Each node binds every FEC except where it's penultimate-free.
            assert!(d.nodes[u].bindings.len() <= n);
            assert!(d.nodes[u].lfib.len() < n, "per-node ILM is O(N)");
            // Every node can reach every FEC.
            for f in 0..n {
                if f != u {
                    let path = d.walk(&adj, u, Fec(f as u32)).expect("reachable");
                    assert_eq!(*path.last().unwrap(), f);
                    assert_eq!(path[0], u);
                }
            }
        }
        assert!(d.messages > 0);
    }

    #[test]
    fn star_topology_hub_carries_all_lsps() {
        // Node 0 is the hub; 1..=4 are leaves.
        let mut adj = vec![vec![1, 2, 3, 4]];
        for _ in 1..=4 {
            adj.push(vec![0]);
        }
        let nh = bfs_next_hop(&adj);
        let fecs: Vec<(Fec, usize)> = (1..=4).map(|i| (Fec(i as u32), i)).collect();
        let d = LdpDomain::run(&adj, &fecs, &nh, LdpConfig { php: false });
        for src in 1..=4usize {
            for dst in 1..=4usize {
                if src != dst {
                    assert_eq!(d.walk(&adj, src, Fec(dst as u32)), Some(vec![src, 0, dst]));
                }
            }
        }
        // The hub holds a binding for each of the 4 FECs.
        assert_eq!(d.nodes[0].bindings.len(), 4);
    }

    #[test]
    fn unreachable_fec_installs_nothing() {
        // Two disconnected components: {0,1} and {2}.
        let adj = vec![vec![1], vec![0], vec![]];
        let nh = bfs_next_hop(&adj);
        let d = LdpDomain::run(&adj, &[(Fec(9), 2)], &nh, LdpConfig::default());
        assert!(d.walk(&adj, 0, Fec(9)).is_none());
        assert!(!d.nodes[0].ftn.contains_key(&Fec(9)));
    }

    #[test]
    fn messages_grow_with_topology_size() {
        let small = {
            let adj = chain(4);
            let nh = bfs_next_hop(&adj);
            let fecs: Vec<_> = (0..4).map(|i| (Fec(i as u32), i)).collect();
            LdpDomain::run(&adj, &fecs, &nh, LdpConfig::default()).messages
        };
        let large = {
            let adj = chain(16);
            let nh = bfs_next_hop(&adj);
            let fecs: Vec<_> = (0..16).map(|i| (Fec(i as u32), i)).collect();
            LdpDomain::run(&adj, &fecs, &nh, LdpConfig::default()).messages
        };
        assert!(large > small * 4, "messages must scale with N and FEC count");
    }
}
