//! Explicit-route LSP signalling (RSVP-TE style, emulated).
//!
//! Traffic engineering (paper §5) needs LSPs pinned to operator-chosen
//! paths rather than the IGP shortest path. This module performs the
//! label-allocation walk an RSVP-TE Resv message would: labels are assigned
//! hop by hop from the egress back toward the ingress, and each transit LSR
//! gets a swap entry installed.

use crate::label::LabelSpace;
use crate::lfib::{FtnEntry, LabelOp, Lfib, Nhlfe, LOCAL_IFACE};

/// One hop of a signalled LSP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LspHop {
    /// The LSR at this hop.
    pub node: usize,
    /// Label the packet carries arriving at this node (None at ingress).
    pub in_label: Option<u32>,
    /// Label after this node's operation (None once popped).
    pub out_label: Option<u32>,
    /// Interface toward the next hop (LOCAL_IFACE at the egress).
    pub out_iface: usize,
}

/// A signalled explicit-route LSP.
#[derive(Clone, Debug)]
pub struct ExplicitLsp {
    /// Hops from ingress to egress.
    pub hops: Vec<LspHop>,
    /// The FTN entry the ingress uses to put traffic onto this LSP.
    pub ingress_ftn: FtnEntry,
}

/// Signals an LSP along `path` (node ids, ingress first, length ≥ 2).
///
/// `spaces[u]` / `lfibs[u]` are the label space and LFIB of node `u`;
/// `iface_toward(u, v)` resolves `u`'s interface index facing neighbor `v`.
/// With `php`, the penultimate hop pops; otherwise the egress allocates a
/// label and pops it itself.
///
/// # Panics
/// Panics if the path is shorter than 2 nodes or visits a node twice.
pub fn signal_explicit_lsp(
    path: &[usize],
    spaces: &mut [LabelSpace],
    lfibs: &mut [Lfib],
    iface_toward: &dyn Fn(usize, usize) -> usize,
    php: bool,
) -> ExplicitLsp {
    assert!(path.len() >= 2, "an LSP needs at least ingress and egress");
    {
        let mut seen = std::collections::HashSet::new();
        assert!(path.iter().all(|&u| seen.insert(u)), "explicit route must be loop-free");
    }
    let egress = *path.last().expect("non-empty");

    // Allocate labels from the egress backwards (as a Resv would).
    // label_in[i] = label the packet carries arriving at path[i].
    let mut label_in: Vec<Option<u32>> = vec![None; path.len()];
    for i in (1..path.len()).rev() {
        let is_egress = i == path.len() - 1;
        label_in[i] = if is_egress && php { None } else { Some(spaces[path[i]].allocate()) };
    }

    // Install state and build hop records.
    let mut hops = Vec::with_capacity(path.len());
    for (i, &u) in path.iter().enumerate() {
        let is_egress = i == path.len() - 1;
        let out_iface = if is_egress { LOCAL_IFACE } else { iface_toward(u, path[i + 1]) };
        let out_label = if is_egress { None } else { label_in[i + 1] };
        if let Some(inl) = label_in[i] {
            let op = match out_label {
                Some(out) => LabelOp::Swap(out),
                None => LabelOp::Pop,
            };
            lfibs[u].install(inl, Nhlfe { op, out_iface });
        }
        hops.push(LspHop { node: u, in_label: label_in[i], out_label, out_iface });
    }
    let _ = egress;

    let ingress_ftn = FtnEntry {
        push: label_in[1].into_iter().collect(),
        out_iface: iface_toward(path[0], path[1]),
    };
    ExplicitLsp { hops, ingress_ftn }
}

impl ExplicitLsp {
    /// Releases all labels this LSP allocated and removes its ILM entries
    /// (RSVP-TE teardown).
    pub fn tear_down(&self, spaces: &mut [LabelSpace], lfibs: &mut [Lfib]) {
        for hop in &self.hops {
            if let Some(inl) = hop.in_label {
                lfibs[hop.node].remove(inl);
                spaces[hop.node].release(inl);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize) -> (Vec<LabelSpace>, Vec<Lfib>) {
        ((0..n).map(|_| LabelSpace::new()).collect(), (0..n).map(|_| Lfib::new()).collect())
    }

    /// Interface resolver for tests: iface index = neighbor id (sparse but
    /// harmless).
    fn iface(_u: usize, v: usize) -> usize {
        v
    }

    #[test]
    fn php_lsp_installs_swap_chain_with_penultimate_pop() {
        let (mut spaces, mut lfibs) = mk(4);
        let lsp = signal_explicit_lsp(&[0, 1, 2, 3], &mut spaces, &mut lfibs, &iface, true);
        // Ingress pushes one label toward node 1.
        assert_eq!(lsp.ingress_ftn.push.len(), 1);
        assert_eq!(lsp.ingress_ftn.out_iface, 1);
        // Node 1 swaps, node 2 pops (PHP), node 3 receives unlabeled.
        let l1 = lsp.hops[1].in_label.unwrap();
        assert!(matches!(lfibs[1].lookup(l1).unwrap().op, LabelOp::Swap(_)));
        let l2 = lsp.hops[2].in_label.unwrap();
        assert_eq!(lfibs[2].lookup(l2).unwrap().op, LabelOp::Pop);
        assert!(lsp.hops[3].in_label.is_none());
        assert_eq!(spaces[3].live(), 0);
    }

    #[test]
    fn non_php_egress_pops_its_own_label() {
        let (mut spaces, mut lfibs) = mk(3);
        let lsp = signal_explicit_lsp(&[0, 1, 2], &mut spaces, &mut lfibs, &iface, false);
        let l2 = lsp.hops[2].in_label.expect("egress label");
        let e = lfibs[2].lookup(l2).unwrap();
        assert_eq!(e.op, LabelOp::Pop);
        assert_eq!(e.out_iface, LOCAL_IFACE);
        assert_eq!(spaces[2].live(), 1);
    }

    #[test]
    fn two_lsps_share_nodes_without_label_collision() {
        let (mut spaces, mut lfibs) = mk(4);
        let a = signal_explicit_lsp(&[0, 1, 2, 3], &mut spaces, &mut lfibs, &iface, true);
        let b = signal_explicit_lsp(&[3, 2, 1, 0], &mut spaces, &mut lfibs, &iface, true);
        let al = a.hops[1].in_label.unwrap();
        let bl = b.hops[2].in_label.unwrap(); // both at node 1... wait, b path is 3,2,1,0: hops[2].node == 1
        assert_eq!(a.hops[1].node, b.hops[2].node);
        assert_ne!(al, bl, "same LSR must hand out distinct labels");
    }

    #[test]
    fn teardown_releases_everything() {
        let (mut spaces, mut lfibs) = mk(4);
        let lsp = signal_explicit_lsp(&[0, 1, 2, 3], &mut spaces, &mut lfibs, &iface, false);
        assert!(spaces.iter().map(crate::label::LabelSpace::live).sum::<u64>() > 0);
        lsp.tear_down(&mut spaces, &mut lfibs);
        assert_eq!(spaces.iter().map(crate::label::LabelSpace::live).sum::<u64>(), 0);
        assert!(lfibs.iter().all(crate::lfib::Lfib::is_empty));
    }

    #[test]
    #[should_panic(expected = "loop-free")]
    fn looping_route_rejected() {
        let (mut spaces, mut lfibs) = mk(3);
        signal_explicit_lsp(&[0, 1, 0], &mut spaces, &mut lfibs, &iface, true);
    }

    #[test]
    #[should_panic(expected = "at least ingress and egress")]
    fn degenerate_route_rejected() {
        let (mut spaces, mut lfibs) = mk(1);
        signal_explicit_lsp(&[0], &mut spaces, &mut lfibs, &iface, true);
    }
}
