//! Property-based tests for the MPLS substrate: LDP correctness on random
//! connected graphs and LFIB/explicit-LSP invariants.

use netsim_mpls::ldp::{Fec, LdpConfig, LdpDomain};
use netsim_mpls::lfib::{LabelOp, Nhlfe};
use netsim_mpls::{signal_explicit_lsp, LabelSpace, Lfib};
use proptest::prelude::*;

/// Generates a random connected undirected graph as an adjacency list:
/// a random spanning tree plus extra edges.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    (2..max_n)
        .prop_flat_map(|n| {
            let tree = proptest::collection::vec(any::<u64>(), n - 1);
            let extra = proptest::collection::vec((0..n, 0..n), 0..n);
            (Just(n), tree, extra)
        })
        .prop_map(|(n, tree, extra)| {
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
            let add = |adj: &mut Vec<Vec<usize>>, u: usize, v: usize| {
                if u != v && !adj[u].contains(&v) {
                    adj[u].push(v);
                    adj[v].push(u);
                }
            };
            for (i, r) in tree.iter().enumerate() {
                let u = i + 1;
                let v = (*r as usize) % u;
                add(&mut adj, u, v);
            }
            for (u, v) in extra {
                add(&mut adj, u, v);
            }
            adj
        })
}

/// Deterministic BFS next-hop over an adjacency list.
fn bfs_next_hop(adj: &[Vec<usize>]) -> impl Fn(usize, usize) -> Option<usize> + '_ {
    move |from, to| {
        if from == to {
            return None;
        }
        let n = adj.len();
        let mut dist = vec![usize::MAX; n];
        dist[to] = 0;
        let mut q = std::collections::VecDeque::from([to]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        adj[from].iter().copied().filter(|&v| dist[v] != usize::MAX).min_by_key(|&v| (dist[v], v))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On any connected graph, LDP converges and every (ingress, FEC) pair
    /// forwards to the right egress along a loop-free path, under both PHP
    /// settings.
    #[test]
    fn ldp_correct_on_random_graphs(adj in arb_graph(12), php in any::<bool>()) {
        let n = adj.len();
        let fecs: Vec<(Fec, usize)> = (0..n).map(|i| (Fec(i as u32), i)).collect();
        let nh = bfs_next_hop(&adj);
        let d = LdpDomain::run(&adj, &fecs, &nh, LdpConfig { php });
        for ingress in 0..n {
            for f in 0..n {
                if ingress == f {
                    continue;
                }
                let path = d.walk(&adj, ingress, Fec(f as u32));
                let path = path.expect("every FEC reachable on a connected graph");
                prop_assert_eq!(path[0], ingress);
                prop_assert_eq!(*path.last().unwrap(), f);
                // Loop-free.
                let mut seen = std::collections::HashSet::new();
                prop_assert!(path.iter().all(|&u| seen.insert(u)), "loop in {path:?}");
                // Hop-optimal (BFS metric).
                let mut dist = vec![usize::MAX; n];
                dist[f] = 0;
                let mut q = std::collections::VecDeque::from([f]);
                while let Some(u) = q.pop_front() {
                    for &v in &adj[u] {
                        if dist[v] == usize::MAX {
                            dist[v] = dist[u] + 1;
                            q.push_back(v);
                        }
                    }
                }
                prop_assert_eq!(path.len() - 1, dist[ingress], "path {:?} not shortest", path);
            }
        }
        // State sanity: per-node bindings ≤ FEC count; with PHP every
        // egress holds no label for its own FEC.
        for u in 0..n {
            prop_assert!(d.nodes[u].bindings.len() <= n);
        }
        if php {
            for (fec, egress) in &fecs {
                let b = d.nodes[*egress].bindings.get(fec).copied();
                prop_assert_eq!(b, Some(netsim_net::mpls::IMPLICIT_NULL));
            }
        }
    }

    /// Message count is monotone in FEC count on a fixed graph.
    #[test]
    fn ldp_messages_monotone_in_fecs(adj in arb_graph(10)) {
        let n = adj.len();
        let nh = bfs_next_hop(&adj);
        let run = |k: usize| {
            let fecs: Vec<(Fec, usize)> = (0..k).map(|i| (Fec(i as u32), i)).collect();
            LdpDomain::run(&adj, &fecs, &nh, LdpConfig::default()).messages
        };
        let m1 = run(1);
        let mn = run(n);
        prop_assert!(mn >= m1);
    }

    /// An explicit LSP signalled over any loop-free path installs a
    /// consistent swap chain: simulating the label operations hop by hop
    /// reaches the egress, and teardown frees every label.
    #[test]
    fn explicit_lsp_chain_consistent(len in 2usize..10, php in any::<bool>()) {
        let path: Vec<usize> = (0..len).collect();
        let mut spaces: Vec<LabelSpace> = (0..len).map(|_| LabelSpace::new()).collect();
        let mut lfibs: Vec<Lfib> = (0..len).map(|_| Lfib::new()).collect();
        let iface = |_u: usize, v: usize| v;
        let lsp = signal_explicit_lsp(&path, &mut spaces, &mut lfibs, &iface, php);

        // Follow the chain.
        let mut label = lsp.ingress_ftn.push.first().copied();
        let mut at = lsp.ingress_ftn.out_iface; // iface == next node id here
        let mut hops = 1;
        while let Some(l) = label {
            let e = lfibs[at].lookup(l).expect("chain installed");
            match e.op {
                LabelOp::Swap(out) => {
                    label = Some(out);
                    at = e.out_iface;
                    hops += 1;
                }
                LabelOp::Pop => {
                    label = None;
                    if e.out_iface != netsim_mpls::lfib::LOCAL_IFACE {
                        at = e.out_iface;
                        hops += 1;
                    }
                }
                LabelOp::SwapPush { .. } => prop_assert!(false, "explicit LSPs never SwapPush"),
            }
        }
        prop_assert_eq!(at, len - 1, "chain must end at the egress");
        prop_assert!(hops <= len);

        let live: u64 = spaces.iter().map(netsim_mpls::LabelSpace::live).sum();
        prop_assert_eq!(live as usize, if php { len - 2 } else { len - 1 });
        lsp.tear_down(&mut spaces, &mut lfibs);
        prop_assert_eq!(spaces.iter().map(netsim_mpls::LabelSpace::live).sum::<u64>(), 0);
        prop_assert!(lfibs.iter().all(netsim_mpls::Lfib::is_empty));
    }

    /// LFIB forward over arbitrary swap entries preserves EXP and
    /// decrements TTL by exactly one.
    #[test]
    fn lfib_swap_invariants(in_label in 16u32..4096, out_label in 16u32..4096, exp in 0u8..8, ttl in 2u8..255) {
        use netsim_net::{Layer, MplsLabel, Packet};
        use netsim_net::addr::ip;
        let mut lfib = Lfib::new();
        lfib.install(in_label, Nhlfe { op: LabelOp::Swap(out_label), out_iface: 1 });
        let mut p = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, netsim_net::Dscp::BE, 10);
        p.push_outer(Layer::Mpls(MplsLabel::new(in_label, exp, ttl)));
        let before_len = p.wire_len();
        let v = lfib.forward(&mut p);
        prop_assert_eq!(v, netsim_mpls::lfib::LfibVerdict::Forward { out_iface: 1 });
        let top = p.top_label().unwrap();
        prop_assert_eq!(top.label, out_label);
        prop_assert_eq!(top.exp, exp);
        prop_assert_eq!(top.ttl, ttl - 1);
        prop_assert_eq!(p.wire_len(), before_len, "swap never changes size");
    }
}
