//! Vendored, dependency-free subset of the `rand` crate: a seedable
//! small-state PRNG ([`rngs::SmallRng`]) plus the [`RngExt::random_range`]
//! sampler over integer and float ranges. Only the surface this workspace
//! uses is provided, so the workspace builds with no registry access.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! workloads and deterministic across platforms for a given seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A small, fast, seedable PRNG (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SmallRng {
        pub(crate) fn from_state(state: u64) -> Self {
            Self { state }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_state(seed)
    }
}

/// A range that a uniform sample can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Sample;

    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut rngs::SmallRng) -> Self::Sample;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Sample = $t;

            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (u128::from(rng.next_u64())) % span;
                #[allow(clippy::cast_possible_truncation)]
                {
                    self.start.wrapping_add(v as $t)
                }
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Sample = $t;

            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = (u128::from(rng.next_u64())) % span;
                #[allow(clippy::cast_possible_truncation)]
                {
                    lo.wrapping_add(v as $t)
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Sample = f64;

    fn sample(self, rng: &mut rngs::SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits -> [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt {
    /// Draws a uniform sample from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Sample;
}

impl RngExt for rngs::SmallRng {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Sample {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = a.random_range(5u32..17);
            assert!((5..17).contains(&x));
            assert_eq!(x, b.random_range(5u32..17));
            let f: f64 = a.random_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            b.next_u64();
            let full = a.random_range(0u32..=u32::MAX);
            assert_eq!(full, b.random_range(0u32..=u32::MAX));
        }
    }

    #[test]
    fn inclusive_hits_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.random_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
