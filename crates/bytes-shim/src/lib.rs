//! Vendored, dependency-free subset of the `bytes` crate: just [`Bytes`],
//! an immutable, cheaply cloneable byte buffer. Only the API surface this
//! workspace actually uses is provided, so the workspace builds with no
//! network access to a registry.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice (copied; the real crate borrows, but the
    /// observable behaviour is identical for readers).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self { data: Arc::from(v.as_bytes()) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.clone(), b);
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
