//! Vendored, dependency-free subset of the `bytes` crate: just [`Bytes`],
//! an immutable, cheaply cloneable byte buffer. Only the API surface this
//! workspace actually uses is provided, so the workspace builds with no
//! network access to a registry.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Size of the shared all-zero backing buffer used by [`Bytes::zeroed`].
const ZERO_CHUNK: usize = 1 << 16;

/// Lazily initialized shared zero buffer; every `Bytes::zeroed` call up to
/// [`ZERO_CHUNK`] bytes is a reference-count bump into this allocation.
static ZEROS: OnceLock<Arc<[u8]>> = OnceLock::new();

/// An immutable, reference-counted byte buffer. Cloning is O(1). A `Bytes`
/// is a view (`offset`, `len`) into a shared backing allocation, so views
/// of a common buffer (e.g. zero-filled payloads) share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]), off: 0, len: 0 }
    }

    /// Wraps a static byte slice (copied; the real crate borrows, but the
    /// observable behaviour is identical for readers).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let len = data.len();
        Self { data: Arc::from(data), off: 0, len }
    }

    /// `len` zero bytes. Allocation-free for lengths up to 64 KiB: the view
    /// aliases one shared zero buffer, which is what makes synthetic-payload
    /// packet construction cheap on the simulator hot path.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        if len <= ZERO_CHUNK {
            let data = ZEROS.get_or_init(|| Arc::from(vec![0u8; ZERO_CHUNK])).clone();
            Self { data, off: 0, len }
        } else {
            Self::from(vec![0u8; len])
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self { data: Arc::from(v), off: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}

// Comparisons and hashing go through the visible slice, never the backing
// storage, so views with different offsets but equal contents are equal
// (and `Hash` stays consistent with `Borrow<[u8]>`).
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.as_slice() == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.clone(), b);
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }

    #[test]
    fn zeroed_shares_storage_and_compares_by_content() {
        let a = Bytes::zeroed(100);
        let b = Bytes::zeroed(100);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&x| x == 0));
        assert_eq!(a, b);
        assert_eq!(a, Bytes::from(vec![0u8; 100]));
        // Both views alias the one shared zero chunk.
        assert!(Arc::ptr_eq(&a.data, &b.data));
        // Beyond the chunk size a dedicated allocation is made.
        let big = Bytes::zeroed(ZERO_CHUNK + 1);
        assert_eq!(big.len(), ZERO_CHUNK + 1);
        assert!(big.iter().all(|&x| x == 0));
    }

    #[test]
    fn hash_matches_borrowed_slice() {
        use std::collections::HashMap;
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from(vec![0u8; 4]), 7);
        // Lookup through Borrow<[u8]> must find a zeroed-view key equal.
        assert_eq!(m.get(&[0u8, 0, 0, 0][..]), Some(&7));
        assert_eq!(m.get(Bytes::zeroed(4).as_ref()), Some(&7));
    }
}
