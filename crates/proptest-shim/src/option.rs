//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<T>` from an inner strategy.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match the real crate's bias toward Some (3 in 4 here).
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `of(inner)`: `None` sometimes, `Some(value)` usually.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
