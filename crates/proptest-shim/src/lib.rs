//! Vendored, dependency-free subset of the `proptest` property-testing
//! framework, so the workspace builds and tests with no registry access.
//!
//! Implements the authoring API the workspace tests use — `proptest!`,
//! `prop_assert*!`, `prop_assume!`, `prop_oneof!`, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, `any::<T>()`, range strategies,
//! [`collection::vec`], and [`option::of`] — over a deterministic
//! per-test-seeded generator. Failing inputs are reported via the panic
//! message; there is no shrinking (the first counterexample is printed
//! as generated).

#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng, TestRunner};

/// Fails the current test case with an `assert!`-style message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Discards the current test case (it counts as neither pass nor fail)
/// when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            std::panic::panic_any($crate::test_runner::CaseRejected);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site, as in
/// modern proptest style) that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&mut |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_values_obey_strategies(
            x in 3u8..9,
            y in evens(),
            v in crate::collection::vec(any::<u8>(), 2..5),
            o in crate::option::of(1u32..=3),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert_eq!(y % 2, 0);
            prop_assert!(v.len() >= 2 && v.len() < 5);
            if let Some(i) = o {
                prop_assert!((1..=3).contains(&i));
            }
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn assume_discards_cases(a in any::<u16>()) {
            prop_assume!(a.is_multiple_of(2));
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn flat_map_chains_dependent_strategies() {
        let strat = (2usize..6).prop_flat_map(|n| crate::collection::vec(0usize..n, n..n + 1));
        let mut rng = crate::TestRng::new(42);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for &x in &v {
                assert!(x < v.len());
            }
        }
    }
}
