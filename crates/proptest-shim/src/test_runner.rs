//! The deterministic case runner behind the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Panic payload used by `prop_assume!` (and filters) to discard a case.
pub struct CaseRejected;

/// Runner configuration. Only `cases` is meaningful; the struct mirrors
/// the real crate's shape far enough for `with_cases` + `default`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum discarded cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 4096 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Drives one property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner whose stream is seeded from the test's full path,
    /// so every test is deterministic yet decorrelated from its siblings.
    /// `PROPTEST_SEED` perturbs all tests at once for re-fuzzing.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            for b in extra.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        Self { config, rng: TestRng::new(seed), name }
    }

    /// Runs `case` until `config.cases` cases pass. Assumption rejections
    /// retry with fresh input; any other panic is reported with the case
    /// number and re-raised.
    pub fn run(&mut self, case: &mut dyn FnMut(&mut TestRng)) {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            // Snapshot so a failure report could be replayed by seed.
            let case_rng = self.rng.clone();
            self.rng.next_u64();
            match catch_unwind(AssertUnwindSafe(|| {
                let mut rng = case_rng;
                case(&mut rng);
            })) {
                Ok(()) => passed += 1,
                Err(payload) if payload.is::<CaseRejected>() => {
                    rejected += 1;
                    assert!(
                        rejected <= self.config.max_global_rejects,
                        "{}: too many prop_assume! rejections ({rejected})",
                        self.name
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest: {} failed at case {} (after {} rejects)",
                        self.name,
                        passed + 1,
                        rejected
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}
