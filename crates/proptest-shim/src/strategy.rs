//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; rejected values discard the test case.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Local retries first; give up on pathological filters by
        // discarding the whole test case.
        for _ in 0..100 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        let _ = self.whence;
        std::panic::panic_any(crate::test_runner::CaseRejected)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`: `any::<u32>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let v = u128::from(rng.next_u64()) % span;
                self.start.wrapping_add(v as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = u128::from(rng.next_u64()) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        #[allow(clippy::cast_precision_loss)]
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
