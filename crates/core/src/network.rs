//! The provider-network builder: turns a backbone topology into a running
//! simulated MPLS VPN service.
//!
//! Construction order (all deterministic):
//!
//! 1. IGP convergence over the backbone ([`netsim_routing::Igp`]).
//! 2. LDP label distribution for one tunnel FEC per PE
//!    ([`netsim_mpls::LdpDomain`]); the resulting LFIBs are moved into the
//!    simulated routers.
//! 3. Backbone links are materialized in topology order, so simulator
//!    interface numbers equal topology adjacency positions.
//! 4. VPNs and sites are added through [`ProviderNetwork::new_vpn`] /
//!    [`ProviderNetwork::add_site`]; the BGP/MPLS fabric distributes the
//!    routes and the builder installs them into PE data planes.

use std::collections::HashMap;

use netsim_mpls::ldp::{Fec, LdpConfig, LdpDomain};
use netsim_net::{Ip, Packet, Prefix};
use netsim_obs::{FlightRecorder, MetricsRegistry};
use netsim_qos::sched::PriorityScheduler;
use netsim_qos::{
    queue::class_by_exp_or_dscp, ClassOf, DrrScheduler, FifoQueue, MarkingPolicy, Nanos,
    QueueDiscipline, RedParams, RedQueue, WfqScheduler,
};
use netsim_routing::{
    BgpVpnFabric, DistributionMode, Igp, RouteDistinguisher, RouteTarget, Topology, VrfHandle,
};
use netsim_sim::{
    CbrSource, IfaceId, LinkConfig, LinkId, Network, NodeId, OnOffSource, PoissonSource, Sink,
    SourceConfig,
};

use std::cell::RefCell;
use std::rc::Rc;

use crate::control::{ControlDb, ControlHandle, ControlMode, CtrlMsg, CtrlStats};
use crate::router::{CeRouter, CoreRouter, PeRouter, VrfRoute};
use crate::trace::TraceLog;

/// Handle to a VPN created on a provider network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VpnId(pub usize);

/// Handle to a customer site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SiteId(pub usize);

/// Scheduler family used by the DiffServ core profile (ablation knob for
/// experiment Q1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DsSched {
    /// Strict priority by EXP (EF rides band 5).
    Priority,
    /// WFQ with weights rising with EXP.
    Wfq,
    /// DRR with quanta rising with EXP.
    Drr,
}

/// QoS profile applied to every backbone link egress.
#[derive(Clone, Copy, Debug)]
pub enum CoreQos {
    /// One best-effort FIFO (the paper's "IP VPNs cannot guarantee QoS"
    /// configuration).
    BestEffort {
        /// Buffer size per egress, bytes.
        cap_bytes: usize,
    },
    /// DiffServ-over-MPLS: classful scheduling on the EXP bits, RED on the
    /// assured-forwarding bands.
    DiffServ {
        /// Total buffer per egress, bytes.
        cap_bytes: usize,
        /// Scheduler family.
        sched: DsSched,
    },
}

impl CoreQos {
    fn make_qdisc(&self, seed: u64) -> Box<dyn QueueDiscipline> {
        match *self {
            CoreQos::BestEffort { cap_bytes } => Box::new(FifoQueue::new(cap_bytes)),
            CoreQos::DiffServ { cap_bytes, sched } => {
                let class: ClassOf = class_by_exp_or_dscp();
                match sched {
                    DsSched::Priority => {
                        let per_band = cap_bytes / 8;
                        let bands: Vec<Box<dyn QueueDiscipline>> = (0..8)
                            .map(|exp| -> Box<dyn QueueDiscipline> {
                                match exp {
                                    // AF bands (1..=4): RED keeps queues short.
                                    1..=4 => Box::new(RedQueue::new(
                                        per_band,
                                        RedParams::new(per_band / 4, per_band * 3 / 4),
                                        seed ^ exp as u64,
                                        12_000,
                                    )),
                                    // EF (5): shallow buffer for low delay.
                                    5 => Box::new(FifoQueue::new(per_band / 2)),
                                    _ => Box::new(FifoQueue::new(per_band)),
                                }
                            })
                            .collect();
                        Box::new(PriorityScheduler::new(bands, class))
                    }
                    DsSched::Wfq => {
                        // Weights: BE=1, AF1..4 = 2,4,6,8, EF=32, control=4.
                        let weights = [1u64, 2, 4, 6, 8, 32, 4, 4];
                        Box::new(WfqScheduler::new(&weights, cap_bytes / 8, class))
                    }
                    DsSched::Drr => {
                        let quanta = [1500usize, 3000, 6000, 9000, 12000, 48000, 6000, 6000];
                        Box::new(DrrScheduler::new(&quanta, cap_bytes / 8, class))
                    }
                }
            }
        }
    }
}

/// Builds a core-link egress discipline from a [`CoreQos`] profile (shared
/// with the baseline networks so comparisons hold the queueing constant).
pub fn make_core_qdisc(q: &CoreQos, seed: u64) -> Box<dyn QueueDiscipline> {
    q.make_qdisc(seed)
}

/// Everything known about one customer site.
#[derive(Debug)]
pub struct SiteInfo {
    /// The VPN the site belongs to.
    pub vpn: VpnId,
    /// PE ordinal the site is homed on.
    pub pe: usize,
    /// The site's address block.
    pub prefix: Prefix,
    /// CE node in the simulator.
    pub ce: NodeId,
    /// Access link (CE↔PE); direction 0 is CE→PE.
    pub access_link: LinkId,
    /// PE-side interface index of the access link.
    pub pe_iface: usize,
}

pub(crate) struct VpnInfo {
    pub(crate) name: String,
    pub(crate) rt: RouteTarget,
    pub(crate) rd: RouteDistinguisher,
}

/// Builder for a [`ProviderNetwork`].
pub struct BackboneBuilder {
    topo: Topology,
    pes: Vec<usize>,
    link_delay_ns: Nanos,
    php: bool,
    core_qos: CoreQos,
    access_rate_bps: u64,
    access_delay_ns: Nanos,
    distribution: DistributionMode,
    trace: Option<TraceLog>,
    seed: u64,
    detect_ns: Nanos,
    control_mode: ControlMode,
}

impl BackboneBuilder {
    /// Starts a builder over `topo`; `pes` lists the topology nodes acting
    /// as provider edges (the rest are P routers).
    pub fn new(topo: Topology, pes: Vec<usize>) -> Self {
        assert!(!pes.is_empty(), "at least one PE required");
        assert!(pes.iter().all(|&p| p < topo.node_count()), "PE out of range");
        BackboneBuilder {
            topo,
            pes,
            link_delay_ns: 1_000_000, // 1 ms per backbone hop
            php: true,
            core_qos: CoreQos::BestEffort { cap_bytes: 256 * 1024 },
            access_rate_bps: 100_000_000,
            access_delay_ns: 100_000,
            distribution: DistributionMode::RouteReflector,
            trace: None,
            seed: 1,
            detect_ns: 50_000_000, // 50 ms: ~3 missed BFD hellos at slow timers
            control_mode: ControlMode::Oracle,
        }
    }

    /// Selects the control-plane mode: the out-of-band [`ControlMode::Oracle`]
    /// (default, historical behavior) or the in-band, message-driven
    /// [`ControlMode::InBand`].
    pub fn control_mode(mut self, m: ControlMode) -> Self {
        self.control_mode = m;
        self
    }

    /// Sets the link-failure detection delay (BFD hold time): how long
    /// after a cut the adjacent routers learn the interface is down and
    /// fast reroute can switch over.
    pub fn detection(mut self, ns: Nanos) -> Self {
        self.detect_ns = ns;
        self
    }

    /// Sets the backbone propagation delay per link.
    pub fn link_delay(mut self, ns: Nanos) -> Self {
        self.link_delay_ns = ns;
        self
    }

    /// Enables or disables penultimate-hop popping.
    pub fn php(mut self, on: bool) -> Self {
        self.php = on;
        self
    }

    /// Sets the backbone QoS profile.
    pub fn core_qos(mut self, q: CoreQos) -> Self {
        self.core_qos = q;
        self
    }

    /// Sets access link rate and delay for subsequently added sites.
    pub fn access(mut self, rate_bps: u64, delay_ns: Nanos) -> Self {
        self.access_rate_bps = rate_bps;
        self.access_delay_ns = delay_ns;
        self
    }

    /// Sets the iBGP distribution mode.
    pub fn distribution(mut self, d: DistributionMode) -> Self {
        self.distribution = d;
        self
    }

    /// Attaches a hop-trace log to every router.
    pub fn trace(mut self, t: TraceLog) -> Self {
        self.trace = Some(t);
        self
    }

    /// Seeds the RED/WRED queues (determinism knob).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Runs the control planes and materializes the simulated network.
    pub fn build(self) -> ProviderNetwork {
        let igp = Igp::converge(&self.topo);
        let adjacency = self.topo.adjacency_lists();
        let fecs: Vec<(Fec, usize)> =
            self.pes.iter().enumerate().map(|(k, &pe)| (Fec(k as u32), pe)).collect();
        let nh = |u: usize, v: usize| igp.next_hop(u, v);
        let mut ldp = LdpDomain::run(&adjacency, &fecs, &nh, LdpConfig { php: self.php });

        let mut net = Network::new();
        // Observability is always on: one flight recorder shared by the
        // engine and every router, one registry for named series.
        let recorder = FlightRecorder::default();
        net.set_recorder(recorder.clone());
        let mut node_ids = Vec::with_capacity(self.topo.node_count());
        let pe_ordinal: HashMap<usize, usize> =
            self.pes.iter().enumerate().map(|(k, &pe)| (pe, k)).collect();
        for u in 0..self.topo.node_count() {
            let lfib = std::mem::take(&mut ldp.nodes[u].lfib);
            let id = if let Some(&k) = pe_ordinal.get(&u) {
                let mut pe = PeRouter::new(format!("PE{k}"), lfib, self.topo.degree(u));
                if let Some(t) = &self.trace {
                    pe = pe.with_trace(t.clone());
                }
                pe.set_recorder(recorder.clone());
                net.add_node(Box::new(pe))
            } else {
                let mut p = CoreRouter::new(format!("P{u}"), lfib);
                if let Some(t) = &self.trace {
                    p = p.with_trace(t.clone());
                }
                p.set_recorder(recorder.clone());
                net.add_node(Box::new(p))
            };
            node_ids.push(id);
        }
        // Materialize backbone links in id order: interface numbers now
        // equal adjacency-list positions, which LDP's tables assume.
        for l in 0..self.topo.link_count() {
            let (u, v, attrs) = self.topo.link(l);
            let cfg = LinkConfig::new(attrs.capacity_bps, self.link_delay_ns);
            let qa = self.core_qos.make_qdisc(self.seed.wrapping_add(l as u64 * 2));
            let qb = self.core_qos.make_qdisc(self.seed.wrapping_add(l as u64 * 2 + 1));
            net.connect_with_qdiscs(node_ids[u], node_ids[v], cfg, cfg, qa, qb);
        }

        let fabric = BgpVpnFabric::new(self.pes.len(), self.distribution);
        // In-band mode: every backbone router shares the control database,
        // seeded from the converged bring-up state (the one permitted
        // oracle download); everything after this travels as messages.
        let control = match self.control_mode {
            ControlMode::Oracle => None,
            ControlMode::InBand => {
                let db = Rc::new(RefCell::new(ControlDb::new(&self.topo, &self.pes, &igp, &ldp)));
                for (u, &nid) in node_ids.iter().enumerate().take(self.topo.node_count()) {
                    if pe_ordinal.contains_key(&u) {
                        net.node_mut::<PeRouter>(nid).set_control(db.clone(), u);
                    } else {
                        net.node_mut::<CoreRouter>(nid).set_control(db.clone(), u);
                    }
                }
                Some(db)
            }
        };
        ProviderNetwork {
            net,
            topo: self.topo,
            igp,
            ldp,
            fabric,
            node_ids,
            pes: self.pes,
            vpns: Vec::new(),
            sites: Vec::new(),
            vrf_handles: HashMap::new(),
            access_rate_bps: self.access_rate_bps,
            access_delay_ns: self.access_delay_ns,
            trace: self.trace,
            php: self.php,
            failed_links: std::collections::HashSet::new(),
            detect_ns: self.detect_ns,
            core_qos: self.core_qos,
            extranets: Vec::new(),
            ef_contracts: Vec::new(),
            recorder,
            registry: MetricsRegistry::new(),
            probes: Vec::new(),
            control,
            no_lsp_to_egress: 0,
            sync_route_pushes: 0,
        }
    }
}

/// One row of [`ProviderNetwork::vrf_digest`]: the prefix plus `None`
/// for a locally attached route or `Some((egress_pe, vpn_label,
/// tunnel_path))` for a remote one.
pub type VrfDigestRow = (Prefix, Option<(usize, u32, Option<Vec<usize>>)>);

/// A running MPLS VPN provider network.
pub struct ProviderNetwork {
    /// The simulator (public: experiments drive it directly).
    pub net: Network,
    /// The backbone topology.
    pub topo: Topology,
    /// Converged IGP.
    pub igp: Igp,
    /// Converged LDP domain (FTN tables; LFIBs have moved into routers).
    pub ldp: LdpDomain,
    /// The BGP/MPLS VPN route fabric.
    pub fabric: BgpVpnFabric,
    pub(crate) node_ids: Vec<NodeId>,
    pub(crate) pes: Vec<usize>,
    pub(crate) vpns: Vec<VpnInfo>,
    /// All sites added so far, indexed by [`SiteId`].
    pub sites: Vec<SiteInfo>,
    pub(crate) vrf_handles: HashMap<(usize, VpnId), (VrfHandle, usize)>,
    access_rate_bps: u64,
    access_delay_ns: Nanos,
    trace: Option<TraceLog>,
    php: bool,
    failed_links: std::collections::HashSet<usize>,
    pub(crate) detect_ns: Nanos,
    pub(crate) core_qos: CoreQos,
    pub(crate) extranets: Vec<(VpnId, VpnId)>,
    pub(crate) ef_contracts: Vec<netsim_verify::EfContract>,
    pub(crate) recorder: FlightRecorder,
    pub(crate) registry: MetricsRegistry,
    pub(crate) probes: Vec<crate::obs::ProbeSpec>,
    pub(crate) control: Option<ControlHandle>,
    /// Oracle-path count of route installs skipped because the PE had no
    /// LSP toward the egress (partition degradation; never a panic).
    no_lsp_to_egress: u64,
    /// Route installs performed by the oracle full-table sync — the
    /// O(routes × VRFs) cost the in-band mode removes from the hot path.
    sync_route_pushes: u64,
}

impl ProviderNetwork {
    /// Whether the backbone runs penultimate-hop popping.
    pub fn php(&self) -> bool {
        self.php
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Simulator node of PE ordinal `k`.
    pub fn pe_node(&self, k: usize) -> NodeId {
        self.node_ids[self.pes[k]]
    }

    /// Simulator node of backbone topology node `u`.
    pub fn backbone_node(&self, u: usize) -> NodeId {
        self.node_ids[u]
    }

    /// Declares a new VPN; its sites will all import/export one route
    /// target.
    pub fn new_vpn(&mut self, name: impl Into<String>) -> VpnId {
        let id = VpnId(self.vpns.len());
        self.vpns.push(VpnInfo {
            name: name.into(),
            rt: RouteTarget(100 + id.0 as u64),
            rd: RouteDistinguisher::new(65000, 1 + id.0 as u32),
        });
        id
    }

    /// The display name of a VPN.
    pub fn vpn_name(&self, vpn: VpnId) -> &str {
        &self.vpns[vpn.0].name
    }

    /// Adds a customer site: a CE homed on PE ordinal `pe`, owning
    /// `prefix`, optionally with a CPE marking policy. This is the paper's
    /// "one PE touch" provisioning action.
    pub fn add_site(
        &mut self,
        vpn: VpnId,
        pe: usize,
        prefix: Prefix,
        marking: Option<MarkingPolicy>,
    ) -> SiteId {
        assert!(pe < self.pes.len(), "unknown PE ordinal {pe}");
        let pe_topo = self.pes[pe];
        let pe_node = self.node_ids[pe_topo];

        // Ensure the VRF exists on this PE (control plane + data plane).
        let (handle, vrf_idx) = match self.vrf_handles.get(&(pe, vpn)) {
            Some(&hv) => hv,
            None => {
                let info = &self.vpns[vpn.0];
                let handle = self.fabric.add_vrf(pe, info.rd, vec![info.rt], vec![info.rt]);
                let name = info.name.clone();
                let vrf_idx = self.net.node_mut::<PeRouter>(pe_node).add_vrf(name.clone());
                let fwd = self.registry.counter(&format!("vrf.{name}.pe{pe}.forwarded"));
                self.net.node_mut::<PeRouter>(pe_node).vrfs[vrf_idx].set_forward_counter(fwd);
                self.fabric.refresh_vrf(handle);
                if self.control.is_some() {
                    // In-band: a brand-new VRF gets its initial RIB
                    // download directly (the one full pull the tentpole
                    // permits at bring-up); afterwards only deltas arrive.
                    let routes: Vec<(Prefix, netsim_routing::RemoteRoute)> =
                        self.fabric.routes(handle).iter().map(|(p, r)| (p, *r)).collect();
                    for (prefix, r) in routes {
                        let ftn = self.control.as_ref().and_then(|db| {
                            db.borrow().view_ftn(pe_topo, r.egress_pe as u32).cloned()
                        });
                        let Some(ftn) = ftn else {
                            self.no_lsp_to_egress += 1;
                            continue;
                        };
                        self.net.node_mut::<PeRouter>(pe_node).install_remote_route(
                            vrf_idx,
                            prefix,
                            r.egress_pe,
                            r.vpn_label,
                            ftn,
                        );
                    }
                }
                self.vrf_handles.insert((pe, vpn), (handle, vrf_idx));
                (handle, vrf_idx)
            }
        };

        // CE device + access link (CE first so its uplink is iface 0).
        let mut ce =
            CeRouter::new(format!("CE-{}-s{}", self.vpns[vpn.0].name, self.sites.len()), marking);
        if let Some(t) = &self.trace {
            ce = ce.with_trace(t.clone());
        }
        ce.set_recorder(self.recorder.clone());
        let ce_id = self.net.add_node(Box::new(ce));
        let cfg = LinkConfig::new(self.access_rate_bps, self.access_delay_ns);
        let (access_link, _ce_if, pe_if) = self.net.connect(ce_id, pe_node, cfg);
        let declared = self.net.node_mut::<PeRouter>(pe_node).attach_customer_iface(vrf_idx);
        assert_eq!(declared, pe_if.0, "PE interface numbering out of sync");

        // Advertise and install.
        let label = self.fabric.advertise(handle, prefix);
        {
            let per = self.net.node_mut::<PeRouter>(pe_node);
            per.install_local_route(vrf_idx, prefix, pe_if.0);
            per.install_vpn_label(label, vrf_idx);
        }
        if self.control.is_some() {
            // In-band: the join cost is O(delta) — one BGP update (VPN
            // label piggybacked, §4) per importing PE, each travelling
            // hop-by-hop as a CS6 control packet. No full-table resync.
            for ((pe2, _vpn2), (h2, v2)) in self.sorted_vrf_handles() {
                if pe2 == pe {
                    continue;
                }
                let selected = self
                    .fabric
                    .routes(h2)
                    .get(prefix)
                    .is_some_and(|r| r.egress_pe == pe && r.vpn_label == label);
                if !selected {
                    continue;
                }
                self.inject_bgp(
                    pe,
                    CtrlMsg::BgpUpdate {
                        target: pe2,
                        vrf_idx: v2,
                        prefix,
                        egress_pe: pe,
                        vpn_label: label,
                    },
                );
            }
        } else {
            self.sync_remote_routes();
        }

        let site = SiteId(self.sites.len());
        self.sites.push(SiteInfo { vpn, pe, prefix, ce: ce_id, access_link, pe_iface: pe_if.0 });
        site
    }

    /// Replaces a site's uplink (CE→PE) queueing with a token-bucket
    /// shaper at `rate_bps` — the access-contract enforcement knob. Any
    /// packets queued in the old discipline are discarded, so call before
    /// traffic starts.
    pub fn shape_site_uplink(&mut self, site: SiteId, rate_bps: u64, burst_bytes: u64) {
        let link = self.sites[site.0].access_link;
        let shaped = netsim_qos::ShapedQueue::new(
            Box::new(FifoQueue::new(256 * 1024)),
            rate_bps,
            burst_bytes,
        );
        self.net.set_qdisc(link, 0, Box::new(shaped));
    }

    /// Detaches a site: withdraws its prefix from the fabric, removes the
    /// homing PE's local route and VPN-label dispatch, and takes the
    /// access link down. If the same prefix is still advertised from
    /// another PE (a dual-homed site), every importer fails over to the
    /// surviving home.
    pub fn detach_site(&mut self, site: SiteId) {
        let (vpn, pe, prefix, access_link, pe_iface) = {
            let s = &self.sites[site.0];
            (s.vpn, s.pe, s.prefix, s.access_link, s.pe_iface)
        };
        let (handle, vrf_idx) = self.vrf_handles[&(pe, vpn)];
        // The VPN label this home advertised for the prefix.
        let label =
            self.fabric.local_routes(handle).iter().find(|(p, _)| *p == prefix).map(|(_, l)| *l);
        // In-band: snapshot every importer's current selection so the
        // withdrawal becomes a per-importer delta message.
        let handles = self.sorted_vrf_handles();
        let before: Vec<Option<(usize, u32)>> = if self.control.is_some() {
            handles
                .iter()
                .map(|&((_, _), (h2, _))| {
                    self.fabric.routes(h2).get(prefix).map(|r| (r.egress_pe, r.vpn_label))
                })
                .collect()
        } else {
            Vec::new()
        };
        self.fabric.withdraw(handle, prefix);
        {
            let per = self.net.node_mut::<PeRouter>(self.pe_node(pe));
            per.vrfs[vrf_idx].fib.remove(prefix);
            if let Some(l) = label {
                per.vpn_ilm.remove(&l);
            }
        }
        self.net.set_link_enabled(access_link, false);
        let _ = pe_iface;
        if self.control.is_some() {
            // The detaching PE itself fails over locally (it is the one
            // touched device); every other importer whose selection
            // changed gets a withdraw message carrying the replacement
            // best path, if any.
            if let Some(r) = self.fabric.routes(handle).get(prefix).copied() {
                let pe_topo = self.pes[pe];
                let ftn = self
                    .control
                    .as_ref()
                    .and_then(|db| db.borrow().view_ftn(pe_topo, r.egress_pe as u32).cloned());
                if let Some(ftn) = ftn {
                    let node = self.pe_node(pe);
                    self.net.node_mut::<PeRouter>(node).install_remote_route(
                        vrf_idx,
                        prefix,
                        r.egress_pe,
                        r.vpn_label,
                        ftn,
                    );
                } else {
                    self.no_lsp_to_egress += 1;
                }
            }
            for (i, ((pe2, _vpn2), (h2, v2))) in handles.iter().copied().enumerate() {
                if pe2 == pe {
                    continue;
                }
                let now = self.fabric.routes(h2).get(prefix).map(|r| (r.egress_pe, r.vpn_label));
                if now == before[i] {
                    continue;
                }
                self.inject_bgp(
                    pe,
                    CtrlMsg::BgpWithdraw { target: pe2, vrf_idx: v2, prefix, replacement: now },
                );
            }
        } else {
            // Oracle: drop data-plane routes that no longer exist in the
            // fabric, then install the failover selections.
            for ((pe2, vpn2), (h2, v2)) in handles {
                if vpn2 != vpn || pe2 == pe {
                    continue;
                }
                let still_local = self.fabric.local_routes(h2).iter().any(|(p, _)| *p == prefix);
                if !still_local && self.fabric.routes(h2).get(prefix).is_none() {
                    let node = self.pe_node(pe2);
                    self.net.node_mut::<PeRouter>(node).vrfs[v2].fib.remove(prefix);
                }
            }
            self.sync_remote_routes();
        }
    }

    /// All (pe, vpn) → (handle, vrf index) pairs in a deterministic order.
    fn sorted_vrf_handles(&self) -> Vec<((usize, VpnId), (VrfHandle, usize))> {
        let mut v: Vec<((usize, VpnId), (VrfHandle, usize))> =
            self.vrf_handles.iter().map(|(&k, &v)| (k, v)).collect();
        v.sort_by_key(|&((pe, vpn), _)| (pe, vpn.0));
        v
    }

    /// Originates an in-band BGP control message at PE `origin_pe`,
    /// injecting it toward its target along the origin's current view of
    /// the shortest path. No-op in Oracle mode or when the target is
    /// unreachable (counted as undeliverable).
    fn inject_bgp(&mut self, origin_pe: usize, msg: CtrlMsg) {
        let Some(db) = &self.control else { return };
        let origin_node = self.pes[origin_pe];
        if let Some((iface, pkt)) = db.borrow_mut().prepare_bgp_from(origin_node, msg) {
            self.net.inject(self.node_ids[origin_node], iface, pkt);
        }
    }

    /// Pushes the fabric's current imported routes into every PE data
    /// plane. Called automatically by [`ProviderNetwork::add_site`].
    pub fn sync_remote_routes(&mut self) {
        let handles: Vec<((usize, VpnId), (VrfHandle, usize))> =
            self.vrf_handles.iter().map(|(&k, &v)| (k, v)).collect();
        for ((pe, _vpn), (handle, vrf_idx)) in handles {
            let pe_topo = self.pes[pe];
            let pe_node = self.node_ids[pe_topo];
            let routes: Vec<(Prefix, netsim_routing::RemoteRoute)> =
                self.fabric.routes(handle).iter().map(|(p, r)| (p, *r)).collect();
            for (prefix, r) in routes {
                let Some(ftn) = self.ldp.nodes[pe_topo].ftn.get(&Fec(r.egress_pe as u32)) else {
                    // No LSP toward the egress (a partitioned PE, or a
                    // healthy-looking fabric ahead of reconvergence):
                    // leave any existing route in place and count the
                    // degradation instead of aborting the run.
                    self.no_lsp_to_egress += 1;
                    continue;
                };
                let ftn = ftn.clone();
                self.sync_route_pushes += 1;
                self.net.node_mut::<PeRouter>(pe_node).install_remote_route(
                    vrf_idx,
                    prefix,
                    r.egress_pe,
                    r.vpn_label,
                    ftn,
                );
            }
        }
    }

    /// Attaches a measuring sink host at `site` answering for
    /// `host_prefix` (must lie inside the site prefix). Returns the sink's
    /// node id.
    pub fn attach_sink(&mut self, site: SiteId, host_prefix: Prefix) -> NodeId {
        let info = &self.sites[site.0];
        assert!(info.prefix.overlaps(host_prefix), "host prefix outside the site block");
        let ce = info.ce;
        let sink = self.net.add_node(Box::new(Sink::new()));
        let cfg = LinkConfig::new(1_000_000_000, 10_000);
        let (_l, _sink_if, ce_if) = self.net.connect(sink, ce, cfg);
        self.net.node_mut::<CeRouter>(ce).add_host_route(host_prefix, ce_if.0);
        sink
    }

    /// Attaches a CBR source host at `site` sending per `cfg` every
    /// `interval` ns (bounded to `count` packets if given); arms its kick
    /// timer at t=0. Returns the source node id.
    pub fn attach_cbr_source(
        &mut self,
        site: SiteId,
        cfg: SourceConfig,
        interval: Nanos,
        count: Option<u64>,
    ) -> NodeId {
        let src = self.net.add_node(Box::new(CbrSource::new(cfg, interval, count)));
        self.wire_source(site, src);
        self.net.arm_timer(src, 0, 0);
        src
    }

    /// Attaches a Poisson source host (mean gap `mean_interval`, stops at
    /// `until` if given).
    pub fn attach_poisson_source(
        &mut self,
        site: SiteId,
        cfg: SourceConfig,
        mean_interval: Nanos,
        seed: u64,
        until: Option<Nanos>,
    ) -> NodeId {
        let src = self.net.add_node(Box::new(PoissonSource::new(cfg, mean_interval, seed, until)));
        self.wire_source(site, src);
        self.net.arm_timer(src, 0, 0);
        src
    }

    /// Attaches a bursty on-off source host.
    #[allow(clippy::too_many_arguments)] // mirrors the OnOffSource constructor
    pub fn attach_onoff_source(
        &mut self,
        site: SiteId,
        cfg: SourceConfig,
        interval: Nanos,
        mean_on: Nanos,
        mean_off: Nanos,
        seed: u64,
        until: Option<Nanos>,
    ) -> NodeId {
        let src = self
            .net
            .add_node(Box::new(OnOffSource::new(cfg, interval, mean_on, mean_off, seed, until)));
        self.wire_source(site, src);
        self.net.arm_timer(src, 0, 1); // token 1 = toggle ON
        src
    }

    /// Attaches a closed-loop TCP-like source at `site`. Unlike the open-
    /// loop sources, its host address gets a return route on the CE so
    /// ACKs can reach it. `ecn` marks segments ECT(0) and reacts to echoed
    /// CE. Returns the source node id.
    pub fn attach_tcp_source(
        &mut self,
        site: SiteId,
        cfg: SourceConfig,
        until: Option<Nanos>,
        ecn: bool,
    ) -> NodeId {
        let ce = self.sites[site.0].ce;
        let src_addr = cfg.src;
        let mut tcp = netsim_sim::TcpSource::new(cfg, until);
        if ecn {
            tcp = tcp.with_ecn();
        }
        let src = self.net.add_node(Box::new(tcp));
        let link = LinkConfig::new(1_000_000_000, 10_000);
        let (_l, _s_if, ce_if) = self.net.connect(src, ce, link);
        self.net.node_mut::<CeRouter>(ce).add_host_route(Prefix::host(src_addr), ce_if.0);
        self.net.arm_timer(src, 0, 0);
        src
    }

    /// Attaches an acking TCP sink serving `host_prefix` at `site`.
    pub fn attach_tcp_sink(&mut self, site: SiteId, host_prefix: Prefix) -> NodeId {
        let info = &self.sites[site.0];
        assert!(info.prefix.overlaps(host_prefix), "host prefix outside the site block");
        let ce = info.ce;
        let sink = self.net.add_node(Box::new(netsim_sim::TcpSink::new()));
        let link = LinkConfig::new(1_000_000_000, 10_000);
        let (_l, _s_if, ce_if) = self.net.connect(sink, ce, link);
        self.net.node_mut::<CeRouter>(ce).add_host_route(host_prefix, ce_if.0);
        sink
    }

    fn wire_source(&mut self, site: SiteId, src: NodeId) {
        let ce = self.sites[site.0].ce;
        let cfg = LinkConfig::new(1_000_000_000, 10_000);
        self.net.connect(src, ce, cfg);
    }

    /// A convenience address inside a site's prefix.
    pub fn site_addr(&self, site: SiteId, host: u32) -> Ip {
        self.sites[site.0].prefix.nth(host)
    }

    /// Runs the simulation for `duration` ns.
    pub fn run_for(&mut self, duration: Nanos) {
        let end = self.net.now() + duration;
        self.net.run_until(end);
    }

    /// Runs the simulation until all events drain.
    pub fn run_to_quiescence(&mut self) {
        self.net.run_to_quiescence();
    }

    /// Sends one ad-hoc packet from a site host into the VPN (useful for
    /// connectivity probing). The packet is injected at the CE uplink.
    pub fn probe(&mut self, site: SiteId, mut pkt: Packet) {
        let ce = self.sites[site.0].ce;
        // Inject as if a host behind the CE had sent it: deliver to the CE
        // on a synthetic host port. Simplest faithful path: decrement at
        // CE happens on arrival, so give it directly to the uplink send.
        pkt.meta.created_ns = self.net.now();
        let uplink = IfaceId(self.net.node_ref::<CeRouter>(ce).uplink);
        self.net.inject(ce, uplink, pkt);
    }

    /// Signals an explicit-route LSP along `path` (backbone topology node
    /// ids) directly into the running routers — the RSVP-TE role. Labels
    /// come from each node's platform label space, so they can never alias
    /// LDP or VPN labels. Returns the ingress FTN for the new tunnel.
    ///
    /// # Panics
    /// Panics on a path shorter than 2 nodes, repeated nodes, or
    /// non-adjacent consecutive nodes.
    pub fn install_explicit_lsp(&mut self, path: &[usize]) -> netsim_mpls::FtnEntry {
        use netsim_mpls::lfib::{LabelOp, Nhlfe, LOCAL_IFACE};
        assert!(path.len() >= 2, "an LSP needs at least ingress and egress");
        {
            let mut seen = std::collections::HashSet::new();
            assert!(path.iter().all(|&u| seen.insert(u)), "explicit route must be loop-free");
        }
        let php = self.php;
        let mut label_in: Vec<Option<u32>> = vec![None; path.len()];
        for i in (1..path.len()).rev() {
            let is_egress = i == path.len() - 1;
            label_in[i] = if is_egress && php {
                None
            } else {
                Some(self.ldp.nodes[path[i]].space.allocate())
            };
        }
        for (i, &u) in path.iter().enumerate() {
            let is_egress = i == path.len() - 1;
            let out_iface =
                if is_egress { LOCAL_IFACE } else { self.topo.iface_toward(u, path[i + 1]) };
            let out_label = if is_egress { None } else { label_in[i + 1] };
            if let Some(inl) = label_in[i] {
                let op = match out_label {
                    Some(o) => LabelOp::Swap(o),
                    None => LabelOp::Pop,
                };
                self.with_lfib(u, |lfib| lfib.install(inl, Nhlfe { op, out_iface }));
            }
        }
        netsim_mpls::FtnEntry {
            push: label_in[1].into_iter().collect(),
            out_iface: self.topo.iface_toward(path[0], path[1]),
        }
    }

    pub(crate) fn with_lfib(&mut self, topo_node: usize, f: impl FnOnce(&mut netsim_mpls::Lfib)) {
        let id = self.node_ids[topo_node];
        if self.pes.contains(&topo_node) {
            f(&mut self.net.node_mut::<PeRouter>(id).lfib);
        } else {
            f(&mut self.net.node_mut::<CoreRouter>(id).lfib);
        }
    }

    // -- RT policy deltas ---------------------------------------------------

    /// Adds an import route target to the VRF for `vpn` at PE `pe` and
    /// applies the resulting route deltas. An RT-policy change is a local
    /// Adj-RIB-In re-filtering — zero control messages in either mode;
    /// only the one touched PE's data plane changes.
    pub fn add_import_target(&mut self, pe: usize, vpn: VpnId, rt: RouteTarget) {
        let (handle, vrf_idx) = self.vrf_handles[&(pe, vpn)];
        self.fabric.add_import_target(handle, rt);
        self.apply_refilter(pe, handle, vrf_idx);
    }

    /// Removes an import route target from the VRF for `vpn` at PE `pe`
    /// and applies the resulting route deltas (withdrawing imports that no
    /// longer match any policy).
    pub fn remove_import_target(&mut self, pe: usize, vpn: VpnId, rt: RouteTarget) {
        let (handle, vrf_idx) = self.vrf_handles[&(pe, vpn)];
        self.fabric.remove_import_target(handle, rt);
        self.apply_refilter(pe, handle, vrf_idx);
    }

    fn apply_refilter(&mut self, pe: usize, handle: VrfHandle, vrf_idx: usize) {
        let (added, removed) = self.fabric.refilter_vrf(handle);
        let pe_topo = self.pes[pe];
        let pe_node = self.node_ids[pe_topo];
        for (prefix, _) in removed {
            let per = self.net.node_mut::<PeRouter>(pe_node);
            if matches!(per.vrfs[vrf_idx].fib.get(prefix), Some(VrfRoute::Local { .. })) {
                continue; // locally attached routes never leave via policy
            }
            per.vrfs[vrf_idx].fib.remove(prefix);
        }
        for (prefix, r) in added {
            let ftn = match &self.control {
                None => self.ldp.nodes[pe_topo].ftn.get(&Fec(r.egress_pe as u32)).cloned(),
                Some(db) => db.borrow().view_ftn(pe_topo, r.egress_pe as u32).cloned(),
            };
            let Some(ftn) = ftn else {
                self.no_lsp_to_egress += 1;
                continue;
            };
            self.net.node_mut::<PeRouter>(pe_node).install_remote_route(
                vrf_idx,
                prefix,
                r.egress_pe,
                r.vpn_label,
                ftn,
            );
        }
    }

    // -- control-plane observability & parity hooks -------------------------

    /// Which control-plane mode this network runs.
    pub fn control_mode(&self) -> ControlMode {
        if self.control.is_some() {
            ControlMode::InBand
        } else {
            ControlMode::Oracle
        }
    }

    /// In-band control-plane counters (`None` in Oracle mode).
    pub fn control_stats(&self) -> Option<CtrlStats> {
        self.control.as_ref().map(|db| db.borrow().stats())
    }

    /// Route installs skipped for lack of an LSP toward the egress, summed
    /// over the oracle sync path and the in-band message path.
    pub fn no_lsp_to_egress(&self) -> u64 {
        self.no_lsp_to_egress
            + self.control.as_ref().map_or(0, |db| db.borrow().stats.no_lsp_to_egress)
    }

    /// Route installs performed by the oracle full-table sync so far.
    pub fn sync_route_pushes(&self) -> u64 {
        self.sync_route_pushes
    }

    /// Convergence-latency quantiles (p50, p99, max) in ns of in-band LSA
    /// application — the propagation + processing component of an outage
    /// window. `None` in Oracle mode or before any link event.
    pub fn control_convergence_ns(&self) -> Option<(u64, u64, u64)> {
        let db = self.control.as_ref()?.borrow();
        if db.convergence().count() == 0 {
            return None;
        }
        Some((
            db.convergence().quantile(0.5),
            db.convergence().quantile(0.99),
            db.max_convergence_ns(),
        ))
    }

    /// Control bytes offered on backbone link `l` (both directions) since
    /// bring-up. Always 0 in Oracle mode.
    pub fn control_bytes_on_link(&self, l: usize) -> u64 {
        self.control.as_ref().map_or(0, |db| db.borrow().ctrl_bytes_on_link(l))
    }

    /// The SPF tree node `u` currently forwards on: the oracle's tree in
    /// Oracle mode, the node's own view in in-band mode (parity hook).
    pub fn effective_spf(&self, u: usize) -> netsim_routing::SpfTree {
        match &self.control {
            None => self.igp.tree(u).clone(),
            Some(db) => db.borrow().view_spf(u).clone(),
        }
    }

    /// Walks the LSP from PE ordinal `ingress` to PE ordinal `egress`
    /// through the live router LFIBs, returning the topology nodes
    /// visited. `None` when no complete LSP exists. Used by the
    /// mode-parity suite: label *values* may differ between modes (the
    /// oracle reallocates on reconvergence, in-band retains), but the
    /// forwarding path must not.
    pub fn lsp_path(&mut self, ingress: usize, egress: usize) -> Option<Vec<usize>> {
        let start = self.pes[ingress];
        let ftn = match &self.control {
            None => self.ldp.nodes[start].ftn.get(&Fec(egress as u32)).cloned(),
            Some(db) => db.borrow().view_ftn(start, egress as u32).cloned(),
        }?;
        let want = self.pes[egress];
        self.walk_tunnel(start, &ftn, want)
    }

    /// Follows a tunnel FTN from `start` through the live LFIBs until it
    /// unwinds at `want` (or breaks). Dead links break the walk.
    pub fn walk_tunnel(
        &mut self,
        start: usize,
        ftn: &netsim_mpls::FtnEntry,
        want: usize,
    ) -> Option<Vec<usize>> {
        use netsim_mpls::lfib::{LabelOp, LOCAL_IFACE};
        let mut stack: Vec<u32> = ftn.push.clone(); // bottom .. top
        let mut at = start;
        let mut iface = ftn.out_iface;
        let mut path = vec![at];
        for _ in 0..(4 * self.topo.node_count().max(4)) {
            let (next, _, link) = self.topo.neighbors(at).nth(iface)?;
            if self.failed_links.contains(&link) {
                return None;
            }
            at = next;
            path.push(at);
            let Some(&top) = stack.last() else {
                // PHP already exposed the payload: we must have arrived.
                return (at == want).then_some(path);
            };
            let mut nhlfe = None;
            self.with_lfib(at, |l| nhlfe = l.lookup(top).copied());
            let nhlfe = nhlfe?;
            match nhlfe.op {
                LabelOp::Pop => {
                    stack.pop();
                }
                LabelOp::Swap(l) => *stack.last_mut().expect("nonempty") = l,
                LabelOp::SwapPush { swap, push } => {
                    *stack.last_mut().expect("nonempty") = swap;
                    stack.push(push);
                }
            }
            if nhlfe.out_iface == LOCAL_IFACE {
                return (stack.is_empty() && at == want).then_some(path);
            }
            iface = nhlfe.out_iface;
        }
        None
    }

    /// Digest of one VRF's state at PE `pe` for cross-mode parity
    /// checks: one sorted row per prefix — `None` for a locally attached
    /// route, `Some((egress_pe, vpn_label, tunnel_path))` for a remote
    /// one, where `tunnel_path` is the tunnel's node walk through the
    /// live LFIBs (`None` = broken LSP). Label *values* are deliberately
    /// excluded from the tunnel component: the oracle reallocates them on
    /// reconvergence while in-band retention keeps them, but both must
    /// forward over the same nodes.
    pub fn vrf_digest(&mut self, pe: usize, vpn: VpnId) -> Vec<VrfDigestRow> {
        let (_h, vrf_idx) = self.vrf_handles[&(pe, vpn)];
        let pe_node = self.node_ids[self.pes[pe]];
        let rows: Vec<(Prefix, VrfRoute)> = self.net.node_ref::<PeRouter>(pe_node).vrfs[vrf_idx]
            .fib
            .iter()
            .map(|(p, r)| (p, r.clone()))
            .collect();
        let start = self.pes[pe];
        let mut out: Vec<_> = rows
            .into_iter()
            .map(|(p, r)| match r {
                VrfRoute::Local { .. } => (p, None),
                VrfRoute::Remote { egress_pe, vpn_label, tunnel } => {
                    let path = self.walk_tunnel(start, &tunnel, self.pes[egress_pe]);
                    (p, Some((egress_pe, vpn_label, path)))
                }
            })
            .collect();
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// Rebinds one remote route at an ingress PE onto a different tunnel
    /// (e.g. a TE LSP from [`ProviderNetwork::install_explicit_lsp`]).
    /// Call after all sites are added — [`ProviderNetwork::add_site`]'s
    /// route sync would otherwise restore the LDP tunnel.
    ///
    /// # Panics
    /// Panics if the VRF or the route does not exist at that PE.
    pub fn override_route_tunnel(
        &mut self,
        vpn: VpnId,
        ingress_pe: usize,
        prefix: Prefix,
        tunnel: netsim_mpls::FtnEntry,
    ) {
        let (handle, vrf_idx) = *self
            .vrf_handles
            .get(&(ingress_pe, vpn))
            .unwrap_or_else(|| panic!("no VRF for VPN {vpn:?} on PE{ingress_pe}"));
        let r = *self
            .fabric
            .routes(handle)
            .get(prefix)
            .unwrap_or_else(|| panic!("no remote route {prefix} at PE{ingress_pe}"));
        let pe_node = self.pe_node(ingress_pe);
        self.net.node_mut::<PeRouter>(pe_node).install_remote_route(
            vrf_idx,
            prefix,
            r.egress_pe,
            r.vpn_label,
            tunnel,
        );
    }

    /// Takes a backbone link down (fiber cut): the data plane starts
    /// dropping immediately — anything queued on the link is flushed into
    /// [`netsim_sim::LinkStats::dropped`] — and BFD-style detection timers
    /// are armed on both adjacent routers. After the detection delay
    /// (see [`BackboneBuilder::detection`]) those routers mark the
    /// interface down, which activates any fast-reroute bypass installed
    /// for it; routing otherwise does **not** change until
    /// [`ProviderNetwork::reconverge`] runs (that gap is the detection +
    /// convergence outage experiment R1 measures).
    ///
    /// Idempotent: failing an already-failed link is a no-op, so drops
    /// are never double-counted and timers never re-armed.
    pub fn fail_link(&mut self, topo_link: usize) {
        assert!(topo_link < self.topo.link_count(), "unknown backbone link {topo_link}");
        if !self.failed_links.insert(topo_link) {
            return;
        }
        self.net.set_link_enabled(LinkId(topo_link), false);
        self.note_control_event(topo_link);
        self.arm_detection(topo_link, true);
    }

    /// Brings a previously failed link back. The adjacent routers notice
    /// after the same detection delay (BFD session re-establishment) and
    /// stop using any bypass; call [`ProviderNetwork::reconverge`]
    /// afterwards to re-optimize global routing onto it. Idempotent.
    pub fn repair_link(&mut self, topo_link: usize) {
        if !self.failed_links.remove(&topo_link) {
            return;
        }
        self.net.set_link_enabled(LinkId(topo_link), true);
        self.note_control_event(topo_link);
        self.arm_detection(topo_link, false);
    }

    /// In-band bookkeeping for a physical link event: bumps the link's LSA
    /// sequence and opens the convergence episode whose clock starts when
    /// detection fires (so the histogram measures propagation +
    /// processing, not the detection delay itself).
    fn note_control_event(&mut self, topo_link: usize) {
        if let Some(db) = &self.control {
            db.borrow_mut().note_link_event(topo_link, self.net.now() + self.detect_ns);
        }
    }

    /// Fails every backbone link incident to `topo_node` — a node (power
    /// or linecard) failure, modelled as the simultaneous loss of all its
    /// adjacencies. Already-failed links are skipped.
    ///
    /// The event is batched: one detection timer is armed per surviving
    /// *neighbor* (the far endpoint of each newly failed link), not two
    /// per link — the dead node itself has no working control plane to
    /// notice anything with.
    pub fn fail_node(&mut self, topo_node: usize) {
        assert!(topo_node < self.topo.node_count(), "unknown backbone node {topo_node}");
        let incident: Vec<(usize, usize)> =
            self.topo.neighbors(topo_node).map(|(far, _, l)| (l, far)).collect();
        for (l, far) in incident {
            if !self.failed_links.insert(l) {
                continue; // already failed: no double-counted drops/timers
            }
            self.net.set_link_enabled(LinkId(l), false);
            self.note_control_event(l);
            let iface = self.topo.iface_toward(far, topo_node);
            self.net.arm_timer(
                self.node_ids[far],
                self.detect_ns,
                crate::router::iface_timer_token(iface, true),
            );
        }
    }

    /// Links currently administratively failed.
    pub fn failed_links(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.failed_links.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Arms the interface up/down notification timers on both ends of a
    /// link, `detect_ns` from now.
    fn arm_detection(&mut self, topo_link: usize, down: bool) {
        let (u, v, _) = self.topo.link(topo_link);
        for (near, far) in [(u, v), (v, u)] {
            let iface = self.topo.iface_toward(near, far);
            self.net.arm_timer(
                self.node_ids[near],
                self.detect_ns,
                crate::router::iface_timer_token(iface, down),
            );
        }
    }

    /// Re-runs IGP and LDP excluding failed links and installs the new
    /// tables into the running routers — the control-plane reaction to a
    /// failure. Returns the messages this reconvergence cost. Explicit
    /// LSPs installed via [`ProviderNetwork::install_explicit_lsp`] are
    /// *not* re-signalled (RSVP-TE state would need its own refresh); pins
    /// should be re-applied by the caller if still desired.
    pub fn reconverge(&mut self) -> ControlSummary {
        let failed = self.failed_links.clone();
        let usable = move |l: usize| !failed.contains(&l);
        self.igp = Igp::converge_filtered(&self.topo, &usable);
        let adjacency = self.topo.adjacency_lists();
        let fecs: Vec<(Fec, usize)> =
            self.pes.iter().enumerate().map(|(k, &pe)| (Fec(k as u32), pe)).collect();
        let mut ldp = {
            let igp = &self.igp;
            let nh = |u: usize, v: usize| igp.next_hop(u, v);
            LdpDomain::run(&adjacency, &fecs, &nh, LdpConfig { php: self.php })
        };
        for u in 0..self.topo.node_count() {
            let lfib = std::mem::take(&mut ldp.nodes[u].lfib);
            self.with_lfib(u, move |l| {
                // Replacing the table must not erase the router's
                // forwarding history: carry the counters into the new LFIB.
                lfib.stats().merge(l.stats());
                *l = lfib;
            });
        }
        self.ldp = ldp;
        self.sync_remote_routes();
        if let Some(db) = &self.control {
            // An explicit reconvergence on an in-band network is the
            // safety net: re-seed every router's view from the fresh
            // oracle so views and tables stay coherent.
            db.borrow_mut().rebuild(&self.igp, &self.ldp, &self.failed_links);
        }
        ControlSummary {
            igp_lsa_messages: self.igp.lsa_messages(),
            ldp_messages: self.ldp.messages,
            ldp_sessions: self.ldp.sessions,
            ldp_labels: self.ldp.total_labels(),
            bgp_messages: 0, // VPN routes are unchanged by an IGP event
            bgp_sessions: self.fabric.session_count(),
        }
    }

    /// Pins a (possibly more-specific) destination prefix at an ingress PE
    /// onto a tunnel. The egress PE and VPN label are inherited from the
    /// covering route in the VRF, so the pin only changes the *path*, not
    /// the VPN semantics — the standard way to steer a subset of traffic
    /// onto a TE trunk.
    ///
    /// # Panics
    /// Panics if the VRF has no covering route for `prefix`.
    pub fn pin_prefix_to_tunnel(
        &mut self,
        vpn: VpnId,
        ingress_pe: usize,
        prefix: Prefix,
        tunnel: netsim_mpls::FtnEntry,
    ) {
        let (handle, vrf_idx) = *self
            .vrf_handles
            .get(&(ingress_pe, vpn))
            .unwrap_or_else(|| panic!("no VRF for VPN {vpn:?} on PE{ingress_pe}"));
        let r = *self
            .fabric
            .routes(handle)
            .lookup(prefix.addr())
            .unwrap_or_else(|| panic!("no covering route for {prefix} at PE{ingress_pe}"));
        let pe_node = self.pe_node(ingress_pe);
        self.net.node_mut::<PeRouter>(pe_node).install_remote_route(
            vrf_idx,
            prefix,
            r.egress_pe,
            r.vpn_label,
            tunnel,
        );
    }

    /// The fabric handle and local VRF index for a VPN on a PE, if that PE
    /// hosts any of the VPN's sites. Needed for policy surgery such as
    /// extranet route-target additions.
    pub fn vrf_handle(&self, pe: usize, vpn: VpnId) -> Option<(VrfHandle, usize)> {
        self.vrf_handles.get(&(pe, vpn)).copied()
    }

    /// Control-plane cost summary (experiments T1/M1).
    pub fn control_summary(&self) -> ControlSummary {
        ControlSummary {
            igp_lsa_messages: self.igp.lsa_messages(),
            ldp_messages: self.ldp.messages,
            ldp_sessions: self.ldp.sessions,
            ldp_labels: self.ldp.total_labels(),
            bgp_messages: self.fabric.messages(),
            bgp_sessions: self.fabric.session_count(),
        }
    }
}

/// Aggregated control-plane costs of a provider network.
#[derive(Clone, Copy, Debug)]
pub struct ControlSummary {
    /// IGP LSAs flooded.
    pub igp_lsa_messages: u64,
    /// LDP Label Mapping messages.
    pub ldp_messages: u64,
    /// LDP sessions (one per backbone adjacency).
    pub ldp_sessions: u64,
    /// Labels allocated for tunnel LSPs.
    pub ldp_labels: u64,
    /// BGP VPN update messages.
    pub bgp_messages: u64,
    /// iBGP sessions.
    pub bgp_sessions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::pfx;
    use netsim_routing::LinkAttrs;
    use netsim_sim::{MSEC, SEC};

    /// PE0 — P — PE1 line, 100 Mb/s backbone.
    fn line() -> ProviderNetwork {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        BackboneBuilder::new(topo, vec![0, 2]).build()
    }

    fn send_flow(pn: &mut ProviderNetwork, from: SiteId, to_addr: Ip, flow: u64, n: u64) {
        let src_addr = pn.site_addr(from, 10);
        let cfg = SourceConfig::udp(flow, src_addr, to_addr, 5000, 200);
        pn.attach_cbr_source(from, cfg, 1_000_000, Some(n));
    }

    #[test]
    fn two_sites_connect_across_backbone() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to = pn.site_addr(b, 9);
        send_flow(&mut pn, a, to, 1, 50);
        pn.run_for(2 * SEC);
        let s = pn.net.node_ref::<Sink>(sink);
        assert_eq!(s.flow(1).map(|f| f.rx_packets), Some(50), "all packets delivered");
    }

    #[test]
    fn overlapping_vpns_are_isolated() {
        let mut pn = line();
        let acme = pn.new_vpn("acme");
        let globex = pn.new_vpn("globex");
        // Identical address plans in both VPNs.
        let a0 = pn.add_site(acme, 0, pfx("10.1.0.0/16"), None);
        let a1 = pn.add_site(acme, 1, pfx("10.2.0.0/16"), None);
        let g0 = pn.add_site(globex, 0, pfx("10.1.0.0/16"), None);
        let g1 = pn.add_site(globex, 1, pfx("10.2.0.0/16"), None);
        let sink_a = pn.attach_sink(a1, pfx("10.2.0.0/16"));
        let sink_g = pn.attach_sink(g1, pfx("10.2.0.0/16"));
        // Flow 1 in acme, flow 2 in globex, same destination address.
        let to_a = pn.site_addr(a1, 9);
        send_flow(&mut pn, a0, to_a, 1, 30);
        let to_g = pn.site_addr(g1, 9);
        send_flow(&mut pn, g0, to_g, 2, 40);
        pn.run_for(2 * SEC);
        let sa = pn.net.node_ref::<Sink>(sink_a);
        assert_eq!(sa.flow(1).map(|f| f.rx_packets), Some(30));
        assert!(sa.flow(2).is_none(), "globex traffic must never reach acme");
        let sg = pn.net.node_ref::<Sink>(sink_g);
        assert_eq!(sg.flow(2).map(|f| f.rx_packets), Some(40));
        assert!(sg.flow(1).is_none(), "acme traffic must never reach globex");
        let _ = (g0, a0);
    }

    #[test]
    fn sites_added_later_reach_existing_sites_both_ways() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let sink_a = pn.attach_sink(a, pfx("10.1.0.0/16"));
        // Add the second site after the first is fully installed.
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink_b = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to_b = pn.site_addr(b, 1);
        send_flow(&mut pn, a, to_b, 1, 10);
        let to_a = pn.site_addr(a, 1);
        send_flow(&mut pn, b, to_a, 2, 10);
        pn.run_for(SEC);
        assert_eq!(pn.net.node_ref::<Sink>(sink_b).flow(1).map(|f| f.rx_packets), Some(10));
        assert_eq!(pn.net.node_ref::<Sink>(sink_a).flow(2).map(|f| f.rx_packets), Some(10));
    }

    #[test]
    fn non_php_mode_also_connects() {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        let mut pn = BackboneBuilder::new(topo, vec![0, 2]).php(false).build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to = pn.site_addr(b, 3);
        send_flow(&mut pn, a, to, 7, 20);
        pn.run_for(SEC);
        assert_eq!(pn.net.node_ref::<Sink>(sink).flow(7).map(|f| f.rx_packets), Some(20));
    }

    #[test]
    fn intra_pe_sites_hairpin_locally() {
        // Both sites on PE0: traffic must not enter the backbone.
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 0, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to = pn.site_addr(b, 4);
        send_flow(&mut pn, a, to, 3, 15);
        pn.run_for(SEC);
        assert_eq!(pn.net.node_ref::<Sink>(sink).flow(3).map(|f| f.rx_packets), Some(15));
        // Backbone link 0 (PE0↔P) carried nothing.
        let st = pn.net.link_stats(LinkId(0), 0);
        assert_eq!(st.tx_packets, 0, "intra-PE traffic must hairpin at the PE");
    }

    #[test]
    fn diffserv_core_profile_builds_and_forwards() {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        for sched in [DsSched::Priority, DsSched::Wfq, DsSched::Drr] {
            let mut pn = BackboneBuilder::new(topo.clone(), vec![0, 2])
                .core_qos(CoreQos::DiffServ { cap_bytes: 512 * 1024, sched })
                .build();
            let vpn = pn.new_vpn("acme");
            let a =
                pn.add_site(vpn, 0, pfx("10.1.0.0/16"), Some(MarkingPolicy::enterprise_default()));
            let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
            let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
            let cfg = SourceConfig::udp(1, pn.site_addr(a, 10), pn.site_addr(b, 9), 16400, 160);
            pn.attach_cbr_source(a, cfg, 1_000_000, Some(25));
            pn.run_for(SEC);
            assert_eq!(
                pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets),
                Some(25),
                "sched {sched:?}"
            );
        }
    }

    #[test]
    fn control_summary_counts_are_positive_and_consistent() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let s = pn.control_summary();
        assert!(s.ldp_messages > 0);
        assert_eq!(s.ldp_sessions, 2);
        assert_eq!(s.bgp_sessions, 2, "route reflector mode: one session per PE");
        assert!(s.bgp_messages >= 2);
        assert!(s.igp_lsa_messages > 0);
    }

    /// An extranet (paper §1: "linking customers and partners into
    /// extranets on an ad-hoc basis"): two companies keep their own VPNs
    /// but a shared route target exposes one designated site to the other
    /// — and nothing else.
    #[test]
    fn extranet_shares_only_designated_sites() {
        use netsim_routing::RouteTarget;
        let mut pn = line();
        let acme = pn.new_vpn("acme");
        let globex = pn.new_vpn("globex");
        // Regular sites (overlapping 10.1/16 plans, as usual).
        let acme_hq = pn.add_site(acme, 0, pfx("10.1.0.0/16"), None);
        let globex_hq = pn.add_site(globex, 0, pfx("10.1.0.0/16"), None);
        // The shared depot is an acme site on PE1.
        let depot = pn.add_site(acme, 1, pfx("10.77.0.0/16"), None);

        // Extranet provisioning: the depot VRF exports an extra RT that the
        // globex VRF imports; re-advertise under the new policy.
        let extranet_rt = RouteTarget(999);
        let (depot_handle, depot_vrf) = pn.vrf_handle(1, acme).expect("depot VRF");
        let (globex_handle, _) = pn.vrf_handle(0, globex).expect("globex VRF");
        pn.fabric.add_export_target(depot_handle, extranet_rt);
        pn.fabric.add_import_target(globex_handle, extranet_rt);
        pn.fabric.withdraw(depot_handle, pfx("10.77.0.0/16"));
        let label = pn.fabric.advertise(depot_handle, pfx("10.77.0.0/16"));
        {
            let depot_iface = pn.sites[depot.0].pe_iface;
            let pe1 = pn.pe_node(1);
            let per = pn.net.node_mut::<PeRouter>(pe1);
            per.install_vpn_label(label, depot_vrf);
            per.install_local_route(depot_vrf, pfx("10.77.0.0/16"), depot_iface);
        }
        pn.sync_remote_routes();

        let sink_depot = pn.attach_sink(depot, pfx("10.77.0.0/16"));
        let sink_acme_hq = pn.attach_sink(acme_hq, pfx("10.1.0.0/16"));
        // Globex HQ reaches the depot across the extranet…
        let to_depot = pfx("10.77.0.0/16").nth(5);
        let g = SourceConfig::udp(1, pn.site_addr(globex_hq, 1), to_depot, 5000, 128);
        pn.attach_cbr_source(globex_hq, g, MSEC, Some(20));
        // …and acme HQ still reaches it inside its own VPN.
        let a = SourceConfig::udp(2, pn.site_addr(acme_hq, 1), to_depot, 5000, 128);
        pn.attach_cbr_source(acme_hq, a, MSEC, Some(20));

        pn.run_for(SEC);
        let depot_sink = pn.net.node_ref::<Sink>(sink_depot);
        assert_eq!(depot_sink.flow(1).map(|f| f.rx_packets), Some(20), "extranet reach");
        assert_eq!(depot_sink.flow(2).map(|f| f.rx_packets), Some(20), "intranet reach");
        // The rest of acme stays invisible to globex: acme HQ's sink saw
        // nothing beyond its own VPN traffic.
        let acme_sink = pn.net.node_ref::<Sink>(sink_acme_hq);
        assert!(acme_sink.flows().all(|(f, _)| f == 2), "extranet must not leak acme HQ");
    }

    /// A shaped uplink caps a site's throughput at the contracted rate
    /// even though the physical access link is far faster.
    #[test]
    fn shaped_uplink_enforces_the_contract() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        pn.shape_site_uplink(a, 2_000_000, 4_000); // 2 Mb/s contract
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        // Offer ~8 Mb/s for 2 s.
        let to = pn.site_addr(b, 9);
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), to, 5000, 972);
        pn.attach_cbr_source(a, cfg, MSEC, Some(2000));
        pn.run_for(4 * SEC);
        let f = pn.net.node_ref::<Sink>(sink).flow(1).expect("delivered");
        let goodput = f.throughput_bps();
        assert!(
            (1_500_000.0..=2_400_000.0).contains(&goodput),
            "shaped goodput {goodput} should sit at the 2 Mb/s contract"
        );
    }

    /// A dual-homed site: the prefix is served from two PEs; detaching the
    /// primary fails importers over to the survivor.
    #[test]
    fn dual_homed_site_failover() {
        // Triangle of PEs so every PE pair has a path.
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        topo.add_link(2, 0, attrs);
        let mut pn = BackboneBuilder::new(topo, vec![0, 1, 2]).build();
        let vpn = pn.new_vpn("acme");
        let client = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        // The served prefix 10.9/16, homed on PE1 (primary) and PE2 (backup).
        let primary = pn.add_site(vpn, 1, pfx("10.9.0.0/16"), None);
        let backup = pn.add_site(vpn, 2, pfx("10.9.0.0/16"), None);
        let sink_primary = pn.attach_sink(primary, pfx("10.9.0.0/16"));
        let sink_backup = pn.attach_sink(backup, pfx("10.9.0.0/16"));

        let to = pfx("10.9.0.0/16").nth(7);
        let cfg = SourceConfig::udp(1, pn.site_addr(client, 1), to, 5000, 200);
        pn.attach_cbr_source(client, cfg, 10 * MSEC, Some(200)); // 2 s of traffic

        pn.run_for(SEC);
        let at_primary_t1 = pn.net.node_ref::<Sink>(sink_primary).total_packets;
        assert!(at_primary_t1 > 90, "primary (lowest PE) serves first: {at_primary_t1}");
        assert_eq!(pn.net.node_ref::<Sink>(sink_backup).total_packets, 0);

        pn.detach_site(primary);
        pn.run_for(2 * SEC);
        let at_backup = pn.net.node_ref::<Sink>(sink_backup).total_packets;
        assert!(at_backup > 90, "backup must take over: {at_backup}");
        // Nothing more reached the (detached) primary.
        let at_primary_t3 = pn.net.node_ref::<Sink>(sink_primary).total_packets;
        assert!(at_primary_t3 <= at_primary_t1 + 2, "primary detached");
        // Total delivery ≈ all packets (failover is a control-plane step
        // here, so no loss window).
        assert_eq!(at_primary_t3 + at_backup, 200);
    }

    /// A failed backbone link loses packets until reconvergence; after
    /// reconvergence the flow rides the alternate path, and repairing the
    /// link plus reconverging restores the original one.
    #[test]
    fn link_failure_reroute_and_repair() {
        // Diamond with distinct costs: short 0-1-3, detour 0-2-3.
        let mut topo = Topology::new(4);
        let fast = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        let slow = LinkAttrs { cost: 5, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, fast); // 0
        topo.add_link(1, 3, fast); // 1
        topo.add_link(0, 2, slow); // 2
        topo.add_link(2, 3, slow); // 3
        let mut pn = BackboneBuilder::new(topo, vec![0, 3]).build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to = pn.site_addr(b, 9);
        // Continuous CBR for 3 simulated seconds.
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), to, 5000, 200);
        pn.attach_cbr_source(a, cfg, 10 * MSEC, Some(300));

        pn.run_for(SEC); // healthy: short path
        assert!(pn.net.link_stats(LinkId(0), 0).tx_packets > 0);
        pn.fail_link(1); // cut 1-3
        pn.run_for(100 * MSEC); // detection window: packets die
        let summary = pn.reconverge();
        assert!(summary.ldp_messages > 0);
        let detour_before = pn.net.link_stats(LinkId(2), 0).tx_packets;
        pn.run_for(900 * MSEC);
        let detour_after = pn.net.link_stats(LinkId(2), 0).tx_packets;
        assert!(detour_after > detour_before + 50, "traffic must ride the detour");

        pn.repair_link(1);
        pn.reconverge();
        let short_before = pn.net.link_stats(LinkId(0), 0).tx_packets;
        pn.run_for(2 * SEC);
        let short_after = pn.net.link_stats(LinkId(0), 0).tx_packets;
        assert!(short_after > short_before + 50, "traffic must return to the short path");

        // Loss happened only during the outage window (~10 packets).
        let f = pn.net.node_ref::<Sink>(sink).flow(1).unwrap();
        let lost = 300 - f.rx_packets;
        assert!((5..=20).contains(&lost), "outage loss {lost}");
    }

    /// A TE tunnel pinned to the long way around a diamond must carry the
    /// traffic (and the short path must stay empty).
    #[test]
    fn explicit_lsp_overrides_the_igp_path() {
        // Diamond: PE0(0)—P(1)—PE1(3) short, PE0(0)—P(2)—PE1(3) long.
        let mut topo = Topology::new(4);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs); // link 0 (short)
        topo.add_link(1, 3, attrs); // link 1 (short)
        topo.add_link(0, 2, LinkAttrs { cost: 5, capacity_bps: 100_000_000 }); // 2
        topo.add_link(2, 3, LinkAttrs { cost: 5, capacity_bps: 100_000_000 }); // 3
        let mut pn = BackboneBuilder::new(topo, vec![0, 3]).build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        // Pin A→B onto the long path 0-2-3.
        let ftn = pn.install_explicit_lsp(&[0, 2, 3]);
        pn.override_route_tunnel(vpn, 0, pfx("10.2.0.0/16"), ftn);
        let to = pn.site_addr(b, 9);
        send_flow(&mut pn, a, to, 1, 20);
        pn.run_for(SEC);
        assert_eq!(pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets), Some(20));
        assert_eq!(pn.net.link_stats(LinkId(0), 0).tx_packets, 0, "short path unused");
        assert_eq!(pn.net.link_stats(LinkId(2), 0).tx_packets, 20, "long path carries the LSP");
    }

    #[test]
    #[should_panic(expected = "unknown PE ordinal")]
    fn add_site_validates_pe() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        pn.add_site(vpn, 9, pfx("10.0.0.0/8"), None);
    }
}
