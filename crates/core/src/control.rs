//! In-band incremental control plane (`ControlMode::InBand`).
//!
//! The oracle control plane recomputes IGP/LDP state globally and pushes
//! every imported route into every VRF out-of-band. This module replaces
//! that with *messages*: IGP link-state advertisements flood hop-by-hop as
//! CS6-marked control packets through the same links and queues as data,
//! LDP mappings/withdraws ride single-hop session messages, and MP-BGP VPN
//! updates (labels piggybacked on the route, per the paper's §4) travel
//! PE-to-PE and are applied as deltas.
//!
//! The shared [`ControlDb`] holds one *view* per router: what that node
//! currently believes about the topology (failed links, its SPF tree) and
//! its LDP session state (bindings received from each neighbor, its FTN).
//! Routers hand the database mutable references to their live tables
//! (LFIB, VRF FIBs) when a control packet arrives, so incremental updates
//! land directly in the forwarding plane — there is no global rebuild.
//!
//! Determinism: the database never iterates a hash map. All fan-out walks
//! index ranges (FEC ordinals, topology adjacency order) or ordered sets,
//! so replays are bit-identical for a fixed seed and event sequence.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use netsim_mpls::ldp::{Fec, LdpDomain};
use netsim_mpls::lfib::{FtnEntry, LabelOp, Lfib, Nhlfe};
use netsim_net::mpls::IMPLICIT_NULL;
use netsim_net::{Dscp, Ip, Packet, Prefix};
use netsim_obs::Histogram;
use netsim_qos::Nanos;
use netsim_routing::igp::spf_filtered;
use netsim_routing::{Igp, Topology};
use netsim_sim::{Ctx, FxHashMap, IfaceId};

use crate::router::{VrfFib, VrfRoute};

/// How routing, label and VPN state propagates through the backbone.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ControlMode {
    /// Out-of-band oracle: global IGP/LDP recomputation on demand and a
    /// full-table route push into every VRF (`sync_remote_routes`). Zero
    /// control packets on the wire; convergence is instantaneous at the
    /// reconvergence instant. This is the historical behavior and remains
    /// bit-identical to it.
    #[default]
    Oracle,
    /// In-band event-driven control plane: LSAs flood hop-by-hop as CS6
    /// control packets, each router runs incremental SPF and repairs its
    /// LFIB from retained LDP bindings, and BGP VPN deltas travel as typed
    /// PE-to-PE messages. Convergence takes real (simulated) time.
    InBand,
}

/// Flow-id namespace for control packets. Distinct from (and above) the
/// SLA-probe namespace so routers and sinks can cheaply classify:
/// `flow >= CTRL_FLOW_BASE` means control plane.
pub const CTRL_FLOW_BASE: u64 = 1 << 49;

/// Shared handle to the control database: the builder creates one per
/// in-band network and threads it through every backbone router.
pub type ControlHandle = Rc<RefCell<ControlDb>>;

/// Protocol ordinal inside the control flow-id namespace.
const PROTO_IGP: usize = 0;
const PROTO_LDP: usize = 1;
const PROTO_BGP: usize = 2;

/// A typed control message. The on-wire packet carries only CS6-marked
/// UDP bytes of a representative size; the structured content rides in the
/// database's side table keyed by the packet's `meta.seq`, mirroring how
/// the data plane never parses control payloads.
#[derive(Clone, Debug)]
pub(crate) enum CtrlMsg {
    /// Link-state advertisement: link `link` changed to `down` at event
    /// sequence `seq`. Flooded hop-by-hop; deduplicated per (link, seq).
    Lsa {
        /// Topology link id the advertisement describes.
        link: usize,
        /// New state of the link.
        down: bool,
        /// Per-link event sequence number (dedup key).
        seq: u64,
    },
    /// LDP label mapping: `from`'s binding for tunnel FEC `fec` is
    /// `label`. Single hop (LDP sessions are link-local here).
    LdpMapping {
        /// Tunnel FEC ordinal (egress-PE index).
        fec: u32,
        /// The advertised label (possibly [`IMPLICIT_NULL`]).
        label: u32,
        /// Topology node that owns the binding.
        from: usize,
    },
    /// LDP label withdraw: `from` no longer has a usable binding for
    /// `fec`. Single hop.
    LdpWithdraw {
        /// Tunnel FEC ordinal.
        fec: u32,
        /// Topology node withdrawing its binding.
        from: usize,
    },
    /// MP-BGP VPN route update addressed to PE `target`: install
    /// `prefix → (egress_pe, vpn_label)` into VRF slot `vrf_idx`. The VPN
    /// label is piggybacked on the route update (paper §4). Forwarded
    /// hop-by-hop toward the target PE.
    BgpUpdate {
        /// Destination PE ordinal.
        target: usize,
        /// VRF slot index at the target PE.
        vrf_idx: usize,
        /// Customer prefix being advertised.
        prefix: Prefix,
        /// Egress PE ordinal for the route.
        egress_pe: usize,
        /// VPN demultiplexing label at the egress PE.
        vpn_label: u32,
    },
    /// MP-BGP VPN route withdrawal addressed to PE `target`, optionally
    /// carrying the replacement best path (multihomed failover).
    BgpWithdraw {
        /// Destination PE ordinal.
        target: usize,
        /// VRF slot index at the target PE.
        vrf_idx: usize,
        /// Customer prefix being withdrawn.
        prefix: Prefix,
        /// New best path, if any survives the withdrawal.
        replacement: Option<(usize, u32)>,
    },
}

impl CtrlMsg {
    fn proto(&self) -> usize {
        match self {
            CtrlMsg::Lsa { .. } => PROTO_IGP,
            CtrlMsg::LdpMapping { .. } | CtrlMsg::LdpWithdraw { .. } => PROTO_LDP,
            CtrlMsg::BgpUpdate { .. } | CtrlMsg::BgpWithdraw { .. } => PROTO_BGP,
        }
    }

    /// Representative payload size in bytes (headers are added by
    /// `Packet::udp`); keeps per-link control-byte counters meaningful.
    fn payload_len(&self) -> usize {
        match self {
            CtrlMsg::Lsa { .. } => 64,
            CtrlMsg::LdpMapping { .. } | CtrlMsg::LdpWithdraw { .. } => 32,
            CtrlMsg::BgpUpdate { .. } | CtrlMsg::BgpWithdraw { .. } => 64,
        }
    }

    fn port(&self) -> u16 {
        match self.proto() {
            PROTO_IGP => 89,
            PROTO_LDP => 646,
            _ => 179,
        }
    }
}

/// Control-plane counters, all emergent (counted, not analytic).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// LSAs originated by detection events (not counting floods).
    pub lsa_originated: u64,
    /// LDP session messages originated (mappings + withdraws).
    pub ldp_originated: u64,
    /// BGP VPN updates/withdraws originated at PEs.
    pub bgp_originated: u64,
    /// Control packets put on the wire, by protocol [igp, ldp, bgp].
    pub pkts_by_proto: [u64; 3],
    /// Total control packets put on the wire (floods + forwards included).
    pub pkts_sent: u64,
    /// Total control packets terminated (consumed) at a router.
    pub pkts_terminated: u64,
    /// Control bytes put on the wire.
    pub bytes_sent: u64,
    /// Messages dropped at origination/forwarding for lack of any route
    /// toward the destination.
    pub undeliverable: u64,
    /// Full SPF recomputations triggered by LSA application.
    pub spf_runs: u64,
    /// LSA applications that incremental SPF proved irrelevant (skipped).
    pub spf_skips: u64,
    /// FTN repairs deferred because no binding from the new next hop was
    /// retained yet (session refresh in flight).
    pub ldp_missing_binding: u64,
    /// BGP deltas applied into a VRF FIB.
    pub bgp_applied: u64,
    /// Route installs skipped because the receiving PE has no LSP toward
    /// the egress PE (counted, never a panic — see also the oracle-path
    /// counter on `ProviderNetwork`).
    pub no_lsp_to_egress: u64,
}

/// What one router currently believes: its link-state database, SPF tree
/// and LDP session state. Cloned from the oracle at bring-up ("initial
/// RIB download"), then maintained purely by messages.
struct NodeView {
    /// Links this node believes are down.
    failed: BTreeSet<usize>,
    /// Latest applied (seq, down) per link — the LSA dedup state.
    link_state: Vec<(u64, bool)>,
    /// This node's shortest-path tree over the believed topology.
    spf: netsim_routing::SpfTree,
    /// Local label bindings per tunnel FEC (immutable once allocated).
    bindings: std::collections::HashMap<Fec, u32>,
    /// Liberal-retention label store: (fec, neighbor) → advertised label.
    received: std::collections::HashMap<(Fec, usize), u32>,
    /// Current FEC-to-NHLFE map (ingress push state).
    ftn: std::collections::HashMap<Fec, FtnEntry>,
    /// Whether each tunnel FEC's egress is currently believed reachable
    /// (drives withdraw / re-advertise on transitions).
    fec_reachable: Vec<bool>,
}

/// Mutable references to one router's forwarding tables, lent to the
/// database for the duration of a single control-packet application.
pub(crate) struct NodeTables<'a> {
    /// The router's live LFIB.
    pub lfib: &'a mut Lfib,
    /// PE routers also lend their VRF FIBs (None for P routers).
    pub vrfs: Option<&'a mut Vec<VrfFib>>,
}

/// The shared in-band control database: per-node views, the message side
/// table, and control-plane telemetry.
pub struct ControlDb {
    topo: Topology,
    pes: Vec<usize>,
    views: Vec<NodeView>,
    /// Structured content of in-flight control packets, keyed by the
    /// packet's `meta.seq`. Entries are removed on termination; packets
    /// purged at dead links leak their (bounded) entries harmlessly.
    msgs: FxHashMap<u64, CtrlMsg>,
    next_msg_id: u64,
    /// Per-link event sequence, bumped once per fail/repair at the
    /// provider-network level so both endpoints originate the same LSA.
    link_seq: Vec<u64>,
    /// (link, seq) → origination timestamp (event + detection delay);
    /// every LSA application records `now - t0` as a convergence sample.
    episodes: FxHashMap<(usize, u64), Nanos>,
    /// Control bytes offered per topology link (both directions).
    ctrl_bytes_by_link: Vec<u64>,
    /// Propagation + processing latency of LSA application, ns.
    convergence: Histogram,
    max_convergence_ns: Nanos,
    pub(crate) stats: CtrlStats,
}

impl ControlDb {
    /// Builds the database from the converged oracle state: every node's
    /// view starts as an exact copy of the oracle's SPF tree and LDP
    /// session state (the "initial bring-up" the tentpole permits).
    pub(crate) fn new(topo: &Topology, pes: &[usize], igp: &Igp, ldp: &LdpDomain) -> ControlDb {
        let n = topo.node_count();
        let nl = topo.link_count();
        let mut views = Vec::with_capacity(n);
        for u in 0..n {
            let spf = igp.tree(u).clone();
            let st = &ldp.nodes[u];
            let fec_reachable = pes.iter().map(|&e| u == e || spf.next_hop[e].is_some()).collect();
            views.push(NodeView {
                failed: BTreeSet::new(),
                link_state: vec![(0, false); nl],
                spf,
                bindings: st.bindings.clone(),
                received: st.received.clone(),
                ftn: st.ftn.clone(),
                fec_reachable,
            });
        }
        ControlDb {
            topo: topo.clone(),
            pes: pes.to_vec(),
            views,
            msgs: FxHashMap::default(),
            next_msg_id: 1,
            link_seq: vec![0; nl],
            episodes: FxHashMap::default(),
            ctrl_bytes_by_link: vec![0; nl],
            convergence: Histogram::new(),
            max_convergence_ns: 0,
            stats: CtrlStats::default(),
        }
    }

    /// Re-seeds every view from a freshly recomputed oracle (the safety
    /// net used when `reconverge()` is invoked on an in-band network).
    /// Dedup sequence state advances to the current per-link sequence so
    /// stale in-flight LSAs are ignored afterwards.
    pub(crate) fn rebuild(
        &mut self,
        igp: &Igp,
        ldp: &LdpDomain,
        failed: &std::collections::HashSet<usize>,
    ) {
        for u in 0..self.topo.node_count() {
            let view = &mut self.views[u];
            view.spf = igp.tree(u).clone();
            view.bindings = ldp.nodes[u].bindings.clone();
            view.received = ldp.nodes[u].received.clone();
            view.ftn = ldp.nodes[u].ftn.clone();
            view.failed = failed.iter().copied().collect();
            for (f, &e) in self.pes.iter().enumerate() {
                view.fec_reachable[f] = u == e || view.spf.next_hop[e].is_some();
            }
            for l in 0..self.topo.link_count() {
                view.link_state[l] = (self.link_seq[l], failed.contains(&l));
            }
        }
    }

    /// Records a physical link event: bumps the per-link LSA sequence and
    /// opens a convergence episode whose clock starts at `origination_at`
    /// (event time + detection delay, so samples measure propagation and
    /// processing, not detection).
    pub(crate) fn note_link_event(&mut self, link: usize, origination_at: Nanos) {
        self.link_seq[link] += 1;
        self.episodes.insert((link, self.link_seq[link]), origination_at);
    }

    /// A router's detection timer fired for `iface`: originate the LSA,
    /// apply it locally, and (on link-up) refresh the LDP session over
    /// the recovered link.
    pub(crate) fn on_link_event(
        &mut self,
        node: usize,
        iface: usize,
        down: bool,
        tables: &mut NodeTables<'_>,
        ctx: &mut Ctx,
    ) {
        let Some((far, link)) = self.topo.neighbors(node).nth(iface).map(|(p, _, l)| (p, l)) else {
            return;
        };
        let seq = self.link_seq[link];
        if down {
            // LDP session loss: retained labels from the far end die with
            // the session.
            let view = &mut self.views[node];
            for f in 0..self.pes.len() {
                view.received.remove(&(Fec(f as u32), far));
            }
        }
        self.stats.lsa_originated += 1;
        self.apply_lsa(node, link, down, seq, None, tables, ctx);
        if !down {
            // Session re-establishment: re-advertise our bindings to the
            // peer (it dropped them when the session died).
            for f in 0..self.pes.len() {
                let fec = Fec(f as u32);
                let Some(&label) = self.views[node].bindings.get(&fec) else { continue };
                if !self.views[node].fec_reachable[f] {
                    continue;
                }
                self.stats.ldp_originated += 1;
                self.send_msg(
                    node,
                    iface,
                    CtrlMsg::LdpMapping { fec: f as u32, label, from: node },
                    ctx,
                );
            }
        }
    }

    /// A control packet arrived at `node` on `iface`: terminate it and
    /// apply (or forward) its message.
    pub(crate) fn on_control_packet(
        &mut self,
        node: usize,
        iface: usize,
        pkt: &Packet,
        tables: &mut NodeTables<'_>,
        ctx: &mut Ctx,
    ) {
        self.stats.pkts_terminated += 1;
        let Some(msg) = self.msgs.remove(&pkt.meta.seq) else { return };
        match msg {
            CtrlMsg::Lsa { link, down, seq } => {
                self.apply_lsa(node, link, down, seq, Some(iface), tables, ctx);
            }
            CtrlMsg::LdpMapping { fec, label, from } => {
                self.views[node].received.insert((Fec(fec), from), label);
                self.repair_fec(node, fec as usize, tables, ctx);
            }
            CtrlMsg::LdpWithdraw { fec, from } => {
                self.views[node].received.remove(&(Fec(fec), from));
                self.repair_fec(node, fec as usize, tables, ctx);
            }
            CtrlMsg::BgpUpdate { target, vrf_idx, prefix, egress_pe, vpn_label } => {
                if self.pes[target] != node {
                    let msg = CtrlMsg::BgpUpdate { target, vrf_idx, prefix, egress_pe, vpn_label };
                    self.forward_toward(node, self.pes[target], msg, ctx);
                    return;
                }
                let Some(vrfs) = tables.vrfs.as_deref_mut() else { return };
                let Some(ftn) = self.views[node].ftn.get(&Fec(egress_pe as u32)).cloned() else {
                    self.stats.no_lsp_to_egress += 1;
                    return;
                };
                let vrf = &mut vrfs[vrf_idx];
                if matches!(vrf.fib.get(prefix), Some(VrfRoute::Local { .. })) {
                    return; // locally attached always wins
                }
                vrf.fib.insert(prefix, VrfRoute::Remote { egress_pe, vpn_label, tunnel: ftn });
                self.stats.bgp_applied += 1;
            }
            CtrlMsg::BgpWithdraw { target, vrf_idx, prefix, replacement } => {
                if self.pes[target] != node {
                    let msg = CtrlMsg::BgpWithdraw { target, vrf_idx, prefix, replacement };
                    self.forward_toward(node, self.pes[target], msg, ctx);
                    return;
                }
                let Some(vrfs) = tables.vrfs.as_deref_mut() else { return };
                let vrf = &mut vrfs[vrf_idx];
                if matches!(vrf.fib.get(prefix), Some(VrfRoute::Local { .. })) {
                    return;
                }
                match replacement {
                    Some((egress_pe, vpn_label)) => {
                        if let Some(ftn) = self.views[node].ftn.get(&Fec(egress_pe as u32)).cloned()
                        {
                            vrf.fib.insert(
                                prefix,
                                VrfRoute::Remote { egress_pe, vpn_label, tunnel: ftn },
                            );
                        } else {
                            self.stats.no_lsp_to_egress += 1;
                            vrf.fib.remove(prefix);
                        }
                    }
                    None => {
                        vrf.fib.remove(prefix);
                    }
                }
                self.stats.bgp_applied += 1;
            }
        }
    }

    /// Applies one LSA at one node: dedup, link-state update, incremental
    /// SPF, LDP/FTN/VRF repair, convergence sample, re-flood.
    #[allow(clippy::too_many_arguments)]
    fn apply_lsa(
        &mut self,
        node: usize,
        link: usize,
        down: bool,
        seq: u64,
        arrival: Option<usize>,
        tables: &mut NodeTables<'_>,
        ctx: &mut Ctx,
    ) {
        {
            let view = &mut self.views[node];
            let (s_seq, s_down) = view.link_state[link];
            let fresh = seq > s_seq || (seq == s_seq && down != s_down);
            if !fresh {
                return;
            }
            view.link_state[link] = (seq, down);
            if down {
                view.failed.insert(link);
            } else {
                view.failed.remove(&link);
            }
        }
        // Incremental SPF: recompute only if the changed link can alter
        // this root's tree; otherwise the LSA is topological noise here.
        if self.views[node].spf.affected_by(&self.topo, link, down) {
            let failed = self.views[node].failed.clone();
            self.views[node].spf = spf_filtered(&self.topo, node, &|l| !failed.contains(&l));
            self.stats.spf_runs += 1;
        } else {
            self.stats.spf_skips += 1;
        }
        // Repair every tunnel FEC from retained LDP state (liberal
        // retention is what makes this purely local in the common case).
        for f in 0..self.pes.len() {
            self.repair_fec(node, f, tables, ctx);
        }
        if let Some(&t0) = self.episodes.get(&(link, seq)) {
            let d = ctx.now().saturating_sub(t0);
            self.convergence.record(d);
            self.max_convergence_ns = self.max_convergence_ns.max(d);
        }
        // Re-flood to every live neighbor except the one we heard from.
        let floods: Vec<usize> = self
            .topo
            .neighbors(node)
            .enumerate()
            .filter(|(i, (_, _, l))| Some(*i) != arrival && !self.views[node].failed.contains(l))
            .map(|(i, _)| i)
            .collect();
        for iface in floods {
            self.send_msg(node, iface, CtrlMsg::Lsa { link, down, seq }, ctx);
        }
    }

    /// Recomputes the desired FTN for tunnel FEC `f` at `node` from the
    /// current view, re-points the LFIB transit entry and any VRF routes
    /// using that tunnel, and advertises/withdraws on reachability flips.
    fn repair_fec(&mut self, node: usize, f: usize, tables: &mut NodeTables<'_>, ctx: &mut Ctx) {
        let egress = self.pes[f];
        if node == egress {
            return;
        }
        let fec = Fec(f as u32);
        let (desired, reachable) = {
            let view = &self.views[node];
            match view.spf.next_hop[egress] {
                None => (None, false),
                Some(nh) => {
                    let iface = self.topo.iface_toward(node, nh);
                    match view.received.get(&(fec, nh)) {
                        Some(&l) => (Some((iface, l)), true),
                        None => (None, true), // session refresh in flight
                    }
                }
            }
        };
        if desired.is_none() && reachable {
            self.stats.ldp_missing_binding += 1;
        }
        let new_ftn = desired.map(|(iface, l)| FtnEntry {
            push: if l == IMPLICIT_NULL { Vec::new() } else { vec![l] },
            out_iface: iface,
        });
        let changed = self.views[node].ftn.get(&fec) != new_ftn.as_ref();
        if changed {
            let view = &mut self.views[node];
            match new_ftn.clone() {
                Some(e) => {
                    view.ftn.insert(fec, e);
                }
                None => {
                    view.ftn.remove(&fec);
                }
            }
            // Transit repair: re-point the ILM entry for our own binding.
            if let Some(&local) = self.views[node].bindings.get(&fec) {
                if local != IMPLICIT_NULL {
                    match desired {
                        Some((iface, l)) => {
                            let op =
                                if l == IMPLICIT_NULL { LabelOp::Pop } else { LabelOp::Swap(l) };
                            tables.lfib.install(local, Nhlfe { op, out_iface: iface });
                        }
                        None => {
                            tables.lfib.remove(local);
                        }
                    }
                }
            }
            // Ingress repair: VRF routes tunneled toward this egress.
            if let Some(vrfs) = tables.vrfs.as_deref_mut() {
                repoint_vrfs(vrfs, f, new_ftn.as_ref());
            }
        }
        let was = self.views[node].fec_reachable[f];
        if reachable != was {
            self.views[node].fec_reachable[f] = reachable;
            let label = self.views[node].bindings.get(&fec).copied();
            let nbrs: Vec<usize> = self
                .topo
                .neighbors(node)
                .enumerate()
                .filter(|(_, (_, _, l))| !self.views[node].failed.contains(l))
                .map(|(i, _)| i)
                .collect();
            for iface in nbrs {
                let msg = if reachable {
                    match label {
                        Some(l) => CtrlMsg::LdpMapping { fec: f as u32, label: l, from: node },
                        None => continue,
                    }
                } else {
                    CtrlMsg::LdpWithdraw { fec: f as u32, from: node }
                };
                self.stats.ldp_originated += 1;
                self.send_msg(node, iface, msg, ctx);
            }
        }
    }

    /// Forwards a PE-addressed message one hop along the current view's
    /// shortest path toward the target node.
    fn forward_toward(&mut self, node: usize, target_node: usize, msg: CtrlMsg, ctx: &mut Ctx) {
        let Some(nh) = self.views[node].spf.next_hop[target_node] else {
            self.stats.undeliverable += 1;
            return;
        };
        let iface = self.topo.iface_toward(node, nh);
        self.send_msg(node, iface, msg, ctx);
    }

    /// Prepares a BGP message for injection at `origin_node` (used by the
    /// provider-network layer, which has no router context): returns the
    /// first-hop interface and the wire packet, or `None` if the origin's
    /// view has no path toward the target.
    pub(crate) fn prepare_bgp_from(
        &mut self,
        origin_node: usize,
        msg: CtrlMsg,
    ) -> Option<(IfaceId, Packet)> {
        let target = match &msg {
            CtrlMsg::BgpUpdate { target, .. } | CtrlMsg::BgpWithdraw { target, .. } => {
                self.pes[*target]
            }
            _ => return None,
        };
        self.stats.bgp_originated += 1;
        let Some(nh) = self.views[origin_node].spf.next_hop[target] else {
            self.stats.undeliverable += 1;
            return None;
        };
        let iface = self.topo.iface_toward(origin_node, nh);
        Some((IfaceId(iface), self.prepare(origin_node, iface, msg)))
    }

    /// Builds the wire packet for `msg` leaving `node` on `iface` and does
    /// all send-side bookkeeping (side table, counters, per-link bytes).
    fn prepare(&mut self, node: usize, iface: usize, msg: CtrlMsg) -> Packet {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        let proto = msg.proto();
        let mut pkt = Packet::udp(
            Ip(0xC0DE_0000 + node as u32),
            Ip(0xC0DE_FFFF),
            msg.port(),
            msg.port(),
            Dscp::CS6,
            msg.payload_len(),
        );
        pkt.meta.flow = CTRL_FLOW_BASE + proto as u64;
        pkt.meta.seq = id;
        self.stats.pkts_by_proto[proto] += 1;
        self.stats.pkts_sent += 1;
        self.stats.bytes_sent += pkt.wire_len() as u64;
        if let Some((_, _, link)) = self.topo.neighbors(node).nth(iface) {
            self.ctrl_bytes_by_link[link] += pkt.wire_len() as u64;
        }
        self.msgs.insert(id, msg);
        pkt
    }

    fn send_msg(&mut self, node: usize, iface: usize, msg: CtrlMsg, ctx: &mut Ctx) {
        let pkt = self.prepare(node, iface, msg);
        ctx.send(IfaceId(iface), pkt);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CtrlStats {
        self.stats.clone()
    }

    /// Convergence-latency histogram (propagation + processing, ns).
    pub fn convergence(&self) -> &Histogram {
        &self.convergence
    }

    /// Worst observed propagation + processing latency, ns.
    pub fn max_convergence_ns(&self) -> Nanos {
        self.max_convergence_ns
    }

    /// Control bytes offered on `link` since bring-up.
    pub fn ctrl_bytes_on_link(&self, link: usize) -> u64 {
        self.ctrl_bytes_by_link[link]
    }

    /// This node's current view of the SPF tree (parity/testing hook).
    pub fn view_spf(&self, node: usize) -> &netsim_routing::SpfTree {
        &self.views[node].spf
    }

    /// This node's current FTN entry for a tunnel FEC (parity hook).
    pub fn view_ftn(&self, node: usize, fec: u32) -> Option<&FtnEntry> {
        self.views[node].ftn.get(&Fec(fec))
    }
}

/// Re-points every VRF route tunneled toward `egress_pe` at the new FTN.
/// When the LSP is gone entirely the stale tunnel is left in place — the
/// same degrade-in-place the oracle sync path exhibits — so traffic drops
/// at the dead link instead of silently un-routing.
fn repoint_vrfs(vrfs: &mut [VrfFib], egress_pe: usize, ftn: Option<&FtnEntry>) {
    let Some(t) = ftn else { return };
    for vrf in vrfs.iter_mut() {
        let stale: Vec<(Prefix, u32)> = vrf
            .fib
            .iter()
            .filter_map(|(p, r)| match r {
                VrfRoute::Remote { egress_pe: e, vpn_label, tunnel }
                    if *e == egress_pe && tunnel != t =>
                {
                    Some((p, *vpn_label))
                }
                _ => None,
            })
            .collect();
        for (p, vpn_label) in stale {
            vrf.fib.insert(p, VrfRoute::Remote { egress_pe, vpn_label, tunnel: t.clone() });
        }
    }
}
