//! Service-level agreements and their evaluation.
//!
//! The paper's goal (§5): "allow service providers to extend SLAs from
//! customer site to customer site and eventually across cooperative service
//! provider boundaries." An [`Sla`] states the contract per class; an
//! [`SlaReport`] grades measured flow statistics against it.

use netsim_qos::Nanos;
use netsim_sim::FlowStats;

/// A per-class service-level agreement.
#[derive(Clone, Copy, Debug)]
pub struct Sla {
    /// Maximum mean one-way latency, ns.
    pub max_mean_latency_ns: Nanos,
    /// Maximum 99th-percentile one-way latency, ns.
    pub max_p99_latency_ns: Nanos,
    /// Maximum RFC 3550 jitter, ns.
    pub max_jitter_ns: f64,
    /// Maximum loss fraction (0..1).
    pub max_loss: f64,
}

impl Sla {
    /// A voice-grade SLA: 150 ms mean, 200 ms p99, 30 ms jitter, 1% loss.
    pub fn voice() -> Self {
        Sla {
            max_mean_latency_ns: 150 * netsim_sim::MSEC,
            max_p99_latency_ns: 200 * netsim_sim::MSEC,
            max_jitter_ns: 30.0 * netsim_sim::MSEC as f64,
            max_loss: 0.01,
        }
    }

    /// A carrier-backbone voice SLA: what a provider commits to *inside*
    /// its network (tighter than the end-to-end G.114 budget, which must
    /// also cover access and codec delay): 50 ms mean, 80 ms p99, 10 ms
    /// jitter, 0.5% loss.
    pub fn backbone_voice() -> Self {
        Sla {
            max_mean_latency_ns: 50 * netsim_sim::MSEC,
            max_p99_latency_ns: 80 * netsim_sim::MSEC,
            max_jitter_ns: 10.0 * netsim_sim::MSEC as f64,
            max_loss: 0.005,
        }
    }

    /// An interactive-data SLA: 300 ms mean, 500 ms p99, no jitter bound,
    /// 2% loss.
    pub fn interactive() -> Self {
        Sla {
            max_mean_latency_ns: 300 * netsim_sim::MSEC,
            max_p99_latency_ns: 500 * netsim_sim::MSEC,
            max_jitter_ns: f64::INFINITY,
            max_loss: 0.02,
        }
    }

    /// Evaluates measured receiver stats against the SLA, given the
    /// sender's transmitted packet count.
    pub fn evaluate(&self, stats: &FlowStats, tx_packets: u64) -> SlaReport {
        let mean = stats.latency.mean() as Nanos;
        let p99 = stats.latency.quantile(0.99);
        let loss = stats.loss(tx_packets);
        SlaReport {
            mean_latency_ns: mean,
            p99_latency_ns: p99,
            jitter_ns: stats.jitter_ns,
            loss,
            met: mean <= self.max_mean_latency_ns
                && p99 <= self.max_p99_latency_ns
                && stats.jitter_ns <= self.max_jitter_ns
                && loss <= self.max_loss
                && stats.rx_packets > 0,
        }
    }
}

/// A simplified ITU-T G.107 E-model: scores a voice flow's measured
/// latency, jitter and loss as an R-factor and maps it to a MOS (1..=4.5).
///
/// The implementation uses the standard simplifications: base R = 93.2,
/// delay impairment `Id` from one-way delay (with the +10 ms codec/jitter
/// buffer charge and the steep penalty above 177.3 ms), and equipment
/// impairment `Ie-eff` for a G.711 codec under random loss (Bpl = 25.1).
/// Good enough to rank configurations; not a calibrated planning tool.
pub fn voice_mos(one_way_delay_ns: Nanos, jitter_ns: f64, loss: f64) -> f64 {
    // Effective delay includes the de-jitter buffer (~2× jitter) and codec.
    let d_ms = one_way_delay_ns as f64 / 1e6 + 2.0 * jitter_ns / 1e6 + 10.0;
    let id = 0.024 * d_ms + if d_ms > 177.3 { 0.11 * (d_ms - 177.3) } else { 0.0 };
    // G.711 with packet-loss concealment: Ie = 0, Bpl = 25.1.
    let ie_eff = 95.0 * (loss * 100.0) / (loss * 100.0 + 25.1);
    let r = (93.2 - id - ie_eff).clamp(0.0, 100.0);
    // R → MOS (ITU-T G.107 Annex B).
    if r <= 0.0 {
        1.0
    } else if r >= 100.0 {
        4.5
    } else {
        1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    }
}

/// Outcome of grading one flow against an SLA.
#[derive(Clone, Copy, Debug)]
pub struct SlaReport {
    /// Measured mean latency, ns.
    pub mean_latency_ns: Nanos,
    /// Measured p99 latency, ns.
    pub p99_latency_ns: Nanos,
    /// Measured jitter, ns.
    pub jitter_ns: f64,
    /// Measured loss fraction.
    pub loss: f64,
    /// Whether every bound held.
    pub met: bool,
}

impl std::fmt::Display for SlaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.2}ms p99={:.2}ms jitter={:.2}ms loss={:.2}% → {}",
            self.mean_latency_ns as f64 / 1e6,
            self.p99_latency_ns as f64 / 1e6,
            self.jitter_ns / 1e6,
            self.loss * 100.0,
            if self.met { "MET" } else { "VIOLATED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(latency_ns: u64, n: u64) -> FlowStats {
        let mut s = FlowStats::default();
        for i in 0..n {
            s.record(i * 20_000_000 + latency_ns, i * 20_000_000, i, 200);
        }
        s
    }

    #[test]
    fn good_voice_flow_meets_sla() {
        let s = stats(10_000_000, 100); // 10 ms constant
        let r = Sla::voice().evaluate(&s, 100);
        assert!(r.met, "{r}");
        assert_eq!(r.loss, 0.0);
    }

    #[test]
    fn high_latency_violates() {
        let s = stats(400_000_000, 100);
        assert!(!Sla::voice().evaluate(&s, 100).met);
    }

    #[test]
    fn loss_violates() {
        let s = stats(1_000_000, 90);
        let r = Sla::voice().evaluate(&s, 100); // 10% lost
        assert!(!r.met);
        assert!((r.loss - 0.1).abs() < 1e-9);
    }

    #[test]
    fn silent_flow_never_meets() {
        let r = Sla::voice().evaluate(&FlowStats::default(), 100);
        assert!(!r.met);
    }

    #[test]
    fn mos_orders_conditions_sensibly() {
        // Clean LAN-ish call: toll quality.
        let clean = voice_mos(5_000_000, 100_000.0, 0.0);
        assert!(clean > 4.2, "clean call MOS {clean}");
        // 100 ms + light loss: acceptable but degraded.
        let ok = voice_mos(100_000_000, 2_000_000.0, 0.005);
        assert!((3.3..clean).contains(&ok), "ok call MOS {ok}");
        // 250 ms + 5% loss: degraded well below the acceptable call.
        let bad = voice_mos(250_000_000, 10_000_000.0, 0.05);
        assert!(bad < 3.2, "bad call MOS {bad}");
        assert!(bad < ok && ok < clean);
        // Catastrophic loss bottoms out near 1.
        let awful = voice_mos(500_000_000, 50_000_000.0, 0.5);
        assert!(awful < 2.0, "awful MOS {awful}");
        assert!(awful >= 1.0);
    }

    #[test]
    fn mos_is_monotone_in_each_impairment() {
        let base = voice_mos(50_000_000, 1_000_000.0, 0.01);
        assert!(voice_mos(150_000_000, 1_000_000.0, 0.01) < base);
        assert!(voice_mos(50_000_000, 20_000_000.0, 0.01) < base);
        assert!(voice_mos(50_000_000, 1_000_000.0, 0.05) < base);
    }

    #[test]
    fn report_formats() {
        let s = stats(5_000_000, 10);
        let txt = Sla::voice().evaluate(&s, 10).to_string();
        assert!(txt.contains("MET"), "{txt}");
    }
}
