//! Static verification of a provisioned [`ProviderNetwork`].
//!
//! This module extracts the neutral models consumed by the
//! [`netsim_verify`] passes from a running provider network and runs
//! three of its four passes (the TE pass,
//! [`netsim_verify::verify_te`], operates on a standalone
//! [`netsim_te::TeDomain`] and is called directly by the experiments
//! that build one):
//!
//! 1. **Label plane** — every router's LFIB plus every ingress stack
//!    (LDP FTNs and per-VRF remote routes) is checked for dangling
//!    references, black holes, loops and reserved-label misuse.
//! 2. **VRF isolation** — the route-target import/export graph is
//!    checked for cross-VPN leaks (unless declared via
//!    [`ProviderNetwork::declare_extranet`]) and intra-VPN partitions.
//! 3. **QoS lints** — each PE's DSCP↔EXP map, the core RED drop
//!    profile, and EF admission against every backbone link.
//!
//! A healthy network produced by [`crate::BackboneBuilder`] verifies
//! clean; every experiment binary and example asserts this before
//! injecting traffic or faults.

use netsim_qos::RedParams;
use netsim_verify::{
    lint_ef_admission, lint_exp_map, lint_red_profile, verify_isolation, verify_label_plane,
    LabelNode, LabelPlane, StackWalk, VerifyReport, VrfPolicy,
};

use crate::network::{CoreQos, ProviderNetwork, VpnId};
use crate::router::{CoreRouter, PeRouter, VrfRoute};

/// Fraction of a backbone link's capacity the EF aggregate may commit
/// to: the paper's premium class stays low-delay only while it is
/// under-subscribed, so admission is checked against half of every
/// link (the worst case of all contracts concentrating on one link).
pub const EF_SHARE: f64 = 0.5;

impl ProviderNetwork {
    /// Declares that VPN `a` and VPN `b` intentionally exchange routes
    /// (an extranet). The verifier then reports their route-target
    /// coupling as informational instead of a `V-VRF-001` leak.
    pub fn declare_extranet(&mut self, a: VpnId, b: VpnId) {
        let pair = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if !self.extranets.contains(&pair) {
            self.extranets.push(pair);
        }
    }

    /// Commits an EF (premium) contract of `rate_bps` for `name`; the
    /// verifier checks the EF aggregate against [`EF_SHARE`] of every
    /// backbone link.
    pub fn commit_ef_contract(&mut self, name: impl Into<String>, rate_bps: u64) {
        self.ef_contracts.push(netsim_verify::EfContract { name: name.into(), rate_bps });
    }

    /// Statically analyzes the provisioned control and QoS state and
    /// returns the diagnostics. A freshly built healthy network is
    /// clean; see [`netsim_verify`] for the diagnostic-code table.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::new();
        verify_label_plane(&self.extract_label_plane(), &mut report);
        let extranets: Vec<(usize, usize)> =
            self.extranets.iter().map(|&(a, b)| (a.0, b.0)).collect();
        verify_isolation(&self.vrf_policies(), &extranets, &mut report);
        self.lint_qos(&mut report);
        report
    }

    /// Builds the label-plane model: per-router ILMs straight out of
    /// the simulated routers, plus one stack walk per LDP FTN and per
    /// remote VRF route.
    fn extract_label_plane(&self) -> LabelPlane {
        let n = self.topo.node_count();
        let mut nodes = Vec::with_capacity(n);
        for u in 0..n {
            let neighbors: Vec<Option<usize>> =
                self.topo.neighbors(u).map(|(v, _, _)| Some(v)).collect();
            let (name, ilm, local_labels) = if let Some(k) = self.pe_ordinal(u) {
                let pe = self.net.node_ref::<PeRouter>(self.node_ids[u]);
                let mut locals: Vec<u32> = pe.vpn_ilm.keys().copied().collect();
                locals.sort_unstable();
                (format!("PE{k}"), pe.lfib.iter().map(|(l, e)| (l, *e)).collect(), locals)
            } else {
                let p = self.net.node_ref::<CoreRouter>(self.node_ids[u]);
                (format!("P{u}"), p.lfib.iter().map(|(l, e)| (l, *e)).collect(), Vec::new())
            };
            nodes.push(LabelNode { name, neighbors, ilm, local_labels });
        }

        let mut walks = Vec::new();
        for (u, (lnode, ldp_node)) in nodes.iter().zip(&self.ldp.nodes).enumerate() {
            let mut ftns: Vec<_> = ldp_node.ftn.iter().collect();
            ftns.sort_by_key(|(fec, _)| fec.0);
            for (fec, ftn) in ftns {
                let egress = self.ldp.egress.get(fec).copied();
                if egress == Some(u) {
                    continue;
                }
                walks.push(StackWalk {
                    origin: u,
                    fec: format!("{} Fec({})", lnode.name, fec.0),
                    push: ftn.push.clone(),
                    out_iface: ftn.out_iface,
                    expect_delivery: egress,
                });
            }
        }
        for (k, &pe_topo) in self.pes.iter().enumerate() {
            let pe = self.net.node_ref::<PeRouter>(self.node_ids[pe_topo]);
            for vrf in &pe.vrfs {
                for (prefix, route) in vrf.fib.iter() {
                    let VrfRoute::Remote { egress_pe, vpn_label, tunnel } = route else {
                        continue;
                    };
                    let mut push = vec![*vpn_label];
                    push.extend_from_slice(&tunnel.push);
                    walks.push(StackWalk {
                        origin: pe_topo,
                        fec: format!("PE{k} vrf {} {prefix}", vrf.name),
                        push,
                        out_iface: tunnel.out_iface,
                        expect_delivery: Some(self.pes[*egress_pe]),
                    });
                }
            }
        }
        LabelPlane { nodes, walks }
    }

    /// Snapshot of every VRF's route-target policy, sorted for
    /// deterministic diagnostics.
    fn vrf_policies(&self) -> Vec<VrfPolicy> {
        let mut policies: Vec<VrfPolicy> = self
            .vrf_handles
            .iter()
            .map(|(&(pe, vpn), &(handle, _))| VrfPolicy {
                name: format!("PE{pe}:{}", self.vpns[vpn.0].name),
                vpn: vpn.0,
                imports: self.fabric.import_targets(handle).iter().map(|rt| rt.0).collect(),
                exports: self.fabric.export_targets(handle).iter().map(|rt| rt.0).collect(),
            })
            .collect();
        policies.sort_by(|a, b| a.name.cmp(&b.name));
        policies
    }

    fn lint_qos(&self, report: &mut VerifyReport) {
        for (k, &pe_topo) in self.pes.iter().enumerate() {
            let pe = self.net.node_ref::<PeRouter>(self.node_ids[pe_topo]);
            lint_exp_map(&pe.exp_map, &format!("PE{k}"), report);
        }
        if let CoreQos::DiffServ { cap_bytes, .. } = self.core_qos {
            // Mirror the AF-band RED profile BackboneBuilder installs.
            let per_band = cap_bytes / 8;
            lint_red_profile(
                &RedParams::new(per_band / 4, per_band * 3 / 4),
                per_band,
                "core DiffServ AF band",
                report,
            );
        }
        let links: Vec<(String, u64)> = (0..self.topo.link_count())
            .map(|l| {
                let (u, v, attrs) = self.topo.link(l);
                (format!("link {u}-{v}"), attrs.capacity_bps)
            })
            .collect();
        lint_ef_admission(&self.ef_contracts, &links, EF_SHARE, report);
    }

    fn pe_ordinal(&self, topo_node: usize) -> Option<usize> {
        self.pes.iter().position(|&p| p == topo_node)
    }
}
