//! Hop-by-hop packet tracing (experiment F3).
//!
//! Routers that are handed a [`TraceLog`] record one [`HopRecord`] per
//! forwarding decision: what the device was, what it did, and what the
//! label stack / markings looked like at that instant. The `exp_trace`
//! binary prints the table reproducing the paper's Figure 3 path
//! (CE → PE → P → PE → CE).

use std::cell::RefCell;
use std::rc::Rc;

use netsim_net::{Dscp, Packet};
use netsim_qos::Nanos;

/// One forwarding decision observed at one device.
#[derive(Clone, Debug)]
pub struct HopRecord {
    /// Simulation time of the decision.
    pub at: Nanos,
    /// Device name (e.g. "PE0", "P2", "CE-siteA").
    pub device: String,
    /// What the device did (e.g. "push [17 102]", "swap 102→231").
    pub action: String,
    /// MPLS label values outermost-first after the action.
    pub labels: Vec<u32>,
    /// EXP of the top label after the action, if labeled.
    pub exp: Option<u8>,
    /// DSCP of the outermost IP header after the action, if visible.
    pub dscp: Option<Dscp>,
    /// Flow the packet belongs to.
    pub flow: u64,
    /// Sequence number of the packet.
    pub seq: u64,
}

/// A shared, cheaply cloneable trace sink. Cloning shares the log.
#[derive(Clone, Default)]
pub struct TraceLog {
    inner: Rc<RefCell<Vec<HopRecord>>>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Records a hop: captures the packet's current stack and markings.
    pub fn record(&self, at: Nanos, device: &str, action: String, pkt: &Packet) {
        let labels: Vec<u32> = pkt
            .layers()
            .iter()
            .map_while(|l| match l {
                netsim_net::Layer::Mpls(m) => Some(m.label),
                _ => None,
            })
            .collect();
        self.inner.borrow_mut().push(HopRecord {
            at,
            device: device.to_owned(),
            action,
            labels,
            exp: pkt.top_label().map(|l| l.exp),
            dscp: pkt.outer_ipv4().map(|h| h.dscp),
            flow: pkt.meta.flow,
            seq: pkt.meta.seq,
        });
    }

    /// Snapshot of all records so far.
    pub fn records(&self) -> Vec<HopRecord> {
        self.inner.borrow().clone()
    }

    /// Records for one flow, in order.
    pub fn flow(&self, flow: u64) -> Vec<HopRecord> {
        self.inner.borrow().iter().filter(|r| r.flow == flow).cloned().collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::ip;
    use netsim_net::{Layer, MplsLabel};

    #[test]
    fn records_capture_stack_and_markings() {
        let log = TraceLog::new();
        let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::EF, 10);
        p.meta.flow = 5;
        log.record(100, "CE", "mark EF".into(), &p);
        p.push_outer(Layer::Mpls(MplsLabel::new(17, 5, 64)));
        p.push_outer(Layer::Mpls(MplsLabel::new(102, 5, 64)));
        log.record(200, "PE0", "push [102 17]".into(), &p);
        let recs = log.flow(5);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].labels, Vec::<u32>::new());
        assert_eq!(recs[0].dscp, Some(Dscp::EF));
        assert_eq!(recs[1].labels, vec![102, 17]);
        assert_eq!(recs[1].exp, Some(5));
        assert!(log.flow(6).is_empty());
    }

    #[test]
    fn clones_share_the_log() {
        let a = TraceLog::new();
        let b = a.clone();
        let p = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, 0);
        b.record(1, "X", "noop".into(), &p);
        assert_eq!(a.len(), 1);
    }
}
