//! Provider-network observability: the [`ProviderNetwork`] facade over
//! the `netsim-obs` telemetry layer.
//!
//! Every network built through [`crate::BackboneBuilder`] carries, always
//! on:
//!
//! * one [`FlightRecorder`] shared by the simulator engine and every
//!   PE/P/CE router — each discarded packet is attributed to a
//!   [`netsim_obs::DropCause`] instead of vanishing into a bare count;
//! * one [`MetricsRegistry`] holding named series (per-VRF forwarded
//!   counters are wired at [`crate::ProviderNetwork::add_site`] time;
//!   experiments may register their own).
//!
//! [`ProviderNetwork::metrics_snapshot`] folds the registry, the drop
//! causes, per-router counters, per-LFIB label operations, and per-link
//! class breakdowns into one [`MetricsSnapshot`] exportable as JSON/CSV.
//!
//! [`ProviderNetwork::attach_sla_probe`] adds a synthetic low-rate probe
//! flow for one ⟨VPN, class⟩ pair — the paper's §6 "measure the SLA you
//! sell" loop: the probe is marked at the source, bypasses CPE remarking,
//! and rides the exact queues customer traffic of that class rides. Its
//! one-way delay/jitter/loss lands in the snapshot's probe table.

use netsim_net::{Dscp, Prefix};
use netsim_obs::{FlightRecorder, MetricsRegistry, MetricsSnapshot, ProbeRow};
use netsim_qos::Nanos;
use netsim_sim::{CbrSource, LinkId, NodeId, Sink, SourceConfig};

use crate::network::{ProviderNetwork, SiteId, VpnId};
use crate::router::{CeRouter, CoreRouter, PeRouter, RouterCounters};

/// Flow-id base for SLA probe flows: far above any experiment's data
/// flows, so probe series never collide with customer traffic in sinks.
pub const PROBE_FLOW_BASE: u64 = 1 << 48;

/// Host ordinal inside the destination site's prefix where probe
/// reflectors listen (chosen high to stay clear of experiment hosts).
const PROBE_HOST_BASE: u32 = 200;

/// One provisioned SLA probe: where it runs and where it is measured.
pub(crate) struct ProbeSpec {
    pub(crate) vpn: VpnId,
    pub(crate) class: String,
    pub(crate) flow: u64,
    pub(crate) src: NodeId,
    pub(crate) sink: NodeId,
}

/// Pushes one router's counters into `snap` under `prefix.`.
fn push_router_counters(snap: &mut MetricsSnapshot, prefix: &str, c: &RouterCounters) {
    snap.push_counter(format!("{prefix}.forwarded"), c.forwarded);
    snap.push_counter(format!("{prefix}.delivered_local"), c.delivered_local);
    snap.push_counter(format!("{prefix}.label_ops"), c.label_ops);
    snap.push_counter(format!("{prefix}.lpm_lookups"), c.lpm_lookups);
    snap.push_counter(format!("{prefix}.dropped.no_route"), c.dropped_no_route);
    snap.push_counter(format!("{prefix}.dropped.ttl"), c.dropped_ttl);
    snap.push_counter(format!("{prefix}.dropped.policer"), c.dropped_policer);
    snap.push_counter(format!("{prefix}.dropped.vrf_miss"), c.dropped_vrf_miss);
}

/// Pushes one LFIB's operation counters into `snap` under `prefix.lfib.`.
fn push_lfib_stats(snap: &mut MetricsSnapshot, prefix: &str, lfib: &netsim_mpls::Lfib) {
    let s = lfib.stats();
    snap.push_counter(format!("{prefix}.lfib.swaps"), s.swaps());
    snap.push_counter(format!("{prefix}.lfib.pops"), s.pops());
    snap.push_counter(format!("{prefix}.lfib.pushes"), s.pushes());
    snap.push_counter(format!("{prefix}.lfib.bypass_activations"), s.bypass_activations());
}

impl ProviderNetwork {
    /// The shared drop-cause flight recorder (always attached).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The metrics registry; experiments can register extra series on it.
    pub fn registry(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Provisions a synthetic SLA probe flow for one ⟨VPN, class⟩ pair:
    /// a 64-byte CBR stream marked `dscp` from `from` to a dedicated
    /// measurement sink behind `to`'s CE. The CPE marking policy is
    /// bypassed for probe packets, so the probe measures the class it is
    /// stamped with — exactly what the provider sold. Returns the probe's
    /// flow id (≥ [`PROBE_FLOW_BASE`]).
    ///
    /// # Panics
    /// Panics if both sites are not in the same VPN.
    pub fn attach_sla_probe(
        &mut self,
        from: SiteId,
        to: SiteId,
        dscp: Dscp,
        interval: Nanos,
        count: Option<u64>,
    ) -> u64 {
        let vpn = self.sites[from.0].vpn;
        assert_eq!(vpn, self.sites[to.0].vpn, "SLA probes run inside one VPN");
        let idx = self.probes.len();
        let flow = PROBE_FLOW_BASE + idx as u64;
        // Dedicated reflector host: one address high inside the target
        // site's block, one sink per probe so series never mix.
        let host = PROBE_HOST_BASE + idx as u32;
        let dst = self.site_addr(to, host);
        let sink = self.attach_sink(to, Prefix::host(dst));
        let src_addr = self.site_addr(from, host);
        let cfg = SourceConfig::udp(flow, src_addr, dst, 7, 64).with_dscp(dscp).as_probe();
        let src = self.attach_cbr_source(from, cfg, interval, count);
        let class = format!("{dscp}");
        self.probes.push(ProbeSpec { vpn, class, flow, src, sink });
        flow
    }

    /// The measured SLA probe table: one row per provisioned probe, in
    /// provisioning order.
    pub fn probe_rows(&self) -> Vec<ProbeRow> {
        self.probes
            .iter()
            .map(|p| {
                let tx = self.net.node_ref::<CbrSource>(p.src).tx.tx_packets;
                let sink = self.net.node_ref::<Sink>(p.sink);
                let (rx, mean, p99, jitter) = sink.flow(p.flow).map_or((0, 0.0, 0, 0.0), |f| {
                    (f.rx_packets, f.latency.mean(), f.latency.quantile(0.99), f.jitter_ns)
                });
                let loss_pct =
                    if tx == 0 { 0.0 } else { 100.0 * (tx.saturating_sub(rx)) as f64 / tx as f64 };
                ProbeRow {
                    vpn: self.vpn_name(p.vpn).to_owned(),
                    class: p.class.clone(),
                    tx,
                    rx,
                    mean_delay_ns: mean,
                    p99_delay_ns: p99,
                    jitter_ns: jitter,
                    loss_pct,
                }
            })
            .collect()
    }

    /// Captures everything the network tracks into one exportable
    /// [`MetricsSnapshot`]: registry series, drop causes, per-router and
    /// per-LFIB counters, per-link class breakdowns, and the SLA probe
    /// table.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new(self.net.now());
        snap.merge_registry(&self.registry);
        snap.merge_causes(&self.recorder);
        snap.gauges.push(("sim.queued_packets".to_owned(), self.net.queued_packets() as i64));

        // Backbone routers, in topology-node order.
        for u in 0..self.topo.node_count() {
            let id = self.node_ids[u];
            if let Some(k) = self.pes.iter().position(|&p| p == u) {
                let pe = self.net.node_ref::<PeRouter>(id);
                let name = format!("pe{k}");
                push_router_counters(&mut snap, &name, &pe.counters);
                push_lfib_stats(&mut snap, &name, &pe.lfib);
            } else {
                let p = self.net.node_ref::<CoreRouter>(id);
                let name = format!("p{u}");
                push_router_counters(&mut snap, &name, &p.counters);
                push_lfib_stats(&mut snap, &name, &p.lfib);
            }
        }
        // CE routers, in site order.
        for (i, s) in self.sites.iter().enumerate() {
            let ce = self.net.node_ref::<CeRouter>(s.ce);
            push_router_counters(&mut snap, &format!("ce.site{i}"), &ce.counters);
        }
        // Backbone links: totals always, class breakdown only where a
        // class saw traffic (keeps snapshots readable on big topologies).
        for l in 0..self.topo.link_count() {
            for dir in 0..2u8 {
                let st = self.net.link_stats(LinkId(l), dir);
                let name = format!("link{l}.d{dir}");
                snap.push_counter(format!("{name}.tx"), st.tx_packets);
                snap.push_counter(format!("{name}.dropped"), st.dropped);
                for (c, (&tx, &dr)) in
                    st.tx_by_class.iter().zip(st.dropped_by_class.iter()).enumerate()
                {
                    if tx > 0 {
                        snap.push_counter(format!("{name}.tx.exp{c}"), tx);
                    }
                    if dr > 0 {
                        snap.push_counter(format!("{name}.dropped.exp{c}"), dr);
                    }
                }
            }
        }
        // Control plane: the oracle-vs-in-band cost surface.
        snap.push_counter("control.no_lsp_to_egress".to_owned(), self.no_lsp_to_egress());
        snap.push_counter("control.sync_route_pushes".to_owned(), self.sync_route_pushes());
        if let Some(stats) = self.control_stats() {
            snap.push_counter("control.igp.pkts".to_owned(), stats.pkts_by_proto[0]);
            snap.push_counter("control.ldp.pkts".to_owned(), stats.pkts_by_proto[1]);
            snap.push_counter("control.bgp.pkts".to_owned(), stats.pkts_by_proto[2]);
            snap.push_counter("control.pkts_sent".to_owned(), stats.pkts_sent);
            snap.push_counter("control.pkts_terminated".to_owned(), stats.pkts_terminated);
            snap.push_counter("control.bytes_sent".to_owned(), stats.bytes_sent);
            snap.push_counter("control.spf_runs".to_owned(), stats.spf_runs);
            snap.push_counter("control.spf_skips".to_owned(), stats.spf_skips);
            snap.push_counter("control.undeliverable".to_owned(), stats.undeliverable);
            for l in 0..self.topo.link_count() {
                let b = self.control_bytes_on_link(l);
                if b > 0 {
                    snap.push_counter(format!("control.link{l}.bytes"), b);
                }
            }
            if let Some((p50, p99, max)) = self.control_convergence_ns() {
                snap.push_counter("control.convergence.p50_ns".to_owned(), p50);
                snap.push_counter("control.convergence.p99_ns".to_owned(), p99);
                snap.push_counter("control.convergence.max_ns".to_owned(), max);
            }
        }
        snap.probes = self.probe_rows();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::BackboneBuilder;
    use netsim_net::addr::pfx;
    use netsim_routing::{LinkAttrs, Topology};
    use netsim_sim::SEC;

    fn line() -> ProviderNetwork {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        BackboneBuilder::new(topo, vec![0, 2]).build()
    }

    #[test]
    fn sla_probe_measures_delivery_and_delay() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let flow = pn.attach_sla_probe(a, b, Dscp::EF, 10_000_000, Some(50));
        assert!(flow >= PROBE_FLOW_BASE);
        pn.run_for(2 * SEC);
        let rows = pn.probe_rows();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!((r.vpn.as_str(), r.class.as_str()), ("acme", "EF"));
        assert_eq!(r.tx, 50);
        assert_eq!(r.rx, 50, "healthy backbone loses no probes");
        assert_eq!(r.loss_pct, 0.0);
        // Two backbone hops at 1 ms each plus access links: > 2 ms.
        assert!(r.mean_delay_ns > 2_000_000.0, "mean {}", r.mean_delay_ns);
        assert!(r.p99_delay_ns >= r.mean_delay_ns as u64 / 2);
    }

    #[test]
    fn probe_marking_survives_a_remarking_cpe() {
        use netsim_qos::MarkingPolicy;
        // CPE marks everything best-effort; the probe must keep EF.
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), Some(MarkingPolicy::new(Dscp::BE)));
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        pn.attach_sla_probe(a, b, Dscp::EF, 10_000_000, Some(10));
        pn.run_for(SEC);
        // The EF class saw traffic on the backbone links.
        let snap = pn.metrics_snapshot();
        let ef_tx: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("link") && n.ends_with(".tx.exp5"))
            .map(|&(_, v)| v)
            .sum();
        assert!(ef_tx >= 10, "probe packets must ride EXP 5, saw {ef_tx}");
    }

    #[test]
    fn snapshot_collects_all_layers() {
        let mut pn = line();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to = pn.site_addr(b, 9);
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 10), to, 5000, 200);
        pn.attach_cbr_source(a, cfg, 1_000_000, Some(40));
        pn.run_for(SEC);
        assert_eq!(pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets), Some(40));

        let snap = pn.metrics_snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        // Registry series: the ingress VRF forwarded every data packet.
        assert!(get("vrf.acme.pe0.forwarded") >= 40);
        // Router layer: the egress PE decapsulated them.
        assert!(get("pe1.forwarded") >= 40);
        // MPLS layer: with PHP on a 3-node line the P router pops.
        assert!(get("p1.lfib.pops") >= 40);
        // Link layer: both backbone links carried them.
        assert!(get("link0.d0.tx") >= 40 && get("link1.d0.tx") >= 40);
        // Healthy run: no drop causes recorded.
        assert!(snap.drop_causes.is_empty(), "unexpected drops: {:?}", snap.drop_causes);
        // And the export formats carry the same numbers.
        assert!(snap.to_json().contains("\"pe1.forwarded\""));
        assert!(snap.to_csv().contains("pe1.forwarded,"));
    }

    #[test]
    fn overflow_drops_land_in_the_flight_recorder() {
        // 1 Mb/s backbone with a tiny FIFO: a 100 Mb/s access burst must
        // overflow the PE egress queue and every loss must be attributed.
        let mut topo = Topology::new(2);
        topo.add_link(0, 1, LinkAttrs { cost: 1, capacity_bps: 1_000_000 });
        let mut pn = BackboneBuilder::new(topo, vec![0, 1])
            .core_qos(crate::CoreQos::BestEffort { cap_bytes: 3_000 })
            .build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let to = pn.site_addr(b, 9);
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 10), to, 5000, 1_000);
        pn.attach_cbr_source(a, cfg, 100_000, Some(200)); // ~80 Mb/s offered
        pn.run_to_quiescence();
        let delivered = pn.net.node_ref::<Sink>(sink).flow(1).map_or(0, |f| f.rx_packets);
        assert!(delivered < 200, "the bottleneck must drop something");
        let causes = pn.recorder().totals();
        let attributed: u64 = causes.iter().sum();
        assert_eq!(attributed, 200 - delivered, "every loss has a cause: {causes:?}");
        let snap = pn.metrics_snapshot();
        assert!(
            snap.drop_causes.iter().any(|(n, v)| n == "queue_overflow" && *v > 0),
            "expected queue_overflow rows, got {:?}",
            snap.drop_causes
        );
    }
}
