//! Fast-reroute orchestration on a running provider network.
//!
//! The control-plane pieces live elsewhere — [`netsim_te::frr`] computes
//! SRLG-disjoint backup routes, [`netsim_mpls::Lfib`] holds per-interface
//! bypass entries, and the routers flip interfaces down when their
//! BFD-style detection timers fire. This module wires them together on a
//! [`ProviderNetwork`]:
//!
//! * [`ProviderNetwork::protect_link`] signals a bypass LSP around one
//!   backbone link (both directions) and installs it as the link's
//!   protection entry at each upstream router.
//! * [`ProviderNetwork::install_trunk_protection`] takes the backup
//!   routes a [`netsim_te::TeDomain`] computed for a trunk and signals
//!   them into the running routers.
//! * [`ProviderNetwork::reconverge_summary`] separates the two stages of
//!   the reaction to a failure: the *switchover* (local, detection-time)
//!   and the *re-optimization* (global, control-plane-time).
//! * [`ProviderNetwork::execute_fault_plan`] replays a deterministic
//!   [`FaultPlan`] against the network under either failover mode.
//!
//! A bypass is single-level protection: the bypass LSP itself is never
//! rerouted, and [`ProviderNetwork::reconverge`] — which rebuilds every
//! LFIB from scratch — erases all protection state. Re-protect after
//! re-optimizing.

use netsim_qos::Nanos;
use netsim_sim::{FaultAction, FaultPlan};
use netsim_te::{cspf_path_excluding, SrlgMap, TeDomain, TrunkId};

use crate::control::ControlMode;
use crate::network::{ControlSummary, ProviderNetwork};

/// How the network reacts to a link failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailoverMode {
    /// No local protection: traffic blackholes until the control plane
    /// detects the failure and globally reconverges (IGP + LDP).
    GlobalReconverge,
    /// Fast reroute: upstream routers switch onto precomputed bypass
    /// LSPs as soon as detection fires; no global reconvergence.
    FastReroute,
}

/// The two-stage cost of reacting to a failure set.
#[derive(Clone, Copy, Debug)]
pub struct ReconvergeSummary {
    /// Failed-link directions that were actively rerouted onto a bypass
    /// at the moment re-optimization started (i.e. FRR carried traffic
    /// through the control-plane convergence window).
    pub switchovers: u64,
    /// The detection delay that gated the switchover.
    pub detection_ns: Nanos,
    /// Control-plane messages the re-optimization cost.
    pub control: ControlSummary,
}

/// What happened while executing a [`FaultPlan`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultOutcome {
    /// Link cuts applied (idempotent re-cuts are still counted as plan
    /// events but are no-ops on the network).
    pub cuts: u64,
    /// Link repairs applied.
    pub repairs: u64,
    /// Cut directions that had a bypass installed when the cut landed —
    /// the switchovers that activate once detection fires.
    pub switchovers: u64,
    /// Global reconvergences run (always 0 under
    /// [`FailoverMode::FastReroute`]).
    pub reconvergences: u64,
    /// IGP + LDP messages those reconvergences cost.
    pub control_messages: u64,
}

impl ProviderNetwork {
    /// Signals a bypass LSP around backbone link `topo_link` in each
    /// direction and installs it as that direction's protection entry at
    /// the upstream router. The bypass excludes the protected link and
    /// every link sharing a risk group with it, and avoids currently
    /// failed links. Returns how many directions could be protected
    /// (0–2; an SRLG-disjoint detour does not always exist).
    pub fn protect_link(&mut self, topo_link: usize, srlg: &SrlgMap) -> usize {
        assert!(topo_link < self.topo.link_count(), "unknown backbone link {topo_link}");
        let failed = self.failed_links();
        let (u, v, _) = self.topo.link(topo_link);
        let mut installed = 0;
        for (near, far) in [(u, v), (v, u)] {
            let usable = |l: usize| !failed.contains(&l);
            let Some(path) = cspf_path_excluding(&self.topo, near, far, srlg, topo_link, &usable)
            else {
                continue;
            };
            let ftn = self.install_explicit_lsp(&path);
            let iface = self.topo.iface_toward(near, far);
            self.with_lfib(near, |lfib| lfib.install_protection(iface, ftn));
            installed += 1;
        }
        installed
    }

    /// Protects every backbone link that has a viable SRLG-disjoint
    /// detour. Returns the number of protected directions installed.
    pub fn protect_all_links(&mut self, srlg: &SrlgMap) -> usize {
        (0..self.topo.link_count()).map(|l| self.protect_link(l, srlg)).sum()
    }

    /// Signals the backup routes `te` computed for trunk `id` (see
    /// [`netsim_te::TeDomain::protect_trunk`]) into the running routers.
    /// The TE domain must have been built over this network's topology —
    /// link and node ids are shared. Returns the bypasses installed.
    pub fn install_trunk_protection(&mut self, te: &TeDomain, id: TrunkId) -> usize {
        let backups: Vec<_> = te.backups(id).to_vec();
        for b in &backups {
            let ftn = self.install_explicit_lsp(&b.path);
            let (u, v, _) = self.topo.link(b.protected_link);
            let near = b.path[0];
            let far = if near == u { v } else { u };
            let iface = self.topo.iface_toward(near, far);
            self.with_lfib(near, |lfib| lfib.install_protection(iface, ftn));
        }
        backups.len()
    }

    /// Failed-link directions whose upstream router currently has both a
    /// bypass installed and the interface marked down — i.e. traffic is
    /// flowing over the bypass right now.
    pub fn active_switchovers(&mut self) -> u64 {
        let mut n = 0;
        for link in self.failed_links() {
            let (u, v, _) = self.topo.link(link);
            for (near, far) in [(u, v), (v, u)] {
                let iface = self.topo.iface_toward(near, far);
                let mut active = false;
                self.with_lfib(near, |l| {
                    active = l.iface_down(iface) && l.protection(iface).is_some();
                });
                n += u64::from(active);
            }
        }
        n
    }

    /// Runs [`ProviderNetwork::reconverge`], but first records how many
    /// failed directions FRR was actively carrying — separating the local
    /// switchover from the global re-optimization. Reconvergence rebuilds
    /// every LFIB and therefore *erases all protection state*; re-protect
    /// afterwards if FRR should survive the next failure.
    pub fn reconverge_summary(&mut self) -> ReconvergeSummary {
        let switchovers = self.active_switchovers();
        let detection_ns = self.detect_ns;
        let control = self.reconverge();
        ReconvergeSummary { switchovers, detection_ns, control }
    }

    /// Cut directions of `topo_link` that currently have a bypass
    /// installed upstream (whether or not detection has fired yet).
    fn protected_directions(&mut self, topo_link: usize) -> u64 {
        let (u, v, _) = self.topo.link(topo_link);
        let mut n = 0;
        for (near, far) in [(u, v), (v, u)] {
            let iface = self.topo.iface_toward(near, far);
            let mut has = false;
            self.with_lfib(near, |l| has = l.protection(iface).is_some());
            n += u64::from(has);
        }
        n
    }

    /// Replays `plan` against the network, advancing the simulator to
    /// each event's timestamp before applying it, and finally runs the
    /// simulator to `until`. Under [`FailoverMode::GlobalReconverge`] a
    /// global reconvergence is scheduled one detection delay after every
    /// event (cut *and* repair) — the control plane's reaction; under
    /// [`FailoverMode::FastReroute`] the routers' own detection timers do
    /// all the work and no reconvergence runs. Events at or after `until`
    /// are ignored. Deterministic: the same plan, mode and network seed
    /// replay identically.
    pub fn execute_fault_plan(
        &mut self,
        plan: &FaultPlan,
        mode: FailoverMode,
        until: Nanos,
    ) -> FaultOutcome {
        enum Step {
            Cut(usize),
            Repair(usize),
            Reconverge,
        }
        let mut steps: Vec<(Nanos, Step)> = Vec::new();
        for ev in plan.events() {
            let step = match ev.action {
                FaultAction::Cut => Step::Cut(ev.link),
                FaultAction::Repair => Step::Repair(ev.link),
            };
            steps.push((ev.at, step));
            // Under in-band control the LSA flood *is* the reaction; the
            // oracle reconvergence only stands in for it in Oracle mode.
            if mode == FailoverMode::GlobalReconverge && self.control_mode() == ControlMode::Oracle
            {
                steps.push((ev.at + self.detect_ns, Step::Reconverge));
            }
        }
        // Stable: a cut stays ahead of a reconvergence landing at the
        // same instant.
        steps.sort_by_key(|&(t, _)| t);

        let mut out = FaultOutcome::default();
        for (t, step) in steps {
            if t >= until {
                break;
            }
            self.net.run_until(t);
            match step {
                Step::Cut(l) => {
                    out.switchovers += self.protected_directions(l);
                    self.fail_link(l);
                    out.cuts += 1;
                }
                Step::Repair(l) => {
                    self.repair_link(l);
                    out.repairs += 1;
                }
                Step::Reconverge => {
                    let s = self.reconverge();
                    out.control_messages += s.igp_lsa_messages + s.ldp_messages;
                    out.reconvergences += 1;
                }
            }
        }
        self.net.run_until(until);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{BackboneBuilder, SiteId};
    use netsim_net::addr::pfx;
    use netsim_routing::{LinkAttrs, Topology};
    use netsim_sim::{FaultEvent, LinkId, Sink, SourceConfig, MSEC, SEC};

    /// The fish: PE0/PE4 at the ends, short path 0-1-4, long 0-2-3-4.
    fn fish() -> Topology {
        let mut t = Topology::new(5);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 10_000_000 };
        for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
            t.add_link(u, v, attrs);
        }
        t
    }

    /// A fish backbone with one VPN and a site on each PE.
    fn fish_network(detect: Nanos) -> (ProviderNetwork, SiteId, SiteId) {
        let mut pn = BackboneBuilder::new(fish(), vec![0, 4]).detection(detect).build();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        (pn, a, b)
    }

    /// Starts a 100 pps CBR flow `a → b` carrying `count` packets and
    /// returns the sink node measuring it.
    fn start_flow(
        pn: &mut ProviderNetwork,
        a: SiteId,
        b: SiteId,
        count: u64,
    ) -> netsim_sim::NodeId {
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 9), 5000, 200);
        pn.attach_cbr_source(a, cfg, 10 * MSEC, Some(count));
        sink
    }

    #[test]
    fn protected_failure_keeps_traffic_flowing_after_detection() {
        let (mut pn, a, b) = fish_network(10 * MSEC);
        let srlg = SrlgMap::new(pn.topo.link_count());
        // Both directions of both short-path links get bypasses.
        assert_eq!(pn.protect_link(0, &srlg), 2);
        assert_eq!(pn.protect_link(1, &srlg), 2);

        let sink = start_flow(&mut pn, a, b, 300); // 3 s of traffic
        pn.run_for(SEC);
        pn.fail_link(1); // cut 1-4 mid-stream; no reconvergence ever runs
        pn.run_for(3 * SEC);

        let f = pn.net.node_ref::<Sink>(sink).flow(1).unwrap();
        let lost = 300 - f.rx_packets;
        // Only the ~10 ms blind window between cut and detection loses
        // packets (100 pps → ~1).
        assert!(lost <= 3, "lost {lost} packets despite FRR protection");
        // Both directions of the cut link are in switchover state.
        assert_eq!(pn.active_switchovers(), 2);
    }

    #[test]
    fn unprotected_failure_blackholes_until_reconvergence() {
        let (mut pn, a, b) = fish_network(10 * MSEC);
        let sink = start_flow(&mut pn, a, b, 300);
        pn.run_for(SEC);
        pn.fail_link(1);
        pn.run_for(3 * SEC);
        let f = pn.net.node_ref::<Sink>(sink).flow(1).unwrap();
        let lost = 300 - f.rx_packets;
        // ~2 s of blackhole at 100 pps: the whole tail is gone.
        assert!(lost > 150, "expected a blackhole, lost only {lost}");
    }

    #[test]
    fn reconverge_summary_separates_switchover_from_reoptimization() {
        let (mut pn, _a, _b) = fish_network(10 * MSEC);
        let srlg = SrlgMap::new(pn.topo.link_count());
        pn.protect_link(1, &srlg);
        pn.fail_link(1);
        pn.run_for(50 * MSEC); // detection fires at 10 ms
        let summary = pn.reconverge_summary();
        assert_eq!(summary.switchovers, 2);
        assert_eq!(summary.detection_ns, 10 * MSEC);
        assert!(summary.control.igp_lsa_messages > 0);
        // Reconvergence wiped protection state.
        assert_eq!(pn.active_switchovers(), 0);
    }

    #[test]
    fn fail_link_is_idempotent_and_fail_node_cuts_all_adjacencies() {
        let (mut pn, _a, _b) = fish_network(10 * MSEC);
        pn.fail_link(1);
        pn.fail_link(1); // no double-arm, no double-count
        assert_eq!(pn.failed_links(), vec![1]);
        pn.fail_node(4); // links 1 (already down) and 4
        assert_eq!(pn.failed_links(), vec![1, 4]);
        pn.repair_link(1);
        pn.repair_link(1);
        assert_eq!(pn.failed_links(), vec![4]);
    }

    #[test]
    fn fault_plan_replay_is_mode_aware() {
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 100 * MSEC, link: 1, action: FaultAction::Cut },
            FaultEvent { at: 400 * MSEC, link: 1, action: FaultAction::Repair },
        ]);

        let (mut frr, _a, _b) = fish_network(10 * MSEC);
        let srlg = SrlgMap::new(frr.topo.link_count());
        frr.protect_all_links(&srlg);
        let out = frr.execute_fault_plan(&plan, FailoverMode::FastReroute, SEC);
        assert_eq!((out.cuts, out.repairs), (1, 1));
        assert_eq!(out.switchovers, 2);
        assert_eq!(out.reconvergences, 0);

        let (mut global, _a, _b) = fish_network(10 * MSEC);
        let out = global.execute_fault_plan(&plan, FailoverMode::GlobalReconverge, SEC);
        assert_eq!((out.cuts, out.repairs), (1, 1));
        assert_eq!(out.switchovers, 0);
        assert_eq!(out.reconvergences, 2);
        assert!(out.control_messages > 0, "reconvergence costs messages");
        // After the repair-side reconvergence the link is usable again.
        assert!(global.net.link_enabled(LinkId(1)));
    }
}
