//! Inter-provider VPN stitching (experiment Q4).
//!
//! The paper's §5: "This cross-network SLA capability allows the building
//! of VPNs using multiple carriers as necessary, an option not available
//! with most frame relay offerings." Two independent MPLS domains — each
//! with its own IGP and LDP — are joined at a pair of ASBRs that exchange
//! VPN routes over eBGP *with label swap* (the RFC 2547 "option B" model):
//!
//! ```text
//! CE_A─PE_A─…─ASBR_A ═ inter-AS link ═ ASBR_B─…─PE_B─CE_B
//!       push            swap X→Y          swap Y→Lb
//!       [tunA,X]                          push tunB
//! ```
//!
//! Because every relabeling preserves the EXP bits, the DSCP→EXP mapping
//! chosen at the ingress PE governs scheduling in *both* carriers — the
//! end-to-end SLA claim the experiment verifies.

use netsim_mpls::ldp::{Fec, LdpConfig, LdpDomain};
use netsim_mpls::lfib::{LabelOp, Nhlfe};
use netsim_mpls::Lfib;
use netsim_net::Prefix;
use netsim_qos::{MarkingPolicy, Nanos};
use netsim_routing::{Igp, Topology};
use netsim_sim::{CbrSource, LinkConfig, Network, NodeId, Sink, SourceConfig};

use crate::network::{make_core_qdisc, CoreQos};
use crate::router::{CeRouter, CoreRouter, PeRouter};
use crate::trace::TraceLog;

/// Parameters of one member domain.
#[derive(Clone)]
pub struct DomainSpec {
    /// The domain's backbone topology.
    pub topo: Topology,
    /// Which topology node hosts the customer-facing PE.
    pub pe: usize,
    /// Which topology node is the AS border router.
    pub asbr: usize,
}

/// A two-carrier VPN: one site in each domain, stitched at the ASBRs.
pub struct InterProviderVpn {
    /// The simulator (both domains plus the inter-AS link).
    pub net: Network,
    /// PE node of domain A.
    pub pe_a: NodeId,
    /// PE node of domain B.
    pub pe_b: NodeId,
    /// CE node of the site in domain A.
    pub ce_a: NodeId,
    /// CE node of the site in domain B.
    pub ce_b: NodeId,
    /// Site prefix in domain A.
    pub prefix_a: Prefix,
    /// Site prefix in domain B.
    pub prefix_b: Prefix,
    /// Total control messages (LDP in both domains + BGP route exchanges).
    pub control_messages: u64,
}

impl InterProviderVpn {
    /// Builds the stitched network. Both domains use `qos` on their core
    /// links and `link_delay_ns` per hop; the inter-AS link is 100 Mb/s.
    #[allow(clippy::too_many_arguments)] // a scenario constructor; a config struct would obscure it
    pub fn build(
        a: DomainSpec,
        b: DomainSpec,
        prefix_a: Prefix,
        prefix_b: Prefix,
        qos: CoreQos,
        link_delay_ns: Nanos,
        marking: Option<MarkingPolicy>,
        trace: Option<TraceLog>,
    ) -> Self {
        // Per-domain control planes. FEC 0 = the PE, FEC 1 = the ASBR.
        let igp_a = Igp::converge(&a.topo);
        let igp_b = Igp::converge(&b.topo);
        let adj_a = a.topo.adjacency_lists();
        let adj_b = b.topo.adjacency_lists();
        let fecs_a = [(Fec(0), a.pe), (Fec(1), a.asbr)];
        let fecs_b = [(Fec(0), b.pe), (Fec(1), b.asbr)];
        let nh_a = |u: usize, v: usize| igp_a.next_hop(u, v);
        let nh_b = |u: usize, v: usize| igp_b.next_hop(u, v);
        let mut ldp_a = LdpDomain::run(&adj_a, &fecs_a, &nh_a, LdpConfig::default());
        let mut ldp_b = LdpDomain::run(&adj_b, &fecs_b, &nh_b, LdpConfig::default());
        let mut control_messages = ldp_a.messages + ldp_b.messages;

        // VPN + stitching labels, allocated from each device's own space.
        let vpn_label_a = ldp_a.nodes[a.pe].space.allocate(); // PE_A's label for prefix_a
        let vpn_label_b = ldp_b.nodes[b.pe].space.allocate(); // PE_B's label for prefix_b
        let x_b = ldp_a.nodes[a.asbr].space.allocate(); // ASBR_A re-advertises prefix_b as X
        let y_b = ldp_b.nodes[b.asbr].space.allocate(); // ASBR_B re-advertises prefix_b as Y
        let x_a = ldp_b.nodes[b.asbr].space.allocate(); // ASBR_B re-advertises prefix_a
        let y_a = ldp_a.nodes[a.asbr].space.allocate(); // ASBR_A re-advertises prefix_a
                                                        // Route exchange: PE→ASBR (iBGP), ASBR↔ASBR (eBGP), ASBR→PE (iBGP),
                                                        // per prefix and direction.
        control_messages += 2 * 3;

        // Materialize both domains in one simulator.
        let mut net = Network::new();
        let n_a = a.topo.node_count();
        let mut ids = Vec::new();
        for u in 0..n_a {
            let lfib = std::mem::take(&mut ldp_a.nodes[u].lfib);
            ids.push(add_backbone_node(&mut net, u, u == a.pe, "A", lfib, &a.topo, &trace));
        }
        for u in 0..b.topo.node_count() {
            let lfib = std::mem::take(&mut ldp_b.nodes[u].lfib);
            ids.push(add_backbone_node(&mut net, u, u == b.pe, "B", lfib, &b.topo, &trace));
        }
        let id_a = |u: usize| ids[u];
        let id_b = |u: usize| ids[n_a + u];
        for l in 0..a.topo.link_count() {
            let (u, v, attrs) = a.topo.link(l);
            let cfg = LinkConfig::new(attrs.capacity_bps, link_delay_ns);
            let (qa, qb) =
                (make_core_qdisc(&qos, 2 * l as u64), make_core_qdisc(&qos, 2 * l as u64 + 1));
            net.connect_with_qdiscs(id_a(u), id_a(v), cfg, cfg, qa, qb);
        }
        for l in 0..b.topo.link_count() {
            let (u, v, attrs) = b.topo.link(l);
            let cfg = LinkConfig::new(attrs.capacity_bps, link_delay_ns);
            let (qa, qb) = (
                make_core_qdisc(&qos, 1000 + 2 * l as u64),
                make_core_qdisc(&qos, 1001 + 2 * l as u64),
            );
            net.connect_with_qdiscs(id_b(u), id_b(v), cfg, cfg, qa, qb);
        }
        // Inter-AS link: next free iface on both ASBRs (= their degree).
        let inter_cfg = LinkConfig::new(100_000_000, link_delay_ns);
        let (_l, asbr_a_if, asbr_b_if) = {
            let (l, ia, ib) = net.connect(id_a(a.asbr), id_b(b.asbr), inter_cfg);
            (l, ia, ib)
        };

        // Stitching ILM entries (EXP-preserving by construction).
        {
            // A→B: ASBR_A swaps X→Y onto the inter-AS link.
            let asbr_a = net.node_mut::<CoreRouter>(id_a(a.asbr));
            asbr_a.lfib.install(x_b, Nhlfe { op: LabelOp::Swap(y_b), out_iface: asbr_a_if.0 });
        }
        {
            // ASBR_B: Y → PE_B's VPN label under domain B's tunnel to PE_B.
            let tun = ldp_b.nodes[b.asbr].ftn.get(&Fec(0)).expect("LSP ASBR_B→PE_B").clone();
            let op = match tun.push.first() {
                Some(&t) => LabelOp::SwapPush { swap: vpn_label_b, push: t },
                None => LabelOp::Swap(vpn_label_b),
            };
            let asbr_b = net.node_mut::<CoreRouter>(id_b(b.asbr));
            asbr_b.lfib.install(y_b, Nhlfe { op, out_iface: tun.out_iface });
        }
        {
            // B→A mirror.
            let asbr_b = net.node_mut::<CoreRouter>(id_b(b.asbr));
            asbr_b.lfib.install(x_a, Nhlfe { op: LabelOp::Swap(y_a), out_iface: asbr_b_if.0 });
        }
        {
            let tun = ldp_a.nodes[a.asbr].ftn.get(&Fec(0)).expect("LSP ASBR_A→PE_A").clone();
            let op = match tun.push.first() {
                Some(&t) => LabelOp::SwapPush { swap: vpn_label_a, push: t },
                None => LabelOp::Swap(vpn_label_a),
            };
            let asbr_a = net.node_mut::<CoreRouter>(id_a(a.asbr));
            asbr_a.lfib.install(y_a, Nhlfe { op, out_iface: tun.out_iface });
        }

        // Customer attachment: CE_A on PE_A, CE_B on PE_B.
        let mut ce_a_dev = CeRouter::new("CE-A", marking.clone());
        let mut ce_b_dev = CeRouter::new("CE-B", marking);
        if let Some(t) = &trace {
            ce_a_dev = ce_a_dev.with_trace(t.clone());
            ce_b_dev = ce_b_dev.with_trace(t.clone());
        }
        let ce_a = net.add_node(Box::new(ce_a_dev));
        let ce_b = net.add_node(Box::new(ce_b_dev));
        let access = LinkConfig::new(100_000_000, 100_000);
        let (_la, _cea_if, pea_if) = net.connect(ce_a, id_a(a.pe), access);
        let (_lb, _ceb_if, peb_if) = net.connect(ce_b, id_b(b.pe), access);

        // PE data planes.
        {
            let pe = net.node_mut::<PeRouter>(id_a(a.pe));
            let v = pe.add_vrf("carrier-vpn");
            let declared = pe.attach_customer_iface(v);
            assert_eq!(declared, pea_if.0);
            pe.install_local_route(v, prefix_a, pea_if.0);
            pe.install_vpn_label(vpn_label_a, v);
            // Remote: prefix_b via domain A's tunnel toward ASBR_A, label X.
            let tun = ldp_a.nodes[a.pe].ftn.get(&Fec(1)).expect("LSP PE_A→ASBR_A").clone();
            pe.install_remote_route(v, prefix_b, 1, x_b, tun);
        }
        {
            let pe = net.node_mut::<PeRouter>(id_b(b.pe));
            let v = pe.add_vrf("carrier-vpn");
            let declared = pe.attach_customer_iface(v);
            assert_eq!(declared, peb_if.0);
            pe.install_local_route(v, prefix_b, peb_if.0);
            pe.install_vpn_label(vpn_label_b, v);
            let tun = ldp_b.nodes[b.pe].ftn.get(&Fec(1)).expect("LSP PE_B→ASBR_B").clone();
            pe.install_remote_route(v, prefix_a, 0, x_a, tun);
        }

        InterProviderVpn {
            net,
            pe_a: id_a(a.pe),
            pe_b: id_b(b.pe),
            ce_a,
            ce_b,
            prefix_a,
            prefix_b,
            control_messages,
        }
    }

    /// Attaches a sink behind the domain-B site.
    pub fn attach_sink_b(&mut self, host_prefix: Prefix) -> NodeId {
        let sink = self.net.add_node(Box::new(Sink::new()));
        let (_l, _s, ce_if) =
            self.net.connect(sink, self.ce_b, LinkConfig::new(1_000_000_000, 10_000));
        self.net.node_mut::<CeRouter>(self.ce_b).add_host_route(host_prefix, ce_if.0);
        sink
    }

    /// Attaches a sink behind the domain-A site.
    pub fn attach_sink_a(&mut self, host_prefix: Prefix) -> NodeId {
        let sink = self.net.add_node(Box::new(Sink::new()));
        let (_l, _s, ce_if) =
            self.net.connect(sink, self.ce_a, LinkConfig::new(1_000_000_000, 10_000));
        self.net.node_mut::<CeRouter>(self.ce_a).add_host_route(host_prefix, ce_if.0);
        sink
    }

    /// Attaches a CBR source behind the domain-A site and arms it.
    pub fn attach_cbr_source_a(
        &mut self,
        cfg: SourceConfig,
        interval: Nanos,
        count: Option<u64>,
    ) -> NodeId {
        let src = self.net.add_node(Box::new(CbrSource::new(cfg, interval, count)));
        self.net.connect(src, self.ce_a, LinkConfig::new(1_000_000_000, 10_000));
        self.net.arm_timer(src, 0, 0);
        src
    }
}

fn add_backbone_node(
    net: &mut Network,
    u: usize,
    is_pe: bool,
    domain: &str,
    lfib: Lfib,
    topo: &Topology,
    trace: &Option<TraceLog>,
) -> NodeId {
    if is_pe {
        let mut pe = PeRouter::new(format!("PE-{domain}{u}"), lfib, topo.degree(u));
        if let Some(t) = trace {
            pe = pe.with_trace(t.clone());
        }
        net.add_node(Box::new(pe))
    } else {
        let mut p = CoreRouter::new(format!("{domain}{u}"), lfib);
        if let Some(t) = trace {
            p = p.with_trace(t.clone());
        }
        net.add_node(Box::new(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::pfx;
    use netsim_routing::LinkAttrs;
    use netsim_sim::SEC;

    fn line(n: usize) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_link(i, i + 1, LinkAttrs { cost: 1, capacity_bps: 100_000_000 });
        }
        t
    }

    fn build() -> InterProviderVpn {
        InterProviderVpn::build(
            DomainSpec { topo: line(3), pe: 0, asbr: 2 },
            DomainSpec { topo: line(2), pe: 1, asbr: 0 },
            pfx("10.1.0.0/16"),
            pfx("10.2.0.0/16"),
            CoreQos::BestEffort { cap_bytes: 256 * 1024 },
            1_000_000,
            None,
            None,
        )
    }

    #[test]
    fn cross_carrier_traffic_flows_both_ways() {
        let mut ip = build();
        let sink_b = ip.attach_sink_b(pfx("10.2.0.0/16"));
        let cfg =
            SourceConfig::udp(1, pfx("10.1.0.0/16").nth(5), pfx("10.2.0.0/16").nth(9), 5000, 200);
        ip.attach_cbr_source_a(cfg, 1_000_000, Some(25));
        ip.net.run_until(SEC);
        assert_eq!(ip.net.node_ref::<Sink>(sink_b).flow(1).map(|f| f.rx_packets), Some(25));
        assert!(ip.control_messages > 0);
    }

    #[test]
    fn exp_is_preserved_across_the_boundary() {
        let trace = TraceLog::new();
        let mut ip = InterProviderVpn::build(
            DomainSpec { topo: line(3), pe: 0, asbr: 2 },
            DomainSpec { topo: line(2), pe: 1, asbr: 0 },
            pfx("10.1.0.0/16"),
            pfx("10.2.0.0/16"),
            CoreQos::BestEffort { cap_bytes: 256 * 1024 },
            1_000_000,
            Some(MarkingPolicy::enterprise_default()),
            Some(trace.clone()),
        );
        let sink_b = ip.attach_sink_b(pfx("10.2.0.0/16"));
        // Voice-port flow: the CE marks it EF, PE maps to EXP 5.
        let cfg =
            SourceConfig::udp(1, pfx("10.1.0.0/16").nth(5), pfx("10.2.0.0/16").nth(9), 16400, 160);
        ip.attach_cbr_source_a(cfg, 1_000_000, Some(3));
        ip.net.run_until(SEC);
        assert_eq!(ip.net.node_ref::<Sink>(sink_b).total_packets, 3);
        // Every labeled hop recorded EXP 5 — in both domains.
        let labeled: Vec<_> = trace.flow(1).into_iter().filter(|r| r.exp.is_some()).collect();
        assert!(labeled.len() >= 3, "expected several labeled hops, got {}", labeled.len());
        assert!(
            labeled.iter().all(|r| r.exp == Some(5)),
            "EXP must survive ASBR relabeling: {labeled:?}"
        );
    }
}
