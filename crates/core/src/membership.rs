//! Membership dynamics: what it costs to add the N-th site (experiment M1).
//!
//! The paper's §4.1: "Members can join and leave the VPN service network
//! and those changes need to be known by all remaining members." In the
//! MPLS/BGP model a join touches one PE and costs one route update's
//! fan-out; in the overlay model it costs N−1 new circuit pairs, each
//! provisioned hop by hop.

use netsim_net::{Ip, Prefix};
use netsim_routing::{
    BgpVpnFabric, DistributionMode, LinkAttrs, RouteDistinguisher, RouteTarget, Topology,
};
use netsim_sim::MSEC;

use crate::control::ControlMode;
use crate::network::BackboneBuilder;
use crate::overlay::{OverlayNetwork, OverlaySiteId};

/// Cost of one site join.
#[derive(Clone, Copy, Debug)]
pub struct JoinCost {
    /// Which join this was (0-based; cost typically grows with it in the
    /// overlay model and stays flat in the MPLS model).
    pub site_index: usize,
    /// Devices whose configuration/tables had to be touched.
    pub devices_touched: u64,
    /// Control messages exchanged to restore full reachability.
    pub control_messages: u64,
    /// New circuits provisioned (overlay only).
    pub new_circuits: u64,
}

/// The /24 block assigned to the i-th synthetic site.
pub fn site_prefix(i: usize) -> Prefix {
    Prefix::new(Ip(0x0A00_0000 | ((i as u32) << 8)), 24)
}

/// Joins `n_sites` sites (round-robin over `pe_count` PEs) to one VPN via
/// the BGP/MPLS control plane and records per-join costs.
pub fn mpls_join_series(pe_count: usize, n_sites: usize, mode: DistributionMode) -> Vec<JoinCost> {
    let rt = RouteTarget(1);
    let rd = RouteDistinguisher::new(65000, 1);
    let mut fabric = BgpVpnFabric::new(pe_count, mode);
    let mut handles = vec![None; pe_count];
    let mut costs = Vec::with_capacity(n_sites);
    for i in 0..n_sites {
        let pe = i % pe_count;
        let before = fabric.messages();
        let handle = match handles[pe] {
            Some(h) => h,
            None => {
                let h = fabric.add_vrf(pe, rd, vec![rt], vec![rt]);
                // A brand-new VRF pulls the existing routes from the RR.
                fabric.refresh_vrf(h);
                handles[pe] = Some(h);
                h
            }
        };
        fabric.advertise(handle, site_prefix(i));
        costs.push(JoinCost {
            site_index: i,
            // The join reconfigures exactly one device: the homing PE.
            devices_touched: 1,
            control_messages: fabric.messages() - before,
            new_circuits: 0,
        });
    }
    costs
}

/// Joins `n_sites` sites (round-robin over `pe_count` PEs, full-mesh
/// backbone) to one VPN on a *running* [`crate::ProviderNetwork`] and
/// records per-join control cost under `mode`.
///
/// Unlike [`mpls_join_series`] — which measures the abstract fabric —
/// this drives the deployed network: under [`ControlMode::InBand`] the
/// cost is the MP-BGP update packets that actually crossed backbone
/// links (one per remote member PE, flat in the number of *sites*);
/// under [`ControlMode::Oracle`] it is the route installs the oracle's
/// full-table resync performed, which grows with the table.
pub fn backbone_join_series(pe_count: usize, n_sites: usize, mode: ControlMode) -> Vec<JoinCost> {
    let attrs = LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 };
    let topo = Topology::full_mesh(pe_count, attrs);
    let pes: Vec<usize> = (0..pe_count).collect();
    let mut pn = BackboneBuilder::new(topo, pes).control_mode(mode).build();
    let vpn = pn.new_vpn("m1");
    let cost_so_far = |pn: &crate::ProviderNetwork| match mode {
        ControlMode::Oracle => pn.sync_route_pushes(),
        ControlMode::InBand => pn.control_stats().map_or(0, |s| s.pkts_by_proto[2]),
    };
    let mut costs = Vec::with_capacity(n_sites);
    for i in 0..n_sites {
        let pe = i % pe_count;
        let before = cost_so_far(&pn);
        pn.add_site(vpn, pe, site_prefix(i), None);
        // Let in-band updates propagate (one hop on a full mesh).
        pn.run_for(20 * MSEC);
        costs.push(JoinCost {
            site_index: i,
            devices_touched: 1,
            control_messages: cost_so_far(&pn) - before,
            new_circuits: 0,
        });
    }
    costs
}

/// Joins `attachments.len()` sites to an overlay VPN (site `i` homed on
/// switch `attachments[i]`), full-meshing each new site with all existing
/// ones, and records per-join costs.
pub fn overlay_join_series(topo: &Topology, attachments: &[usize]) -> Vec<JoinCost> {
    let mut ov = OverlayNetwork::build(topo.clone(), 1_000_000);
    let mut sites: Vec<OverlaySiteId> = Vec::new();
    let mut costs = Vec::with_capacity(attachments.len());
    for (i, &sw) in attachments.iter().enumerate() {
        let s = ov.add_site(sw, site_prefix(i));
        let ops_before = ov.provisioning_ops;
        let vcs_before = ov.vcs_provisioned;
        for &existing in &sites {
            ov.connect_sites(s, existing);
        }
        sites.push(s);
        costs.push(JoinCost {
            site_index: i,
            devices_touched: ov.provisioning_ops - ops_before,
            // Overlay "control messages" are the provisioning touches —
            // there is no routing protocol to do the work.
            control_messages: ov.provisioning_ops - ops_before,
            new_circuits: ov.vcs_provisioned - vcs_before,
        });
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::LinkAttrs;

    #[test]
    fn mpls_join_cost_is_flat() {
        let costs = mpls_join_series(4, 16, DistributionMode::RouteReflector);
        assert_eq!(costs.len(), 16);
        // Every join touches one device and costs one update fan-out (plus
        // at most a VRF refresh).
        assert!(costs.iter().all(|c| c.devices_touched == 1));
        let late = costs[15].control_messages;
        let early = costs[1].control_messages;
        assert!(late <= early + 16, "join cost must not grow linearly: early={early} late={late}");
        assert!(costs.iter().all(|c| c.new_circuits == 0));
    }

    #[test]
    fn inband_join_cost_is_flat_where_the_oracle_resync_grows() {
        let (pe_count, n) = (4, 12);
        let inband = backbone_join_series(pe_count, n, ControlMode::InBand);
        // Steady state (every PE already has the VRF): exactly one MP-BGP
        // update packet per remote member PE, regardless of table size.
        for c in &inband[pe_count..] {
            assert_eq!(
                c.control_messages,
                (pe_count - 1) as u64,
                "join {} must cost one update per remote PE",
                c.site_index
            );
        }
        let oracle = backbone_join_series(pe_count, n, ControlMode::Oracle);
        assert!(
            oracle[n - 1].control_messages > oracle[pe_count].control_messages,
            "the oracle full resync grows with the table: {:?}",
            oracle.iter().map(|c| c.control_messages).collect::<Vec<_>>()
        );
        assert!(inband[n - 1].control_messages < oracle[n - 1].control_messages);
    }

    #[test]
    fn overlay_join_cost_grows_linearly() {
        let topo = Topology::ring(6, LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 });
        let attachments: Vec<usize> = (0..12).map(|i| i % 6).collect();
        let costs = overlay_join_series(&topo, &attachments);
        // The k-th join provisions 2k unidirectional circuits.
        for (k, c) in costs.iter().enumerate() {
            assert_eq!(c.new_circuits, 2 * k as u64, "join {k}");
        }
        assert!(costs[11].devices_touched > costs[1].devices_touched * 5);
    }

    #[test]
    fn total_overlay_circuits_match_formula() {
        let topo = Topology::ring(4, LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 });
        let attachments: Vec<usize> = (0..10).map(|i| i % 4).collect();
        let costs = overlay_join_series(&topo, &attachments);
        let total: u64 = costs.iter().map(|c| c.new_circuits).sum();
        // N(N-1)/2 pairs, ×2 directions.
        assert_eq!(total, 10 * 9);
    }

    #[test]
    fn site_prefixes_are_disjoint() {
        for i in 0..100 {
            for j in 0..100 {
                if i != j {
                    assert!(!site_prefix(i).overlaps(site_prefix(j)), "{i} vs {j}");
                }
            }
        }
    }
}
