//! # mplsvpn-core — the end-to-end QoS MPLS VPN architecture
//!
//! This crate assembles every substrate into the system the paper
//! describes: an MPLS backbone offering VPN service with end-to-end QoS.
//!
//! ## The three §4 functions
//!
//! * **Membership discovery** — VPNs are declared as route-target
//!   communities; adding a site touches exactly one PE
//!   ([`ProviderNetwork::add_site`]), and route distribution makes every
//!   other member learn it ([`membership`] quantifies the cost).
//! * **Reachability exchange** — the BGP/MPLS fabric distributes VPN-IPv4
//!   routes with piggybacked labels; [`ProviderNetwork`] installs them into
//!   PE VRF FIBs.
//! * **Data separation** — customer packets travel with a two-level label
//!   stack (tunnel label above, VPN label below); P routers never see
//!   customer addresses, and overlapping address spaces cannot collide.
//!
//! ## The §5 QoS pipeline
//!
//! CE routers classify and mark (CBQ/DSCP, [`router::CeRouter`]); the
//! ingress PE maps DSCP into the MPLS EXP bits
//! ([`netsim_qos::ExpMap`]); core links schedule on EXP (priority + WRED);
//! TE trunks steer traffic away from congestion ([`netsim_te`]).
//!
//! ## Baselines
//!
//! [`overlay`] implements the §2.1 strawman (one PVC per site pair) and
//! [`ipsec_vpn`] the §2.3/§3 one (IPsec gateways over a plain IP
//! backbone), both runnable on the same simulator for head-to-head
//! comparison. [`interprovider`] stitches two MPLS domains at ASBRs to
//! reproduce the cross-provider SLA claim.

#![warn(missing_docs)]

pub mod control;
pub mod frr;
pub mod interprovider;
pub mod ipsec_vpn;
pub mod membership;
pub mod network;
pub mod obs;
pub mod overlay;
pub mod router;
pub mod sla;
pub mod trace;
mod verify;

pub use control::{ControlMode, CtrlStats, CTRL_FLOW_BASE};
pub use frr::{FailoverMode, FaultOutcome, ReconvergeSummary};
pub use netsim_obs::{DropCause, FlightRecorder, MetricsRegistry, MetricsSnapshot, ProbeRow};
pub use netsim_verify::{codes, Diagnostic, Severity, VerifyReport};
pub use network::{BackboneBuilder, CoreQos, ProviderNetwork, SiteId, VpnId, VrfDigestRow};
pub use obs::PROBE_FLOW_BASE;
pub use router::{CeRouter, CoreRouter, PeRouter};
pub use sla::{voice_mos, Sla, SlaReport};
pub use trace::{HopRecord, TraceLog};
pub use verify::EF_SHARE;
