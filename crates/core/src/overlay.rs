//! The overlay VPN baseline: one provisioned virtual circuit per site pair.
//!
//! This is the model the paper's §2.1 indicts: "A network with N points of
//! service would create N(N−1)/2 virtual circuits if each
//! service-point-to-partner flow were mapped to a virtual circuit … In a
//! network with 200 service points (a medium-sized VPN), about 20,000
//! virtual circuits would be required."
//!
//! The baseline is fully functional, not a formula: frame-relay-like
//! switches forward on `(interface, VC id)`, PVCs are provisioned hop by
//! hop along IGP paths, and the edge maps destination prefixes onto PVCs.
//! Experiment T1 counts its circuits, per-switch table entries and
//! provisioning touches against the MPLS VPN's control plane.

use std::any::Any;
use std::collections::HashMap;

use netsim_net::{Layer, LpmTrie, Pkt, Prefix, VcHeader};
use netsim_qos::Nanos;
use netsim_routing::{Igp, Topology};
use netsim_sim::{Ctx, IfaceId, LinkConfig, LinkId, Network, NodeId, Sink};

use crate::router::RouterCounters;

/// A frame-relay-like switch: forwards on `(in iface, VC id)`.
pub struct VcSwitch {
    /// Device name.
    pub name: String,
    /// The circuit cross-connect table.
    pub table: HashMap<(usize, u32), (usize, u32)>,
    /// Forwarding counters.
    pub counters: RouterCounters,
}

impl VcSwitch {
    /// Creates an empty switch.
    pub fn new(name: impl Into<String>) -> Self {
        VcSwitch { name: name.into(), table: HashMap::new(), counters: RouterCounters::default() }
    }

    /// Installed cross-connect entries (state metric for T1).
    pub fn table_size(&self) -> usize {
        self.table.len()
    }
}

impl netsim_sim::Node for VcSwitch {
    fn on_packet(&mut self, iface: IfaceId, mut pkt: Pkt, ctx: &mut Ctx) {
        let Some(Layer::Vc(vc)) = pkt.outer() else {
            self.counters.dropped_no_route += 1;
            return;
        };
        let de = vc.discard_eligible;
        let Some(&(out_iface, out_vc)) = self.table.get(&(iface.0, vc.vc_id)) else {
            self.counters.dropped_no_route += 1;
            return;
        };
        if let Some(Layer::Vc(v)) = pkt.outer_mut() {
            *v = VcHeader::new(out_vc, de);
        }
        self.counters.label_ops += 1; // VC swap is the overlay's "label op"
        self.counters.forwarded += 1;
        ctx.send(IfaceId(out_iface), pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The customer edge of the overlay model: maps destination prefixes onto
/// PVCs and (de)encapsulates the VC header.
pub struct VcEdge {
    /// Device name.
    pub name: String,
    /// Uplink interface to the switch (always 0).
    pub uplink: usize,
    /// Destination prefix → VC id on the uplink.
    pub pvc_map: LpmTrie<u32>,
    /// Host routes inside the site.
    pub local: LpmTrie<usize>,
    /// Forwarding counters.
    pub counters: RouterCounters,
}

impl VcEdge {
    /// Creates an edge with uplink interface 0.
    pub fn new(name: impl Into<String>) -> Self {
        VcEdge {
            name: name.into(),
            uplink: 0,
            pvc_map: LpmTrie::new(),
            local: LpmTrie::new(),
            counters: RouterCounters::default(),
        }
    }
}

impl netsim_sim::Node for VcEdge {
    fn on_packet(&mut self, iface: IfaceId, mut pkt: Pkt, ctx: &mut Ctx) {
        if iface.0 == self.uplink {
            // Downstream: strip the VC header and deliver into the site.
            if matches!(pkt.outer(), Some(Layer::Vc(_))) {
                pkt.pop_outer();
            }
            let Some(dst) = pkt.outer_ipv4().map(|h| h.dst) else {
                self.counters.dropped_no_route += 1;
                return;
            };
            self.counters.lpm_lookups += 1;
            match self.local.lookup(dst) {
                Some(&out) => {
                    self.counters.forwarded += 1;
                    ctx.send(IfaceId(out), pkt);
                }
                None => self.counters.dropped_no_route += 1,
            }
            return;
        }
        // Upstream from a host: map to a PVC.
        let Some(hdr) = pkt.outer_ipv4_mut() else {
            self.counters.dropped_no_route += 1;
            return;
        };
        if !hdr.decrement_ttl() {
            self.counters.dropped_ttl += 1;
            return;
        }
        let dst = hdr.dst;
        if let Some(&out) = self.local.lookup(dst) {
            self.counters.forwarded += 1;
            ctx.send(IfaceId(out), pkt);
            return;
        }
        self.counters.lpm_lookups += 1;
        let Some(&vc) = self.pvc_map.lookup(dst) else {
            self.counters.dropped_no_route += 1;
            return;
        };
        pkt.push_outer(Layer::Vc(VcHeader::new(vc, false)));
        self.counters.forwarded += 1;
        ctx.send(IfaceId(self.uplink), pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Handle to an overlay site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OverlaySiteId(pub usize);

struct OverlaySite {
    edge: NodeId,
    switch: usize,
    switch_iface: usize,
    prefix: Prefix,
}

/// The overlay VPN provider: switches + provisioned PVCs.
pub struct OverlayNetwork {
    /// The simulator.
    pub net: Network,
    topo: Topology,
    igp: Igp,
    node_ids: Vec<NodeId>,
    sites: Vec<OverlaySite>,
    /// Next VC id per (node, iface).
    vc_alloc: HashMap<(usize, usize), u32>,
    /// Extra interfaces attached per switch (beyond backbone degree).
    extra_ifaces: Vec<usize>,
    /// Provisioned PVCs (unidirectional count; a site pair costs two).
    pub vcs_provisioned: u64,
    /// Device-touch operations performed by provisioning.
    pub provisioning_ops: u64,
    access_rate_bps: u64,
    access_delay_ns: Nanos,
}

impl OverlayNetwork {
    /// Builds the switch fabric over `topo` (every node is a switch).
    /// Backbone links inherit `LinkAttrs::capacity_bps` and use
    /// `link_delay_ns` propagation.
    pub fn build(topo: Topology, link_delay_ns: Nanos) -> Self {
        let igp = Igp::converge(&topo);
        let mut net = Network::new();
        let node_ids: Vec<NodeId> = (0..topo.node_count())
            .map(|u| net.add_node(Box::new(VcSwitch::new(format!("SW{u}")))))
            .collect();
        for l in 0..topo.link_count() {
            let (u, v, attrs) = topo.link(l);
            net.connect(
                node_ids[u],
                node_ids[v],
                LinkConfig::new(attrs.capacity_bps, link_delay_ns),
            );
        }
        let n = topo.node_count();
        OverlayNetwork {
            net,
            topo,
            igp,
            node_ids,
            sites: Vec::new(),
            vc_alloc: HashMap::new(),
            extra_ifaces: vec![0; n],
            vcs_provisioned: 0,
            provisioning_ops: 0,
            access_rate_bps: 100_000_000,
            access_delay_ns: 100_000,
        }
    }

    /// Adds a site homed on switch `switch` with address block `prefix`.
    pub fn add_site(&mut self, switch: usize, prefix: Prefix) -> OverlaySiteId {
        let edge = self.net.add_node(Box::new(VcEdge::new(format!("EDGE{}", self.sites.len()))));
        let cfg = LinkConfig::new(self.access_rate_bps, self.access_delay_ns);
        let (_l, _e_if, sw_if) = self.net.connect(edge, self.node_ids[switch], cfg);
        self.extra_ifaces[switch] += 1;
        let id = OverlaySiteId(self.sites.len());
        self.sites.push(OverlaySite { edge, switch, switch_iface: sw_if.0, prefix });
        id
    }

    fn alloc_vc(&mut self, node: usize, iface: usize) -> u32 {
        let next = self.vc_alloc.entry((node, iface)).or_insert(100);
        let vc = *next;
        *next += 1;
        vc
    }

    /// Provisions the unidirectional PVC `a → b` along the IGP path and
    /// maps `b`'s prefix onto it at `a`'s edge. Returns the number of
    /// devices touched.
    pub fn provision_pvc(&mut self, a: OverlaySiteId, b: OverlaySiteId) -> u64 {
        let (sa, sb) = (&self.sites[a.0], &self.sites[b.0]);
        let (swa, swb) = (sa.switch, sb.switch);
        let path = self.igp.path(swa, swb).expect("switches must be connected");
        let (edge_a, sa_iface, sb_iface, dst_prefix) =
            (sa.edge, sa.switch_iface, sb.switch_iface, sb.prefix);

        // VC id on the access link a→swa.
        let first_vc = self.alloc_vc(swa, sa_iface);
        let mut touched = 1u64; // the edge device
        self.net.node_mut::<VcEdge>(edge_a).pvc_map.insert(dst_prefix, first_vc);

        // Hop-by-hop cross-connects.
        let mut in_iface = sa_iface;
        let mut in_vc = first_vc;
        for (i, &sw) in path.iter().enumerate() {
            let (out_iface, out_vc) = if i + 1 < path.len() {
                let next = path[i + 1];
                let oi = self.topo.iface_toward(sw, next);
                let iv_in_at_next = self.topo.iface_toward(next, sw);
                let ov = self.alloc_vc(next, iv_in_at_next);
                (oi, ov)
            } else {
                // Last switch: hand off to b's edge on its access iface.
                (sb_iface, self.alloc_vc(sw, sb_iface))
            };
            self.net
                .node_mut::<VcSwitch>(self.node_ids[sw])
                .table
                .insert((in_iface, in_vc), (out_iface, out_vc));
            touched += 1;
            if i + 1 < path.len() {
                in_iface = self.topo.iface_toward(path[i + 1], sw);
            }
            in_vc = out_vc;
        }
        self.vcs_provisioned += 1;
        self.provisioning_ops += touched;
        touched
    }

    /// Provisions the bidirectional circuit pair between two sites.
    pub fn connect_sites(&mut self, a: OverlaySiteId, b: OverlaySiteId) {
        self.provision_pvc(a, b);
        self.provision_pvc(b, a);
    }

    /// Fully meshes a set of sites — the §2.1 cost driver.
    pub fn full_mesh(&mut self, sites: &[OverlaySiteId]) {
        for i in 0..sites.len() {
            for j in i + 1..sites.len() {
                self.connect_sites(sites[i], sites[j]);
            }
        }
    }

    /// Bidirectional circuit pairs provisioned so far.
    pub fn circuit_pairs(&self) -> u64 {
        self.vcs_provisioned / 2
    }

    /// Total cross-connect entries across all switches.
    pub fn total_switch_state(&self) -> usize {
        self.node_ids.iter().map(|&id| self.net.node_ref::<VcSwitch>(id).table_size()).sum()
    }

    /// Attaches a measuring sink for `host_prefix` at a site.
    pub fn attach_sink(&mut self, site: OverlaySiteId, host_prefix: Prefix) -> NodeId {
        let edge = self.sites[site.0].edge;
        let sink = self.net.add_node(Box::new(Sink::new()));
        let (_l, _s_if, e_if) =
            self.net.connect(sink, edge, LinkConfig::new(1_000_000_000, 10_000));
        self.net.node_mut::<VcEdge>(edge).local.insert(host_prefix, e_if.0);
        sink
    }

    /// Attaches a CBR source at a site and arms it.
    pub fn attach_cbr_source(
        &mut self,
        site: OverlaySiteId,
        cfg: netsim_sim::SourceConfig,
        interval: Nanos,
        count: Option<u64>,
    ) -> NodeId {
        let edge = self.sites[site.0].edge;
        let src = self.net.add_node(Box::new(netsim_sim::CbrSource::new(cfg, interval, count)));
        self.net.connect(src, edge, LinkConfig::new(1_000_000_000, 10_000));
        self.net.arm_timer(src, 0, 0);
        src
    }

    /// A host address inside a site's prefix.
    pub fn site_addr(&self, site: OverlaySiteId, host: u32) -> netsim_net::Ip {
        self.sites[site.0].prefix.nth(host)
    }

    /// The access link of a site (direction 0 = edge → switch).
    pub fn access_link(&self, site: OverlaySiteId) -> LinkId {
        // Access links are created per site in order, after backbone links.
        LinkId(self.topo.link_count() + site.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::pfx;
    use netsim_net::Dscp;
    use netsim_routing::LinkAttrs;
    use netsim_sim::{SourceConfig, SEC};

    fn line_overlay() -> OverlayNetwork {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        OverlayNetwork::build(topo, 1_000_000)
    }

    #[test]
    fn pvc_carries_traffic_end_to_end() {
        let mut ov = line_overlay();
        let a = ov.add_site(0, pfx("10.1.0.0/16"));
        let b = ov.add_site(2, pfx("10.2.0.0/16"));
        ov.connect_sites(a, b);
        let sink = ov.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, ov.site_addr(a, 5), ov.site_addr(b, 9), 5000, 200);
        ov.attach_cbr_source(a, cfg, 1_000_000, Some(40));
        ov.net.run_until(SEC);
        let s = ov.net.node_ref::<Sink>(sink);
        assert_eq!(s.flow(1).map(|f| f.rx_packets), Some(40));
    }

    #[test]
    fn unprovisioned_pair_cannot_communicate() {
        let mut ov = line_overlay();
        let a = ov.add_site(0, pfx("10.1.0.0/16"));
        let b = ov.add_site(2, pfx("10.2.0.0/16"));
        // No PVC provisioned.
        let sink = ov.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, ov.site_addr(a, 5), ov.site_addr(b, 9), 5000, 200);
        ov.attach_cbr_source(a, cfg, 1_000_000, Some(10));
        ov.net.run_until(SEC);
        assert_eq!(ov.net.node_ref::<Sink>(sink).total_packets, 0);
        let edge = ov.sites[a.0].edge;
        assert_eq!(ov.net.node_ref::<VcEdge>(edge).counters.dropped_no_route, 10);
    }

    #[test]
    fn full_mesh_circuit_count_matches_formula() {
        // Single switch, 10 sites: 45 circuit pairs (the paper's number).
        let topo = Topology::new(1);
        let mut ov = OverlayNetwork::build(topo, 1_000_000);
        let sites: Vec<OverlaySiteId> = (0..10)
            .map(|i| ov.add_site(0, Prefix::new(netsim_net::Ip((10 << 24) | (i << 16)), 16)))
            .collect();
        ov.full_mesh(&sites);
        assert_eq!(ov.circuit_pairs(), 45);
        // Each unidirectional PVC crosses the single switch once.
        assert_eq!(ov.total_switch_state(), 90);
    }

    #[test]
    fn multihop_pvc_installs_state_on_every_switch() {
        let mut ov = line_overlay();
        let a = ov.add_site(0, pfx("10.1.0.0/16"));
        let b = ov.add_site(2, pfx("10.2.0.0/16"));
        let touched = ov.provision_pvc(a, b);
        // Edge + three switches on the path 0-1-2.
        assert_eq!(touched, 4);
        assert_eq!(ov.total_switch_state(), 3);
    }

    #[test]
    fn overlay_has_no_class_differentiation_mechanism() {
        // Even with an EF marking, the overlay VC header carries only the
        // DE bit — assert the data plane doesn't alter or act on DSCP.
        let mut ov = line_overlay();
        let a = ov.add_site(0, pfx("10.1.0.0/16"));
        let b = ov.add_site(2, pfx("10.2.0.0/16"));
        ov.connect_sites(a, b);
        let sink = ov.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, ov.site_addr(a, 5), ov.site_addr(b, 9), 5000, 100)
            .with_dscp(Dscp::EF);
        ov.attach_cbr_source(a, cfg, 1_000_000, Some(5));
        ov.net.run_until(SEC);
        assert_eq!(ov.net.node_ref::<Sink>(sink).total_packets, 5);
    }
}
