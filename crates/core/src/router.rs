//! The three router roles of the RFC 2547 / paper architecture.
//!
//! * [`CoreRouter`] — a P router / LSR: pure label swapping in the
//!   backbone, plus a plain IP FIB so the same device can serve the
//!   unlabeled baselines. It never sees customer addresses.
//! * [`PeRouter`] — the provider edge: VRFs, two-level label imposition at
//!   the ingress, VPN-label dispatch at the egress, and the DSCP→EXP QoS
//!   mapping (paper §5).
//! * [`CeRouter`] — the customer edge / CPE: classifies and marks traffic
//!   (the CBQ + DiffServ role) and forwards between the site LAN and the
//!   PE uplink.

use std::any::Any;

use netsim_mpls::lfib::{LfibVerdict, LOCAL_IFACE};
use netsim_mpls::{FtnEntry, Lfib};
use netsim_net::{Dscp, Ip, Layer, LpmCache, LpmTrie, MplsLabel, Packet, Pkt, Prefix};
use netsim_obs::{Counter, DropCause, FlightRecorder};
use netsim_qos::{Color, ExpMap, MarkingPolicy, SrTcm};
use netsim_sim::{Ctx, FxHashMap, IfaceId, Node};

use crate::control::{ControlHandle, NodeTables, CTRL_FLOW_BASE};
use crate::trace::TraceLog;

/// Timer-token namespace for BFD-style interface state changes delivered
/// to routers: the high bit marks the namespace, bit 0 carries down/up,
/// and the bits between carry the interface index. Routers own no other
/// timers, so the namespace guard is future-proofing, not disambiguation.
pub const fn iface_timer_token(iface: usize, down: bool) -> u64 {
    (1u64 << 63) | ((iface as u64) << 1) | down as u64
}

/// Decodes a token produced by [`iface_timer_token`].
fn decode_iface_token(token: u64) -> Option<(usize, bool)> {
    if token & (1u64 << 63) == 0 {
        return None;
    }
    Some((((token & !(1u64 << 63)) >> 1) as usize, token & 1 == 1))
}

/// Forwarding counters shared by all router roles.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterCounters {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Label operations performed (push/swap/pop, counted per packet).
    pub label_ops: u64,
    /// Longest-prefix-match lookups performed.
    pub lpm_lookups: u64,
    /// Packets dropped: no route / no label entry.
    pub dropped_no_route: u64,
    /// Packets dropped: TTL expired.
    pub dropped_ttl: u64,
    /// Packets dropped by the edge policer.
    pub dropped_policer: u64,
    /// Packets carrying a VPN label (or inner destination) this PE has no
    /// VRF state for — the isolation drop, kept separate from plain
    /// routing misses so a leak attempt is visible as such.
    pub dropped_vrf_miss: u64,
    /// Packets that arrived addressed to this device (absorbed).
    pub delivered_local: u64,
}

/// Records a drop into an optional flight recorder (routers carry
/// `Option<FlightRecorder>` so standalone unit setups pay one branch).
fn record_drop(rec: &Option<FlightRecorder>, now: u64, pkt: &Packet, cause: DropCause) {
    if let Some(r) = rec {
        r.record(now, pkt.meta.flow, pkt.meta.seq, cause);
    }
}

/// Records a local absorption (the packet terminated here by design, not
/// by failure) so conservation checks can separate the two.
fn record_absorbed(rec: &Option<FlightRecorder>, pkt: &Packet) {
    if let Some(r) = rec {
        r.record_absorbed(pkt.meta.flow);
    }
}

// ---------------------------------------------------------------------------
// P router
// ---------------------------------------------------------------------------

/// A provider core router (LSR). Interfaces are numbered exactly like the
/// backbone topology's adjacency list for this node.
pub struct CoreRouter {
    /// Device name for traces.
    pub name: String,
    /// The label-switching table.
    pub lfib: Lfib,
    /// Plain IP FIB: prefix → egress interface (used by the unlabeled
    /// baselines; empty in pure-MPLS operation).
    pub fib: LpmTrie<usize>,
    /// Forwarding counters.
    pub counters: RouterCounters,
    /// Optional hop trace.
    pub trace: Option<TraceLog>,
    /// Optional drop-cause flight recorder (shared with the network's).
    pub recorder: Option<FlightRecorder>,
    /// In-band control plane, if the network runs `ControlMode::InBand`.
    control: Option<ControlHandle>,
    /// This router's backbone topology node id (only meaningful when
    /// `control` is set).
    topo_id: usize,
}

impl CoreRouter {
    /// Creates a P router with an empty FIB.
    pub fn new(name: impl Into<String>, lfib: Lfib) -> Self {
        CoreRouter {
            name: name.into(),
            lfib,
            fib: LpmTrie::new(),
            counters: RouterCounters::default(),
            trace: None,
            recorder: None,
            control: None,
            topo_id: usize::MAX,
        }
    }

    /// Attaches the shared in-band control database. `topo_id` is this
    /// router's node id in the backbone topology.
    pub(crate) fn set_control(&mut self, db: ControlHandle, topo_id: usize) {
        self.control = Some(db);
        self.topo_id = topo_id;
    }

    /// Attaches a trace log.
    pub fn with_trace(mut self, t: TraceLog) -> Self {
        self.trace = Some(t);
        self
    }

    /// Attaches a drop-cause flight recorder.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        self.recorder = Some(rec);
    }

    fn forward_ip(&mut self, mut pkt: Pkt, ctx: &mut Ctx) {
        self.counters.lpm_lookups += 1;
        let Some(hdr) = pkt.outer_ipv4_mut() else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        if !hdr.decrement_ttl() {
            self.counters.dropped_ttl += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::Ttl);
            return;
        }
        let dst = hdr.dst;
        let Some(&out) = self.fib.lookup(dst) else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        self.counters.forwarded += 1;
        if let Some(t) = &self.trace {
            t.record(ctx.now(), &self.name, format!("ip route → if{out}"), &pkt);
        }
        ctx.send(IfaceId(out), pkt);
    }
}

impl Node for CoreRouter {
    fn on_packet(&mut self, _iface: IfaceId, mut pkt: Pkt, ctx: &mut Ctx) {
        if pkt.meta.flow >= CTRL_FLOW_BASE {
            if let Some(db) = &self.control {
                let mut tables = NodeTables { lfib: &mut self.lfib, vrfs: None };
                db.borrow_mut().on_control_packet(self.topo_id, _iface.0, &pkt, &mut tables, ctx);
                return;
            }
        }
        if pkt.top_label().is_none() {
            return self.forward_ip(pkt, ctx);
        }
        let before = pkt.top_label().expect("labeled").label;
        let depth_before = pkt.label_depth();
        self.counters.label_ops += 1;
        match self.lfib.forward(&mut pkt) {
            LfibVerdict::Forward { out_iface } if out_iface == LOCAL_IFACE => {
                // A tunnel terminated at this LSR (non-PHP egress, e.g. a
                // bypass LSP merging here): keep forwarding on the newly
                // exposed label.
                self.on_packet(IfaceId(LOCAL_IFACE), pkt, ctx);
            }
            LfibVerdict::Forward { out_iface } => {
                self.counters.forwarded += 1;
                if let Some(t) = &self.trace {
                    let action = match pkt.top_label() {
                        Some(l) if pkt.label_depth() < depth_before => {
                            format!("php pop {before} (exposing {})", l.label)
                        }
                        Some(l) if l.label != before => format!("swap {before}→{}", l.label),
                        Some(l) => format!("forward {}", l.label),
                        None => format!("php pop {before}"),
                    };
                    t.record(ctx.now(), &self.name, action, &pkt);
                }
                ctx.send(IfaceId(out_iface), pkt);
            }
            LfibVerdict::PoppedToLocal => {
                self.counters.delivered_local += 1;
                record_absorbed(&self.recorder, &pkt);
            }
            LfibVerdict::TtlExpired => {
                self.counters.dropped_ttl += 1;
                record_drop(&self.recorder, ctx.now(), &pkt, DropCause::Ttl);
            }
            LfibVerdict::NoEntry | LfibVerdict::NotLabeled => {
                self.counters.dropped_no_route += 1;
                record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        // BFD-style link-state notification: flip the interface's
        // protection state at detection time, not at failure time.
        if let Some((iface, down)) = decode_iface_token(token) {
            self.lfib.set_iface_down(iface, down);
            if let Some(db) = &self.control {
                let mut tables = NodeTables { lfib: &mut self.lfib, vrfs: None };
                db.borrow_mut().on_link_event(self.topo_id, iface, down, &mut tables, ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// PE router
// ---------------------------------------------------------------------------

/// A route in a VRF FIB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VrfRoute {
    /// The destination is a site attached to this same PE.
    Local {
        /// Customer-facing interface of that site.
        out_iface: usize,
    },
    /// The destination is behind a remote PE: push the VPN label, then the
    /// tunnel labels of `tunnel`.
    Remote {
        /// Egress PE ordinal (for bookkeeping).
        egress_pe: usize,
        /// VPN label advertised by the egress PE.
        vpn_label: u32,
        /// Tunnel FTN toward the egress PE (from LDP or TE).
        tunnel: FtnEntry,
    },
}

/// One VRF's data-plane state on a PE.
#[derive(Debug, Default)]
pub struct VrfFib {
    /// VRF display name.
    pub name: String,
    /// Per-VRF forwarding table.
    pub fib: LpmTrie<VrfRoute>,
    /// Route cache for ingress (customer → label imposition) lookups.
    ingress_cache: LpmCache,
    /// Route cache for egress (VPN label → local site) lookups.
    egress_cache: LpmCache,
    /// Registry-backed per-VRF forwarded-packet counter (pre-resolved
    /// handle: bumping it is a `Cell` write, not a name lookup).
    fwd: Option<Counter>,
}

impl VrfFib {
    /// Attaches a registry counter bumped once per packet this VRF
    /// forwards (ingress impositions and egress dispatches alike).
    pub fn set_forward_counter(&mut self, c: Counter) {
        self.fwd = Some(c);
    }

    #[inline]
    fn count_forward(&self) {
        if let Some(c) = &self.fwd {
            c.inc();
        }
    }
}

/// What a PE interface is attached to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeIfaceRole {
    /// Backbone-facing.
    Core,
    /// A customer site in VRF `vrf`.
    Customer {
        /// Index into the PE's VRF table.
        vrf: usize,
    },
}

/// The provider edge router.
pub struct PeRouter {
    /// Device name for traces.
    pub name: String,
    /// Transit LFIB (the PE is also an LSR for through traffic).
    pub lfib: Lfib,
    /// VPN label dispatch: incoming VPN label → VRF index.
    pub vpn_ilm: FxHashMap<u32, usize>,
    /// VRF tables.
    pub vrfs: Vec<VrfFib>,
    /// Role of each interface, indexed by [`IfaceId`].
    pub iface_roles: Vec<PeIfaceRole>,
    /// DSCP ↔ EXP mapping applied at label imposition.
    pub exp_map: ExpMap,
    /// Optional per-customer-interface policer (srTCM): green passes,
    /// yellow is demoted one AF drop precedence, red is dropped.
    pub policers: FxHashMap<usize, SrTcm>,
    /// Forwarding counters.
    pub counters: RouterCounters,
    /// Optional hop trace.
    pub trace: Option<TraceLog>,
    /// Optional drop-cause flight recorder (shared with the network's).
    pub recorder: Option<FlightRecorder>,
    /// In-band control plane, if the network runs `ControlMode::InBand`.
    control: Option<ControlHandle>,
    /// This router's backbone topology node id (only meaningful when
    /// `control` is set).
    topo_id: usize,
}

impl PeRouter {
    /// Creates a PE with `core_ifaces` backbone interfaces (numbered 0..n,
    /// matching the backbone adjacency order) and no customers yet.
    pub fn new(name: impl Into<String>, lfib: Lfib, core_ifaces: usize) -> Self {
        PeRouter {
            name: name.into(),
            lfib,
            vpn_ilm: FxHashMap::default(),
            vrfs: Vec::new(),
            iface_roles: vec![PeIfaceRole::Core; core_ifaces],
            exp_map: ExpMap::default(),
            policers: FxHashMap::default(),
            counters: RouterCounters::default(),
            trace: None,
            recorder: None,
            control: None,
            topo_id: usize::MAX,
        }
    }

    /// Attaches the shared in-band control database. `topo_id` is this
    /// router's node id in the backbone topology.
    pub(crate) fn set_control(&mut self, db: ControlHandle, topo_id: usize) {
        self.control = Some(db);
        self.topo_id = topo_id;
    }

    /// Attaches a trace log.
    pub fn with_trace(mut self, t: TraceLog) -> Self {
        self.trace = Some(t);
        self
    }

    /// Attaches a drop-cause flight recorder.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        self.recorder = Some(rec);
    }

    /// Adds a VRF, returning its index.
    pub fn add_vrf(&mut self, name: impl Into<String>) -> usize {
        self.vrfs.push(VrfFib {
            name: name.into(),
            fib: LpmTrie::new(),
            ingress_cache: LpmCache::default(),
            egress_cache: LpmCache::default(),
            fwd: None,
        });
        self.vrfs.len() - 1
    }

    /// Declares the next interface (in attachment order) as a customer
    /// port in `vrf`. Must be called in the same order the simulator
    /// connects the access links.
    pub fn attach_customer_iface(&mut self, vrf: usize) -> usize {
        assert!(vrf < self.vrfs.len(), "unknown vrf {vrf}");
        self.iface_roles.push(PeIfaceRole::Customer { vrf });
        self.iface_roles.len() - 1
    }

    /// Installs an edge policer on customer interface `iface`.
    pub fn set_policer(&mut self, iface: usize, meter: SrTcm) {
        assert!(matches!(self.iface_roles.get(iface), Some(PeIfaceRole::Customer { .. })));
        self.policers.insert(iface, meter);
    }

    /// Installs a local route: `prefix` is reachable via customer
    /// interface `out_iface` in `vrf`.
    pub fn install_local_route(&mut self, vrf: usize, prefix: Prefix, out_iface: usize) {
        self.vrfs[vrf].fib.insert(prefix, VrfRoute::Local { out_iface });
    }

    /// Installs a remote route learned from the BGP/MPLS fabric. A locally
    /// attached route for the same prefix always wins (standard preference
    /// for locally originated paths — this is what keeps a dual-homed
    /// site's traffic local at each of its homes).
    pub fn install_remote_route(
        &mut self,
        vrf: usize,
        prefix: Prefix,
        egress_pe: usize,
        vpn_label: u32,
        tunnel: FtnEntry,
    ) {
        if matches!(self.vrfs[vrf].fib.get(prefix), Some(VrfRoute::Local { .. })) {
            return;
        }
        self.vrfs[vrf].fib.insert(prefix, VrfRoute::Remote { egress_pe, vpn_label, tunnel });
    }

    /// Registers an incoming VPN label as belonging to `vrf`.
    pub fn install_vpn_label(&mut self, label: u32, vrf: usize) {
        self.vpn_ilm.insert(label, vrf);
    }

    /// Total VRF routes installed (state metric).
    pub fn total_routes(&self) -> usize {
        self.vrfs.iter().map(|v| v.fib.len()).sum()
    }

    fn police(&mut self, iface: usize, pkt: &mut Packet, now: u64) -> bool {
        let Some(meter) = self.policers.get_mut(&iface) else {
            return true;
        };
        match meter.meter(pkt.wire_len(), now) {
            Color::Green => true,
            Color::Yellow => {
                // Demote AF drop precedence; EF/BE are left alone (EF
                // out-of-profile would be dropped by a strict contract, but
                // the default here is lenient).
                if let Some(hdr) = pkt.outer_ipv4_mut() {
                    if let (Some(c), Some(dp)) =
                        (hdr.dscp.af_class(), hdr.dscp.af_drop_precedence())
                    {
                        hdr.dscp = Dscp::af(c, (dp + 1).min(3));
                    }
                }
                true
            }
            Color::Red => false,
        }
    }

    fn handle_customer(&mut self, in_iface: usize, vrf: usize, mut pkt: Pkt, ctx: &mut Ctx) {
        if !self.police(in_iface, &mut pkt, ctx.now()) {
            self.counters.dropped_policer += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::Policer);
            return;
        }
        let Some(hdr) = pkt.outer_ipv4_mut() else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        if !hdr.decrement_ttl() {
            self.counters.dropped_ttl += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::Ttl);
            return;
        }
        let (dst, dscp, ttl) = (hdr.dst, hdr.dscp, hdr.ttl);
        self.counters.lpm_lookups += 1;
        // The route is borrowed, not cloned: a `Remote` route owns its
        // tunnel label vector, and cloning it per packet would put a heap
        // allocation on the forwarding fast path.
        let VrfFib { fib, ingress_cache, .. } = &mut self.vrfs[vrf];
        let Some(route) = fib.lookup_cached(dst, ingress_cache) else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        match route {
            VrfRoute::Local { out_iface } => {
                let out_iface = *out_iface;
                self.counters.forwarded += 1;
                self.vrfs[vrf].count_forward();
                if let Some(t) = &self.trace {
                    t.record(
                        ctx.now(),
                        &self.name,
                        format!("vrf{vrf} local → if{out_iface}"),
                        &pkt,
                    );
                }
                ctx.send(IfaceId(out_iface), pkt);
            }
            VrfRoute::Remote { vpn_label, tunnel, .. } => {
                // §5: map the CPE's DiffServ marking into the MPLS QoS field.
                let exp = self.exp_map.exp_of(dscp);
                pkt.push_outer(Layer::Mpls(MplsLabel::new(*vpn_label, exp, ttl)));
                self.counters.label_ops += 1;
                for &l in &tunnel.push {
                    pkt.push_outer(Layer::Mpls(MplsLabel::new(l, exp, ttl)));
                    self.counters.label_ops += 1;
                }
                self.counters.forwarded += 1;
                if let Some(t) = &self.trace {
                    let stack: Vec<u32> = pkt
                        .layers()
                        .iter()
                        .map_while(|l| match l {
                            Layer::Mpls(m) => Some(m.label),
                            _ => None,
                        })
                        .collect();
                    t.record(
                        ctx.now(),
                        &self.name,
                        format!("vrf{vrf} push {stack:?} exp={exp}"),
                        &pkt,
                    );
                }
                // Fast reroute: if the primary core interface is held down
                // by link-failure detection and a bypass is installed, the
                // LFIB pushes the bypass label(s) and redirects locally.
                let out_iface = self.lfib.apply_protection(&mut pkt, tunnel.out_iface);
                self.vrfs[vrf].count_forward();
                ctx.send(IfaceId(out_iface), pkt);
            }
        }
    }

    fn dispatch_vpn_label(&mut self, mut pkt: Pkt, ctx: &mut Ctx) {
        let Some(top) = pkt.top_label() else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        let Some(&vrf) = self.vpn_ilm.get(&top.label) else {
            // Unknown VPN label: an isolation drop, not a routing miss.
            self.counters.dropped_vrf_miss += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::VrfMiss);
            return;
        };
        pkt.pop_outer();
        self.counters.label_ops += 1;
        let Some(dst) = pkt.outer_ipv4().map(|h| h.dst) else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        self.counters.lpm_lookups += 1;
        let VrfFib { fib, egress_cache, .. } = &mut self.vrfs[vrf];
        match fib.lookup_cached(dst, egress_cache) {
            Some(&VrfRoute::Local { out_iface }) => {
                self.counters.forwarded += 1;
                self.vrfs[vrf].count_forward();
                if let Some(t) = &self.trace {
                    t.record(
                        ctx.now(),
                        &self.name,
                        format!("pop vpn {} → vrf{vrf} if{out_iface}", top.label),
                        &pkt,
                    );
                }
                ctx.send(IfaceId(out_iface), pkt);
            }
            _ => {
                // A VPN label must terminate at a local site; anything else
                // is a misdelivery and is dropped (isolation property).
                self.counters.dropped_vrf_miss += 1;
                record_drop(&self.recorder, ctx.now(), &pkt, DropCause::VrfMiss);
            }
        }
    }

    fn handle_core(&mut self, mut pkt: Pkt, ctx: &mut Ctx) {
        let Some(top) = pkt.top_label() else {
            // Unlabeled traffic from the core is addressed to the PE
            // itself (control plane) in this architecture.
            self.counters.delivered_local += 1;
            record_absorbed(&self.recorder, &pkt);
            return;
        };
        if self.lfib.lookup(top.label).is_some() {
            // Transit LSR role (or non-PHP tunnel egress).
            self.counters.label_ops += 1;
            match self.lfib.forward(&mut pkt) {
                LfibVerdict::Forward { out_iface } if out_iface != LOCAL_IFACE => {
                    self.counters.forwarded += 1;
                    if let Some(t) = &self.trace {
                        t.record(ctx.now(), &self.name, "transit swap".into(), &pkt);
                    }
                    ctx.send(IfaceId(out_iface), pkt);
                }
                LfibVerdict::Forward { .. } | LfibVerdict::PoppedToLocal => {
                    // Tunnel terminated here (non-PHP): what remains is
                    // either another tunnel label (a bypass LSP merging at
                    // this PE) or the VPN label — re-run the split.
                    self.handle_core(pkt, ctx);
                }
                LfibVerdict::TtlExpired => {
                    self.counters.dropped_ttl += 1;
                    record_drop(&self.recorder, ctx.now(), &pkt, DropCause::Ttl);
                }
                _ => {
                    self.counters.dropped_no_route += 1;
                    record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
                }
            }
        } else {
            // PHP already removed the tunnel label: top is the VPN label.
            self.dispatch_vpn_label(pkt, ctx);
        }
    }
}

impl Node for PeRouter {
    fn on_packet(&mut self, iface: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
        if pkt.meta.flow >= CTRL_FLOW_BASE {
            if let Some(db) = &self.control {
                let mut tables = NodeTables { lfib: &mut self.lfib, vrfs: Some(&mut self.vrfs) };
                db.borrow_mut().on_control_packet(self.topo_id, iface.0, &pkt, &mut tables, ctx);
                return;
            }
        }
        match self.iface_roles.get(iface.0).copied() {
            Some(PeIfaceRole::Customer { vrf }) => self.handle_customer(iface.0, vrf, pkt, ctx),
            Some(PeIfaceRole::Core) => self.handle_core(pkt, ctx),
            None => {
                self.counters.dropped_no_route += 1;
                record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        // BFD-style link-state notification: flip the interface's
        // protection state at detection time, not at failure time.
        if let Some((iface, down)) = decode_iface_token(token) {
            self.lfib.set_iface_down(iface, down);
            if let Some(db) = &self.control {
                let mut tables = NodeTables { lfib: &mut self.lfib, vrfs: Some(&mut self.vrfs) };
                db.borrow_mut().on_link_event(self.topo_id, iface, down, &mut tables, ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// CE router
// ---------------------------------------------------------------------------

/// The customer edge / CPE device: marks upstream traffic (the paper's CBQ
/// + DiffServ role) and routes between site hosts and the PE uplink.
pub struct CeRouter {
    /// Device name for traces.
    pub name: String,
    /// Interface toward the PE (always interface 0: the access link is
    /// connected before any hosts).
    pub uplink: usize,
    /// Host-facing routes: destination prefix → local interface.
    pub local: LpmTrie<usize>,
    /// Route cache for [`CeRouter::deliver_local`] (self-invalidating).
    local_cache: LpmCache,
    /// Upstream classification/marking policy (CPE role). `None` leaves
    /// host markings untouched.
    pub marking: Option<MarkingPolicy>,
    /// Forwarding counters.
    pub counters: RouterCounters,
    /// Optional hop trace.
    pub trace: Option<TraceLog>,
    /// Optional drop-cause flight recorder (shared with the network's).
    pub recorder: Option<FlightRecorder>,
}

impl CeRouter {
    /// Creates a CE whose uplink is interface 0.
    pub fn new(name: impl Into<String>, marking: Option<MarkingPolicy>) -> Self {
        CeRouter {
            name: name.into(),
            local_cache: LpmCache::default(),
            uplink: 0,
            local: LpmTrie::new(),
            marking,
            counters: RouterCounters::default(),
            trace: None,
            recorder: None,
        }
    }

    /// Attaches a trace log.
    pub fn with_trace(mut self, t: TraceLog) -> Self {
        self.trace = Some(t);
        self
    }

    /// Attaches a drop-cause flight recorder.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        self.recorder = Some(rec);
    }

    /// Registers a host route: `prefix` lives on local interface `iface`.
    pub fn add_host_route(&mut self, prefix: Prefix, iface: usize) {
        self.local.insert(prefix, iface);
    }

    /// Delivers to a local host route. Returns the packet back when no
    /// route exists so the caller owns the drop accounting.
    fn deliver_local(&mut self, dst: Ip, pkt: Pkt, ctx: &mut Ctx) -> Option<Pkt> {
        self.counters.lpm_lookups += 1;
        if let Some(&out) = self.local.lookup_cached(dst, &mut self.local_cache) {
            self.counters.forwarded += 1;
            if let Some(t) = &self.trace {
                t.record(ctx.now(), &self.name, format!("deliver → if{out}"), &pkt);
            }
            ctx.send(IfaceId(out), pkt);
            None
        } else {
            Some(pkt)
        }
    }
}

impl Node for CeRouter {
    fn on_packet(&mut self, iface: IfaceId, mut pkt: Pkt, ctx: &mut Ctx) {
        let Some(hdr) = pkt.outer_ipv4_mut() else {
            self.counters.dropped_no_route += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            return;
        };
        if !hdr.decrement_ttl() {
            self.counters.dropped_ttl += 1;
            record_drop(&self.recorder, ctx.now(), &pkt, DropCause::Ttl);
            return;
        }
        let dst = hdr.dst;
        if iface.0 == self.uplink {
            // Downstream: from the provider into the site.
            if let Some(pkt) = self.deliver_local(dst, pkt, ctx) {
                self.counters.dropped_no_route += 1;
                record_drop(&self.recorder, ctx.now(), &pkt, DropCause::NoRoute);
            }
            return;
        }
        // Upstream from a host. Local destinations short-circuit.
        if self.local.lookup(dst).is_some() {
            let undelivered = self.deliver_local(dst, pkt, ctx);
            debug_assert!(undelivered.is_none());
            return;
        }
        // CPE classification + marking, then off to the PE. SLA probes are
        // exempt: the probe already carries the DSCP of the class it
        // measures, and remarking it would fold every probe into one class.
        if pkt.meta.probe {
            if let Some(t) = &self.trace {
                t.record(
                    ctx.now(),
                    &self.name,
                    "uplink (sla probe, marking bypassed)".into(),
                    &pkt,
                );
            }
        } else if let Some(policy) = &self.marking {
            let mark = policy.mark(&mut pkt);
            if let (Some(t), Some(m)) = (&self.trace, mark) {
                t.record(ctx.now(), &self.name, format!("classify/mark {m}"), &pkt);
            }
        } else if let Some(t) = &self.trace {
            t.record(ctx.now(), &self.name, "uplink (no marking)".into(), &pkt);
        }
        self.counters.forwarded += 1;
        ctx.send(IfaceId(self.uplink), pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_mpls::lfib::{LabelOp, Nhlfe};
    use netsim_net::addr::{ip, pfx};
    use netsim_net::ip::proto;
    use netsim_qos::MatchRule;
    use netsim_sim::{LinkConfig, Network, Sink};

    fn fast() -> LinkConfig {
        LinkConfig::new(1_000_000_000, 1000)
    }

    /// Hand-built two-PE network: host→CE0→PE0→P→PE1→CE1→sink, PHP mode.
    ///
    /// Label plan: PE0 pushes [tunnel=100 above vpn=500]; P is penultimate
    /// and pops 100; PE1 dispatches VPN label 500. Interface numbering is
    /// deterministic (backbone links first), so the routers are fully
    /// configured before wiring.
    #[test]
    fn end_to_end_vpn_path_php() {
        // PE0: core iface 0 (to P), customer iface 1 (to CE0).
        let mut pe0 = PeRouter::new("PE0", Lfib::new(), 1);
        let v0 = pe0.add_vrf("acme");
        pe0.attach_customer_iface(v0); // iface 1
        pe0.install_remote_route(
            v0,
            pfx("10.2.0.0/16"),
            1,
            500,
            FtnEntry { push: vec![100], out_iface: 0 },
        );

        // P: iface 0 to PE0, iface 1 to PE1; PHP-pops tunnel label 100.
        let mut p_lfib = Lfib::new();
        p_lfib.install(100, Nhlfe { op: LabelOp::Pop, out_iface: 1 });
        let p = CoreRouter::new("P", p_lfib);

        // PE1: core iface 0 (to P), customer iface 1 (to CE1).
        let mut pe1 = PeRouter::new("PE1", Lfib::new(), 1);
        let v1 = pe1.add_vrf("acme");
        pe1.attach_customer_iface(v1); // iface 1
        pe1.install_vpn_label(500, v1);
        pe1.install_local_route(v1, pfx("10.2.0.0/16"), 1);

        let ce0 = CeRouter::new("CE0", Some(MarkingPolicy::enterprise_default()));
        let mut ce1 = CeRouter::new("CE1", None);
        ce1.add_host_route(pfx("10.2.0.0/16"), 1);

        let mut net = Network::new();
        let pe0_id = net.add_node(Box::new(pe0));
        let p_id = net.add_node(Box::new(p));
        let pe1_id = net.add_node(Box::new(pe1));
        let ce0_id = net.add_node(Box::new(ce0));
        let ce1_id = net.add_node(Box::new(ce1));
        let host_id = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        let sink_id = net.add_node(Box::new(Sink::new()));

        // Backbone first so core ifaces are 0.
        net.connect(pe0_id, p_id, fast()); // PE0 if0 ↔ P if0
        net.connect(p_id, pe1_id, fast()); // P if1 ↔ PE1 if0
                                           // Access links: CE uplink is CE iface 0.
        net.connect(ce0_id, pe0_id, fast()); // CE0 if0 ↔ PE0 if1
        net.connect(ce1_id, pe1_id, fast()); // CE1 if0 ↔ PE1 if1
                                             // Hosts.
        net.connect(host_id, ce0_id, fast()); // host if0 ↔ CE0 if1
        net.connect(sink_id, ce1_id, fast()); // sink if0 ↔ CE1 if1

        // Voice packet from site A host to site B.
        let mut pkt = Packet::udp(ip("10.1.0.5"), ip("10.2.0.9"), 30000, 16400, Dscp::BE, 160);
        pkt.meta.flow = 1;
        net.inject(host_id, IfaceId(0), pkt);
        net.run_to_quiescence();

        let sink = net.node_ref::<Sink>(sink_id);
        assert_eq!(sink.total_packets, 1, "packet must traverse the VPN");
        let pe0r = net.node_ref::<PeRouter>(pe0_id);
        assert_eq!(pe0r.counters.forwarded, 1);
        assert_eq!(pe0r.counters.label_ops, 2, "vpn + tunnel push");
        let pr = net.node_ref::<CoreRouter>(p_id);
        assert_eq!(pr.counters.label_ops, 1);
        assert_eq!(pr.counters.lpm_lookups, 0, "the P router never does IP lookups");
        let pe1r = net.node_ref::<PeRouter>(pe1_id);
        assert_eq!(pe1r.counters.forwarded, 1);
    }

    #[test]
    fn pe_drops_unknown_vpn_label() {
        let mut pe = PeRouter::new("PE", Lfib::new(), 1);
        pe.add_vrf("x");
        let mut net = Network::new();
        let pe_id = net.add_node(Box::new(pe));
        let peer = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        net.connect(pe_id, peer, fast());
        let mut pkt = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 10);
        pkt.push_outer(Layer::Mpls(MplsLabel::new(999, 0, 64)));
        net.inject(peer, IfaceId(0), pkt);
        net.run_to_quiescence();
        let c = net.node_ref::<PeRouter>(pe_id).counters;
        assert_eq!(c.dropped_vrf_miss, 1, "unknown VPN label is an isolation drop");
        assert_eq!(c.dropped_no_route, 0);
    }

    #[test]
    fn ce_marks_with_policy() {
        let mut policy = MarkingPolicy::new(Dscp::BE);
        policy.push(MatchRule::any().protocol(proto::UDP).dst_port(9999), Dscp::AF41);
        let mut ce = CeRouter::new("CE", Some(policy));
        ce.add_host_route(pfx("10.1.0.0/16"), 1);

        let mut net = Network::new();
        let ce_id = net.add_node(Box::new(ce));
        let pe = net.add_node(Box::new(Sink::new()));
        let host = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        net.connect(ce_id, pe, fast()); // uplink = CE if0
        net.connect(host, ce_id, fast()); // host on CE if1
        let pkt = Packet::udp(ip("10.1.0.5"), ip("10.9.0.1"), 5, 9999, Dscp::BE, 10);
        net.inject(host, IfaceId(0), pkt);
        net.run_to_quiescence();
        let sink = net.node_ref::<Sink>(pe);
        assert_eq!(sink.total_packets, 1);
        // The sink saw the marked packet — verify via flow stats existence;
        // marking itself is asserted in the classify unit tests, here we
        // assert the CE forwarded upstream.
        assert_eq!(net.node_ref::<CeRouter>(ce_id).counters.forwarded, 1);
    }

    #[test]
    fn ce_routes_between_local_hosts_without_uplink() {
        let mut ce = CeRouter::new("CE", None);
        ce.add_host_route(pfx("10.1.1.0/24"), 1);
        ce.add_host_route(pfx("10.1.2.0/24"), 2);
        let mut net = Network::new();
        let ce_id = net.add_node(Box::new(ce));
        let pe = net.add_node(Box::new(Sink::new()));
        let h1 = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        let h2 = net.add_node(Box::new(Sink::new()));
        net.connect(ce_id, pe, fast());
        net.connect(h1, ce_id, fast());
        net.connect(h2, ce_id, fast());
        let pkt = Packet::udp(ip("10.1.1.5"), ip("10.1.2.7"), 1, 2, Dscp::BE, 10);
        net.inject(h1, IfaceId(0), pkt);
        net.run_to_quiescence();
        assert_eq!(net.node_ref::<Sink>(h2).total_packets, 1, "stays inside the site");
        assert_eq!(net.node_ref::<Sink>(pe).total_packets, 0, "nothing leaks to the uplink");
    }

    #[test]
    fn core_router_ttl_protection() {
        let mut p_lfib = Lfib::new();
        p_lfib.install(7, Nhlfe { op: LabelOp::Swap(8), out_iface: 0 });
        let p = CoreRouter::new("P", p_lfib);
        let mut net = Network::new();
        let p_id = net.add_node(Box::new(p));
        let peer = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        net.connect(p_id, peer, fast());
        let mut pkt = Packet::udp(ip("1.1.1.1"), ip("2.2.2.2"), 1, 2, Dscp::BE, 10);
        pkt.push_outer(Layer::Mpls(MplsLabel::new(7, 0, 1)));
        net.inject(peer, IfaceId(0), pkt);
        net.run_to_quiescence();
        let pr = net.node_ref::<CoreRouter>(p_id);
        assert_eq!(pr.counters.dropped_ttl, 1);
        assert_eq!(pr.counters.forwarded, 0);
    }

    /// Robustness: malformed or unroutable inputs are counted and dropped,
    /// never panicking or leaking.
    #[test]
    fn routers_absorb_garbage_gracefully() {
        let mut net = Network::new();
        let mut pe = PeRouter::new("PE", Lfib::new(), 1);
        let v = pe.add_vrf("x");
        pe.attach_customer_iface(v);
        let pe_id = net.add_node(Box::new(pe));
        let core_peer = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        let cust_peer = net.add_node(Box::new(netsim_sim::node::BlackHole::default()));
        net.connect(pe_id, core_peer, fast()); // iface 0 = core
        net.connect(cust_peer, pe_id, fast()); // PE iface 1 = customer

        // 1. A payload-only frame with no headers at all, from the customer.
        net.inject(cust_peer, IfaceId(0), Packet::new(vec![], b"junk".as_slice().into()));
        // 2. An unlabeled IP packet arriving from the core (control plane).
        net.inject(
            core_peer,
            IfaceId(0),
            Packet::udp(ip("9.9.9.9"), ip("8.8.8.8"), 1, 2, Dscp::BE, 8),
        );
        // 3. A customer packet with no matching VRF route.
        net.inject(
            cust_peer,
            IfaceId(0),
            Packet::udp(ip("10.0.0.1"), ip("172.31.0.1"), 1, 2, Dscp::BE, 8),
        );
        // 4. A customer packet with TTL 1 (dies at the PE).
        let mut dying = Packet::udp(ip("10.0.0.1"), ip("172.31.0.1"), 1, 2, Dscp::BE, 8);
        dying.outer_ipv4_mut().unwrap().ttl = 1;
        net.inject(cust_peer, IfaceId(0), dying);
        net.run_to_quiescence();

        let per = net.node_ref::<PeRouter>(pe_id);
        assert_eq!(per.counters.forwarded, 0);
        assert_eq!(per.counters.delivered_local, 1, "unlabeled core packet absorbed");
        assert_eq!(per.counters.dropped_no_route, 2, "junk + unroutable");
        assert_eq!(per.counters.dropped_ttl, 1);
    }

    #[test]
    fn policer_drops_red_and_demotes_yellow() {
        let mut pe = PeRouter::new("PE", Lfib::new(), 0);
        let v = pe.add_vrf("x");
        let cust = pe.attach_customer_iface(v);
        pe.install_local_route(v, pfx("10.2.0.0/16"), cust); // hairpin for test
        pe.set_policer(cust, SrTcm::new(8_000_000, 500, 500));

        let mut net = Network::new();
        let pe_id = net.add_node(Box::new(pe));
        let ce = net.add_node(Box::new(Sink::new()));
        net.connect(pe_id, ce, fast()); // customer iface 0
        for _ in 0..3 {
            let pkt = Packet::udp(ip("10.1.0.1"), ip("10.2.0.1"), 1, 2, Dscp::AF11, 472);
            net.inject(ce, IfaceId(0), pkt);
        }
        net.run_to_quiescence();
        let per = net.node_ref::<PeRouter>(pe_id);
        // 500 B wire each: first green, second yellow (demoted), third red.
        assert_eq!(per.counters.dropped_policer, 1);
        assert_eq!(per.counters.forwarded, 2);
        let sink = net.node_ref::<Sink>(ce);
        assert_eq!(sink.total_packets, 2);
    }
}
