//! The IPsec VPN baseline: ESP gateways over a plain IP backbone.
//!
//! The §2.3/§3 comparison point. Security gateways encrypt site-to-site
//! traffic into ESP tunnels; the backbone routes on the outer header only.
//! Two QoS consequences the experiments measure:
//!
//! 1. **Classification blindness** — core schedulers keyed on DSCP see
//!    best-effort ESP unless the gateway copies the DSCP, and even then
//!    only the class survives, never the flow (experiment Q2).
//! 2. **Crypto cost** — every packet pays per-byte encryption time at both
//!    gateways ([`netsim_ipsec::CryptoCostModel`]), and every tunnel pays
//!    an IKE handshake before the first packet.

use std::any::Any;
use std::collections::HashMap;

use netsim_ipsec::{
    decapsulate, encapsulate, CryptoCostModel, IkeProposal, IpsecError, SecurityAssociation,
};
use netsim_net::{Ip, LpmTrie, Pkt, Prefix};
use netsim_qos::{MarkingPolicy, Nanos};
use netsim_routing::{Igp, Topology};
use netsim_sim::{Ctx, IfaceId, LinkConfig, Network, NodeId, Sink};

use crate::network::CoreQos;
use crate::router::{CoreRouter, RouterCounters};

/// A security gateway: CE + IPsec tunnel endpoint.
pub struct IpsecGateway {
    /// Device name.
    pub name: String,
    /// Public (backbone-routable) address.
    pub public_ip: Ip,
    /// Uplink interface to the backbone (always 0).
    pub uplink: usize,
    /// Destination prefix → peer index.
    pub peers_by_prefix: LpmTrie<usize>,
    /// Per-peer state: (peer public ip, outbound SA, inbound SA).
    pub peers: Vec<(Ip, SecurityAssociation, SecurityAssociation)>,
    /// Inbound SPI → peer index.
    pub spi_map: HashMap<u32, usize>,
    /// Host routes inside the site.
    pub local: LpmTrie<usize>,
    /// CPE marking policy applied before encryption.
    pub marking: Option<MarkingPolicy>,
    /// Crypto cost model charged per packet.
    pub cost: CryptoCostModel,
    /// Forwarding counters.
    pub counters: RouterCounters,
    /// Total crypto CPU time spent, ns.
    pub crypto_ns: u64,
    /// ESP packets rejected (integrity, replay, padding).
    pub esp_errors: u64,
}

impl IpsecGateway {
    /// Creates a gateway with the given public address.
    pub fn new(name: impl Into<String>, public_ip: Ip, marking: Option<MarkingPolicy>) -> Self {
        IpsecGateway {
            name: name.into(),
            public_ip,
            uplink: 0,
            peers_by_prefix: LpmTrie::new(),
            peers: Vec::new(),
            spi_map: HashMap::new(),
            local: LpmTrie::new(),
            marking,
            cost: CryptoCostModel::default(),
            counters: RouterCounters::default(),
            crypto_ns: 0,
            esp_errors: 0,
        }
    }

    /// Registers a tunnel peer: `remote_prefix` is reachable through the
    /// gateway at `peer_ip` using the given SA pair.
    pub fn add_peer(
        &mut self,
        peer_ip: Ip,
        remote_prefix: Prefix,
        out_sa: SecurityAssociation,
        in_sa: SecurityAssociation,
    ) {
        let idx = self.peers.len();
        self.spi_map.insert(in_sa.spi, idx);
        self.peers.push((peer_ip, out_sa, in_sa));
        self.peers_by_prefix.insert(remote_prefix, idx);
    }

    fn upstream(&mut self, mut pkt: Pkt, ctx: &mut Ctx) {
        if let Some(policy) = &self.marking {
            policy.mark(&mut pkt);
        }
        let Some(dst) = pkt.outer_ipv4().map(|h| h.dst) else {
            self.counters.dropped_no_route += 1;
            return;
        };
        if let Some(&out) = self.local.lookup(dst) {
            self.counters.forwarded += 1;
            ctx.send(IfaceId(out), pkt);
            return;
        }
        self.counters.lpm_lookups += 1;
        let Some(&peer_idx) = self.peers_by_prefix.lookup(dst) else {
            self.counters.dropped_no_route += 1;
            return;
        };
        let (peer_ip, out_sa, _) = &mut self.peers[peer_idx];
        let peer_ip = *peer_ip;
        let my_ip = self.public_ip;
        let outer = encapsulate(&pkt, out_sa, my_ip, peer_ip);
        let cost = self.cost.cost_ns(outer.payload.len());
        self.crypto_ns += cost;
        self.counters.forwarded += 1;
        ctx.send_after(cost, IfaceId(self.uplink), outer);
    }

    fn downstream(&mut self, pkt: Pkt, ctx: &mut Ctx) {
        if !pkt.outer_ipv4().map(|h| h.dst == self.public_ip).unwrap_or(false) {
            self.counters.dropped_no_route += 1;
            return;
        }
        let spi = match pkt.layers().get(1) {
            Some(netsim_net::Layer::Esp(e)) => e.spi,
            _ => {
                self.counters.dropped_no_route += 1;
                return;
            }
        };
        let Some(&peer_idx) = self.spi_map.get(&spi) else {
            self.esp_errors += 1;
            return;
        };
        let cost = self.cost.cost_ns(pkt.payload.len());
        self.crypto_ns += cost;
        let (_, _, in_sa) = &mut self.peers[peer_idx];
        let inner = match decapsulate(&pkt, in_sa) {
            Ok(p) => p,
            Err(IpsecError::Replayed { .. }) | Err(_) => {
                self.esp_errors += 1;
                return;
            }
        };
        let Some(dst) = inner.outer_ipv4().map(|h| h.dst) else {
            self.counters.dropped_no_route += 1;
            return;
        };
        self.counters.lpm_lookups += 1;
        match self.local.lookup(dst) {
            Some(&out) => {
                self.counters.forwarded += 1;
                ctx.send_after(cost, IfaceId(out), inner);
            }
            None => self.counters.dropped_no_route += 1,
        }
    }
}

impl netsim_sim::Node for IpsecGateway {
    fn on_packet(&mut self, iface: IfaceId, pkt: Pkt, ctx: &mut Ctx) {
        if iface.0 == self.uplink {
            self.downstream(pkt, ctx);
        } else {
            self.upstream(pkt, ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Handle to an IPsec VPN site (gateway).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GwId(pub usize);

struct GwInfo {
    node: NodeId,
    attach: usize,
    public_ip: Ip,
    prefix: Prefix,
}

/// An IPsec VPN service over a plain IP backbone.
pub struct IpsecVpnNetwork {
    /// The simulator.
    pub net: Network,
    topo: Topology,
    igp: Igp,
    node_ids: Vec<NodeId>,
    gws: Vec<GwInfo>,
    next_spi: u32,
    /// IKE messages exchanged across all tunnels.
    pub ike_messages: u64,
    /// Sum of IKE setup latencies (ns) across all tunnels.
    pub ike_setup_ns: u64,
}

impl IpsecVpnNetwork {
    /// Builds the IP backbone (every topology node is an IP router) with
    /// the given core QoS profile.
    pub fn build(topo: Topology, link_delay_ns: Nanos, qos: CoreQos) -> Self {
        let igp = Igp::converge(&topo);
        let mut net = Network::new();
        let node_ids: Vec<NodeId> = (0..topo.node_count())
            .map(|u| net.add_node(Box::new(CoreRouter::new(format!("R{u}"), Default::default()))))
            .collect();
        for l in 0..topo.link_count() {
            let (u, v, attrs) = topo.link(l);
            let cfg = LinkConfig::new(attrs.capacity_bps, link_delay_ns);
            let qa = qos_qdisc(&qos, l as u64 * 2);
            let qb = qos_qdisc(&qos, l as u64 * 2 + 1);
            net.connect_with_qdiscs(node_ids[u], node_ids[v], cfg, cfg, qa, qb);
        }
        IpsecVpnNetwork {
            net,
            topo,
            igp,
            node_ids,
            gws: Vec::new(),
            next_spi: 0x1000,
            ike_messages: 0,
            ike_setup_ns: 0,
        }
    }

    /// Adds a gateway at backbone node `attach`, serving `prefix`, with
    /// public address `203.0.113.<n>`.
    pub fn add_gateway(
        &mut self,
        attach: usize,
        prefix: Prefix,
        marking: Option<MarkingPolicy>,
    ) -> GwId {
        let n = self.gws.len() as u8;
        let public_ip = Ip::new(203, 0, 113, n + 1);
        let gw = IpsecGateway::new(format!("GW{n}"), public_ip, marking);
        let gw_node = self.net.add_node(Box::new(gw));
        let (_l, _gw_if, _r_if) =
            self.net.connect(gw_node, self.node_ids[attach], LinkConfig::new(100_000_000, 100_000));
        // Install the gateway's /32 into every backbone router's FIB.
        for u in 0..self.topo.node_count() {
            let out = if u == attach {
                _r_if.0
            } else {
                let nh = self.igp.next_hop(u, attach).expect("backbone connected");
                self.topo.iface_toward(u, nh)
            };
            self.net
                .node_mut::<CoreRouter>(self.node_ids[u])
                .fib
                .insert(Prefix::host(public_ip), out);
        }
        let id = GwId(self.gws.len());
        self.gws.push(GwInfo { node: gw_node, attach, public_ip, prefix });
        id
    }

    /// Establishes the IPsec tunnel between two gateways: runs the
    /// simulated IKE exchange, installs SAs and routes on both sides, and
    /// accounts messages/latency.
    pub fn connect_gateways(&mut self, a: GwId, b: GwId) {
        let spi = self.next_spi;
        self.next_spi += 2;
        let (ia, ib) = (a.0 as u64, b.0 as u64);
        let xc = netsim_ipsec::ike::establish(IkeProposal {
            initiator_secret: 0x1111_0000 + ia,
            responder_secret: 0x2222_0000 + ib,
            spi_base: spi,
        });
        self.ike_messages += u64::from(xc.messages);
        let hops = self
            .igp
            .path(self.gws[a.0].attach, self.gws[b.0].attach)
            .map(|p| p.len() as u64)
            .unwrap_or(1);
        self.ike_setup_ns += xc.setup_latency_ns(hops * 1_000_000);

        let (pa, pb) = (self.gws[a.0].public_ip, self.gws[b.0].public_ip);
        let (prefa, prefb) = (self.gws[a.0].prefix, self.gws[b.0].prefix);
        let (na, nb) = (self.gws[a.0].node, self.gws[b.0].node);
        self.net.node_mut::<IpsecGateway>(na).add_peer(
            pb,
            prefb,
            xc.sas.out_sa.clone(),
            xc.sas.in_sa.clone(),
        );
        self.net.node_mut::<IpsecGateway>(nb).add_peer(
            pa,
            prefa,
            xc.sas.in_sa.clone(),
            xc.sas.out_sa.clone(),
        );
    }

    /// Enables DSCP copying to the outer header on every SA of a gateway.
    pub fn set_dscp_copy(&mut self, gw: GwId, on: bool) {
        let node = self.gws[gw.0].node;
        let g = self.net.node_mut::<IpsecGateway>(node);
        for (_, out_sa, in_sa) in &mut g.peers {
            out_sa.copy_dscp = on;
            in_sa.copy_dscp = on;
        }
    }

    /// The gateway's simulator node.
    pub fn gateway_node(&self, gw: GwId) -> NodeId {
        self.gws[gw.0].node
    }

    /// Attaches a measuring sink behind a gateway.
    pub fn attach_sink(&mut self, gw: GwId, host_prefix: Prefix) -> NodeId {
        let gnode = self.gws[gw.0].node;
        let sink = self.net.add_node(Box::new(Sink::new()));
        let (_l, _s_if, g_if) =
            self.net.connect(sink, gnode, LinkConfig::new(1_000_000_000, 10_000));
        self.net.node_mut::<IpsecGateway>(gnode).local.insert(host_prefix, g_if.0);
        sink
    }

    /// Attaches a CBR source behind a gateway and arms it.
    pub fn attach_cbr_source(
        &mut self,
        gw: GwId,
        cfg: netsim_sim::SourceConfig,
        interval: Nanos,
        count: Option<u64>,
    ) -> NodeId {
        let gnode = self.gws[gw.0].node;
        let src = self.net.add_node(Box::new(netsim_sim::CbrSource::new(cfg, interval, count)));
        self.net.connect(src, gnode, LinkConfig::new(1_000_000_000, 10_000));
        self.net.arm_timer(src, 0, 0);
        src
    }

    /// A host address inside a gateway's site prefix.
    pub fn site_addr(&self, gw: GwId, host: u32) -> Ip {
        self.gws[gw.0].prefix.nth(host)
    }
}

fn qos_qdisc(q: &CoreQos, seed: u64) -> Box<dyn netsim_qos::QueueDiscipline> {
    crate::network::make_core_qdisc(q, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_net::addr::pfx;
    use netsim_net::Dscp;
    use netsim_routing::LinkAttrs;
    use netsim_sim::{SourceConfig, SEC};

    fn line_ipsec() -> IpsecVpnNetwork {
        let mut topo = Topology::new(3);
        let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
        topo.add_link(0, 1, attrs);
        topo.add_link(1, 2, attrs);
        IpsecVpnNetwork::build(topo, 1_000_000, CoreQos::BestEffort { cap_bytes: 256 * 1024 })
    }

    #[test]
    fn tunnel_carries_traffic_end_to_end() {
        let mut n = line_ipsec();
        let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
        let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
        n.connect_gateways(a, b);
        let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, n.site_addr(a, 5), n.site_addr(b, 9), 5000, 200);
        n.attach_cbr_source(a, cfg, 1_000_000, Some(30));
        n.net.run_until(SEC);
        let s = n.net.node_ref::<Sink>(sink);
        assert_eq!(s.flow(1).map(|f| f.rx_packets), Some(30));
        // Crypto time was charged at both gateways.
        let ga = n.net.node_ref::<IpsecGateway>(n.gateway_node(a));
        assert!(ga.crypto_ns > 0);
        assert_eq!(n.ike_messages, 9);
    }

    #[test]
    fn no_tunnel_no_connectivity() {
        let mut n = line_ipsec();
        let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
        let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
        let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, n.site_addr(a, 5), n.site_addr(b, 9), 5000, 200);
        n.attach_cbr_source(a, cfg, 1_000_000, Some(10));
        n.net.run_until(SEC);
        assert_eq!(n.net.node_ref::<Sink>(sink).total_packets, 0);
    }

    /// The backbone carries only ESP: an EF marking applied inside the
    /// site is invisible (outer DSCP is BE) unless DSCP-copy is enabled.
    #[test]
    fn backbone_sees_only_esp() {
        let mut n = line_ipsec();
        let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
        let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
        n.connect_gateways(a, b);
        let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, n.site_addr(a, 5), n.site_addr(b, 9), 5000, 160)
            .with_dscp(Dscp::EF);
        n.attach_cbr_source(a, cfg, 1_000_000, Some(5));
        n.net.run_until(SEC);
        // Delivered, and the inner EF DSCP survived the tunnel...
        let s = n.net.node_ref::<Sink>(sink);
        assert_eq!(s.total_packets, 5);
        // ...but gateway crypto accounting proves the path was ESP.
        let ga = n.net.node_ref::<IpsecGateway>(n.gateway_node(a));
        assert_eq!(ga.counters.forwarded, 5);
    }

    #[test]
    fn dscp_copy_toggle() {
        let mut n = line_ipsec();
        let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
        let b = n.add_gateway(2, pfx("10.2.0.0/16"), None);
        n.connect_gateways(a, b);
        n.set_dscp_copy(a, true);
        n.set_dscp_copy(b, true);
        let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, n.site_addr(a, 5), n.site_addr(b, 9), 5000, 160)
            .with_dscp(Dscp::EF);
        n.attach_cbr_source(a, cfg, 1_000_000, Some(5));
        n.net.run_until(SEC);
        assert_eq!(n.net.node_ref::<Sink>(sink).total_packets, 5);
    }
}
