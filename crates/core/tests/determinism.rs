//! Same-seed runs must be bit-identical.
//!
//! The simulator's determinism contract (one calendar, `(at, seq)`
//! tie-break, all randomness from owned seeds) is what makes every QoS
//! experiment reproducible. This regression test runs a congested DiffServ
//! VPN scenario — randomized sources, RED, priority scheduling, policing —
//! twice from identical seeds and requires *exactly* equal observable
//! state: event count, every link's transmit statistics, and per-flow
//! receiver statistics down to the f64 jitter bits. Any hot-path change
//! that reorders events (timing-wheel edits, lazy transmitter pokes,
//! by-move packet plumbing) shows up here before it corrupts experiments.

use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, CoreQos};
use netsim_net::addr::pfx;
use netsim_net::Dscp;
use netsim_routing::{LinkAttrs, Topology};
use netsim_sim::{LinkId, Sink, SourceConfig, MSEC, SEC};

/// PE0 — P1 ══ P2 — PE3 with a 10 Mb/s bottleneck between the P routers.
fn dumbbell() -> (Topology, Vec<usize>) {
    let attrs = |mbps: u64| LinkAttrs { cost: 1, capacity_bps: mbps * 1_000_000 };
    let mut t = Topology::new(4);
    t.add_link(0, 1, attrs(100));
    t.add_link(1, 2, attrs(10));
    t.add_link(2, 3, attrs(100));
    (t, vec![0, 3])
}

/// One full run of the congested DiffServ scenario; returns the network
/// and sink node for inspection.
fn run_once() -> (mplsvpn_core::ProviderNetwork, netsim_sim::NodeId) {
    let (t, pes) = dumbbell();
    let mut pn = BackboneBuilder::new(t, pes)
        .core_qos(CoreQos::DiffServ { cap_bytes: 1 << 20, sched: DsSched::Priority })
        .seed(7)
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let until = Some(2 * SEC);
    // EF voice: deterministic CBR. AF31: Poisson. BE bulk: bursty on-off.
    // The Poisson/on-off seeds are the point — identical seeds must yield
    // identical event streams through RED's own drop RNG and the priority
    // scheduler.
    let ef =
        SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 160).with_dscp(Dscp::EF);
    pn.attach_cbr_source(a, ef, 100_000, Some(15_000));
    let af = SourceConfig::udp(2, pn.site_addr(a, 2), pn.site_addr(b, 1), 5000, 500)
        .with_dscp(Dscp::AF31);
    pn.attach_poisson_source(a, af, 150_000, 0xA5A5_1234, until);
    let be = SourceConfig::udp(3, pn.site_addr(a, 3), pn.site_addr(b, 1), 5000, 1000)
        .with_dscp(Dscp::BE);
    pn.attach_onoff_source(a, be, 120_000, 50 * MSEC, 30 * MSEC, 0xDEAD_BEEF, until);
    pn.run_to_quiescence();
    (pn, sink)
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let (run1, sink1) = run_once();
    let (run2, sink2) = run_once();

    assert_eq!(
        run1.net.events_processed(),
        run2.net.events_processed(),
        "event counts diverged between identical runs"
    );
    assert!(run1.net.events_processed() > 100_000, "scenario too small to be meaningful");

    assert_eq!(run1.net.link_count(), run2.net.link_count());
    for l in 0..run1.net.link_count() {
        for dir in 0..2u8 {
            assert_eq!(
                run1.net.link_stats(LinkId(l), dir),
                run2.net.link_stats(LinkId(l), dir),
                "LinkStats diverged on link {l} dir {dir}"
            );
        }
    }

    let s1 = run1.net.node_ref::<Sink>(sink1);
    let s2 = run2.net.node_ref::<Sink>(sink2);
    assert_eq!(s1.total_packets, s2.total_packets);
    assert_eq!(s1.total_bytes, s2.total_bytes);
    assert!(s1.total_packets > 0, "nothing delivered");
    for flow in 1..=3u64 {
        let (f1, f2) = (s1.flow(flow), s2.flow(flow));
        match (f1, f2) {
            (Some(f1), Some(f2)) => {
                assert_eq!(f1.rx_packets, f2.rx_packets, "flow {flow} rx_packets");
                assert_eq!(f1.rx_bytes, f2.rx_bytes, "flow {flow} rx_bytes");
                assert_eq!(f1.max_seq, f2.max_seq, "flow {flow} max_seq");
                assert_eq!(f1.reordered, f2.reordered, "flow {flow} reordered");
                assert_eq!(f1.first_rx, f2.first_rx, "flow {flow} first_rx");
                assert_eq!(f1.last_rx, f2.last_rx, "flow {flow} last_rx");
                assert_eq!(
                    f1.jitter_ns.to_bits(),
                    f2.jitter_ns.to_bits(),
                    "flow {flow} jitter bits"
                );
                assert_eq!(f1.latency.count(), f2.latency.count(), "flow {flow} latency count");
                assert_eq!(f1.latency.min(), f2.latency.min(), "flow {flow} latency min");
                assert_eq!(f1.latency.max(), f2.latency.max(), "flow {flow} latency max");
                assert_eq!(
                    f1.latency.quantile(0.99),
                    f2.latency.quantile(0.99),
                    "flow {flow} latency p99"
                );
            }
            (None, None) => panic!("flow {flow} absent from both runs — scenario broken"),
            _ => panic!("flow {flow} present in only one run"),
        }
    }
}
