//! End-to-end negative tests for [`ProviderNetwork::verify`]: provision a
//! healthy backbone, corrupt one piece of control or QoS state through the
//! public surface, and assert the verifier reports the exact diagnostic
//! code for that misconfiguration class.

use mplsvpn_core::{codes, BackboneBuilder, CoreRouter, PeRouter, ProviderNetwork, VpnId};
use netsim_mpls::lfib::{LabelOp, Nhlfe, LOCAL_IFACE};
use netsim_net::addr::pfx;
use netsim_net::Dscp;
use netsim_routing::{LinkAttrs, RouteTarget, Topology};

/// PE0 — P1 — PE2 with two VPNs, one site per (PE, VPN).
fn testbed() -> ProviderNetwork {
    let mut topo = Topology::new(3);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
    topo.add_link(0, 1, attrs);
    topo.add_link(1, 2, attrs);
    let mut pn = BackboneBuilder::new(topo, vec![0, 2]).build();
    let acme = pn.new_vpn("acme");
    let globex = pn.new_vpn("globex");
    pn.add_site(acme, 0, pfx("10.1.0.0/16"), None);
    pn.add_site(acme, 1, pfx("10.2.0.0/16"), None);
    pn.add_site(globex, 0, pfx("10.1.0.0/16"), None);
    pn.add_site(globex, 1, pfx("10.2.0.0/16"), None);
    pn
}

#[test]
fn healthy_network_verifies_clean() {
    let pn = testbed();
    let report = pn.verify();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.diagnostics().len(), 0, "{report}");
}

#[test]
fn removed_transit_ilm_is_a_black_hole() {
    let mut pn = testbed();
    let p1 = pn.backbone_node(1);
    let label = {
        let p = pn.net.node_ref::<CoreRouter>(p1);
        p.lfib.iter().next().expect("P1 carries transit labels").0
    };
    pn.net.node_mut::<CoreRouter>(p1).lfib.remove(label);
    let report = pn.verify();
    assert!(report.has_code(codes::LBL_BLACKHOLE), "{report}");
}

#[test]
fn ilm_entry_out_a_nonexistent_interface_is_dangling() {
    let mut pn = testbed();
    let p1 = pn.backbone_node(1);
    pn.net
        .node_mut::<CoreRouter>(p1)
        .lfib
        .install(9_000, Nhlfe { op: LabelOp::Swap(9_001), out_iface: 42 });
    let report = pn.verify();
    assert!(report.has_code(codes::LBL_DANGLING), "{report}");
}

#[test]
fn mutual_swap_entries_form_a_label_loop() {
    let mut pn = testbed();
    // P1 sends 9000 back to PE0 as 9001; PE0 returns 9001 to P1 as 9000.
    let p1 = pn.backbone_node(1);
    let pe0 = pn.pe_node(0);
    pn.net
        .node_mut::<CoreRouter>(p1)
        .lfib
        .install(9_000, Nhlfe { op: LabelOp::Swap(9_001), out_iface: 0 });
    pn.net
        .node_mut::<PeRouter>(pe0)
        .lfib
        .install(9_001, Nhlfe { op: LabelOp::Swap(9_000), out_iface: 0 });
    let report = pn.verify();
    assert!(report.has_code(codes::LBL_LOOP), "{report}");
}

#[test]
fn vpn_label_shadowed_by_transit_lfib_collides() {
    let mut pn = testbed();
    let pe0 = pn.pe_node(0);
    let vpn_label = {
        let pe = pn.net.node_ref::<PeRouter>(pe0);
        *pe.vpn_ilm.keys().min().expect("PE0 terminates VPN labels")
    };
    pn.net
        .node_mut::<PeRouter>(pe0)
        .lfib
        .install(vpn_label, Nhlfe { op: LabelOp::Pop, out_iface: LOCAL_IFACE });
    let report = pn.verify();
    assert!(report.has_code(codes::LBL_COLLISION), "{report}");
}

#[test]
fn reserved_label_on_the_wire_is_a_php_violation() {
    let mut pn = testbed();
    let p1 = pn.backbone_node(1);
    // Swapping to label 3 (implicit null) would put a reserved label on
    // the wire instead of signalling it.
    pn.net
        .node_mut::<CoreRouter>(p1)
        .lfib
        .install(9_000, Nhlfe { op: LabelOp::Swap(3), out_iface: 1 });
    let report = pn.verify();
    assert!(report.has_code(codes::LBL_PHP), "{report}");
}

#[test]
fn cross_vpn_import_is_a_leak_until_declared() {
    let mut pn = testbed();
    let acme = VpnId(0);
    let globex = VpnId(1);
    // Leak: acme's VRF on PE0 imports globex's route target (100 + id).
    let (handle, _) = pn.vrf_handle(0, acme).expect("acme VRF on PE0");
    pn.fabric.add_import_target(handle, RouteTarget(101));
    let report = pn.verify();
    assert!(report.has_code(codes::VRF_LEAK), "{report}");
    assert!(!report.is_clean());

    // The same coupling is informational once the extranet is declared.
    pn.declare_extranet(acme, globex);
    let report = pn.verify();
    assert!(!report.has_code(codes::VRF_LEAK), "{report}");
    assert!(report.has_code(codes::VRF_EXTRANET), "{report}");
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dropped_import_partitions_the_vpn() {
    let mut pn = testbed();
    let acme = VpnId(0);
    let (handle, _) = pn.vrf_handle(1, acme).expect("acme VRF on PE1");
    pn.fabric.remove_import_target(handle, RouteTarget(100));
    let report = pn.verify();
    assert!(report.has_code(codes::VRF_PARTITION), "{report}");
}

#[test]
fn import_of_an_unexported_target_is_useless() {
    let mut pn = testbed();
    let (handle, _) = pn.vrf_handle(0, VpnId(0)).expect("acme VRF on PE0");
    pn.fabric.add_import_target(handle, RouteTarget(999));
    let report = pn.verify();
    assert!(report.has_code(codes::VRF_USELESS_IMPORT), "{report}");
}

#[test]
fn folding_ef_onto_best_effort_is_flagged() {
    let mut pn = testbed();
    let pe0 = pn.pe_node(0);
    pn.net.node_mut::<PeRouter>(pe0).exp_map.set_exp(Dscp::EF, 0);
    let report = pn.verify();
    assert!(report.has_code(codes::QOS_EXP_MAP), "{report}");
}

#[test]
fn ef_overcommit_fails_admission() {
    let mut pn = testbed();
    // 80 Mb/s of committed EF against 100 Mb/s links exceeds EF_SHARE.
    pn.commit_ef_contract("overcommitted voice", 80_000_000);
    let report = pn.verify();
    assert!(report.has_code(codes::QOS_EF_ADMISSION), "{report}");

    // Within the share it admits cleanly.
    let mut pn = testbed();
    pn.commit_ef_contract("sane voice", 10_000_000);
    assert!(pn.verify().is_clean());
}

#[test]
fn backup_route_sharing_fate_with_its_primary_is_flagged() {
    // The TE pass runs on a standalone domain (same topology family the
    // backbone uses). A protected trunk whose bypass later ends up in the
    // same risk group as the primary must be flagged: the operator thinks
    // the trunk survives a conduit cut, and it will not.
    let mut topo = Topology::new(5);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
    for (u, v) in [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)] {
        topo.add_link(u, v, attrs);
    }
    let mut te = netsim_te::TeDomain::new(topo);
    let (id, _) = te.signal(netsim_te::TrunkRequest::new(0, 4, 10_000_000)).unwrap();
    assert_eq!(te.protect_trunk(id), 2, "both short-path links protected");

    // Healthy: bypasses are risk-disjoint.
    let mut report = netsim_verify::VerifyReport::new();
    netsim_verify::verify_te(&te, &mut report);
    assert!(report.is_clean(), "{report}");

    // Now the short link 1→4 and the long link 3→4 are declared to ride
    // one conduit into node 4 — the existing bypass silently shares fate.
    te.assign_srlg(1, 7);
    te.assign_srlg(4, 7);
    let mut report = netsim_verify::VerifyReport::new();
    netsim_verify::verify_te(&te, &mut report);
    assert!(report.has_code(codes::TE_BACKUP_SHARED), "{report}");

    // Corrupting a backup into a non-path is caught by the same code.
    te.corrupt_backup_for_test(id, 0, vec![0, 4]);
    let mut report = netsim_verify::VerifyReport::new();
    netsim_verify::verify_te(&te, &mut report);
    let hits = report.diagnostics().iter().filter(|d| d.code == codes::TE_BACKUP_SHARED).count();
    assert_eq!(hits, 2, "both corrupted backups flagged: {report}");
}
