//! Property-based tests for the assembled architecture: isolation and
//! delivery over randomized VPN layouts — the strongest form of the
//! paper's §4 "kept separate" requirement.

use mplsvpn_core::{BackboneBuilder, ProviderNetwork};
use netsim_net::{Ip, Prefix};
use netsim_routing::{LinkAttrs, Topology};
use netsim_sim::{Sink, SourceConfig, MSEC, SEC};
use proptest::prelude::*;

/// A randomized VPN deployment: up to 3 VPNs, up to 6 sites, arbitrary
/// homing of sites onto 3 PEs. All VPNs share the same address plan.
#[derive(Clone, Debug)]
struct Deployment {
    /// (vpn index, pe ordinal) per site; VPN indices are compacted later.
    sites: Vec<(usize, usize)>,
}

fn arb_deployment() -> impl Strategy<Value = Deployment> {
    proptest::collection::vec((0usize..3, 0usize..3), 2..6).prop_map(|sites| Deployment { sites })
}

fn backbone() -> (Topology, Vec<usize>) {
    // Triangle core, one PE per corner.
    let mut t = Topology::new(3);
    let attrs = LinkAttrs { cost: 1, capacity_bps: 622_000_000 };
    t.add_link(0, 1, attrs);
    t.add_link(1, 2, attrs);
    t.add_link(2, 0, attrs);
    let pes: Vec<usize> = (0..3)
        .map(|k| {
            let pe = t.add_node();
            t.add_link(pe, k, attrs);
            pe
        })
        .collect();
    (t, pes)
}

/// Site `i` (within its VPN) gets 10.<i+1>.0.0/16 — the same plan in
/// every VPN, maximizing collision opportunities.
fn block(i: usize) -> Prefix {
    Prefix::new(Ip(0x0A00_0000 | (((i as u32) + 1) << 16)), 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any deployment: every intra-VPN site pair communicates, and no
    /// sink ever sees a foreign VPN's flow.
    #[test]
    fn random_deployments_deliver_and_isolate(dep in arb_deployment()) {
        let (t, pes) = backbone();
        let mut pn: ProviderNetwork = BackboneBuilder::new(t, pes).build();

        // Create VPNs and sites. Per-VPN ordinal assigns the address block,
        // so different VPNs intentionally reuse blocks.
        let mut vpn_handles = std::collections::HashMap::new();
        let mut per_vpn_count: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut site_info = Vec::new(); // (vpn_key, site handle, ordinal)
        for &(v, pe) in &dep.sites {
            let vpn = *vpn_handles
                .entry(v)
                .or_insert_with(|| pn.new_vpn(format!("vpn{v}")));
            let ord = {
                let c = per_vpn_count.entry(v).or_insert(0);
                let o = *c;
                *c += 1;
                o
            };
            let site = pn.add_site(vpn, pe, block(ord), None);
            site_info.push((v, site, ord));
        }

        // One sink per site; one flow per ordered intra-VPN pair.
        let sinks: Vec<_> = site_info
            .iter()
            .map(|&(_, site, ord)| pn.attach_sink(site, block(ord)))
            .collect();
        let mut flow = 0u64;
        let mut expected: Vec<(usize, u64)> = Vec::new(); // (sink idx, flow)
        for i in 0..site_info.len() {
            for j in 0..site_info.len() {
                if i == j {
                    continue;
                }
                let (vi, si, _oi) = site_info[i];
                let (vj, _sj, oj) = site_info[j];
                if vi != vj {
                    continue;
                }
                flow += 1;
                let src = pn.site_addr(si, 50);
                let dst = block(oj).nth(60);
                let cfg = SourceConfig::udp(flow, src, dst, 5000, 120);
                pn.attach_cbr_source(si, cfg, MSEC, Some(8));
                expected.push((j, flow));
            }
        }
        pn.run_for(2 * SEC);

        // Every expected flow arrived in full at its own sink…
        for &(sink_idx, f) in &expected {
            let s = pn.net.node_ref::<Sink>(sinks[sink_idx]);
            prop_assert_eq!(
                s.flow(f).map(|x| x.rx_packets),
                Some(8),
                "flow {} to site {} incomplete (deployment {:?})",
                f,
                sink_idx,
                dep
            );
        }
        // …and nowhere else.
        for (idx, &sink) in sinks.iter().enumerate() {
            let s = pn.net.node_ref::<Sink>(sink);
            let own: std::collections::HashSet<u64> = expected
                .iter()
                .filter(|&&(i, _)| i == idx)
                .map(|&(_, f)| f)
                .collect();
            for (f, st) in s.flows() {
                prop_assert!(
                    own.contains(&f),
                    "sink {} leaked flow {} ({} pkts) in deployment {:?}",
                    idx,
                    f,
                    st.rx_packets,
                    dep
                );
            }
        }
    }

    /// Adding sites in any order yields the same reachability as adding
    /// them up front (route distribution is order-independent).
    #[test]
    fn site_order_does_not_matter(n in 2usize..5, seed in any::<u64>()) {
        let order: Vec<usize> = {
            // Deterministic permutation from the seed.
            let mut v: Vec<usize> = (0..n).collect();
            let mut s = seed | 1;
            for i in (1..n).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                v.swap(i, (s as usize) % (i + 1));
            }
            v
        };
        let run = |order: &[usize]| {
            let (t, pes) = backbone();
            let mut pn = BackboneBuilder::new(t, pes).build();
            let vpn = pn.new_vpn("acme");
            let mut sites = vec![None; n];
            for &i in order {
                sites[i] = Some(pn.add_site(vpn, i % 3, block(i), None));
            }
            // Route counts per PE are the reachability fingerprint.
            let mut counts: Vec<usize> = (0..3)
                .map(|pe| pn.fabric.pe_state(pe).1)
                .collect();
            counts.sort_unstable();
            counts
        };
        let natural: Vec<usize> = (0..n).collect();
        prop_assert_eq!(run(&natural), run(&order));
    }
}
