//! Criterion bench for experiment F4: longest-prefix-match lookup vs MPLS
//! label lookup/swap, across FIB sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mplsvpn_bench::experiments::forwarding::build_tables;
use netsim_net::addr::ip;
use netsim_net::{Dscp, Layer, MplsLabel, Packet};
use std::hint::black_box;

fn bench_lookups(c: &mut Criterion) {
    let mut g = c.benchmark_group("forwarding_decision");
    for &k in &[1_000usize, 10_000, 100_000] {
        let (fib, lfib, queries, labels) = build_tables(k, 42);
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("lpm_lookup", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                black_box(fib.lookup(black_box(q)))
            });
        });
        g.bench_with_input(BenchmarkId::new("label_lookup", k), &k, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let l = labels[i % labels.len()];
                i += 1;
                black_box(lfib.lookup(black_box(l)))
            });
        });
    }
    g.finish();
}

fn bench_full_swap(c: &mut Criterion) {
    // The complete per-packet LSR operation including TTL and stack edit.
    let (_, lfib, _, labels) = build_tables(10_000, 42);
    let mut g = c.benchmark_group("lsr_packet_op");
    g.throughput(Throughput::Elements(1));
    g.bench_function("lfib_forward_swap", |b| {
        let base = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::EF, 256);
        let mut i = 0;
        b.iter(|| {
            let mut p = base.clone();
            p.push_outer(Layer::Mpls(MplsLabel::new(labels[i % labels.len()], 5, 64)));
            i += 1;
            black_box(lfib.forward(&mut p));
            black_box(p);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lookups, bench_full_swap);
criterion_main!(benches);
