//! Criterion bench for the IPsec substrate: ESP encapsulate/decapsulate at
//! several packet sizes, plus the raw wire codec — the per-packet CPU cost
//! behind the paper's §3.1 performance concern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim_ipsec::{decapsulate, encapsulate, SecurityAssociation};
use netsim_net::addr::ip;
use netsim_net::{wire, Dscp, Packet};
use std::hint::black_box;

fn sa() -> SecurityAssociation {
    SecurityAssociation::new(0x1001, 0xAAAA_BBBB_CCCC_DDDD, 0x1234_5678_9ABC_DEF0)
}

fn bench_esp(c: &mut Criterion) {
    let mut g = c.benchmark_group("esp");
    for &payload in &[64usize, 512, 1400] {
        let inner = Packet::udp(ip("10.1.0.5"), ip("10.2.0.9"), 16000, 16400, Dscp::EF, payload);
        g.throughput(Throughput::Bytes(inner.wire_len() as u64));
        g.bench_with_input(BenchmarkId::new("encapsulate", payload), &payload, |b, _| {
            let mut tx = sa();
            b.iter(|| {
                black_box(encapsulate(black_box(&inner), &mut tx, ip("1.1.1.1"), ip("2.2.2.2")))
            });
        });
        g.bench_with_input(BenchmarkId::new("decapsulate", payload), &payload, |b, _| {
            // Pre-encrypt once; use a fresh receive SA per iteration so the
            // anti-replay window accepts the packet every time.
            let mut tx = sa();
            let outer = encapsulate(&inner, &mut tx, ip("1.1.1.1"), ip("2.2.2.2"));
            b.iter(|| {
                let mut rx = sa();
                black_box(decapsulate(black_box(&outer), &mut rx).expect("decap"))
            });
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let pkt = Packet::udp(ip("10.1.0.5"), ip("10.2.0.9"), 16000, 16400, Dscp::AF21, 512);
    let bytes = wire::encode(&pkt).unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(wire::encode(black_box(&pkt)).unwrap())));
    g.bench_function("decode", |b| b.iter(|| black_box(wire::decode(black_box(&bytes)).unwrap())));
    g.finish();
}

criterion_group!(ipsec_benches, bench_esp, bench_wire);
criterion_main!(ipsec_benches);
