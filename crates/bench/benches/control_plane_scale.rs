//! Criterion bench for control-plane convergence: LDP fixpoint over growing
//! rings, IGP SPF, and BGP/VPN route distribution — the costs behind
//! experiments T1 and M1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mplsvpn_core::membership::site_prefix;
use netsim_mpls::ldp::{Fec, LdpConfig, LdpDomain};
use netsim_routing::{
    BgpVpnFabric, DistributionMode, Igp, LinkAttrs, RouteDistinguisher, RouteTarget, Topology,
};
use std::hint::black_box;

fn ring(n: usize) -> Topology {
    Topology::ring(n, LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 })
}

fn bench_ldp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldp_convergence");
    for &n in &[8usize, 32, 128] {
        let topo = ring(n);
        let igp = Igp::converge(&topo);
        let adj = topo.adjacency_lists();
        let fecs: Vec<(Fec, usize)> = (0..n).map(|i| (Fec(i as u32), i)).collect();
        g.bench_with_input(BenchmarkId::new("ring_all_fecs", n), &n, |b, _| {
            b.iter(|| {
                let nh = |u: usize, v: usize| igp.next_hop(u, v);
                black_box(LdpDomain::run(&adj, &fecs, &nh, LdpConfig::default()))
            });
        });
    }
    g.finish();
}

fn bench_spf(c: &mut Criterion) {
    let mut g = c.benchmark_group("igp_spf");
    for &n in &[16usize, 64, 256] {
        let topo = ring(n);
        g.bench_with_input(BenchmarkId::new("full_convergence", n), &n, |b, _| {
            b.iter(|| black_box(Igp::converge(black_box(&topo))));
        });
    }
    g.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let mut g = c.benchmark_group("bgp_vpn");
    for &sites in &[100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("advertise_sites", sites), &sites, |b, &sites| {
            b.iter(|| {
                let mut f = BgpVpnFabric::new(8, DistributionMode::RouteReflector);
                let rt = RouteTarget(1);
                let handles: Vec<_> = (0..8)
                    .map(|pe| f.add_vrf(pe, RouteDistinguisher::new(65000, 1), vec![rt], vec![rt]))
                    .collect();
                for i in 0..sites {
                    f.advertise(handles[i % 8], site_prefix(i));
                }
                black_box(f.messages())
            });
        });
    }
    g.finish();
}

criterion_group!(cp_benches, bench_ldp, bench_spf, bench_bgp);
criterion_main!(cp_benches);
