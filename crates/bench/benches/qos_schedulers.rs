//! Criterion bench for the queueing disciplines: enqueue+dequeue cost per
//! packet for FIFO, RED, WRED, strict priority, WFQ, DRR, and CBQ.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim_net::addr::ip;
use netsim_net::{Dscp, Packet};
use netsim_qos::sched::CbqClassConfig;
use netsim_qos::{
    CbqScheduler, ClassOf, DrrScheduler, FifoQueue, PriorityScheduler, QueueDiscipline, RedParams,
    RedQueue, WfqScheduler, WredQueue,
};
use std::hint::black_box;

fn mk_pkt(class: u64) -> Packet {
    let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 472);
    p.meta.flow = class;
    p
}

fn by_flow() -> ClassOf {
    Box::new(|p: &Packet| p.meta.flow as usize % 4)
}

fn bench_qdisc(c: &mut Criterion, name: &str, mut q: Box<dyn QueueDiscipline>) {
    let mut g = c.benchmark_group("qdisc");
    g.throughput(Throughput::Elements(1));
    g.bench_function(name, |b| {
        let mut now = 0u64;
        let mut class = 0u64;
        b.iter(|| {
            now += 1_000;
            class = (class + 1) % 4;
            let _ = q.enqueue(mk_pkt(class).into(), now);
            black_box(q.dequeue(now));
        });
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_qdisc(c, "fifo", Box::new(FifoQueue::new(1 << 20)));
    bench_qdisc(
        c,
        "red",
        Box::new(RedQueue::new(1 << 20, RedParams::new(64 << 10, 256 << 10), 7, 12_000)),
    );
    bench_qdisc(
        c,
        "wred3",
        Box::new(WredQueue::new(1 << 20, WredQueue::af_profiles(1 << 20), by_flow(), 7, 12_000)),
    );
    let bands: Vec<Box<dyn QueueDiscipline>> =
        (0..4).map(|_| Box::new(FifoQueue::new(1 << 18)) as Box<dyn QueueDiscipline>).collect();
    bench_qdisc(c, "priority4", Box::new(PriorityScheduler::new(bands, by_flow())));
    bench_qdisc(c, "wfq4", Box::new(WfqScheduler::new(&[1, 2, 4, 8], 1 << 18, by_flow())));
    bench_qdisc(
        c,
        "drr4",
        Box::new(DrrScheduler::new(&[1500, 3000, 6000, 12000], 1 << 18, by_flow())),
    );
    let cbq = CbqScheduler::new(
        (0..4)
            .map(|_| CbqClassConfig { rate_bps: 100_000_000, bounded: false, cap_bytes: 1 << 18 })
            .collect(),
        by_flow(),
    );
    bench_qdisc(c, "cbq4", Box::new(cbq));
    let tree = netsim_qos::HierCbq::new(
        vec![
            netsim_qos::CbqNodeConfig {
                parent: None,
                rate_bps: 1_000_000_000,
                bounded: true,
                cap_bytes: 0,
            },
            netsim_qos::CbqNodeConfig {
                parent: Some(0),
                rate_bps: 600_000_000,
                bounded: true,
                cap_bytes: 0,
            },
            netsim_qos::CbqNodeConfig {
                parent: Some(1),
                rate_bps: 200_000_000,
                bounded: false,
                cap_bytes: 1 << 18,
            },
            netsim_qos::CbqNodeConfig {
                parent: Some(1),
                rate_bps: 400_000_000,
                bounded: false,
                cap_bytes: 1 << 18,
            },
            netsim_qos::CbqNodeConfig {
                parent: Some(0),
                rate_bps: 400_000_000,
                bounded: false,
                cap_bytes: 1 << 18,
            },
            netsim_qos::CbqNodeConfig {
                parent: Some(0),
                rate_bps: 100_000_000,
                bounded: false,
                cap_bytes: 1 << 18,
            },
        ],
        by_flow(),
    );
    bench_qdisc(c, "hier_cbq_tree", Box::new(tree));
}

criterion_group!(qdisc_benches, benches);
criterion_main!(qdisc_benches);
