//! Criterion bench for the discrete-event engine: end-to-end simulated
//! packet throughput of the full VPN data path (host→CE→PE→P→P→PE→CE→sink)
//! and of a congested DiffServ bottleneck.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, CoreQos};
use netsim_net::addr::pfx;
use netsim_sim::{Sink, SourceConfig, SEC};
use std::hint::black_box;

fn run_once(qos: CoreQos, packets: u64) -> u64 {
    let (t, pes) = mplsvpn_bench::topo::dumbbell(100);
    let mut pn = BackboneBuilder::new(t, pes).core_qos(qos).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 500);
    pn.attach_cbr_source(a, cfg, 50_000, Some(packets)); // 20 kpps
    pn.run_for(10 * SEC);
    let delivered = pn.net.node_ref::<Sink>(sink).total_packets;
    assert!(delivered > 0);
    pn.net.events_processed()
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    const PACKETS: u64 = 5_000;
    g.throughput(Throughput::Elements(PACKETS));
    g.bench_function("vpn_path_fifo_5k_packets", |b| {
        b.iter(|| black_box(run_once(CoreQos::BestEffort { cap_bytes: 1 << 20 }, PACKETS)));
    });
    g.bench_function("vpn_path_diffserv_5k_packets", |b| {
        b.iter(|| {
            black_box(run_once(
                CoreQos::DiffServ { cap_bytes: 1 << 20, sched: DsSched::Priority },
                PACKETS,
            ))
        });
    });
    g.finish();
}

criterion_group!(sim_benches, bench_sim);
criterion_main!(sim_benches);
