//! Reference topologies used by the experiments.

use netsim_routing::{LinkAttrs, Topology};

fn attrs(cost: u64, mbps: u64) -> LinkAttrs {
    LinkAttrs { cost, capacity_bps: mbps * 1_000_000 }
}

/// A line backbone `PE — P… — PE` with `hops` P routers in between.
/// Returns `(topology, pe nodes)`. Backbone links at `mbps`.
pub fn line(hops: usize, mbps: u64) -> (Topology, Vec<usize>) {
    let n = hops + 2;
    let mut t = Topology::new(n);
    for i in 0..n - 1 {
        t.add_link(i, i + 1, attrs(1, mbps));
    }
    (t, vec![0, n - 1])
}

/// The dumbbell used by the QoS experiments: two PEs, two P routers, and a
/// single bottleneck link between the P routers.
///
/// ```text
/// PE0 ── P1 ══ P2 ── PE3      (access 10×, bottleneck 1×)
/// ```
pub fn dumbbell(bottleneck_mbps: u64) -> (Topology, Vec<usize>) {
    let mut t = Topology::new(4);
    t.add_link(0, 1, attrs(1, bottleneck_mbps * 10));
    t.add_link(1, 2, attrs(1, bottleneck_mbps)); // link 1: the bottleneck
    t.add_link(2, 3, attrs(1, bottleneck_mbps * 10));
    (t, vec![0, 3])
}

/// Topology link id of the dumbbell bottleneck.
pub const DUMBBELL_BOTTLENECK: usize = 1;

/// The TE "fish": a short two-hop path and a long three-hop path between
/// the same PEs, all links `mbps`.
///
/// ```text
///        ┌─ P1 ─┐
/// PE0 ───┤      ├─── PE4
///        └ P2─P3┘
/// ```
pub fn fish(mbps: u64) -> (Topology, Vec<usize>) {
    let mut t = Topology::new(5);
    t.add_link(0, 1, attrs(1, mbps)); // 0: short a
    t.add_link(1, 4, attrs(1, mbps)); // 1: short b
    t.add_link(0, 2, attrs(1, mbps)); // 2: long a
    t.add_link(2, 3, attrs(1, mbps)); // 3: long b
    t.add_link(3, 4, attrs(1, mbps)); // 4: long c
    (t, vec![0, 4])
}

/// Links on the fish's short path.
pub const FISH_SHORT: [usize; 2] = [0, 1];
/// Links on the fish's long path.
pub const FISH_LONG: [usize; 3] = [2, 3, 4];
/// The node path of the fish's long way around.
pub const FISH_LONG_PATH: [usize; 4] = [0, 2, 3, 4];

/// A small national backbone: `pe_count` PEs hanging off a `core` ring of
/// P routers. Returns `(topology, pe nodes)`.
pub fn national(core: usize, pe_count: usize, core_mbps: u64) -> (Topology, Vec<usize>) {
    assert!(core >= 3, "ring needs 3+ nodes");
    let mut t = Topology::new(core);
    for i in 0..core {
        t.add_link(i, (i + 1) % core, attrs(1, core_mbps));
    }
    let mut pes = Vec::with_capacity(pe_count);
    for k in 0..pe_count {
        let pe = t.add_node();
        t.add_link(pe, k % core, attrs(1, core_mbps));
        pes.push(pe);
    }
    (t, pes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_routing::Igp;

    #[test]
    fn line_shape() {
        let (t, pes) = line(2, 100);
        assert_eq!(t.node_count(), 4);
        assert_eq!(pes, vec![0, 3]);
        let igp = Igp::converge(&t);
        assert_eq!(igp.path(0, 3).unwrap().len(), 4);
    }

    #[test]
    fn fish_paths() {
        let (t, pes) = fish(10);
        let igp = Igp::converge(&t);
        assert_eq!(igp.path(pes[0], pes[1]), Some(vec![0, 1, 4]), "IGP picks the short path");
        assert_eq!(t.link_count(), 5);
    }

    #[test]
    fn national_connects_everyone() {
        let (t, pes) = national(4, 8, 622);
        assert_eq!(pes.len(), 8);
        let igp = Igp::converge(&t);
        for &a in &pes {
            for &b in &pes {
                assert!(igp.path(a, b).is_some());
            }
        }
    }
}
