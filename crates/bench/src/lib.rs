//! # mplsvpn-bench — the experiment harness
//!
//! One module per table/figure of the paper (see DESIGN.md §4), each
//! exposing `run(quick) -> String` so the `exp_*` binaries, the `exp_all`
//! aggregator, and the unit tests all share one implementation. `quick`
//! shortens simulated durations for CI; the binaries run the full
//! parameters.
//!
//! Shared pieces: [`table`] (fixed-width table formatting), [`topo`]
//! (reference topologies), [`mix`] (the canonical voice/video/data/bulk
//! traffic mix used by the QoS experiments), and [`report`] (table +
//! metrics-snapshot bundles for CI artifact export).

#![warn(missing_docs)]

pub mod experiments;
pub mod mix;
pub mod report;
pub mod table;
pub mod topo;

pub use report::ExpReport;

/// Runs a set of labelled jobs across threads (one per job) and returns
/// their outputs in input order. Each job builds its own simulator, so the
/// parallelism is trivially data-race-free.
pub fn parallel_sweep<T: Send, F>(jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs.into_iter().map(|j| s.spawn(j)).collect();
        handles.into_iter().map(|h| h.join().expect("sweep job panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..8)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_sweep(jobs);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }
}
