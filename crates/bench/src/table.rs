//! Minimal fixed-width table formatter for experiment output.

/// Builds an aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            header: header.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats nanoseconds as milliseconds with two decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(&["1".into(), "10.00".into()]);
        t.row(&["200".into(), "3.14".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1_500_000), "1.50");
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f2(2.5), "2.50");
    }
}
