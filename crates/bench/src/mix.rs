//! The canonical traffic mix used by the QoS experiments (Q1/Q2/Q3/Q4):
//! voice (EF), video (AF41), transactional data (AF21) and bulk (BE),
//! dimensioned to oversubscribe a 10 Mb/s bottleneck by roughly 35%.

use mplsvpn_core::ipsec_vpn::{GwId, IpsecVpnNetwork};
use mplsvpn_core::{ProviderNetwork, SiteId};
use netsim_net::{Dscp, Ip};
use netsim_qos::{Nanos, MSEC};
use netsim_sim::{CbrSource, Network, NodeId, OnOffSource, PoissonSource, SourceConfig};

/// How a flow's source is modelled (needed to read back tx counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Constant bit rate.
    Cbr,
    /// Poisson arrivals.
    Poisson,
    /// Markov on-off bursts.
    OnOff,
}

/// One flow of the mix.
#[derive(Clone, Copy, Debug)]
pub struct FlowDesc {
    /// Flow id (unique within the mix).
    pub id: u64,
    /// Human name ("voice0", "bulk", …).
    pub name: &'static str,
    /// Traffic class.
    pub class: &'static str,
    /// DSCP the source marks.
    pub dscp: Dscp,
    /// Source node (for tx counter readback).
    pub src: NodeId,
    /// Source model.
    pub kind: SourceKind,
}

/// Transmitted packets of a mix flow.
pub fn tx_packets(net: &Network, f: &FlowDesc) -> u64 {
    match f.kind {
        SourceKind::Cbr => net.node_ref::<CbrSource>(f.src).tx.tx_packets,
        SourceKind::Poisson => net.node_ref::<PoissonSource>(f.src).tx.tx_packets,
        SourceKind::OnOff => net.node_ref::<OnOffSource>(f.src).tx.tx_packets,
    }
}

/// Specification of one mix flow before attachment.
struct Spec {
    name: &'static str,
    class: &'static str,
    dscp: Dscp,
    dst_port: u16,
    payload: usize,
    kind: SourceKind,
    /// CBR/on-burst interval or Poisson mean gap.
    interval: Nanos,
}

fn mix_specs() -> Vec<Spec> {
    let mut v = Vec::new();
    // 8 G.711-like voice flows: 160 B @ 20 ms = 75 kb/s each on the wire.
    for i in 0..8 {
        let names =
            ["voice0", "voice1", "voice2", "voice3", "voice4", "voice5", "voice6", "voice7"];
        v.push(Spec {
            name: names[i],
            class: "EF",
            dscp: Dscp::EF,
            dst_port: 16400,
            payload: 160,
            kind: SourceKind::Cbr,
            interval: 20 * MSEC,
        });
    }
    // 2 video flows: 1200 B @ 8 ms ≈ 1.23 Mb/s each.
    for name in ["video0", "video1"] {
        v.push(Spec {
            name,
            class: "AF41",
            dscp: Dscp::AF41,
            dst_port: 5004,
            payload: 1200,
            kind: SourceKind::Cbr,
            interval: 8 * MSEC,
        });
    }
    // 2 transactional data flows: bursty on-off, ~2.5 Mb/s peak each,
    // ~1.25 Mb/s average.
    for name in ["data0", "data1"] {
        v.push(Spec {
            name,
            class: "AF21",
            dscp: Dscp::AF21,
            dst_port: 443,
            payload: 600,
            kind: SourceKind::OnOff,
            interval: 2 * MSEC,
        });
    }
    // Bulk: Poisson ~8.2 Mb/s of 1000 B datagrams — the overload driver.
    v.push(Spec {
        name: "bulk",
        class: "BE",
        dscp: Dscp::BE,
        dst_port: 20,
        payload: 1000,
        kind: SourceKind::Poisson,
        interval: MSEC,
    });
    v
}

fn source_config(spec: &Spec, id: u64, src: Ip, dst: Ip) -> SourceConfig {
    SourceConfig {
        flow: id,
        src,
        dst,
        src_port: 20000 + id as u16,
        dst_port: spec.dst_port,
        tcp: false,
        dscp: spec.dscp,
        payload: spec.payload,
        iface: netsim_sim::IfaceId(0),
        probe: false,
    }
}

/// Attaches the canonical mix from `from` to `to` on a provider network,
/// running until `until`. Returns the flow descriptors (flow ids are
/// `base_flow + index`).
pub fn attach_mix_provider(
    pn: &mut ProviderNetwork,
    from: SiteId,
    to: SiteId,
    base_flow: u64,
    seed: u64,
    until: Nanos,
) -> Vec<FlowDesc> {
    let specs = mix_specs();
    let mut out = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let id = base_flow + i as u64;
        let src_ip = pn.site_addr(from, 100 + i as u32);
        let dst_ip = pn.site_addr(to, 200 + i as u32);
        let cfg = source_config(spec, id, src_ip, dst_ip);
        let count = until / spec.interval;
        let node = match spec.kind {
            SourceKind::Cbr => pn.attach_cbr_source(from, cfg, spec.interval, Some(count)),
            SourceKind::Poisson => {
                pn.attach_poisson_source(from, cfg, spec.interval, seed + i as u64, Some(until))
            }
            SourceKind::OnOff => pn.attach_onoff_source(
                from,
                cfg,
                spec.interval,
                50 * MSEC,
                50 * MSEC,
                seed + i as u64,
                Some(until),
            ),
        };
        out.push(FlowDesc {
            id,
            name: spec.name,
            class: spec.class,
            dscp: spec.dscp,
            src: node,
            kind: spec.kind,
        });
    }
    out
}

/// Attaches the canonical mix between two IPsec gateways (same shapes and
/// classes as [`attach_mix_provider`], so rows are comparable).
pub fn attach_mix_ipsec(
    n: &mut IpsecVpnNetwork,
    from: GwId,
    to: GwId,
    base_flow: u64,
    seed: u64,
    until: Nanos,
) -> Vec<FlowDesc> {
    let specs = mix_specs();
    let mut out = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let id = base_flow + i as u64;
        let src_ip = n.site_addr(from, 100 + i as u32);
        let dst_ip = n.site_addr(to, 200 + i as u32);
        let cfg = source_config(spec, id, src_ip, dst_ip);
        let count = until / spec.interval;
        let node = match spec.kind {
            SourceKind::Cbr => n.attach_cbr_source(from, cfg, spec.interval, Some(count)),
            SourceKind::Poisson => {
                let src = n.net.add_node(Box::new(PoissonSource::new(
                    cfg,
                    spec.interval,
                    seed + i as u64,
                    Some(until),
                )));
                wire_extra_host(n, from, src);
                src
            }
            SourceKind::OnOff => {
                let src = n.net.add_node(Box::new(OnOffSource::new(
                    cfg,
                    spec.interval,
                    50 * MSEC,
                    50 * MSEC,
                    seed + i as u64,
                    Some(until),
                )));
                wire_extra_host(n, from, src);
                n.net.arm_timer(src, 0, 1);
                out.push(FlowDesc {
                    id,
                    name: spec.name,
                    class: spec.class,
                    dscp: spec.dscp,
                    src,
                    kind: spec.kind,
                });
                continue;
            }
        };
        out.push(FlowDesc {
            id,
            name: spec.name,
            class: spec.class,
            dscp: spec.dscp,
            src: node,
            kind: spec.kind,
        });
    }
    out
}

fn wire_extra_host(n: &mut IpsecVpnNetwork, gw: GwId, src: NodeId) {
    let gnode = n.gateway_node(gw);
    n.net.connect(src, gnode, netsim_sim::LinkConfig::new(1_000_000_000, 10_000));
    n.net.arm_timer(src, 0, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_oversubscribes_ten_megabit() {
        // Back-of-envelope offered load (wire bytes) must exceed 10 Mb/s.
        let specs = mix_specs();
        let mut bps = 0.0;
        for s in &specs {
            let wire = (s.payload + 28) as f64 * 8.0;
            let duty = if s.kind == SourceKind::OnOff { 0.5 } else { 1.0 };
            bps += wire / (s.interval as f64 / 1e9) * duty;
        }
        assert!(bps > 10_000_000.0, "offered {bps}");
        assert!(bps < 20_000_000.0, "offered {bps}");
    }

    #[test]
    fn classes_cover_ef_af_be() {
        let specs = mix_specs();
        assert!(specs.iter().any(|s| s.dscp == Dscp::EF));
        assert!(specs.iter().any(|s| s.dscp == Dscp::AF41));
        assert!(specs.iter().any(|s| s.dscp == Dscp::AF21));
        assert!(specs.iter().any(|s| s.dscp == Dscp::BE));
    }
}
