//! **R2 — fast reroute vs global reconvergence** (paper §3/§5).
//!
//! §5 argues MPLS lets operators "avoid congested, constrained or
//! disabled links"; R1 showed what a *disabled* link costs when the only
//! reaction is global reconvergence. R2 adds the missing mechanism: link
//! protection. Every backbone link gets a precomputed SRLG-disjoint
//! bypass LSP; when the short path of the fish is cut mid-call, the
//! upstream router switches onto the bypass as soon as BFD detection
//! fires — no control-plane convergence in the loss path.
//!
//! The voice+data mix (Q1's, ~35% oversubscribed) crosses the fish for
//! 8 s; the cut lands at t = 2 s and the repair at t = 5 s. The table
//! compares the two failover modes on voice loss, the implied blind
//! window, and how many of the 8 voice flows still meet the backbone
//! voice SLA.

use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, CoreQos, FailoverMode, MetricsSnapshot, Sla};
use netsim_net::addr::pfx;
use netsim_qos::Nanos;
use netsim_sim::{FaultAction, FaultEvent, FaultPlan, Sink, MSEC, SEC};
use netsim_te::SrlgMap;

use crate::report::ExpReport;
use crate::table::{ms, Table};
use crate::{mix, topo};

/// Seconds of simulated traffic.
const RUN_SECS: u64 = 8;
/// When the short-path link is cut.
const CUT_AT: Nanos = 2 * SEC;
/// When it is repaired.
const REPAIR_AT: Nanos = 5 * SEC;
/// Mix RNG seed (also keys the determinism assertions).
const SEED: u64 = 7;

/// Outcome of one failover run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailoverResult {
    /// Failover mode exercised.
    pub mode: FailoverMode,
    /// Detection delay modelled, ns.
    pub detection_ns: Nanos,
    /// Voice packets sent across all 8 EF flows.
    pub voice_tx: u64,
    /// Voice packets lost across all 8 EF flows.
    pub voice_lost: u64,
    /// Blind window implied by the loss: aggregate voice runs at 400 pps,
    /// so each lost packet accounts for 2.5 ms of outage.
    pub loss_window_ns: Nanos,
    /// Voice flows (of 8) violating the backbone voice SLA.
    pub sla_violations: usize,
    /// Bypass switchovers activated by the cut.
    pub switchovers: u64,
    /// Global reconvergences run.
    pub reconvergences: u64,
    /// IGP + LDP messages spent on reconvergence (0 under FRR).
    pub control_messages: u64,
}

/// Runs the cut/repair cycle under `mode` with the given detection delay.
pub fn measure(mode: FailoverMode, detection_ns: Nanos) -> FailoverResult {
    measure_full(mode, detection_ns).0
}

/// [`measure`] plus the run's full metrics snapshot — the cut shows up as
/// `link_down_purge` drop-cause rows, the bypass as LFIB
/// `bypass_activations`.
pub fn measure_full(mode: FailoverMode, detection_ns: Nanos) -> (FailoverResult, MetricsSnapshot) {
    let (t, pes) = topo::fish(10);
    let mut pn = BackboneBuilder::new(t, pes)
        .core_qos(CoreQos::DiffServ { cap_bytes: 256 * 1024, sched: DsSched::Priority })
        .detection(detection_ns)
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let flows = mix::attach_mix_provider(&mut pn, a, b, 1, SEED, RUN_SECS * SEC);

    if mode == FailoverMode::FastReroute {
        let srlg = SrlgMap::new(pn.topo.link_count());
        pn.protect_all_links(&srlg);
    }
    pn.verify().assert_clean("failover experiment, pre-cut");

    let plan = FaultPlan::new(vec![
        FaultEvent { at: CUT_AT, link: topo::FISH_SHORT[1], action: FaultAction::Cut },
        FaultEvent { at: REPAIR_AT, link: topo::FISH_SHORT[1], action: FaultAction::Repair },
    ]);
    let out = pn.execute_fault_plan(&plan, mode, (RUN_SECS + 1) * SEC);

    let sla = Sla::backbone_voice();
    let (mut voice_tx, mut voice_lost, mut sla_violations) = (0, 0, 0);
    for f in flows.iter().filter(|f| f.class == "EF") {
        let tx = mix::tx_packets(&pn.net, f);
        let stats = pn.net.node_ref::<Sink>(sink).flow(f.id).expect("voice flow reached sink");
        voice_tx += tx;
        voice_lost += tx - stats.rx_packets;
        if !sla.evaluate(stats, tx).met {
            sla_violations += 1;
        }
    }
    let result = FailoverResult {
        mode,
        detection_ns,
        voice_tx,
        voice_lost,
        // 8 × 50 pps aggregate voice: one packet per 2.5 ms.
        loss_window_ns: voice_lost * 2_500_000,
        sla_violations,
        switchovers: out.switchovers,
        reconvergences: out.reconvergences,
        control_messages: out.control_messages,
    };
    let snap = pn.metrics_snapshot();
    (result, snap)
}

/// Detection delay used for the FRR rows: ~3 missed BFD hellos.
pub const FRR_DETECT: Nanos = 20 * MSEC;
/// Detection delay used for the global rows: ~3 missed IGP hellos.
pub const IGP_DETECT: Nanos = 200 * MSEC;

/// Runs both modes and renders the table.
pub fn run(_quick: bool) -> String {
    let mut t = Table::new(
        "R2: fish short-path cut at t=2s, repair at t=5s, under the Q1 voice+data mix",
        &[
            "failover mode",
            "detection ms",
            "voice lost (of tx)",
            "loss window ms",
            "SLA violations (of 8)",
            "switchovers",
            "reconvergences",
            "control msgs",
        ],
    );
    for (mode, detect) in
        [(FailoverMode::GlobalReconverge, IGP_DETECT), (FailoverMode::FastReroute, FRR_DETECT)]
    {
        let r = measure(mode, detect);
        let name = match mode {
            FailoverMode::GlobalReconverge => "global reconvergence",
            FailoverMode::FastReroute => "fast reroute",
        };
        t.row(&[
            name.to_string(),
            ms(r.detection_ns),
            format!("{} (of {})", r.voice_lost, r.voice_tx),
            ms(r.loss_window_ns),
            r.sla_violations.to_string(),
            r.switchovers.to_string(),
            r.reconvergences.to_string(),
            r.control_messages.to_string(),
        ]);
    }
    t.render()
}

/// [`run`]'s table plus the FRR run's snapshot.
pub fn report(quick: bool) -> ExpReport {
    let (_, snap) = measure_full(FailoverMode::FastReroute, FRR_DETECT);
    ExpReport { table: run(quick), snapshot: Some(snap) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frr_shrinks_the_loss_window_at_least_five_fold() {
        let global = measure(FailoverMode::GlobalReconverge, IGP_DETECT);
        let frr = measure(FailoverMode::FastReroute, FRR_DETECT);
        assert!(global.voice_lost > 0, "the cut must hurt: {global:?}");
        assert!(
            frr.loss_window_ns * 5 <= global.loss_window_ns,
            "FRR must shrink the loss window ≥5×: frr={frr:?} global={global:?}"
        );
        assert_eq!(frr.reconvergences, 0, "FRR never reconverges globally");
        assert!(frr.switchovers >= 1, "the cut must activate a bypass");
        assert_eq!(frr.control_messages, 0, "no control-plane churn under FRR");
        assert!(global.reconvergences >= 2, "cut + repair each reconverge");
    }

    #[test]
    fn frr_keeps_voice_within_sla_where_reconvergence_does_not() {
        let global = measure(FailoverMode::GlobalReconverge, IGP_DETECT);
        let frr = measure(FailoverMode::FastReroute, FRR_DETECT);
        assert!(
            frr.sla_violations < global.sla_violations,
            "FRR must save SLAs: frr={} global={}",
            frr.sla_violations,
            global.sla_violations
        );
    }

    /// The flight recorder explains the outage: packets lost to the cut
    /// appear as `link_down_purge`, and the bypass LSP leaves
    /// `bypass_activations` in the protecting router's LFIB stats.
    #[test]
    fn snapshot_attributes_the_cut_and_the_bypass() {
        let (r, snap) = measure_full(FailoverMode::FastReroute, FRR_DETECT);
        assert!(r.switchovers >= 1);
        assert!(
            snap.drop_causes.iter().any(|(n, v)| n == "link_down_purge" && *v > 0),
            "the blind window's losses must be attributed: {:?}",
            snap.drop_causes
        );
        let bypassed: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.ends_with(".lfib.bypass_activations"))
            .map(|&(_, v)| v)
            .sum();
        assert!(bypassed > 0, "protected traffic must show in LFIB stats");
    }

    #[test]
    fn failover_runs_are_seed_deterministic() {
        let a = measure(FailoverMode::FastReroute, FRR_DETECT);
        let b = measure(FailoverMode::FastReroute, FRR_DETECT);
        assert_eq!(a, b, "same seed, same plan, same result");
    }
}
