//! **R2 — fast reroute vs global reconvergence** (paper §3/§5).
//!
//! §5 argues MPLS lets operators "avoid congested, constrained or
//! disabled links"; R1 showed what a *disabled* link costs when the only
//! reaction is global reconvergence. R2 adds the missing mechanism: link
//! protection. Every backbone link gets a precomputed SRLG-disjoint
//! bypass LSP; when the short path of the fish is cut mid-call, the
//! upstream router switches onto the bypass as soon as BFD detection
//! fires — no control-plane convergence in the loss path.
//!
//! The voice+data mix (Q1's, ~35% oversubscribed) crosses the fish for
//! 8 s; the cut lands at t = 2 s and the repair at t = 5 s. The table
//! compares the two failover modes on voice loss, the implied blind
//! window, and how many of the 8 voice flows still meet the backbone
//! voice SLA.

use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, ControlMode, CoreQos, FailoverMode, MetricsSnapshot, Sla};
use netsim_net::addr::pfx;
use netsim_qos::Nanos;
use netsim_sim::{FaultAction, FaultEvent, FaultPlan, LinkId, Sink, MSEC, SEC};
use netsim_te::SrlgMap;

use crate::report::ExpReport;
use crate::table::{ms, Table};
use crate::{mix, topo};

/// Seconds of simulated traffic.
const RUN_SECS: u64 = 8;
/// When the short-path link is cut.
const CUT_AT: Nanos = 2 * SEC;
/// When it is repaired.
const REPAIR_AT: Nanos = 5 * SEC;
/// Mix RNG seed (also keys the determinism assertions).
const SEED: u64 = 7;

/// Outcome of one failover run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailoverResult {
    /// Failover mode exercised.
    pub mode: FailoverMode,
    /// Detection delay modelled, ns.
    pub detection_ns: Nanos,
    /// Voice packets sent across all 8 EF flows.
    pub voice_tx: u64,
    /// Voice packets lost across all 8 EF flows.
    pub voice_lost: u64,
    /// Blind window implied by the loss: aggregate voice runs at 400 pps,
    /// so each lost packet accounts for 2.5 ms of outage.
    pub loss_window_ns: Nanos,
    /// Voice flows (of 8) violating the backbone voice SLA.
    pub sla_violations: usize,
    /// Bypass switchovers activated by the cut.
    pub switchovers: u64,
    /// Global reconvergences run.
    pub reconvergences: u64,
    /// IGP + LDP messages spent on reconvergence (0 under FRR).
    pub control_messages: u64,
    /// Worst LSA propagation+processing latency of the in-band control
    /// plane, ns (0 in oracle arms — the oracle converges out of band,
    /// in zero simulated time).
    pub ctrl_propagation_ns: Nanos,
    /// CS6 control packets that crossed backbone links (EXP 6 in the
    /// per-class link counters; 0 in oracle arms).
    pub cs6_control_packets: u64,
}

/// Runs the cut/repair cycle under `mode` with the given detection delay.
pub fn measure(mode: FailoverMode, detection_ns: Nanos) -> FailoverResult {
    measure_full(mode, detection_ns).0
}

/// [`measure`] plus the run's full metrics snapshot — the cut shows up as
/// `link_down_purge` drop-cause rows, the bypass as LFIB
/// `bypass_activations`.
pub fn measure_full(mode: FailoverMode, detection_ns: Nanos) -> (FailoverResult, MetricsSnapshot) {
    let (t, pes) = topo::fish(10);
    let mut pn = BackboneBuilder::new(t, pes)
        .core_qos(CoreQos::DiffServ { cap_bytes: 256 * 1024, sched: DsSched::Priority })
        .detection(detection_ns)
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let flows = mix::attach_mix_provider(&mut pn, a, b, 1, SEED, RUN_SECS * SEC);

    if mode == FailoverMode::FastReroute {
        let srlg = SrlgMap::new(pn.topo.link_count());
        pn.protect_all_links(&srlg);
    }
    pn.verify().assert_clean("failover experiment, pre-cut");

    let plan = FaultPlan::new(vec![
        FaultEvent { at: CUT_AT, link: topo::FISH_SHORT[1], action: FaultAction::Cut },
        FaultEvent { at: REPAIR_AT, link: topo::FISH_SHORT[1], action: FaultAction::Repair },
    ]);
    let out = pn.execute_fault_plan(&plan, mode, (RUN_SECS + 1) * SEC);

    let sla = Sla::backbone_voice();
    let (mut voice_tx, mut voice_lost, mut sla_violations) = (0, 0, 0);
    for f in flows.iter().filter(|f| f.class == "EF") {
        let tx = mix::tx_packets(&pn.net, f);
        let stats = pn.net.node_ref::<Sink>(sink).flow(f.id).expect("voice flow reached sink");
        voice_tx += tx;
        voice_lost += tx - stats.rx_packets;
        if !sla.evaluate(stats, tx).met {
            sla_violations += 1;
        }
    }
    let result = FailoverResult {
        mode,
        detection_ns,
        voice_tx,
        voice_lost,
        // 8 × 50 pps aggregate voice: one packet per 2.5 ms.
        loss_window_ns: voice_lost * 2_500_000,
        sla_violations,
        switchovers: out.switchovers,
        reconvergences: out.reconvergences,
        control_messages: out.control_messages,
        ctrl_propagation_ns: 0,
        cs6_control_packets: 0,
    };
    let snap = pn.metrics_snapshot();
    (result, snap)
}

/// Runs the same cut/repair cycle with the *in-band* control plane: no
/// oracle reconvergence ever runs — the failure is flooded as CS6 LSA
/// packets through the same (congested, Q1-mix) links the voice rides,
/// and routers repair their own FIB/LFIB state incrementally. The loss
/// window therefore includes a nonzero propagation component, and the
/// control traffic itself is visible in the per-class link counters.
pub fn measure_inband(detection_ns: Nanos) -> FailoverResult {
    let (t, pes) = topo::fish(10);
    let mut pn = BackboneBuilder::new(t, pes)
        .core_qos(CoreQos::DiffServ { cap_bytes: 256 * 1024, sched: DsSched::Priority })
        .detection(detection_ns)
        .control_mode(ControlMode::InBand)
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let flows = mix::attach_mix_provider(&mut pn, a, b, 1, SEED, RUN_SECS * SEC);
    pn.verify().assert_clean("failover experiment, pre-cut (in-band)");

    let plan = FaultPlan::new(vec![
        FaultEvent { at: CUT_AT, link: topo::FISH_SHORT[1], action: FaultAction::Cut },
        FaultEvent { at: REPAIR_AT, link: topo::FISH_SHORT[1], action: FaultAction::Repair },
    ]);
    let out = pn.execute_fault_plan(&plan, FailoverMode::GlobalReconverge, (RUN_SECS + 1) * SEC);

    let sla = Sla::backbone_voice();
    let (mut voice_tx, mut voice_lost, mut sla_violations) = (0, 0, 0);
    for f in flows.iter().filter(|f| f.class == "EF") {
        let tx = mix::tx_packets(&pn.net, f);
        let stats = pn.net.node_ref::<Sink>(sink).flow(f.id).expect("voice flow reached sink");
        voice_tx += tx;
        voice_lost += tx - stats.rx_packets;
        if !sla.evaluate(stats, tx).met {
            sla_violations += 1;
        }
    }
    let ctrl = pn.control_stats().expect("in-band network exposes control stats");
    let cs6_control_packets: u64 = (0..pn.topo.link_count())
        .flat_map(|l| (0..2u8).map(move |d| (l, d)))
        .map(|(l, d)| pn.net.link_stats(LinkId(l), d).tx_by_class[6])
        .sum();
    FailoverResult {
        mode: FailoverMode::GlobalReconverge,
        detection_ns,
        voice_tx,
        voice_lost,
        loss_window_ns: voice_lost * 2_500_000,
        sla_violations,
        switchovers: out.switchovers,
        reconvergences: out.reconvergences,
        control_messages: ctrl.pkts_sent,
        ctrl_propagation_ns: pn.control_convergence_ns().map_or(0, |(_, _, max)| max),
        cs6_control_packets,
    }
}

/// Detection delay used for the FRR rows: ~3 missed BFD hellos.
pub const FRR_DETECT: Nanos = 20 * MSEC;
/// Detection delay used for the global rows: ~3 missed IGP hellos.
pub const IGP_DETECT: Nanos = 200 * MSEC;

/// Runs both modes and renders the table.
pub fn run(_quick: bool) -> String {
    let mut t = Table::new(
        "R2: fish short-path cut at t=2s, repair at t=5s, under the Q1 voice+data mix",
        &[
            "failover mode",
            "detection ms",
            "voice lost (of tx)",
            "loss window ms",
            "SLA violations (of 8)",
            "switchovers",
            "reconvergences",
            "control msgs",
            "ctrl prop ms",
            "CS6 pkts",
        ],
    );
    let mut row = |name: &str, r: &FailoverResult| {
        t.row(&[
            name.to_string(),
            ms(r.detection_ns),
            format!("{} (of {})", r.voice_lost, r.voice_tx),
            ms(r.loss_window_ns),
            r.sla_violations.to_string(),
            r.switchovers.to_string(),
            r.reconvergences.to_string(),
            r.control_messages.to_string(),
            ms(r.ctrl_propagation_ns),
            r.cs6_control_packets.to_string(),
        ]);
    };
    row("global reconvergence (oracle)", &measure(FailoverMode::GlobalReconverge, IGP_DETECT));
    row("global reconvergence (in-band)", &measure_inband(IGP_DETECT));
    row("fast reroute", &measure(FailoverMode::FastReroute, FRR_DETECT));
    t.render()
}

/// [`run`]'s table plus the FRR run's snapshot.
pub fn report(quick: bool) -> ExpReport {
    let (_, snap) = measure_full(FailoverMode::FastReroute, FRR_DETECT);
    ExpReport { table: run(quick), snapshot: Some(snap) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frr_shrinks_the_loss_window_at_least_five_fold() {
        let global = measure(FailoverMode::GlobalReconverge, IGP_DETECT);
        let frr = measure(FailoverMode::FastReroute, FRR_DETECT);
        assert!(global.voice_lost > 0, "the cut must hurt: {global:?}");
        assert!(
            frr.loss_window_ns * 5 <= global.loss_window_ns,
            "FRR must shrink the loss window ≥5×: frr={frr:?} global={global:?}"
        );
        assert_eq!(frr.reconvergences, 0, "FRR never reconverges globally");
        assert!(frr.switchovers >= 1, "the cut must activate a bypass");
        assert_eq!(frr.control_messages, 0, "no control-plane churn under FRR");
        assert!(global.reconvergences >= 2, "cut + repair each reconverge");
    }

    #[test]
    fn frr_keeps_voice_within_sla_where_reconvergence_does_not() {
        let global = measure(FailoverMode::GlobalReconverge, IGP_DETECT);
        let frr = measure(FailoverMode::FastReroute, FRR_DETECT);
        assert!(
            frr.sla_violations < global.sla_violations,
            "FRR must save SLAs: frr={} global={}",
            frr.sla_violations,
            global.sla_violations
        );
    }

    /// The flight recorder explains the outage: packets lost to the cut
    /// appear as `link_down_purge`, and the bypass LSP leaves
    /// `bypass_activations` in the protecting router's LFIB stats.
    #[test]
    fn snapshot_attributes_the_cut_and_the_bypass() {
        let (r, snap) = measure_full(FailoverMode::FastReroute, FRR_DETECT);
        assert!(r.switchovers >= 1);
        assert!(
            snap.drop_causes.iter().any(|(n, v)| n == "link_down_purge" && *v > 0),
            "the blind window's losses must be attributed: {:?}",
            snap.drop_causes
        );
        let bypassed: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.ends_with(".lfib.bypass_activations"))
            .map(|&(_, v)| v)
            .sum();
        assert!(bypassed > 0, "protected traffic must show in LFIB stats");
    }

    /// The in-band arm pays a real, measurable propagation cost: its
    /// convergence latency is nonzero simulated time, and the LSA/LDP
    /// traffic that drove it is observable as CS6 (EXP 6) packets in the
    /// per-class link counters — riding the same queues as the voice.
    #[test]
    fn inband_reconvergence_has_nonzero_propagation_and_visible_cs6() {
        let r = measure_inband(IGP_DETECT);
        assert_eq!(r.reconvergences, 0, "the oracle must never run in-band: {r:?}");
        assert!(r.ctrl_propagation_ns > 0, "convergence takes wire time: {r:?}");
        assert!(r.cs6_control_packets > 0, "control traffic rides EXP 6: {r:?}");
        assert!(r.control_messages >= r.cs6_control_packets);
        assert!(r.voice_lost > 0, "the blind window still hurts: {r:?}");
        // The network did recover: the repair restored the short path and
        // most of the 8 s call got through.
        assert!(r.voice_lost * 4 < r.voice_tx, "recovery happened: {r:?}");
    }

    #[test]
    fn inband_runs_are_seed_deterministic() {
        assert_eq!(measure_inband(IGP_DETECT), measure_inband(IGP_DETECT));
    }

    #[test]
    fn failover_runs_are_seed_deterministic() {
        let a = measure(FailoverMode::FastReroute, FRR_DETECT);
        let b = measure(FailoverMode::FastReroute, FRR_DETECT);
        assert_eq!(a, b, "same seed, same plan, same result");
    }
}
