//! **R1 — disabled links and reconvergence** (paper §3/§5).
//!
//! §3: MPLS "makes \[networks\] easier to monitor, manage and operate.
//! Users can also control QoS and general traffic flow more precisely to
//! avoid congested, constrained or **disabled** links."
//!
//! A continuous voice flow crosses the fish backbone; at t = 2 s the short
//! path is cut. Packets drop until the failure is *detected* (the swept
//! parameter) and the control plane reconverges onto the long path; when
//! the link is repaired, traffic returns. The table reports lost packets,
//! outage duration and reconvergence message cost per detection delay.

use mplsvpn_core::BackboneBuilder;
use netsim_net::addr::pfx;
use netsim_qos::Nanos;
use netsim_sim::{Sink, SourceConfig, MSEC, SEC};

use crate::table::{ms, Table};
use crate::topo;

/// Outcome of one failure/repair cycle.
#[derive(Clone, Debug)]
pub struct ResilienceResult {
    /// Detection delay modelled, ns.
    pub detection_ns: Nanos,
    /// Packets lost across the whole run.
    pub lost: u64,
    /// Measured outage: largest gap between consecutive arrivals, ns.
    pub outage_ns: Nanos,
    /// IGP + LDP messages spent reconverging (both events).
    pub reconvergence_messages: u64,
}

/// Runs one failure/repair cycle with the given detection delay.
pub fn measure(detection_ns: Nanos) -> ResilienceResult {
    let (t, pes) = topo::fish(10);
    let mut pn = BackboneBuilder::new(t, pes).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("resilience experiment, pre-cut");
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    // 200 pps voice-like flow for 8 s.
    let interval = 5 * MSEC;
    let total: u64 = 8 * SEC / interval;
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 16400, 160);
    pn.attach_cbr_source(a, cfg, interval, Some(total));

    pn.run_for(2 * SEC);
    pn.fail_link(topo::FISH_SHORT[1]); // cut the short path's second hop
    pn.run_for(detection_ns);
    let s1 = pn.reconverge();
    pn.run_for(2 * SEC - detection_ns);
    pn.repair_link(topo::FISH_SHORT[1]);
    let s2 = pn.reconverge();
    pn.run_for(5 * SEC);

    let f = pn.net.node_ref::<Sink>(sink).flow(1).expect("flow survived");
    // Outage = the largest inter-arrival gap, reconstructed from loss runs:
    // with CBR at `interval`, N consecutive losses ⇒ gap (N+1)·interval.
    let lost = total - f.rx_packets;
    ResilienceResult {
        detection_ns,
        lost,
        outage_ns: (lost + 1) * interval,
        reconvergence_messages: s1.igp_lsa_messages
            + s1.ldp_messages
            + s2.igp_lsa_messages
            + s2.ldp_messages,
    }
}

/// Runs the detection-delay sweep and renders the table.
pub fn run(quick: bool) -> String {
    let delays: Vec<Nanos> = if quick {
        vec![50 * MSEC, 500 * MSEC]
    } else {
        vec![0, 50 * MSEC, 200 * MSEC, 500 * MSEC, 1000 * MSEC]
    };
    let mut t = Table::new(
        "R1: link failure on the fish — loss vs failure-detection delay (cut at t=2s, repair at t=4s)",
        &["detection ms", "packets lost (of 1600)", "≈outage ms", "reconvergence msgs"],
    );
    for &d in &delays {
        let r = measure(d);
        t.row(&[
            ms(r.detection_ns),
            r.lost.to_string(),
            ms(r.outage_ns),
            r.reconvergence_messages.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_scales_with_detection_delay_and_service_recovers() {
        let fast = measure(50 * MSEC);
        let slow = measure(1000 * MSEC);
        // 200 pps: ~10 packets per 50 ms of blindness.
        assert!(fast.lost >= 5, "some loss during the outage: {fast:?}");
        assert!(
            slow.lost > fast.lost + 100,
            "longer detection must lose more: fast={} slow={}",
            fast.lost,
            slow.lost
        );
        // Both recover: losses bounded by the outage windows, not the run.
        assert!(slow.lost < 400, "service must recover after reconvergence: {slow:?}");
        assert!(fast.reconvergence_messages > 0);
    }

    #[test]
    fn instant_detection_loses_almost_nothing() {
        let r = measure(0);
        assert!(r.lost <= 3, "instant reconvergence: {r:?}");
    }
}
