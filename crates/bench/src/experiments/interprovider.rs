//! **Q4 — SLAs across cooperative provider boundaries** (paper §5).
//!
//! "The progress these QoS-related standards have made will allow service
//! providers to extend SLAs from customer site to customer site and
//! eventually across cooperative service provider boundaries."
//!
//! A voice flow and a bulk flood cross two independently-operated MPLS
//! domains stitched at ASBRs (option-B label exchange). Both domains run
//! DiffServ on EXP; because the ASBR relabeling preserves EXP, the ingress
//! DSCP→EXP decision governs scheduling end to end, and the voice SLA holds
//! across the boundary.

use mplsvpn_core::interprovider::{DomainSpec, InterProviderVpn};
use mplsvpn_core::network::DsSched;
use mplsvpn_core::{CoreQos, Sla, TraceLog};
use netsim_net::addr::pfx;
use netsim_net::Dscp;
use netsim_qos::Nanos;
use netsim_routing::{LinkAttrs, Topology};
use netsim_sim::{Sink, SourceConfig, MSEC, SEC};

use crate::table::{ms, pct, Table};

fn domain(n: usize, pe: usize, asbr: usize, mbps: u64) -> DomainSpec {
    let mut t = Topology::new(n);
    for i in 0..n - 1 {
        t.add_link(i, i + 1, LinkAttrs { cost: 1, capacity_bps: mbps * 1_000_000 });
    }
    DomainSpec { topo: t, pe, asbr }
}

/// Per-flow outcome.
#[derive(Clone, Debug)]
pub struct Q4Flow {
    /// Flow label.
    pub name: &'static str,
    /// Loss fraction.
    pub loss: f64,
    /// Mean latency, ns.
    pub mean_ns: u64,
    /// p99 latency, ns.
    pub p99_ns: u64,
}

/// Runs the two-carrier scenario; returns flows, whether EXP survived the
/// boundary, and control message count.
pub fn measure(duration: Nanos, diffserv: bool) -> (Vec<Q4Flow>, bool, u64) {
    let qos = if diffserv {
        CoreQos::DiffServ { cap_bytes: 128 * 1024, sched: DsSched::Priority }
    } else {
        CoreQos::BestEffort { cap_bytes: 128 * 1024 }
    };
    let trace = TraceLog::new();
    let mut ip = InterProviderVpn::build(
        domain(3, 0, 2, 10),
        domain(3, 2, 0, 10),
        pfx("10.1.0.0/16"),
        pfx("10.2.0.0/16"),
        qos,
        MSEC,
        None,
        Some(trace.clone()),
    );
    let sink = ip.attach_sink_b(pfx("10.2.0.0/16"));
    // Voice: EF, 75 kb/s. Bulk: BE flood at ~12 Mb/s across 10 Mb/s links.
    let voice =
        SourceConfig::udp(1, pfx("10.1.0.0/16").nth(3), pfx("10.2.0.0/16").nth(3), 16400, 160)
            .with_dscp(Dscp::EF);
    let bulk = SourceConfig::udp(2, pfx("10.1.0.0/16").nth(4), pfx("10.2.0.0/16").nth(4), 20, 1200);
    let voice_count = duration / (20 * MSEC);
    let bulk_interval = 600_000; // 1228 B wire / 0.6 ms ≈ 16.4 Mb/s
    let bulk_count = duration / bulk_interval;
    ip.attach_cbr_source_a(voice, 20 * MSEC, Some(voice_count));
    ip.attach_cbr_source_a(bulk, bulk_interval, Some(bulk_count));
    ip.net.run_until(duration + SEC);

    let s = ip.net.node_ref::<Sink>(sink);
    let flows = vec![
        Q4Flow {
            name: "voice (EF)",
            loss: s.flow(1).map(|f| f.loss(voice_count)).unwrap_or(1.0),
            mean_ns: s.flow(1).map(|f| f.latency.mean() as u64).unwrap_or(0),
            p99_ns: s.flow(1).map(|f| f.latency.quantile(0.99)).unwrap_or(0),
        },
        Q4Flow {
            name: "bulk (BE)",
            loss: s.flow(2).map(|f| f.loss(bulk_count)).unwrap_or(1.0),
            mean_ns: s.flow(2).map(|f| f.latency.mean() as u64).unwrap_or(0),
            p99_ns: s.flow(2).map(|f| f.latency.quantile(0.99)).unwrap_or(0),
        },
    ];
    // EXP preservation: every labeled hop of the voice flow must carry 5.
    let exp_ok = trace.flow(1).iter().filter_map(|r| r.exp).all(|e| e == 5);
    (flows, exp_ok, ip.control_messages)
}

/// Runs both configurations and renders the table.
pub fn run(quick: bool) -> String {
    let duration = if quick { SEC } else { 5 * SEC };
    let mut out = String::new();
    for (name, ds) in
        [("both carriers best-effort", false), ("both carriers DiffServ-on-EXP", true)]
    {
        let (flows, exp_ok, msgs) = measure(duration, ds);
        let mut t = Table::new(
            format!("Q4 [{name}] — EXP preserved across ASBRs: {exp_ok}, control messages: {msgs}"),
            &["flow", "loss", "mean ms", "p99 ms", "backbone voice SLA (50ms)"],
        );
        for f in &flows {
            let sla = if f.name.starts_with("voice") {
                let s = Sla::backbone_voice();
                if f.loss <= s.max_loss
                    && f.mean_ns <= s.max_mean_latency_ns
                    && f.p99_ns <= s.max_p99_latency_ns
                {
                    "MET"
                } else {
                    "VIOLATED"
                }
                .to_string()
            } else {
                "-".into()
            };
            t.row(&[f.name.into(), pct(f.loss), ms(f.mean_ns), ms(f.p99_ns), sla]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sla_holds_across_carriers_only_with_diffserv() {
        let (be, exp_be, _) = measure(2 * SEC, false);
        let (ds, exp_ds, msgs) = measure(2 * SEC, true);
        assert!(exp_be && exp_ds, "EXP must survive the ASBRs in both runs");
        assert!(msgs > 0);
        let v_ds = &ds[0];
        assert!(v_ds.loss < 0.01, "ds voice loss {}", v_ds.loss);
        assert!(v_ds.p99_ns < 100 * MSEC, "ds voice p99 {}", v_ds.p99_ns);
        let v_be = &be[0];
        assert!(
            v_be.loss > 5.0 * v_ds.loss.max(1e-6) || v_be.p99_ns > 2 * v_ds.p99_ns,
            "best-effort should hurt voice across the boundary: be={v_be:?} ds={v_ds:?}"
        );
        // Bulk absorbs the overload under DiffServ.
        assert!(ds[1].loss > 0.05);
    }
}
