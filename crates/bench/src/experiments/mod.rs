//! One module per paper table/figure. Each exposes `run(quick) -> String`;
//! the `exp_*` binaries print it, `exp_all` concatenates everything, and
//! the tests assert the *shape* each experiment must reproduce.

pub mod aqm;
pub mod failover;
pub mod forwarding;
pub mod interprovider;
pub mod intserv;
pub mod ipsec_qos;
pub mod isolation;
pub mod membership;
pub mod qos;
pub mod resilience;
pub mod scalability;
pub mod te;
pub mod trace;
pub mod tunnels;
