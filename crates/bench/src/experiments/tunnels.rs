//! **F2 — VPN sites connected by LSP tunnels** (paper Figure 2).
//!
//! "An ISP can deploy a VPN by provisioning a set of LSPs to provide
//! connectivity among the different sites in the VPN." VPN V1 has three
//! sites, V2 has two (as in the figure); the experiment enumerates the
//! tunnel mesh each VPN rides, verifies every tunnel follows the IGP
//! shortest path (stretch 1.0), and reports label stack depth.

use mplsvpn_core::BackboneBuilder;
use netsim_mpls::ldp::Fec;
use netsim_net::addr::pfx;
use netsim_sim::{Sink, SourceConfig, MSEC, SEC};

use crate::table::{f2, Table};
use crate::topo;

/// One PE-pair tunnel record.
#[derive(Clone, Debug)]
pub struct TunnelRecord {
    /// VPN name.
    pub vpn: String,
    /// Ingress/egress PE ordinals.
    pub pes: (usize, usize),
    /// Backbone node path of the LSP.
    pub path: Vec<usize>,
    /// Path cost over IGP shortest-path cost.
    pub stretch: f64,
}

/// Builds the Figure-2 scenario and walks every tunnel.
pub fn measure() -> (Vec<TunnelRecord>, u64) {
    // A standalone LDP run over the same topology the provider network
    // uses (the builder moves its LFIBs into the simulated routers, so the
    // mesh is walked on this probe instance — LDP is deterministic, both
    // runs converge to identical tables).
    let (t, pes) = topo::national(4, 4, 622);
    let igp_probe = netsim_routing::Igp::converge(&t);
    let adjacency = t.adjacency_lists();
    let fecs: Vec<(Fec, usize)> =
        pes.iter().enumerate().map(|(k, &pe)| (Fec(k as u32), pe)).collect();
    let nh = |u: usize, v: usize| igp_probe.next_hop(u, v);
    let ldp =
        netsim_mpls::LdpDomain::run(&adjacency, &fecs, &nh, netsim_mpls::LdpConfig::default());

    let mut records = Vec::new();
    let walk_pairs = |vpn: &str, members: &[usize], records: &mut Vec<TunnelRecord>| {
        for &i in members {
            for &j in members {
                if i == j {
                    continue;
                }
                let (from, to) = (pes[i], pes[j]);
                let path = ldp.walk(&adjacency, from, Fec(j as u32)).expect("tunnel must exist");
                let cost = (path.len() - 1) as f64;
                let best = igp_probe.path(from, to).expect("connected").len() as f64 - 1.0;
                records.push(TunnelRecord {
                    vpn: vpn.to_string(),
                    pes: (i, j),
                    path,
                    stretch: cost / best,
                });
            }
        }
    };
    // V1: sites on PE0, PE1, PE2. V2: sites on PE0, PE3 (paper Figure 2).
    walk_pairs("V1", &[0, 1, 2], &mut records);
    walk_pairs("V2", &[0, 3], &mut records);
    let labels = ldp.total_labels();
    (records, labels)
}

/// Runs the experiment, also pushing one data flow per V1 site pair to
/// prove the tunnels carry traffic, and renders the table.
pub fn run(_quick: bool) -> String {
    let (records, labels) = measure();
    let mut t = Table::new(
        format!("F2: LSP tunnel mesh per VPN (total tunnel labels in backbone: {labels})"),
        &["vpn", "ingress→egress", "LSP path (backbone nodes)", "stretch"],
    );
    for r in &records {
        t.row(&[
            r.vpn.clone(),
            format!("PE{}→PE{}", r.pes.0, r.pes.1),
            format!("{:?}", r.path),
            f2(r.stretch),
        ]);
    }
    let mut out = t.render();
    out.push_str(&data_plane_check());
    out
}

fn data_plane_check() -> String {
    // One concrete V1 flow PE0→PE2 to prove the mesh carries data.
    let (t, pes) = topo::national(4, 4, 622);
    let mut pn = BackboneBuilder::new(t, pes).build();
    let v1 = pn.new_vpn("V1");
    let a = pn.add_site(v1, 0, pfx("10.1.0.0/16"), None);
    let c = pn.add_site(v1, 2, pfx("10.3.0.0/16"), None);
    pn.verify().assert_clean("tunnel-state data-plane check");
    let sink = pn.attach_sink(c, pfx("10.3.0.0/16"));
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(c, 1), 5000, 200);
    pn.attach_cbr_source(a, cfg, MSEC, Some(100));
    pn.run_for(SEC);
    let got = pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets).unwrap_or(0);
    format!("data-plane check: 100 packets offered over V1 PE0→PE2, {got} delivered\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunnel_mesh_is_complete_and_shortest_path() {
        let (records, labels) = measure();
        // V1: 3 sites → 6 ordered pairs; V2: 2 sites → 2.
        assert_eq!(records.iter().filter(|r| r.vpn == "V1").count(), 6);
        assert_eq!(records.iter().filter(|r| r.vpn == "V2").count(), 2);
        assert!(records.iter().all(|r| (r.stretch - 1.0).abs() < 1e-9), "LDP follows IGP");
        assert!(labels > 0);
    }

    #[test]
    fn tunnels_carry_data() {
        let s = data_plane_check();
        assert!(s.contains("100 delivered"), "{s}");
    }
}
