//! **F4 — label swapping vs deep header inspection** (paper Figure 4, §3).
//!
//! "The labels enable routers and switches to forward traffic based on
//! information in the labels instead of having to inspect the various
//! fields deep within each and every packet. The less time devices spend
//! inspecting traffic, the more time they have to forward it."
//!
//! Micro: per-packet cost of an LPM trie lookup (IP forwarding) vs an ILM
//! label lookup + swap at FIB sizes from 1k to 100k entries. Macro: a
//! simulated P router forwarding the same flow labeled vs unlabeled, with
//! operation counters.

use std::hint::black_box;
use std::time::Instant;

use netsim_mpls::lfib::{LabelOp, Nhlfe};
use netsim_mpls::Lfib;
use netsim_net::{Ip, LpmTrie, Prefix};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::table::{f2, Table};

/// Builds a FIB of `k` random disjoint-ish prefixes and an LFIB of `k`
/// labels (deterministic per seed).
pub fn build_tables(k: usize, seed: u64) -> (LpmTrie<u32>, Lfib, Vec<Ip>, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fib = LpmTrie::new();
    let mut queries = Vec::with_capacity(k);
    for i in 0..k {
        let addr = Ip(rng.random_range(0u32..=u32::MAX));
        let len = rng.random_range(12u8..=24);
        fib.insert(Prefix::new(addr, len), i as u32);
        queries.push(Ip(addr.0 ^ rng.random_range(0u32..256)));
    }
    let mut lfib = Lfib::new();
    let mut labels = Vec::with_capacity(k);
    for i in 0..k {
        let label = 16 + i as u32;
        lfib.install(
            label,
            Nhlfe { op: LabelOp::Swap(16 + ((i as u32 + 1) % k as u32)), out_iface: i % 8 },
        );
        labels.push(label);
    }
    (fib, lfib, queries, labels)
}

/// One measurement point.
#[derive(Clone, Copy, Debug)]
pub struct FwdPoint {
    /// Table size.
    pub k: usize,
    /// LPM lookup cost, ns/op.
    pub lpm_ns: f64,
    /// Label lookup cost, ns/op.
    pub label_ns: f64,
}

/// Times both lookups over `iters` operations.
pub fn measure(k: usize, iters: usize) -> FwdPoint {
    let (fib, lfib, queries, labels) = build_tables(k, 42);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        let q = queries[i % queries.len()];
        if let Some(&v) = fib.lookup(black_box(q)) {
            acc = acc.wrapping_add(u64::from(v));
        }
    }
    let lpm_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    black_box(acc);

    let t1 = Instant::now();
    let mut acc2 = 0usize;
    for i in 0..iters {
        let l = labels[i % labels.len()];
        if let Some(e) = lfib.lookup(black_box(l)) {
            acc2 = acc2.wrapping_add(e.out_iface);
        }
    }
    let label_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    black_box(acc2);
    FwdPoint { k, lpm_ns, label_ns }
}

/// In-simulator check: on the VPN path, P routers perform label operations
/// only — zero LPM lookups (paper: the core never inspects customer
/// headers). Returns (label ops, LPM lookups) at the P router.
pub fn core_router_ops() -> (u64, u64) {
    use mplsvpn_core::{BackboneBuilder, CoreRouter};
    use netsim_net::addr::pfx;
    use netsim_sim::{SourceConfig, MSEC, SEC};
    let (t, pes) = crate::topo::line(1, 1000);
    let mut pn = BackboneBuilder::new(t, pes).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("forwarding experiment");
    pn.attach_sink(b, pfx("10.2.0.0/16"));
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 200);
    pn.attach_cbr_source(a, cfg, MSEC, Some(200));
    pn.run_for(SEC);
    let p = pn.net.node_ref::<CoreRouter>(pn.backbone_node(1));
    (p.counters.label_ops, p.counters.lpm_lookups)
}

/// PHP ablation: per-packet label operations and LDP label state with and
/// without penultimate-hop popping, on a 3-hop backbone.
/// Returns rows of (config, egress-PE label ops, total backbone label ops,
/// LDP labels allocated).
pub fn php_ablation() -> Vec<(&'static str, u64, u64, u64)> {
    use mplsvpn_core::{BackboneBuilder, CoreRouter, PeRouter};
    use netsim_net::addr::pfx;
    use netsim_sim::{SourceConfig, MSEC, SEC};
    let mut rows = Vec::new();
    for (name, php) in [("PHP on", true), ("PHP off", false)] {
        let (t, pes) = crate::topo::line(2, 1000);
        let mut pn = BackboneBuilder::new(t, pes).php(php).build();
        let labels = pn.ldp.total_labels();
        let vpn = pn.new_vpn("acme");
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        pn.verify().assert_clean("php ablation");
        pn.attach_sink(b, pfx("10.2.0.0/16"));
        let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 200);
        pn.attach_cbr_source(a, cfg, MSEC, Some(100));
        pn.run_for(SEC);
        let egress_ops = pn.net.node_ref::<PeRouter>(pn.pe_node(1)).counters.label_ops;
        let p_ops: u64 = (1..=2)
            .map(|u| pn.net.node_ref::<CoreRouter>(pn.backbone_node(u)).counters.label_ops)
            .sum();
        rows.push((name, egress_ops, p_ops + egress_ops, labels));
    }
    rows
}

/// Runs the sweep and renders the table.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> =
        if quick { vec![1_000, 10_000] } else { vec![1_000, 10_000, 50_000, 100_000] };
    let iters = if quick { 200_000 } else { 2_000_000 };
    let mut t = Table::new(
        "F4: per-packet forwarding decision cost — IP LPM vs MPLS label swap",
        &["FIB size", "LPM ns/op", "label ns/op", "speedup"],
    );
    for &k in &sizes {
        let p = measure(k, iters);
        t.row(&[
            k.to_string(),
            f2(p.lpm_ns),
            f2(p.label_ns),
            format!("{:.1}x", p.lpm_ns / p.label_ns),
        ]);
    }
    let (ops, lpm) = core_router_ops();
    let mut out = t.render();
    out.push_str(&format!(
        "in-simulator P router on the VPN path: {ops} label ops, {lpm} LPM lookups \
         (the core never inspects customer headers)\n\n"
    ));
    let mut abl = Table::new(
        "F4b: PHP ablation — 100 packets over a 3-hop backbone",
        &["config", "egress PE label ops", "backbone label ops", "LDP labels"],
    );
    for (name, egress, total, labels) in php_ablation() {
        abl.row(&[name.into(), egress.to_string(), total.to_string(), labels.to_string()]);
    }
    out.push_str(&abl.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_lookup_beats_lpm_at_scale() {
        let p = measure(50_000, 300_000);
        assert!(
            p.label_ns < p.lpm_ns,
            "label swap must be cheaper: label={} lpm={}",
            p.label_ns,
            p.lpm_ns
        );
    }

    #[test]
    fn core_does_pure_label_switching() {
        let (ops, lpm) = core_router_ops();
        assert_eq!(lpm, 0);
        assert_eq!(ops, 200);
    }

    /// PHP saves exactly one label operation per packet at the egress PE
    /// (the paper's §4 architecture implies the pop is free for the edge
    /// when the penultimate hop does it).
    #[test]
    fn php_saves_an_egress_operation_per_packet() {
        let rows = php_ablation();
        let (on, off) = (&rows[0], &rows[1]);
        // With PHP: egress PE only pops the VPN label (1 op/packet).
        assert_eq!(on.1, 100);
        // Without: tunnel pop + VPN pop (2 ops/packet).
        assert_eq!(off.1, 200);
        // And PHP needs fewer allocated labels (no egress binding).
        assert!(on.3 < off.3, "php labels {} !< non-php {}", on.3, off.3);
    }

    #[test]
    fn tables_resolve_their_own_keys() {
        let (fib, lfib, _q, labels) = build_tables(1000, 7);
        assert_eq!(fib.len(), fib.iter().count());
        for &l in &labels {
            assert!(lfib.lookup(l).is_some());
        }
    }
}
