//! **Q1 — guaranteed performance on a congested backbone** (paper §3.1/§5).
//!
//! The canonical mix (voice EF, video AF41, data AF21, bulk BE — ~13.5 Mb/s
//! offered) crosses a 10 Mb/s bottleneck. Four core configurations are
//! compared: plain FIFO (the "best-effort IP" strawman of §2.2) and
//! DiffServ-over-MPLS with strict priority, WFQ, or DRR scheduling on the
//! EXP bits (the ablation DESIGN.md calls out). The paper's claim: with
//! DSCP→EXP mapping and EXP scheduling, "flows that are of higher priority"
//! see "a consistent level of service" regardless of the bulk overload.

use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, CoreQos, MetricsSnapshot, Sla};
use netsim_net::addr::pfx;
use netsim_net::Dscp;
use netsim_qos::Nanos;
use netsim_sim::{FlowStats, NodeId, Sink, MSEC, SEC};

use crate::mix::{attach_mix_provider, tx_packets, FlowDesc};
use crate::report::ExpReport;
use crate::table::{f2, ms, pct, Table};
use crate::topo;

/// Aggregated per-class measurement.
#[derive(Clone, Debug)]
pub struct ClassRow {
    /// Class name ("EF", "AF41", …).
    pub class: &'static str,
    /// Packets offered by all flows of the class.
    pub tx: u64,
    /// Packets delivered.
    pub rx: u64,
    /// Mean one-way latency, ns.
    pub mean_ns: u64,
    /// Worst p99 latency across the class's flows, ns.
    pub p99_ns: u64,
    /// Worst jitter across the class's flows, ns.
    pub jitter_ns: f64,
    /// Loss fraction.
    pub loss: f64,
}

/// Merges sink stats per class.
pub fn class_rows(net: &netsim_sim::Network, sink: NodeId, flows: &[FlowDesc]) -> Vec<ClassRow> {
    let sink_ref = net.node_ref::<Sink>(sink);
    let classes = ["EF", "AF41", "AF21", "BE"];
    classes
        .iter()
        .map(|&class| {
            let members: Vec<&FlowDesc> = flows.iter().filter(|f| f.class == class).collect();
            let mut tx = 0;
            let mut rx = 0;
            let mut lat = netsim_sim::Histogram::new();
            let mut jitter: f64 = 0.0;
            for f in &members {
                tx += tx_packets(net, f);
                if let Some(st) = sink_ref.flow(f.id) {
                    rx += st.rx_packets;
                    lat.merge(&st.latency);
                    jitter = jitter.max(st.jitter_ns);
                }
            }
            let p99 = members
                .iter()
                .filter_map(|f| sink_ref.flow(f.id))
                .map(|st: &FlowStats| st.latency.quantile(0.99))
                .max()
                .unwrap_or(0);
            ClassRow {
                class,
                tx,
                rx,
                mean_ns: lat.mean() as u64,
                p99_ns: p99,
                jitter_ns: jitter,
                loss: if tx == 0 { 0.0 } else { 1.0 - rx.min(tx) as f64 / tx as f64 },
            }
        })
        .collect()
}

/// Runs the mix through one core configuration; returns per-class rows and
/// bottleneck utilization.
pub fn measure(qos: CoreQos, duration: Nanos, seed: u64) -> (Vec<ClassRow>, f64) {
    let (t, pes) = topo::dumbbell(10);
    let mut pn = BackboneBuilder::new(t, pes).core_qos(qos).seed(seed).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("qos experiment");
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let flows = attach_mix_provider(&mut pn, a, b, 1, seed, duration);
    pn.run_for(duration + SEC); // drain
    let rows = class_rows(&pn.net, sink, &flows);
    let util =
        pn.net.link_stats(netsim_sim::LinkId(topo::DUMBBELL_BOTTLENECK), 0).utilization(duration);
    (rows, util)
}

/// Like [`measure`] with the DiffServ priority core, but with one SLA
/// probe per class riding alongside the mix, and the full metrics
/// snapshot (registry, drop causes, per-layer counters, probe table)
/// captured after the drain.
pub fn measure_instrumented(duration: Nanos, seed: u64) -> (Vec<ClassRow>, MetricsSnapshot) {
    let qos = CoreQos::DiffServ { cap_bytes: 128 * 1024, sched: DsSched::Priority };
    let (t, pes) = topo::dumbbell(10);
    let mut pn = BackboneBuilder::new(t, pes).core_qos(qos).seed(seed).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    // One low-rate probe per sold class: what the SLA dashboard reports.
    for dscp in [Dscp::EF, Dscp::AF41, Dscp::AF21, Dscp::BE] {
        pn.attach_sla_probe(a, b, dscp, 20 * MSEC, Some(duration / (20 * MSEC)));
    }
    let flows = attach_mix_provider(&mut pn, a, b, 1, seed, duration);
    pn.run_for(duration + SEC);
    let rows = class_rows(&pn.net, sink, &flows);
    let snap = pn.metrics_snapshot();
    (rows, snap)
}

/// The four configurations of the ablation.
pub fn configs() -> Vec<(&'static str, CoreQos)> {
    let cap = 128 * 1024;
    vec![
        ("FIFO (best effort)", CoreQos::BestEffort { cap_bytes: cap }),
        ("DS priority+RED", CoreQos::DiffServ { cap_bytes: cap, sched: DsSched::Priority }),
        ("DS WFQ", CoreQos::DiffServ { cap_bytes: cap, sched: DsSched::Wfq }),
        ("DS DRR", CoreQos::DiffServ { cap_bytes: cap, sched: DsSched::Drr }),
    ]
}

/// Runs the sweep and renders the table.
pub fn run(quick: bool) -> String {
    let duration = if quick { SEC } else { 5 * SEC };
    let mut out = String::new();
    for (name, qos) in configs() {
        let (rows, util) = measure(qos, duration, 7);
        let mut t = Table::new(
            format!("Q1 [{name}] — 10 Mb/s bottleneck, util {:.0}%", util * 100.0),
            &["class", "tx", "rx", "loss", "mean ms", "p99 ms", "jitter ms", "MOS", "voice SLA"],
        );
        for r in &rows {
            let sla = if r.class == "EF" {
                let met = r.mean_ns <= Sla::voice().max_mean_latency_ns
                    && r.p99_ns <= Sla::voice().max_p99_latency_ns
                    && r.jitter_ns <= Sla::voice().max_jitter_ns
                    && r.loss <= Sla::voice().max_loss
                    && r.rx > 0;
                if met { "MET" } else { "VIOLATED" }.to_string()
            } else {
                "-".to_string()
            };
            let mos = if r.class == "EF" {
                f2(mplsvpn_core::voice_mos(r.mean_ns, r.jitter_ns, r.loss))
            } else {
                "-".into()
            };
            t.row(&[
                r.class.to_string(),
                r.tx.to_string(),
                r.rx.to_string(),
                pct(r.loss),
                ms(r.mean_ns),
                ms(r.p99_ns),
                f2(r.jitter_ns / 1e6),
                mos,
                sla,
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// [`run`]'s tables plus the instrumented DS-priority snapshot.
pub fn report(quick: bool) -> ExpReport {
    let duration = if quick { SEC } else { 5 * SEC };
    let (_, snap) = measure_instrumented(duration, 7);
    ExpReport { table: run(quick), snapshot: Some(snap) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [ClassRow], class: &str) -> &'a ClassRow {
        rows.iter().find(|r| r.class == class).expect("class present")
    }

    /// The paper's central QoS claim: DiffServ-over-MPLS protects the
    /// priority classes through the same overload that wrecks them under
    /// FIFO.
    #[test]
    fn diffserv_protects_voice_fifo_does_not() {
        let (fifo, util_f) = measure(CoreQos::BestEffort { cap_bytes: 128 * 1024 }, 2 * SEC, 7);
        let (ds, util_d) = measure(
            CoreQos::DiffServ { cap_bytes: 128 * 1024, sched: DsSched::Priority },
            2 * SEC,
            7,
        );
        // The bottleneck saturates in both runs.
        assert!(util_f > 0.9, "fifo util {util_f}");
        assert!(util_d > 0.9, "ds util {util_d}");
        let v_fifo = row(&fifo, "EF");
        let v_ds = row(&ds, "EF");
        // Voice under DiffServ: essentially lossless and fast.
        assert!(v_ds.loss < 0.01, "ds voice loss {}", v_ds.loss);
        assert!(v_ds.p99_ns < 50_000_000, "ds voice p99 {}", v_ds.p99_ns);
        // Under FIFO the overload hits voice too: much worse delay or loss.
        assert!(
            v_fifo.loss > 10.0 * v_ds.loss.max(1e-6) || v_fifo.p99_ns > 2 * v_ds.p99_ns,
            "fifo should hurt voice: fifo={v_fifo:?} ds={v_ds:?}"
        );
        // Bulk pays under DiffServ (someone must absorb the overload).
        let b_ds = row(&ds, "BE");
        assert!(b_ds.loss > 0.05, "bulk must absorb the overload, loss {}", b_ds.loss);
    }

    /// The SLA probes measure the class they are stamped with: under the
    /// overload the EF probe stays near-lossless while the BE probe — in
    /// the band absorbing the overload — fares no better than EF.
    #[test]
    fn sla_probes_see_the_class_differentiation() {
        let (_, snap) = measure_instrumented(2 * SEC, 7);
        assert_eq!(snap.probes.len(), 4, "one probe row per class");
        let probe =
            |class: &str| snap.probes.iter().find(|p| p.class == class).expect("probe row present");
        let ef = probe("EF");
        assert!(ef.tx > 0 && ef.loss_pct < 1.0, "EF probe must survive the overload: {ef:?}");
        let be = probe("BE");
        assert!(
            be.mean_delay_ns >= ef.mean_delay_ns,
            "BE probe cannot beat EF through a saturated priority core: be={be:?} ef={ef:?}"
        );
        // The snapshot attributes the overload's losses to real causes.
        assert!(!snap.drop_causes.is_empty(), "a 135% offered load must record drop causes");
    }

    /// All three DiffServ schedulers keep voice loss low (the ablation's
    /// point: the mapping matters more than the scheduler family).
    #[test]
    fn all_ds_schedulers_protect_voice() {
        for sched in [DsSched::Priority, DsSched::Wfq, DsSched::Drr] {
            let (rows, _) = measure(CoreQos::DiffServ { cap_bytes: 128 * 1024, sched }, 2 * SEC, 7);
            let v = row(&rows, "EF");
            assert!(v.loss < 0.02, "{sched:?} voice loss {}", v.loss);
            assert!(v.rx > 0);
        }
    }
}
