//! **F1 — integrated VPN service network** (paper Figure 1).
//!
//! Several VPNs with *identical* customer address plans share one MPLS
//! backbone. The measurement is the isolation matrix: every packet must be
//! delivered inside its own VPN and none may cross — the "data traffic from
//! different VPNs is kept separate" function of §4.3.

use mplsvpn_core::{BackboneBuilder, ProviderNetwork};
use netsim_net::addr::pfx;
use netsim_sim::{Sink, SourceConfig, MSEC, SEC};

use crate::table::Table;
use crate::topo;

/// Outcome of one multi-VPN isolation run.
#[derive(Clone, Debug)]
pub struct IsolationResult {
    /// Per VPN: (name, packets sent, packets delivered in-VPN).
    pub per_vpn: Vec<(String, u64, u64)>,
    /// Packets delivered into the *wrong* VPN (must be zero).
    pub leaked: u64,
}

/// Builds `vpn_count` VPNs, all using the same 10.1/16 → 10.2/16 plan, and
/// sends one flow per VPN.
pub fn measure(vpn_count: usize, packets: u64) -> IsolationResult {
    let (t, pes) = topo::line(2, 1000);
    let mut pn: ProviderNetwork = BackboneBuilder::new(t, pes).build();
    let mut sinks = Vec::new();
    let mut flows = Vec::new();
    for k in 0..vpn_count {
        let vpn = pn.new_vpn(format!("vpn{k}"));
        let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
        let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
        let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
        let flow = 1 + k as u64;
        let cfg = SourceConfig::udp(flow, pn.site_addr(a, 10), pn.site_addr(b, 20), 5000, 256);
        pn.attach_cbr_source(a, cfg, MSEC, Some(packets));
        sinks.push(sink);
        flows.push(flow);
    }
    // Static isolation proof over every VRF pair before the dynamic one.
    pn.verify().assert_clean("isolation experiment");
    pn.run_for(3 * SEC);

    let mut per_vpn = Vec::new();
    let mut leaked = 0;
    for (k, &sink) in sinks.iter().enumerate() {
        let s = pn.net.node_ref::<Sink>(sink);
        let own = s.flow(flows[k]).map(|f| f.rx_packets).unwrap_or(0);
        let foreign: u64 =
            s.flows().filter(|(f, _)| *f != flows[k]).map(|(_, st)| st.rx_packets).sum();
        leaked += foreign;
        per_vpn.push((format!("vpn{k}"), packets, own));
    }
    IsolationResult { per_vpn, leaked }
}

/// Runs the experiment and renders the table.
pub fn run(quick: bool) -> String {
    let (vpns, packets) = if quick { (4, 50) } else { (10, 500) };
    let r = measure(vpns, packets);
    let mut t = Table::new(
        format!(
            "F1: {vpns} VPNs with identical 10.0.0.0/8 address plans over one backbone \
             (leaked packets: {} — must be 0)",
            r.leaked
        ),
        &["vpn", "sent", "delivered in-VPN", "delivery"],
    );
    for (name, sent, got) in &r.per_vpn {
        t.row(&[
            name.clone(),
            sent.to_string(),
            got.to_string(),
            crate::table::pct(*got as f64 / *sent as f64),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_leakage_full_delivery() {
        let r = measure(4, 40);
        assert_eq!(r.leaked, 0, "VPN isolation violated");
        for (name, sent, got) in &r.per_vpn {
            assert_eq!(got, sent, "{name} lost traffic");
        }
    }
}
