//! **Q3 — traffic engineering avoids congested links** (paper §5, §2.2).
//!
//! §2.2: "the routing protocols like OSPF used to build routing tables do
//! not exchange QoS information … it is impossible to route IP flows along
//! paths where resources, and therefore QoS, could be guaranteed." §5: TE
//! tools let providers "avoid congested, constrained or disabled links".
//!
//! Two 6.5 Mb/s trunks cross the fish topology (two 10 Mb/s paths). Under
//! IGP routing both pile onto the short path (13 Mb/s offered on 10 —
//! heavy loss). With CSPF admission the second trunk is pinned to the long
//! path and both flows are clean.

use mplsvpn_core::{BackboneBuilder, ProviderNetwork};
use netsim_net::addr::pfx;
use netsim_qos::Nanos;
use netsim_sim::{LinkId, Sink, SourceConfig, SEC};
use netsim_te::{TeDomain, TrunkRequest};

use crate::table::{ms, pct, Table};
use crate::topo;

/// Result of one configuration.
#[derive(Clone, Debug)]
pub struct TeResult {
    /// Per-trunk (loss, mean latency ns, node path used).
    pub trunks: Vec<(f64, u64, Vec<usize>)>,
    /// Utilization of the short path's first link.
    pub util_short: f64,
    /// Utilization of the long path's first link.
    pub util_long: f64,
}

const DEMAND_BPS: u64 = 6_500_000;

fn build() -> ProviderNetwork {
    let (t, pes) = topo::fish(10);
    let mut pn = BackboneBuilder::new(t, pes).build();
    let vpn = pn.new_vpn("acme");
    let _a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let _b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("te experiment backbone");
    pn
}

/// Runs both trunks with or without TE. Trunk traffic: 1000 B wire packets
/// at the demand rate.
pub fn measure(with_te: bool, duration: Nanos) -> TeResult {
    let mut pn = build();
    let vpn = mplsvpn_core::VpnId(0);
    let (a, b) = (mplsvpn_core::SiteId(0), mplsvpn_core::SiteId(1));
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));

    let mut used_paths: Vec<Vec<usize>> = Vec::new();
    if with_te {
        // CSPF admission over the same topology the backbone runs.
        let mut te = TeDomain::new(pn.topo.clone());
        let (t1, _) = te.signal(TrunkRequest::new(0, 4, DEMAND_BPS)).expect("trunk 1");
        let (t2, _) = te.signal(TrunkRequest::new(0, 4, DEMAND_BPS)).expect("trunk 2");
        let p1 = te.path(t1).unwrap().to_vec();
        let p2 = te.path(t2).unwrap().to_vec();
        // Trunk 1 keeps the IGP/LDP short path (CSPF chose it too). Trunk 2
        // is pinned onto an explicit LSP along the CSPF detour: flow 2's
        // destination half of the site block (10.2.128.0/17) rides it.
        let ftn2 = pn.install_explicit_lsp(&p2);
        pn.pin_prefix_to_tunnel(vpn, 0, pfx("10.2.128.0/17"), ftn2);
        // The pinned LSP and the trunk ledgers must both pass the verifier.
        let mut report = pn.verify();
        netsim_verify::verify_te(&te, &mut report);
        report.assert_clean("te experiment, trunks placed");
        used_paths.push(p1);
        used_paths.push(p2);
    } else {
        used_paths.push(vec![0, 1, 4]);
        used_paths.push(vec![0, 1, 4]);
    }

    // Two trunk flows: 972 B payload (1000 B wire) at 6.5 Mb/s each
    // → one packet every 1.2308 ms.
    let interval = 1_000u64 * 8 * 1_000_000_000 / DEMAND_BPS;
    for (i, flow) in [1u64, 2].iter().enumerate() {
        let dst = if i == 0 { pfx("10.2.0.0/17").nth(5) } else { pfx("10.2.128.0/17").nth(5) };
        let cfg = SourceConfig::udp(*flow, pn.site_addr(a, 1 + i as u32), dst, 5000, 972);
        let count = duration / interval;
        pn.attach_cbr_source(a, cfg, interval, Some(count));
    }
    pn.run_for(duration + SEC);

    let s = pn.net.node_ref::<Sink>(sink);
    let mut trunks = Vec::new();
    for flow in [1u64, 2] {
        let tx = duration / interval;
        let (loss, mean) =
            s.flow(flow).map(|f| (f.loss(tx), f.latency.mean() as u64)).unwrap_or((1.0, 0));
        trunks.push((loss, mean, used_paths[(flow - 1) as usize].clone()));
    }
    TeResult {
        trunks,
        util_short: pn.net.link_stats(LinkId(topo::FISH_SHORT[0]), 0).utilization(duration),
        util_long: pn.net.link_stats(LinkId(topo::FISH_LONG[0]), 0).utilization(duration),
    }
}

/// Runs both configurations and renders the table.
pub fn run(quick: bool) -> String {
    let duration = if quick { SEC } else { 5 * SEC };
    let mut out = String::new();
    for (name, with_te) in [("IGP shortest path only", false), ("CSPF traffic engineering", true)] {
        let r = measure(with_te, duration);
        let mut t = Table::new(
            format!(
                "Q3 [{name}] — short-path util {:.0}%, long-path util {:.0}%",
                r.util_short * 100.0,
                r.util_long * 100.0
            ),
            &["trunk", "path", "loss", "mean ms"],
        );
        for (i, (loss, mean, path)) in r.trunks.iter().enumerate() {
            t.row(&[format!("T{}", i + 1), format!("{path:?}"), pct(*loss), ms(*mean)]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn te_spreads_load_and_eliminates_loss() {
        let igp = measure(false, 2 * SEC);
        let te = measure(true, 2 * SEC);
        let igp_loss: f64 = igp.trunks.iter().map(|t| t.0).sum::<f64>() / 2.0;
        let te_loss: f64 = te.trunks.iter().map(|t| t.0).sum::<f64>() / 2.0;
        assert!(igp_loss > 0.1, "IGP-only must congest the short path: {igp_loss}");
        assert!(te_loss < 0.01, "TE must avoid the congestion: {te_loss}");
        assert!(igp.util_long < 0.05, "IGP leaves the long path idle");
        assert!(te.util_long > 0.4, "TE uses the long path");
        // The two trunks take different paths under TE.
        assert_ne!(te.trunks[0].2, te.trunks[1].2);
    }
}
