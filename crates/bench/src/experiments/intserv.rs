//! **S1 — per-flow IntServ/RSVP state vs per-class DiffServ** (paper §2.2).
//!
//! "Many carriers and users are uncomfortable with individually selectable
//! QoS … users question the size of the administration task. A more
//! manageable strategy would be simply assign a QoS level to an entire
//! VPN."
//!
//! The experiment admits N per-flow reservations across the national
//! backbone and tabulates the per-router soft state and refresh-message
//! load RSVP requires, against DiffServ's constant eight classes per
//! interface.

use netsim_routing::Igp;
use netsim_te::intserv::{diffserv_node_state, FlowId, FlowRequest, IntServDomain};

use crate::table::{f2, Table};
use crate::topo;

/// One row of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct IntServPoint {
    /// Flows offered.
    pub flows: usize,
    /// Flows admitted (the rest hit admission control).
    pub admitted: usize,
    /// Largest per-router RSVP soft-state table.
    pub rsvp_max_state: u64,
    /// RSVP setup messages.
    pub rsvp_setup_msgs: u64,
    /// Steady-state RSVP refresh load, messages/second.
    pub rsvp_refresh_per_sec: f64,
    /// DiffServ state at the busiest router (constant).
    pub diffserv_state: u64,
}

/// Admits `n` 64 kb/s voice-like flows between round-robin PE pairs.
pub fn measure(n: usize) -> IntServPoint {
    let (t, pes) = topo::national(6, 8, 622);
    let igp = Igp::converge(&t);
    let mut d = IntServDomain::new(&t, |u, v| igp.next_hop(u, v));
    let mut admitted = 0;
    for i in 0..n {
        let src = pes[i % pes.len()];
        let dst = pes[(i + 3) % pes.len()];
        if d.reserve(FlowRequest { id: FlowId(i as u64), src, dst, rate_bps: 64_000 }).is_ok() {
            admitted += 1;
        }
    }
    let diffserv_state = (0..t.node_count()).map(|u| diffserv_node_state(&t, u)).max().unwrap_or(0);
    IntServPoint {
        flows: n,
        admitted,
        rsvp_max_state: d.max_node_state(),
        rsvp_setup_msgs: d.messages,
        rsvp_refresh_per_sec: d.refresh_messages_per_sec(),
        diffserv_state,
    }
}

/// Runs the sweep and renders the table.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![100, 1_000] } else { vec![100, 1_000, 10_000, 50_000] };
    let mut t = Table::new(
        "S1: per-flow RSVP/IntServ state vs per-class DiffServ (8-PE national backbone, 64 kb/s flows)",
        &[
            "flows",
            "admitted",
            "rsvp max state/router",
            "rsvp setup msgs",
            "rsvp refresh msg/s",
            "diffserv state/router",
        ],
    );
    for &n in &sizes {
        let p = measure(n);
        t.row(&[
            p.flows.to_string(),
            p.admitted.to_string(),
            p.rsvp_max_state.to_string(),
            p.rsvp_setup_msgs.to_string(),
            f2(p.rsvp_refresh_per_sec),
            p.diffserv_state.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsvp_state_grows_linearly_diffserv_stays_flat() {
        let small = measure(100);
        let large = measure(1_000);
        assert_eq!(small.admitted, 100, "622 Mb/s fits 100 voice flows");
        assert_eq!(large.admitted, 1_000);
        let ratio = large.rsvp_max_state as f64 / small.rsvp_max_state as f64;
        assert!(ratio > 8.0, "per-flow state must scale with flows: {ratio}");
        assert_eq!(small.diffserv_state, large.diffserv_state, "per-class state is flat");
        assert!(large.rsvp_refresh_per_sec > 50.0, "soft state has a standing cost");
    }

    #[test]
    fn admission_control_engages_at_very_large_counts() {
        // 64 kb/s × enough flows eventually saturates 622 Mb/s links.
        let p = measure(200_000);
        assert!(p.admitted < p.flows, "admission control must refuse some");
        assert!(p.admitted > 0);
    }
}
