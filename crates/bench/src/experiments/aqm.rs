//! **A1 — active queue management ablation**: RED vs tail-drop under
//! responsive (TCP-like) traffic through the MPLS VPN.
//!
//! DESIGN.md calls out WRED/RED as an ablation knob of the DiffServ core.
//! Open-loop sources can't show why RED exists; this experiment runs eight
//! closed-loop AIMD flows through the VPN's 10 Mb/s bottleneck and compares
//! a deep tail-drop FIFO against RED: RED keeps the standing queue (and
//! hence latency) far lower at essentially the same aggregate goodput, and
//! avoids the synchronized-loss unfairness of tail-drop.

use mplsvpn_core::{BackboneBuilder, CoreQos};
use netsim_net::addr::pfx;
use netsim_qos::{Nanos, RedParams};
use netsim_sim::{LinkId, SourceConfig, TcpSink, TcpSource, SEC};

use crate::table::{f2, ms, Table};
use crate::topo;

/// Which bottleneck discipline to test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aqm {
    /// Deep tail-drop FIFO.
    TailDrop,
    /// RED with conventional thresholds.
    Red,
    /// RED with ECN marking; sources negotiate ECN.
    RedEcn,
}

/// Outcome of one run.
#[derive(Clone, Debug)]
pub struct AqmResult {
    /// Aggregate goodput across flows, bits/s (in-order delivered).
    pub goodput_bps: f64,
    /// Mean one-way data latency across flows, ns.
    pub mean_latency_ns: u64,
    /// Jain fairness index over per-flow goodput (1.0 = perfectly fair).
    pub fairness: f64,
    /// Total retransmitted segments.
    pub retransmits: u64,
}

const FLOWS: usize = 8;
const CAP: usize = 96 * 1024;

/// Runs `FLOWS` TCP-like flows through the VPN with the chosen bottleneck
/// AQM for `duration`.
pub fn measure(aqm: Aqm, duration: Nanos) -> AqmResult {
    let (t, pes) = topo::dumbbell(10);
    let mut pn =
        BackboneBuilder::new(t, pes).core_qos(CoreQos::BestEffort { cap_bytes: CAP }).build();
    // Swap the bottleneck egress for the discipline under test.
    let red = || {
        netsim_qos::RedQueue::new(
            CAP,
            RedParams::new(CAP / 8, CAP / 2).with_max_p(0.1),
            42,
            1_000, // ≈ one 1250 B packet at 10 Mb/s
        )
    };
    let qdisc: Box<dyn netsim_qos::QueueDiscipline> = match aqm {
        Aqm::TailDrop => Box::new(netsim_qos::FifoQueue::new(CAP)),
        Aqm::Red => Box::new(red()),
        Aqm::RedEcn => Box::new(red().with_ecn()),
    };
    pn.net.set_qdisc(LinkId(topo::DUMBBELL_BOTTLENECK), 0, qdisc);

    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("aqm experiment");
    let sink = pn.attach_tcp_sink(b, pfx("10.2.0.0/16"));
    let sources: Vec<_> = (0..FLOWS)
        .map(|i| {
            let cfg = SourceConfig {
                flow: i as u64,
                src: pn.site_addr(a, 100 + i as u32),
                dst: pn.site_addr(b, 200 + i as u32),
                src_port: 1000 + i as u16,
                dst_port: 80,
                tcp: true,
                dscp: netsim_net::Dscp::BE,
                payload: 1200,
                iface: netsim_sim::IfaceId(0),
                probe: false,
            };
            pn.attach_tcp_source(a, cfg, Some(duration), aqm == Aqm::RedEcn)
        })
        .collect();
    pn.run_for(duration + SEC);

    let k = pn.net.node_ref::<TcpSink>(sink);
    let per_flow: Vec<f64> = (0..FLOWS)
        .map(|i| k.delivered(i as u64) as f64 * 1228.0 * 8.0 / (duration as f64 / 1e9))
        .collect();
    let sum: f64 = per_flow.iter().sum();
    let sumsq: f64 = per_flow.iter().map(|x| x * x).sum();
    let fairness = if sumsq == 0.0 { 0.0 } else { sum * sum / (FLOWS as f64 * sumsq) };
    let mut lat = netsim_sim::Histogram::new();
    for i in 0..FLOWS {
        if let Some(f) = k.flow(i as u64) {
            lat.merge(&f.latency);
        }
    }
    let retransmits = sources.iter().map(|&s| pn.net.node_ref::<TcpSource>(s).retransmits).sum();
    AqmResult { goodput_bps: sum, mean_latency_ns: lat.mean() as u64, fairness, retransmits }
}

/// Runs both disciplines and renders the table.
pub fn run(quick: bool) -> String {
    let duration = if quick { 2 * SEC } else { 10 * SEC };
    let mut t = Table::new(
        format!("A1: {FLOWS} TCP-like flows through the 10 Mb/s VPN bottleneck — tail-drop vs RED"),
        &["bottleneck", "goodput Mb/s", "mean latency ms", "Jain fairness", "retransmits"],
    );
    for (name, aqm) in
        [("tail-drop FIFO", Aqm::TailDrop), ("RED", Aqm::Red), ("RED+ECN", Aqm::RedEcn)]
    {
        let r = measure(aqm, duration);
        t.row(&[
            name.to_string(),
            f2(r.goodput_bps / 1e6),
            ms(r.mean_latency_ns),
            f2(r.fairness),
            r.retransmits.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_cuts_latency_without_losing_goodput() {
        let tail = measure(Aqm::TailDrop, 4 * SEC);
        let red = measure(Aqm::Red, 4 * SEC);
        // Both fill most of the 10 Mb/s pipe.
        assert!(tail.goodput_bps > 6e6, "tail goodput {}", tail.goodput_bps);
        assert!(red.goodput_bps > 6e6, "red goodput {}", red.goodput_bps);
        // RED's standing queue is much shorter.
        assert!(
            (red.mean_latency_ns as f64) < 0.7 * tail.mean_latency_ns as f64,
            "red latency {} vs tail {}",
            red.mean_latency_ns,
            tail.mean_latency_ns
        );
        // And reasonably fair.
        assert!(red.fairness > 0.6, "red fairness {}", red.fairness);
    }

    /// ECN removes the retransmissions entirely: marks do what drops did.
    #[test]
    fn ecn_eliminates_retransmissions() {
        let red = measure(Aqm::Red, 4 * SEC);
        let ecn = measure(Aqm::RedEcn, 4 * SEC);
        assert!(red.retransmits > 10, "plain RED forces retransmits: {}", red.retransmits);
        assert!(
            ecn.retransmits * 10 < red.retransmits.max(10),
            "ECN should all but eliminate them: {} vs {}",
            ecn.retransmits,
            red.retransmits
        );
        assert!(ecn.goodput_bps > 6e6, "ecn goodput {}", ecn.goodput_bps);
    }
}
