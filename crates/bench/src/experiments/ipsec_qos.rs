//! **Q2 — encryption erases QoS** (paper §2.3, §3).
//!
//! "During the development of the second encryption tunnel, all information
//! including the IP and MAC addresses are encrypted thus erasing any hope
//! one may have to control QoS."
//!
//! The same traffic mix and the same DiffServ core are used three ways:
//!
//! 1. **MPLS VPN** — DSCP mapped to EXP at the PE; full class treatment.
//! 2. **IPsec VPN** — ESP outer header carries BE; the DiffServ core sees
//!    one undifferentiated flow; voice drowns with the bulk.
//! 3. **IPsec + ToS copy** — the class survives (partial mitigation) but
//!    per-flow identity is still gone, and crypto adds per-packet latency.

use mplsvpn_core::ipsec_vpn::{IpsecGateway, IpsecVpnNetwork};
use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, CoreQos, Sla};
use netsim_net::addr::pfx;
use netsim_qos::Nanos;
use netsim_sim::SEC;

use crate::experiments::qos::{class_rows, ClassRow};
use crate::mix::{attach_mix_ipsec, attach_mix_provider};
use crate::table::{f2, ms, pct, Table};
use crate::topo;

fn ds_core() -> CoreQos {
    CoreQos::DiffServ { cap_bytes: 128 * 1024, sched: DsSched::Priority }
}

/// Result of one configuration run.
#[derive(Clone, Debug)]
pub struct Q2Row {
    /// Configuration label.
    pub config: &'static str,
    /// Per-class rows.
    pub rows: Vec<ClassRow>,
    /// Crypto CPU per delivered packet (ns), zero for MPLS.
    pub crypto_ns_per_pkt: u64,
    /// Tunnel setup latency (IKE), zero for MPLS site add.
    pub setup_ns: u64,
}

/// Runs the MPLS VPN reference.
pub fn measure_mpls(duration: Nanos, seed: u64) -> Q2Row {
    let (t, pes) = topo::dumbbell(10);
    let mut pn = BackboneBuilder::new(t, pes).core_qos(ds_core()).seed(seed).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("ipsec-comparison MPLS reference");
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let flows = attach_mix_provider(&mut pn, a, b, 1, seed, duration);
    pn.run_for(duration + SEC);
    Q2Row {
        config: "MPLS VPN (DSCP→EXP)",
        rows: class_rows(&pn.net, sink, &flows),
        crypto_ns_per_pkt: 0,
        setup_ns: 0,
    }
}

/// Runs the IPsec baseline, with or without ToS copy.
pub fn measure_ipsec(duration: Nanos, seed: u64, copy_dscp: bool) -> Q2Row {
    let (t, _) = topo::dumbbell(10);
    let mut n = IpsecVpnNetwork::build(t, 1_000_000, ds_core());
    let a = n.add_gateway(0, pfx("10.1.0.0/16"), None);
    let b = n.add_gateway(3, pfx("10.2.0.0/16"), None);
    n.connect_gateways(a, b);
    n.set_dscp_copy(a, copy_dscp);
    n.set_dscp_copy(b, copy_dscp);
    let sink = n.attach_sink(b, pfx("10.2.0.0/16"));
    let flows = attach_mix_ipsec(&mut n, a, b, 1, seed, duration);
    n.net.run_until(duration + SEC);
    let rows = class_rows(&n.net, sink, &flows);
    let ga = n.net.node_ref::<IpsecGateway>(n.gateway_node(a));
    let gb = n.net.node_ref::<IpsecGateway>(n.gateway_node(b));
    let delivered: u64 = rows.iter().map(|r| r.rx).sum();
    let crypto = (ga.crypto_ns + gb.crypto_ns) / delivered.max(1);
    Q2Row {
        config: if copy_dscp { "IPsec VPN + ToS copy" } else { "IPsec VPN (ESP, outer BE)" },
        rows,
        crypto_ns_per_pkt: crypto,
        setup_ns: n.ike_setup_ns,
    }
}

/// Runs all three configurations and renders the table.
pub fn run(quick: bool) -> String {
    let duration = if quick { SEC } else { 5 * SEC };
    let results = vec![
        measure_mpls(duration, 7),
        measure_ipsec(duration, 7, false),
        measure_ipsec(duration, 7, true),
    ];
    let mut out = String::new();
    for q in &results {
        let mut t = Table::new(
            format!(
                "Q2 [{}] — crypto {}/pkt, tunnel setup {} ms",
                q.config,
                if q.crypto_ns_per_pkt == 0 {
                    "0 ns".to_string()
                } else {
                    format!("{} ns", q.crypto_ns_per_pkt)
                },
                ms(q.setup_ns),
            ),
            &["class", "tx", "rx", "loss", "mean ms", "p99 ms", "jitter ms", "MOS", "voice SLA"],
        );
        for r in &q.rows {
            let sla = if r.class == "EF" {
                let s = Sla::voice();
                let met = r.mean_ns <= s.max_mean_latency_ns
                    && r.p99_ns <= s.max_p99_latency_ns
                    && r.jitter_ns <= s.max_jitter_ns
                    && r.loss <= s.max_loss
                    && r.rx > 0;
                if met { "MET" } else { "VIOLATED" }.to_string()
            } else {
                "-".into()
            };
            let mos = if r.class == "EF" {
                f2(mplsvpn_core::voice_mos(r.mean_ns, r.jitter_ns, r.loss))
            } else {
                "-".into()
            };
            t.row(&[
                r.class.to_string(),
                r.tx.to_string(),
                r.rx.to_string(),
                pct(r.loss),
                ms(r.mean_ns),
                ms(r.p99_ns),
                f2(r.jitter_ns / 1e6),
                mos,
                sla,
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ef(rows: &[ClassRow]) -> &ClassRow {
        rows.iter().find(|r| r.class == "EF").unwrap()
    }

    /// The §3 claim, end to end: the same DiffServ core that protects
    /// voice in the MPLS VPN cannot protect it behind plain ESP.
    #[test]
    fn esp_erases_class_treatment() {
        let mpls = measure_mpls(2 * SEC, 7);
        let esp = measure_ipsec(2 * SEC, 7, false);
        let v_mpls = ef(&mpls.rows);
        let v_esp = ef(&esp.rows);
        assert!(v_mpls.loss < 0.01, "mpls voice loss {}", v_mpls.loss);
        assert!(
            v_esp.loss > 5.0 * v_mpls.loss.max(1e-6) || v_esp.p99_ns > 3 * v_mpls.p99_ns.max(1),
            "esp voice should suffer: mpls={v_mpls:?} esp={v_esp:?}"
        );
    }

    /// ToS copy restores *class* treatment (partial mitigation) while still
    /// paying crypto time.
    #[test]
    fn tos_copy_restores_class_but_pays_crypto() {
        let copy = measure_ipsec(2 * SEC, 7, true);
        let v = ef(&copy.rows);
        assert!(v.loss < 0.02, "voice loss with copy {}", v.loss);
        assert!(copy.crypto_ns_per_pkt > 0);
        assert!(copy.setup_ns > 0, "IKE setup must be accounted");
    }
}
