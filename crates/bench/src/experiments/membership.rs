//! **M1 — membership discovery and join/leave cost** (paper §4.1–4.2).
//!
//! "Members can join and leave the VPN service network and those changes
//! need to be known by all remaining members." The MPLS/BGP model pays one
//! PE touch and one route-update fan-out per join; the overlay model pays
//! N−1 new circuit pairs, provisioned device by device.
//!
//! Two extra columns drive the same joins through a *running* backbone
//! ([`backbone_join_series`]): the per-join cost of the in-band MP-BGP
//! delta (update packets on the wire — flat) vs the oracle's full-table
//! resync (route installs — grows with the table).

use mplsvpn_core::membership::{
    backbone_join_series, mpls_join_series, overlay_join_series, JoinCost,
};
use mplsvpn_core::ControlMode;
use netsim_routing::{DistributionMode, LinkAttrs, Topology};

use crate::table::Table;

/// Runs both join series for `n` sites.
pub fn measure(n: usize) -> (Vec<JoinCost>, Vec<JoinCost>) {
    let mpls = mpls_join_series(4, n, DistributionMode::RouteReflector);
    let topo = Topology::ring(6, LinkAttrs { cost: 1, capacity_bps: 622_000_000 });
    let attachments: Vec<usize> = (0..n).map(|i| i % 6).collect();
    let overlay = overlay_join_series(&topo, &attachments);
    (mpls, overlay)
}

/// Runs the experiment and renders the table.
pub fn run(quick: bool) -> String {
    let n = if quick { 8 } else { 16 };
    let (mpls, overlay) = measure(n);
    let inband = backbone_join_series(4, n, ControlMode::InBand);
    let oracle = backbone_join_series(4, n, ControlMode::Oracle);
    let mut t = Table::new(
        "M1: cost of the k-th site join — MPLS/BGP vs overlay full mesh",
        &[
            "join #",
            "mpls devices",
            "mpls messages",
            "in-band bgp pkts",
            "oracle resync installs",
            "ovl devices",
            "ovl new circuits",
        ],
    );
    for k in 0..n {
        t.row(&[
            k.to_string(),
            mpls[k].devices_touched.to_string(),
            mpls[k].control_messages.to_string(),
            inband[k].control_messages.to_string(),
            oracle[k].control_messages.to_string(),
            overlay[k].devices_touched.to_string(),
            overlay[k].new_circuits.to_string(),
        ]);
    }
    let mut out = t.render();
    let total_ovl: u64 = overlay.iter().map(|c| c.new_circuits).sum();
    let total_mpls: u64 = mpls.iter().map(|c| c.control_messages).sum();
    out.push_str(&format!(
        "totals after {n} joins: overlay {total_ovl} unidirectional circuits \
         ({} pairs); MPLS {total_mpls} update messages, 0 circuits\n",
        total_ovl / 2
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_cost_flat_vs_linear() {
        let (mpls, overlay) = measure(12);
        // MPLS: constant device touches.
        assert!(mpls.iter().all(|c| c.devices_touched == 1));
        // Overlay: the 11th join provisions 22 circuits; the 1st join 2.
        assert_eq!(overlay[11].new_circuits, 22);
        assert_eq!(overlay[1].new_circuits, 2);
        // Message cost: MPLS stays bounded per join; overlay grows.
        assert!(overlay[11].devices_touched > mpls[11].control_messages);
    }
}
