//! **F3 — deployment path CE→PE→P→…→PE→CE** (paper Figure 3).
//!
//! One voice packet is followed hop by hop through the full architecture:
//! CPE classification/marking, two-level label imposition with DSCP→EXP
//! mapping at the ingress PE, label swapping and the penultimate-hop pop in
//! the core, VPN-label dispatch at the egress PE, and site delivery.

use mplsvpn_core::{BackboneBuilder, TraceLog};
use netsim_net::addr::pfx;
use netsim_qos::MarkingPolicy;
use netsim_sim::{Sink, SourceConfig, MSEC, SEC};

use crate::table::Table;
use crate::topo;

/// Runs the scenario and returns (trace log, delivered count).
pub fn measure() -> (TraceLog, u64) {
    let (t, pes) = topo::line(2, 1000); // PE0 - P1 - P2 - PE3
    let log = TraceLog::new();
    let mut pn = BackboneBuilder::new(t, pes).trace(log.clone()).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), Some(MarkingPolicy::enterprise_default()));
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    pn.verify().assert_clean("trace scenario");
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    // A voice packet (UDP to an RTP port → the CPE marks it EF).
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 10), pn.site_addr(b, 20), 16400, 160);
    pn.attach_cbr_source(a, cfg, MSEC, Some(1));
    pn.run_for(SEC);
    let got = pn.net.node_ref::<Sink>(sink).flow(1).map(|f| f.rx_packets).unwrap_or(0);
    (log, got)
}

/// Runs the experiment and renders the hop table.
pub fn run(_quick: bool) -> String {
    let (log, got) = measure();
    let mut t = Table::new(
        format!("F3: hop-by-hop trace of one voice packet (delivered: {got}/1)"),
        &["t (us)", "device", "action", "label stack", "EXP", "DSCP"],
    );
    for r in log.flow(1) {
        t.row(&[
            format!("{:.1}", r.at as f64 / 1e3),
            r.device.clone(),
            r.action.clone(),
            format!("{:?}", r.labels),
            r.exp.map_or("-".into(), |e| e.to_string()),
            r.dscp.map_or("-".into(), |d| d.to_string()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shows_the_figure_3_sequence() {
        let (log, got) = measure();
        assert_eq!(got, 1);
        let recs = log.flow(1);
        let actions: Vec<&str> = recs.iter().map(|r| r.action.as_str()).collect();
        // CE marks EF.
        assert!(actions[0].contains("mark EF"), "{actions:?}");
        // Ingress PE pushes a two-label stack with EXP 5.
        assert!(actions[1].contains("push") && actions[1].contains("exp=5"), "{actions:?}");
        assert_eq!(recs[1].labels.len(), 2, "tunnel + VPN label");
        // A core swap, then the PHP pop.
        assert!(actions.iter().any(|a| a.contains("swap")), "{actions:?}");
        assert!(actions.iter().any(|a| a.contains("php pop")), "{actions:?}");
        // Egress PE dispatches the VPN label into the right VRF.
        assert!(actions.iter().any(|a| a.contains("pop vpn")), "{actions:?}");
        // EXP rode the whole labeled path.
        assert!(recs.iter().filter_map(|r| r.exp).all(|e| e == 5));
        // Final delivery happens at the remote CE.
        assert!(recs.last().unwrap().action.contains("deliver"), "{actions:?}");
    }
}
